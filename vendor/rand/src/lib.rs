//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the exact API subset the workspace uses — `RngCore`, the `Rng`
//! extension trait (`gen`, `gen_range`, `gen_bool`), `SeedableRng`
//! (`seed_from_u64`), and `rngs::SmallRng` — with a xoshiro256++ generator
//! (the same algorithm real `rand 0.8` uses for `SmallRng` on 64-bit
//! targets). Streams are deterministic per seed; no global or thread-local
//! state exists.

/// The core trait: a source of random bits.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type samplable uniformly from an `RngCore`'s raw bits (the `Standard`
/// distribution of real `rand`). Floats land in `[0, 1)`.
pub trait SampleStandard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64,
    i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64);

impl SampleStandard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

impl SampleStandard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

/// Types with uniform sampling over a sub-range (`SampleUniform` in real
/// `rand`).
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `high` is exclusive.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`; `high` is inclusive.
    fn sample_range_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let span = (high as i128 - low as i128) as u128;
                // Widening-multiply range reduction (Lemire); the bias of at
                // most 2^-64 is far below anything the workspace can observe.
                let r = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (low as i128 + r as i128) as $t
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                let span = (high as i128 - low as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (low as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_uniform_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range {low}..{high}");
                let u = <$t as SampleStandard>::sample_standard(rng);
                low + (high - low) * u
            }
            fn sample_range_inclusive<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
            ) -> Self {
                assert!(low <= high, "cannot sample empty range {low}..={high}");
                let u = <$t as SampleStandard>::sample_standard(rng);
                low + (high - low) * u
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range_inclusive(rng, *self.start(), *self.end())
    }
}

/// Extension methods on every `RngCore` (the `Rng` trait of real `rand`).
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution (floats in
    /// `[0, 1)`, integers over their full range).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "probability must be in [0,1], got {p}"
        );
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Builds from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds from a `u64` via SplitMix64 expansion (matching real `rand`'s
    /// documented behaviour for this constructor).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let mut z = {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                state
            };
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++ (what real
    /// `rand 0.8` uses for `SmallRng` on 64-bit platforms).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 1, 2];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(7);
            (0..8).map(|_| r.gen()).collect()
        };
        let c: u64 = SmallRng::seed_from_u64(8).gen();
        assert_eq!(a, b);
        assert_ne!(a[0], c);
    }

    #[test]
    fn f64_in_unit_interval_with_plausible_mean() {
        let mut r = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-4i32..=4);
            assert!((-4..=4).contains(&y));
            let z = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn dyn_rngcore_supports_gen() {
        let mut r = SmallRng::seed_from_u64(1);
        let dynref: &mut dyn super::RngCore = &mut r;
        let x: f64 = dynref.gen();
        assert!((0.0..1.0).contains(&x));
    }
}
