//! Value-generation strategies: the `Strategy` trait, numeric ranges,
//! tuples, `Just`, and `prop_map`.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy always producing a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (self.start as i128 + r as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = ((rng.next_u64() as u128).wrapping_mul(span)) >> 64;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                // u64::MAX maps to exactly hi, making the bound reachable.
                let u = (rng.next_u64() as f64 / u64::MAX as f64) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);
