//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! reimplements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   inner attribute and `pattern in strategy` arguments;
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`] and
//!   [`prop_assume!`];
//! * [`strategy::Strategy`] with `prop_map`, numeric range strategies,
//!   tuple strategies, [`collection::vec`], [`bool::ANY`] and
//!   [`strategy::Just`].
//!
//! Semantics differ from real proptest in one way that matters: failing
//! cases are **not shrunk** — the failing input is reported as drawn. Case
//! generation is deterministic per test function name, so failures
//! reproduce across runs.

pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};

/// Size-bounded `Vec` strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        /// Inclusive upper bound.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of `element` values with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.uniform_usize(self.size.lo, self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy drawing `true` or `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The uniform boolean strategy (`proptest::bool::ANY`).
    pub const ANY: BoolAny = BoolAny;
}

/// The common imports of a property-test file.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current test case with a formatted message unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current test case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// Fails the current test case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// Rejects the current test case (drawn again with fresh inputs) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < cfg.cases {
                attempts += 1;
                assert!(
                    attempts <= cfg.cases.saturating_mul(20).saturating_add(100),
                    "proptest '{}': too many rejected cases ({} accepted of {} wanted)",
                    stringify!($name), accepted, cfg.cases
                );
                let case: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                match case {
                    Ok(()) => accepted += 1,
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest '{}' failed (case {}): {}", stringify!($name), accepted, msg)
                    }
                }
            }
        }
    )*};
}
