//! Test-runner plumbing: configuration, case outcomes, and the
//! deterministic RNG cases are drawn from.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case failed an assertion; fails the whole test.
    Fail(String),
    /// The case was rejected by `prop_assume!`; drawn again.
    Reject(String),
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Outcome of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG strategies draw from. Seeded deterministically from the test's
/// module path + name so failures reproduce across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Deterministic RNG for the named test.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[lo, hi]` (both inclusive).
    pub fn uniform_usize(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(lo <= hi);
        let span = (hi - lo) as u128 + 1;
        lo + (((self.next_u64() as u128).wrapping_mul(span)) >> 64) as usize
    }
}
