//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io; this crate
//! keeps the workspace's benches compiling and running with the same API
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `criterion_group!`, `criterion_main!`, `BenchmarkId`, `Throughput`,
//! `black_box`) but a much simpler measurement loop: a warm-up call, then
//! `sample_size` timed samples of an adaptively-chosen iteration count,
//! reporting min/mean/max per iteration. No statistics, plots, or saved
//! baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id labelled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from a bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Units for derived throughput output.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Passed to benchmark closures; `iter` runs the measured routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_size: usize,
}

impl Bencher<'_> {
    /// Measures `routine`, storing per-iteration durations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: aim for ~20 ms per sample, at least 1 iter.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (Duration::from_millis(20).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }
}

fn run_one(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut samples = Vec::with_capacity(sample_size);
    f(&mut Bencher {
        samples: &mut samples,
        sample_size,
    });
    if samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    let min = samples.iter().min().expect("nonempty");
    let max = samples.iter().max().expect("nonempty");
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!("{label:<50} [{min:>12.3?} {mean:>12.3?} {max:>12.3?}]");
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares the work per iteration (printed, not used in math).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        let _ = t;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.to_string(), self.sample_size, &mut f);
        self
    }
}

/// Declares a group function running each listed benchmark function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running each listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}
