//! Property-based tests for the simulator substrate: conservation laws and
//! cache invariants under randomized traffic.

use cos_storesim::cache::{Cache, LruCache};
use cos_storesim::{run_simulation, CacheConfig, ClusterConfig, DiskOpKind, MetricsConfig};
use cos_workload::TraceEvent;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_request_completes_exactly_once(
        seed in 0u64..10_000,
        n in 1usize..400,
        gap_us in 100u32..50_000,
        size in 1u32..500_000,
    ) {
        let mut cfg = ClusterConfig::paper_s1();
        cfg.seed = seed;
        let gap = gap_us as f64 * 1e-6;
        let trace: Vec<TraceEvent> = (0..n)
            .map(|i| TraceEvent { at: i as f64 * gap, object: (i % 97) as u32, size })
            .collect();
        let metrics = run_simulation(
            cfg,
            MetricsConfig {
                slas: vec![0.05],
                windows: vec![(0.0, 1e12, 0.0)],
                collect_raw: true,
                op_sample_stride: 0,
            },
            trace,
        );
        prop_assert_eq!(metrics.completed(), n as u64);
        let routed: u64 = metrics.devices.iter().map(|d| d.requests).sum();
        prop_assert_eq!(routed, n as u64);
        // Every latency is positive and at least the parse path.
        for r in metrics.raw() {
            prop_assert!(r.latency > 0.0);
            prop_assert!(r.be_latency > 0.0);
            prop_assert!(r.latency >= r.be_latency);
            prop_assert!(r.wta >= 0.0);
        }
    }

    #[test]
    fn chunk_accounting_is_exact(
        seed in 0u64..1000,
        chunks in 1u32..20,
        n in 1usize..100,
    ) {
        let mut cfg = ClusterConfig::paper_s1();
        cfg.seed = seed;
        cfg.cache = CacheConfig::Bernoulli { index_miss: 0.0, meta_miss: 0.0, data_miss: 1.0 };
        let size = cfg.chunk_size * chunks;
        let trace: Vec<TraceEvent> = (0..n)
            .map(|i| TraceEvent { at: i as f64 * 0.5, object: i as u32, size })
            .collect();
        let metrics = run_simulation(
            cfg,
            MetricsConfig {
                slas: vec![],
                windows: vec![],
                collect_raw: false,
                op_sample_stride: 0,
            },
            trace,
        );
        let data_ops: u64 = metrics.devices.iter().map(|d| d.data_ops).sum();
        prop_assert_eq!(data_ops, (n as u64) * (chunks as u64));
        let index_ops: u64 = metrics.devices.iter().map(|d| d.index_ops).sum();
        prop_assert_eq!(index_ops, n as u64);
    }

    #[test]
    fn lru_capacity_invariant_under_random_ops(
        capacity in 500u64..50_000,
        ops in proptest::collection::vec((0u32..50, 0u32..4, 0u8..3), 1..500),
    ) {
        let mut cache = LruCache::new(capacity, 64, 128, 1024);
        let mut rng = SmallRng::seed_from_u64(7);
        for &(object, chunk, kind) in &ops {
            let kind = match kind {
                0 => DiskOpKind::Index,
                1 => DiskOpKind::Meta,
                _ => DiskOpKind::Data,
            };
            cache.access(kind, object, chunk, &mut rng);
            prop_assert!(cache.used_bytes() <= capacity);
        }
    }

    #[test]
    fn lru_repeat_access_hits(
        object in 0u32..1000,
        chunk in 0u32..8,
    ) {
        let mut cache = LruCache::new(1_000_000, 64, 128, 1024);
        let mut rng = SmallRng::seed_from_u64(1);
        cache.access(DiskOpKind::Data, object, chunk, &mut rng);
        let second = cache.access(DiskOpKind::Data, object, chunk, &mut rng);
        prop_assert_eq!(second, cos_storesim::Lookup::Hit);
    }

    #[test]
    fn seeds_change_outcomes_but_structure_holds(seed in 1u64..5000) {
        let mut cfg = ClusterConfig::paper_s1();
        cfg.seed = seed;
        let trace: Vec<TraceEvent> = (0..200)
            .map(|i| TraceEvent { at: i as f64 * 0.01, object: (i % 61) as u32, size: 30_000 })
            .collect();
        let metrics = run_simulation(
            cfg,
            MetricsConfig {
                slas: vec![0.05],
                windows: vec![(0.0, 1e12, 0.0)],
                collect_raw: false,
                op_sample_stride: 0,
            },
            trace,
        );
        prop_assert_eq!(metrics.completed(), 200);
        let f = metrics.observed_fraction(0, 0).unwrap();
        prop_assert!((0.0..=1.0).contains(&f));
    }
}
