//! Calibration rigs — the benchmarking procedures of §IV-A.
//!
//! *Disk benchmarking*: fill the disk, then sequentially access randomly
//! selected objects with at most one outstanding operation, recording the
//! latency of each index lookup / metadata read / data read. With no
//! queueing the recorded latencies are raw service times, which are then
//! fitted (Fig. 5).
//!
//! *Parse benchmarking*: a closed-loop workload reading one cached object,
//! again with one outstanding request, recording `Dfp` (frontend receive →
//! respond) and `Dbp` (backend receive → respond).

use crate::config::{CacheConfig, ClusterConfig};
use crate::metrics::MetricsConfig;
use crate::sim::run_simulation;
use cos_distr::Empirical;
use cos_simkit::RngStreams;
use cos_workload::TraceEvent;

/// Recorded per-operation disk service-time samples.
#[derive(Debug)]
pub struct DiskBenchmark {
    /// Index lookup latencies.
    pub index: Empirical,
    /// Metadata read latencies.
    pub meta: Empirical,
    /// Data read latencies.
    pub data: Empirical,
}

/// Benchmarks the disk of `cfg` with `n` operations of each kind and at
/// most one outstanding operation (§IV-A).
///
/// # Panics
/// Panics if `n == 0`.
pub fn benchmark_disk(cfg: &ClusterConfig, n: usize) -> DiskBenchmark {
    assert!(n > 0, "disk benchmark needs at least one operation");
    // Outstanding = 1 means the recorded latency of each operation equals
    // its raw service time: drive the device's service-time laws directly
    // through the same sampling path the simulator uses.
    let streams = RngStreams::new(cfg.seed);
    let mut rng = streams.stream("disk-benchmark", 0);
    let index: Vec<f64> = (0..n).map(|_| cfg.disk.index.sample(&mut rng)).collect();
    let meta: Vec<f64> = (0..n).map(|_| cfg.disk.meta.sample(&mut rng)).collect();
    let data: Vec<f64> = (0..n).map(|_| cfg.disk.data.sample(&mut rng)).collect();
    DiskBenchmark {
        index: Empirical::new(index),
        meta: Empirical::new(meta),
        data: Empirical::new(data),
    }
}

/// Results of the request-parsing benchmark.
#[derive(Debug)]
pub struct ParseBenchmark {
    /// `Dfp`: frontend receive → respond, per request.
    pub dfp: Empirical,
    /// `Dbp`: backend receive → respond, per request.
    pub dbp: Empirical,
    /// Estimated frontend parsing latency (`Dfp − Dbp`; the network share is
    /// not on the simulated response path, see §IV-A).
    pub parse_fe_estimate: f64,
    /// Estimated backend parsing latency (`Dbp` minus memory-hit latencies).
    pub parse_be_estimate: f64,
}

/// Benchmarks request parsing (§IV-A): `n` spaced single-object requests
/// with a fully warm cache, so no request queues and nothing touches disk.
///
/// # Panics
/// Panics if `n == 0`.
pub fn benchmark_parse(cfg: &ClusterConfig, n: usize) -> ParseBenchmark {
    assert!(n > 0, "parse benchmark needs at least one request");
    let mut quiet = cfg.clone();
    // All operations served from memory: the cached-object closed loop.
    quiet.cache = CacheConfig::Bernoulli {
        index_miss: 0.0,
        meta_miss: 0.0,
        data_miss: 0.0,
    };
    // One outstanding request: spacing far beyond any parse latency.
    let gap = 0.1;
    let trace: Vec<TraceEvent> = (0..n)
        .map(|i| TraceEvent {
            at: i as f64 * gap,
            object: 0,
            size: 1,
        })
        .collect();
    let metrics = run_simulation(
        quiet.clone(),
        MetricsConfig {
            slas: vec![],
            windows: vec![],
            collect_raw: true,
            op_sample_stride: 0,
        },
        trace,
    );
    let dfp: Vec<f64> = metrics.raw().iter().map(|r| r.latency).collect();
    let dbp: Vec<f64> = metrics.raw().iter().map(|r| r.be_latency).collect();
    let dfp = Empirical::new(dfp);
    let dbp = Empirical::new(dbp);
    let mem_share = 3.0 * quiet.mem_latency;
    ParseBenchmark {
        parse_fe_estimate: (dfp.mean() - dbp.mean()).max(0.0),
        parse_be_estimate: (dbp.mean() - mem_share).max(0.0),
        dfp,
        dbp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cos_distr::{fit_best, Family};

    #[test]
    fn disk_benchmark_recovers_configured_means() {
        let cfg = ClusterConfig::paper_s1();
        let b = benchmark_disk(&cfg, 20_000);
        assert!((b.index.mean() - cfg.disk.index.mean()).abs() / cfg.disk.index.mean() < 0.05);
        assert!((b.meta.mean() - cfg.disk.meta.mean()).abs() / cfg.disk.meta.mean() < 0.05);
        assert!((b.data.mean() - cfg.disk.data.mean()).abs() / cfg.disk.data.mean() < 0.05);
    }

    #[test]
    fn gamma_wins_the_fig5_fit_on_benchmarked_latencies() {
        let cfg = ClusterConfig::paper_s1();
        let b = benchmark_disk(&cfg, 20_000);
        for sample in [&b.index, &b.meta, &b.data] {
            let report = fit_best(sample);
            assert_eq!(report.best().fitted.family(), Family::Gamma);
        }
    }

    #[test]
    fn parse_benchmark_recovers_parse_costs() {
        let cfg = ClusterConfig::paper_s1();
        let b = benchmark_parse(&cfg, 200);
        // parse_be is Degenerate(0.5 ms); Dbp also contains 3 memory hits.
        assert!(
            (b.parse_be_estimate - 0.0005).abs() < 1e-6,
            "be {}",
            b.parse_be_estimate
        );
        // Dfp − Dbp = parse_fe + accept cost.
        assert!(
            (b.parse_fe_estimate - (0.0003 + cfg.accept_cost)).abs() < 1e-6,
            "fe {}",
            b.parse_fe_estimate
        );
        assert_eq!(b.dfp.len(), 200);
        assert!(b.dbp.mean() < b.dfp.mean());
    }

    #[test]
    fn parse_benchmark_has_no_queueing() {
        let cfg = ClusterConfig::paper_s1();
        let b = benchmark_parse(&cfg, 100);
        // Constant parse distributions ⇒ essentially zero variance.
        assert!(b.dfp.variance() < 1e-12);
    }
}
