//! Live telemetry export — the feed an online prediction service consumes.
//!
//! The [`crate::metrics::Metrics`] sink aggregates *after* the fact for the
//! offline evaluation pipeline; a long-running SLA predictor instead needs
//! the raw per-request / per-operation stream as it happens, exactly the
//! events a real object store would export to a metrics bus. The simulator
//! emits one [`SimTelemetry`] record per measurement point when a
//! [`TelemetrySink`] is attached via [`crate::sim::Simulation::with_telemetry`];
//! the same four record kinds cover every §IV-B online metric:
//!
//! * per-device arrival rates ← [`SimTelemetry::Routed`];
//! * per-device data-read rates ← [`SimTelemetry::DataRead`];
//! * threshold miss-ratio estimation and disk service means ←
//!   [`SimTelemetry::Op`] latencies;
//! * observed SLA attainment (drift detection) ←
//!   [`SimTelemetry::Completed`] latencies.
//!
//! All timestamps are simulated event time in seconds. Operation and
//! data-read records carry the **owning request's arrival time** (the same
//! attribution the offline window counters use), so backlog drained after a
//! load step does not contaminate the next window's rates.

use crate::config::DiskOpKind;

/// One telemetry record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimTelemetry {
    /// A request finished frontend parsing and was routed to a device.
    Routed {
        /// Attribution time (the request's arrival at the frontend).
        at: f64,
        /// Target device.
        device: u16,
    },
    /// A data chunk read was issued on a device (first chunk or
    /// continuation).
    DataRead {
        /// Attribution time (the owning request's arrival).
        at: f64,
        /// Device issuing the read.
        device: u16,
    },
    /// One backend operation's observed latency — memory-hit or disk
    /// service time, the §IV-B threshold-estimator input.
    Op {
        /// Attribution time (the owning request's arrival).
        at: f64,
        /// Device that served the operation.
        device: u16,
        /// Operation kind.
        kind: DiskOpKind,
        /// Observed latency in seconds.
        latency: f64,
        /// Ground truth: did the operation visit the disk? (A live system
        /// does not know this; it is exported for calibration tests.)
        was_miss: bool,
    },
    /// A request's response started (frontend-measured latency is final).
    Completed {
        /// Arrival time at the frontend.
        arrival: f64,
        /// Time the response started.
        completed_at: f64,
        /// Frontend-measured response latency in seconds.
        latency: f64,
        /// Serving device.
        device: u16,
    },
}

impl SimTelemetry {
    /// The record's event-time ordering key: completion time for
    /// [`SimTelemetry::Completed`], attribution time otherwise.
    pub fn at(&self) -> f64 {
        match *self {
            SimTelemetry::Routed { at, .. }
            | SimTelemetry::DataRead { at, .. }
            | SimTelemetry::Op { at, .. } => at,
            SimTelemetry::Completed { completed_at, .. } => completed_at,
        }
    }
}

/// A consumer of the telemetry stream.
///
/// Implemented for closures, `Vec<SimTelemetry>` (buffering), and
/// [`std::sync::mpsc::Sender`] (the channel pipeline a service ingests
/// from; a disconnected receiver drops records silently so a dead consumer
/// cannot crash the simulation).
pub trait TelemetrySink {
    /// Receives one record.
    fn emit(&mut self, event: SimTelemetry);
}

impl<F: FnMut(SimTelemetry)> TelemetrySink for F {
    fn emit(&mut self, event: SimTelemetry) {
        self(event)
    }
}

impl TelemetrySink for Vec<SimTelemetry> {
    fn emit(&mut self, event: SimTelemetry) {
        self.push(event);
    }
}

impl TelemetrySink for std::sync::mpsc::Sender<SimTelemetry> {
    fn emit(&mut self, event: SimTelemetry) {
        let _ = self.send(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_impls_receive_events() {
        let ev = SimTelemetry::Routed { at: 1.0, device: 3 };
        let mut buf: Vec<SimTelemetry> = Vec::new();
        buf.emit(ev);
        assert_eq!(buf, vec![ev]);

        let mut n = 0usize;
        {
            let mut closure = |_e: SimTelemetry| n += 1;
            closure.emit(ev);
        }
        assert_eq!(n, 1);

        let (tx, rx) = std::sync::mpsc::channel();
        let mut tx = tx;
        tx.emit(ev);
        assert_eq!(rx.recv().unwrap(), ev);
        drop(rx);
        tx.emit(ev); // disconnected receiver must not panic
    }

    #[test]
    fn ordering_key_uses_completion_time() {
        let c = SimTelemetry::Completed {
            arrival: 1.0,
            completed_at: 2.5,
            latency: 1.5,
            device: 0,
        };
        assert_eq!(c.at(), 2.5);
        assert_eq!(SimTelemetry::DataRead { at: 4.0, device: 0 }.at(), 4.0);
    }
}
