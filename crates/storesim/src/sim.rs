//! The event-driven object-store simulator.
//!
//! This is the substitute for the paper's 7-node OpenStack Swift testbed
//! (§V-A). It mechanistically reproduces every queueing behaviour the model
//! is about:
//!
//! * a frontend tier of event-driven proxy processes with FCFS request
//!   queues and random load balancing (ssbench's built-in policy);
//! * hash-based placement over partitions with replicas and random replica
//!   choice;
//! * a **connection pool per backend process**: connecting requests wait
//!   until the process serves an `accept()` operation, which is scheduled
//!   FCFS like any other operation (§III-C, Fig. 4); accepts run either
//!   per-connection or batched (see [`AcceptMode`]);
//! * backend processes executing parse → index lookup → metadata read →
//!   data chunk read per request, **blocking** on every disk access;
//! * chunked data reads: after the first chunk the response starts (latency
//!   stops there, Eq. 1) and each subsequent chunk read re-enters the FCFS
//!   operation queue once the previous chunk's transmission completes —
//!   producing exactly the interleaving the union operation abstracts;
//! * one FCFS disk per device shared by its `N_be` processes (the M/G/1/K
//!   situation of §III-B) with per-operation-kind service times;
//! * a per-device cache (Bernoulli or LRU);
//! * optionally, Swift-style frontend timeouts with replica retries — the
//!   regime the model's assumption 5 excludes (ablation A6).

use crate::cache::{build_cache, Cache, Lookup};
use crate::chaos::ChaosSchedule;
use crate::config::{AcceptMode, ClusterConfig, DiskOpKind, RedundancyPolicy};
use crate::metrics::{CompletedRequest, Metrics, MetricsConfig};
use crate::telemetry::{SimTelemetry, TelemetrySink};
use cos_distr::DynService;
use cos_simkit::{Calendar, RngStreams, SimTime};
use cos_workload::{ObjectId, TraceEvent};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;

/// Number of hash partitions (Swift default in the paper's testbed: 1024).
pub const PARTITIONS: usize = 1024;
/// Replicas per partition.
pub const REPLICAS: usize = 3;

/// A request in flight.
#[derive(Debug, Clone, Copy)]
struct Request {
    arrival: f64,
    object: ObjectId,
    size: u32,
    device: u16,
    pool_enter: f64,
    be_enqueue: f64,
    wta: f64,
    /// Index into the retry-state table; `u32::MAX` when timeouts are off.
    id: u32,
    /// Index into the fork-join table; `u32::MAX` for uncoded requests.
    fj: u32,
}

/// Retry bookkeeping for one logical request (only allocated when the
/// cluster has a [`crate::config::TimeoutRetry`] policy).
#[derive(Debug, Clone, Copy)]
struct ReqState {
    completed: bool,
    attempts: u32,
    /// Bitmask of devices already tried.
    tried: u64,
    object: ObjectId,
    size: u32,
    arrival: f64,
}

/// Join bookkeeping for one coded logical read (allocated only when the
/// cluster has a [`crate::config::CodingConfig`]).
#[derive(Debug, Clone)]
struct FjState {
    /// Sub-request completions still required.
    needed: u32,
    /// Set once the k-th chunk read finishes: the logical response has
    /// started and every other sub-request becomes a cancellation target.
    done: bool,
    arrival: f64,
    object: ObjectId,
    sub_size: u32,
    /// Stripe devices held back by [`RedundancyPolicy::Deferred`], launched
    /// only if the read is still incomplete when the delay fires.
    reserve: Vec<u16>,
}

/// An entry in a backend process's operation queue.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Accept all pooled connections.
    Accept,
    /// Parse + index + meta + first data chunk of a request.
    Handle(Request),
    /// A continuation chunk read (`remaining` includes this chunk;
    /// `arrival` is the owning request's arrival time, used to attribute
    /// the data-read to its rate window).
    Chunk {
        object: ObjectId,
        chunk_idx: u32,
        remaining: u32,
        arrival: f64,
    },
}

/// What a busy backend process is currently doing.
#[derive(Debug, Clone, Copy)]
enum Exec {
    Accept,
    Handle {
        req: Request,
        stage: HandleStage,
    },
    Chunk {
        object: ObjectId,
        chunk_idx: u32,
        remaining: u32,
        arrival: f64,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HandleStage {
    Parse,
    Index,
    Meta,
    Data,
}

/// Simulation events.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The next trace arrival (payload kept aside in the driver).
    Arrival,
    /// Frontend process finished parsing its current request.
    FeDone { fe: u16 },
    /// A timed backend CPU stage (accept cost, parse, memory hit) elapsed.
    BeDone { dev: u16, proc: u16 },
    /// The device's disk finished its current operation.
    DiskDone { dev: u16 },
    /// A chunk transmission completed; the next chunk read becomes ready.
    NetDone {
        dev: u16,
        proc: u16,
        object: ObjectId,
        chunk_idx: u32,
        remaining: u32,
        arrival: f64,
    },
    /// Frontend timeout check for a logical request.
    Timeout { req: u32 },
    /// Deferred-redundancy deadline for a coded read: launch the reserve
    /// sub-requests if the read has not completed yet.
    Redundant { fj: u32 },
}

struct BeProc {
    queue: VecDeque<Op>,
    busy: bool,
    exec: Option<Exec>,
    pool: VecDeque<Request>,
    accept_pending: bool,
}

impl BeProc {
    fn new() -> Self {
        BeProc {
            queue: VecDeque::new(),
            busy: false,
            exec: None,
            pool: VecDeque::new(),
            accept_pending: false,
        }
    }
}

struct Disk {
    /// Waiting operations: `(process, kind, attribution time)`.
    queue: VecDeque<(u16, DiskOpKind, f64)>,
    current: Option<(u16, DiskOpKind)>,
}

/// The simulator.
pub struct Simulation {
    cfg: ClusterConfig,
    cal: Calendar<Ev>,
    fe_queue: Vec<VecDeque<Request>>,
    fe_busy: Vec<bool>,
    fe_current: Vec<Option<Request>>,
    procs: Vec<Vec<BeProc>>,
    disks: Vec<Disk>,
    caches: Vec<Box<dyn Cache>>,
    route_rng: SmallRng,
    parse_rng: SmallRng,
    disk_rngs: Vec<SmallRng>,
    cache_rngs: Vec<SmallRng>,
    partition_replicas: Vec<[u16; REPLICAS]>,
    disk_profiles: Vec<crate::config::DiskProfile>,
    req_states: Vec<ReqState>,
    fj_states: Vec<FjState>,
    metrics: Metrics,
    telemetry: Option<Box<dyn TelemetrySink>>,
    chaos: ChaosSchedule,
    chaos_rng: SmallRng,
    net_time: f64,
}

impl Simulation {
    /// Builds a simulator from a validated configuration.
    pub fn new(cfg: ClusterConfig, metrics_config: MetricsConfig) -> Self {
        cfg.validate();
        let streams = RngStreams::new(cfg.seed);
        let devices = cfg.devices;
        let caches = (0..devices)
            .map(|d| build_cache(cfg.cache_for(d), cfg.chunk_size))
            .collect();
        let mut placement_rng = streams.stream("placement", 0);
        let partition_replicas = (0..PARTITIONS)
            .map(|_| {
                // Choose REPLICAS distinct devices (or all devices if fewer).
                let mut picks: Vec<u16> = (0..devices as u16).collect();
                for i in 0..picks.len().min(REPLICAS) {
                    let j = placement_rng.gen_range(i..picks.len());
                    picks.swap(i, j);
                }
                let mut arr = [0u16; REPLICAS];
                for (k, slot) in arr.iter_mut().enumerate() {
                    *slot = picks[k % picks.len().max(1)];
                }
                arr
            })
            .collect();
        let net_time = cfg.chunk_size as f64 / cfg.network_bandwidth;
        let disk_profiles = (0..devices).map(|d| cfg.disk_for(d).clone()).collect();
        let metrics = Metrics::new(metrics_config, devices);
        Simulation {
            fe_queue: (0..cfg.frontend_processes)
                .map(|_| VecDeque::new())
                .collect(),
            fe_busy: vec![false; cfg.frontend_processes],
            fe_current: (0..cfg.frontend_processes).map(|_| None).collect(),
            procs: (0..devices)
                .map(|_| {
                    (0..cfg.processes_per_device)
                        .map(|_| BeProc::new())
                        .collect()
                })
                .collect(),
            disks: (0..devices)
                .map(|_| Disk {
                    queue: VecDeque::new(),
                    current: None,
                })
                .collect(),
            caches,
            route_rng: streams.stream("route", 0),
            parse_rng: streams.stream("parse", 0),
            disk_rngs: (0..devices)
                .map(|d| streams.stream("disk", d as u64))
                .collect(),
            cache_rngs: (0..devices)
                .map(|d| streams.stream("cache", d as u64))
                .collect(),
            partition_replicas,
            disk_profiles,
            req_states: Vec::new(),
            fj_states: Vec::new(),
            metrics,
            telemetry: None,
            // The chaos stream exists even without a schedule so that
            // attaching an *empty* schedule changes nothing, bit for bit.
            chaos: ChaosSchedule::none(),
            chaos_rng: streams.stream("chaos", 0),
            cal: Calendar::new(),
            net_time,
            cfg,
        }
    }

    /// Attaches a live telemetry sink; every measurement point also emits a
    /// [`SimTelemetry`] record (see [`crate::telemetry`]).
    pub fn with_telemetry(mut self, sink: Box<dyn TelemetrySink>) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Attaches a fault-injection schedule (see [`crate::chaos`]).
    ///
    /// Chaos draws come from their own RNG stream, so an empty schedule
    /// leaves the run bit-identical to never calling this, and any chaos
    /// run is reproducible from the cluster seed.
    ///
    /// # Panics
    ///
    /// If the schedule names a nonexistent device or has a malformed
    /// window (see [`ChaosSchedule::validate`]).
    pub fn with_chaos(mut self, schedule: ChaosSchedule) -> Self {
        schedule.validate(self.cfg.devices);
        self.chaos = schedule;
        self
    }

    #[inline]
    fn emit(&mut self, event: SimTelemetry) {
        if let Some(sink) = self.telemetry.as_mut() {
            sink.emit(event);
        }
    }

    /// Runs the trace to completion (all in-flight work drained) and returns
    /// the collected metrics.
    pub fn run(mut self, trace: impl IntoIterator<Item = TraceEvent>) -> Metrics {
        let mut trace = trace.into_iter();
        let mut pending: Option<TraceEvent> = trace.next();
        if let Some(e) = pending {
            self.cal.schedule_at(SimTime::new(e.at), Ev::Arrival);
        }
        while let Some((t, ev)) = self.cal.pop() {
            let now = t.seconds();
            match ev {
                Ev::Arrival => {
                    let e = pending.take().expect("arrival event without payload");
                    self.on_arrival(now, e);
                    self.inject_burst(now, e.size);
                    pending = trace.next();
                    if let Some(next) = pending {
                        self.cal.schedule_at(SimTime::new(next.at), Ev::Arrival);
                    }
                }
                Ev::FeDone { fe } => self.on_fe_done(now, fe as usize),
                Ev::BeDone { dev, proc } => self.stage_complete(now, dev as usize, proc as usize),
                Ev::DiskDone { dev } => self.on_disk_done(now, dev as usize),
                Ev::NetDone {
                    dev,
                    proc,
                    object,
                    chunk_idx,
                    remaining,
                    arrival,
                } => {
                    self.procs[dev as usize][proc as usize]
                        .queue
                        .push_back(Op::Chunk {
                            object,
                            chunk_idx,
                            remaining,
                            arrival,
                        });
                    self.pump(now, dev as usize, proc as usize);
                }
                Ev::Timeout { req } => self.on_timeout(now, req),
                Ev::Redundant { fj } => self.on_redundant(now, fj),
            }
        }
        self.metrics
    }

    // ---- frontend tier -------------------------------------------------

    /// Replays a trace arrival `m − 1` extra times inside an active
    /// [`crate::chaos::Fault::Burst`] window (fractional part realized by
    /// a Bernoulli draw), with fresh objects from the chaos stream so the
    /// extra load spreads over partitions like the trace does. Injected
    /// arrivals are full logical requests — routed, measured, completed —
    /// but do not themselves trigger further injection.
    fn inject_burst(&mut self, now: f64, size: u32) {
        if self.chaos.is_empty() {
            return;
        }
        let extra = self.chaos.burst_multiplier(now) - 1.0;
        if extra <= 0.0 {
            return;
        }
        let mut copies = extra.floor() as u32;
        let frac = extra - copies as f64;
        if frac > 0.0 && self.chaos_rng.gen::<f64>() < frac {
            copies += 1;
        }
        for _ in 0..copies {
            let object = self.chaos_rng.gen::<ObjectId>();
            self.on_arrival(
                now,
                TraceEvent {
                    at: now,
                    object,
                    size,
                },
            );
        }
    }

    fn on_arrival(&mut self, now: f64, e: TraceEvent) {
        let id = if self.cfg.timeout_retry.is_some() {
            self.req_states.push(ReqState {
                completed: false,
                attempts: 0,
                tried: 0,
                object: e.object,
                size: e.size,
                arrival: e.at,
            });
            (self.req_states.len() - 1) as u32
        } else {
            u32::MAX
        };
        let req = Request {
            arrival: e.at,
            object: e.object,
            size: e.size,
            device: u16::MAX,
            pool_enter: 0.0,
            be_enqueue: 0.0,
            wta: 0.0,
            id,
            fj: u32::MAX,
        };
        // ssbench sends each request to a random frontend process.
        let fe = self.route_rng.gen_range(0..self.fe_queue.len());
        if self.fe_busy[fe] {
            self.fe_queue[fe].push_back(req);
        } else {
            self.start_fe(now, fe, req);
        }
    }

    fn start_fe(&mut self, now: f64, fe: usize, req: Request) {
        self.fe_busy[fe] = true;
        self.fe_current[fe] = Some(req);
        let dt = sample(&self.cfg.parse_fe, &mut self.parse_rng);
        let _ = now;
        self.cal.schedule_in(dt, Ev::FeDone { fe: fe as u16 });
    }

    fn on_fe_done(&mut self, now: f64, fe: usize) {
        let req = self.fe_current[fe]
            .take()
            .expect("frontend finished without a request");
        if self.cfg.coding.is_some() {
            self.fork_coded(now, req);
        } else {
            self.route_to_backend(now, req);
        }
        if let Some(next) = self.fe_queue[fe].pop_front() {
            self.start_fe(now, fe, next);
        } else {
            self.fe_busy[fe] = false;
        }
    }

    fn route_to_backend(&mut self, now: f64, req: Request) {
        let partition = req.object as usize % PARTITIONS;
        let replicas = self.partition_replicas[partition];
        // Prefer an untried replica (relevant only on retries).
        let mut device = if req.id != u32::MAX {
            let tried = self.req_states[req.id as usize].tried;
            let start = self.route_rng.gen_range(0..REPLICAS);
            (0..REPLICAS)
                .map(|k| replicas[(start + k) % REPLICAS])
                .find(|&d| tried & (1u64 << (d as u64 % 64)) == 0)
                .unwrap_or(replicas[start]) as usize
        } else {
            replicas[self.route_rng.gen_range(0..REPLICAS)] as usize
        };
        // Chaos failover: the routing draw above always happens (keeping
        // the RNG stream identical with and without faults); only *after*
        // it do we deterministically fail over off a lost device. The
        // original pick stands when every replica of the partition is lost.
        if self.chaos.device_lost(now, device) {
            if let Some(&alive) = replicas
                .iter()
                .find(|&&d| !self.chaos.device_lost(now, d as usize))
            {
                device = alive as usize;
            }
        }
        if req.id != u32::MAX {
            let state = &mut self.req_states[req.id as usize];
            state.tried |= 1u64 << (device as u64 % 64);
            state.attempts += 1;
            if let Some(tr) = self.cfg.timeout_retry {
                if state.attempts <= tr.max_retries {
                    self.cal
                        .schedule_in(tr.timeout, Ev::Timeout { req: req.id });
                }
            }
        }
        self.enqueue_backend(now, req, device);
    }

    /// The shared tail of replica routing and coded fan-out: draw a process
    /// of `device`, pool the request, and schedule its accept.
    fn enqueue_backend(&mut self, now: f64, mut req: Request, device: usize) {
        let proc = self.route_rng.gen_range(0..self.cfg.processes_per_device);
        req.device = device as u16;
        req.pool_enter = now;
        self.metrics.route(req.arrival, req.device);
        self.emit(SimTelemetry::Routed {
            at: req.arrival,
            device: req.device,
        });
        let mode = self.cfg.accept_mode;
        let p = &mut self.procs[device][proc];
        p.pool.push_back(req);
        match mode {
            // One accept operation per connection: it enters the queue tail
            // NOW, so by PASTA its wait is exactly the queue's waiting time
            // (the paper's A(t) = W_be(t)).
            AcceptMode::PerConnection => p.queue.push_back(Op::Accept),
            // One in-flight accept serves the whole pool.
            AcceptMode::Batched => {
                if !p.accept_pending {
                    p.accept_pending = true;
                    p.queue.push_back(Op::Accept);
                }
            }
        }
        self.pump(now, device, proc);
    }

    // ---- coded reads ---------------------------------------------------

    /// Fans a coded logical read out over its stripe. Chunk `i` of an
    /// object in partition `p` lives on device `(p + i) mod D` — the coded
    /// analogue of the replica table, deterministic given placement. The
    /// launch *order* is a partial Fisher–Yates from the routing stream, so
    /// k-only reads pick a uniform k-subset of the stripe. Coded reads
    /// bypass the replica table and chaos device-loss failover: an erasure
    /// code tolerates a lost device through `k < n`, not by re-routing.
    fn fork_coded(&mut self, now: f64, req: Request) {
        let coding = self.cfg.coding.expect("fork_coded without coding config");
        let partition = req.object as usize % PARTITIONS;
        let mut stripe: Vec<u16> = (0..coding.n)
            .map(|i| ((partition + i) % self.cfg.devices) as u16)
            .collect();
        let launch_count = match coding.policy {
            RedundancyPolicy::Eager => coding.n,
            RedundancyPolicy::KOnly | RedundancyPolicy::Deferred { .. } => coding.k,
        };
        for i in 0..launch_count.min(stripe.len().saturating_sub(1)) {
            let j = self.route_rng.gen_range(i..stripe.len());
            stripe.swap(i, j);
        }
        let reserve: Vec<u16> = stripe[launch_count..].to_vec();
        let fj = self.fj_states.len() as u32;
        self.fj_states.push(FjState {
            needed: coding.k as u32,
            done: false,
            arrival: req.arrival,
            object: req.object,
            sub_size: req.size.div_ceil(coding.k as u32).max(1),
            reserve,
        });
        if let RedundancyPolicy::Deferred { delay } = coding.policy {
            self.cal.schedule_in(delay, Ev::Redundant { fj });
        }
        for &dev in stripe.iter().take(launch_count) {
            self.launch_sub(now, fj, dev);
        }
    }

    /// Puts one chunk sub-request of coded read `fj` in flight on `device`.
    fn launch_sub(&mut self, now: f64, fj: u32, device: u16) {
        let st = &self.fj_states[fj as usize];
        let sub = Request {
            arrival: st.arrival,
            object: st.object,
            size: st.sub_size,
            device,
            pool_enter: 0.0,
            be_enqueue: 0.0,
            wta: 0.0,
            id: u32::MAX,
            fj,
        };
        self.metrics.coded_launch();
        self.enqueue_backend(now, sub, device as usize);
    }

    /// Deferred-redundancy deadline: if the read is still incomplete,
    /// launch the held-back stripe devices.
    fn on_redundant(&mut self, now: f64, fj: u32) {
        if self.fj_states[fj as usize].done {
            return;
        }
        let extra = std::mem::take(&mut self.fj_states[fj as usize].reserve);
        for dev in extra {
            self.launch_sub(now, fj, dev);
        }
    }

    /// Whether a pooled/queued sub-request belongs to a coded read that has
    /// already completed — the lazy-cancellation test.
    fn fj_cancelled(&self, req: &Request) -> bool {
        req.fj != u32::MAX && self.fj_states[req.fj as usize].done
    }

    // ---- backend tier --------------------------------------------------

    /// Starts operations while the process is idle and work is queued.
    fn pump(&mut self, now: f64, dev: usize, proc: usize) {
        if self.procs[dev][proc].busy {
            return;
        }
        let op = loop {
            let Some(op) = self.procs[dev][proc].queue.pop_front() else {
                return;
            };
            // Lazy cancellation: a handle whose coded read already
            // completed is dropped at the pop and never occupies the
            // process.
            if let Op::Handle(req) = &op {
                if self.fj_cancelled(req) {
                    self.metrics.coded_cancel();
                    continue;
                }
            }
            break op;
        };
        self.procs[dev][proc].busy = true;
        match op {
            Op::Accept => {
                self.procs[dev][proc].exec = Some(Exec::Accept);
                self.cal.schedule_in(
                    self.cfg.accept_cost,
                    Ev::BeDone {
                        dev: dev as u16,
                        proc: proc as u16,
                    },
                );
            }
            Op::Handle(req) => {
                self.procs[dev][proc].exec = Some(Exec::Handle {
                    req,
                    stage: HandleStage::Parse,
                });
                let dt = sample(&self.cfg.parse_be, &mut self.parse_rng);
                self.cal.schedule_in(
                    dt,
                    Ev::BeDone {
                        dev: dev as u16,
                        proc: proc as u16,
                    },
                );
            }
            Op::Chunk {
                object,
                chunk_idx,
                remaining,
                arrival,
            } => {
                self.procs[dev][proc].exec = Some(Exec::Chunk {
                    object,
                    chunk_idx,
                    remaining,
                    arrival,
                });
                self.start_disk_stage(now, arrival, dev, proc, DiskOpKind::Data, object, chunk_idx);
            }
        }
    }

    /// Performs a cache access for a stage; on hit a memory-latency timer is
    /// scheduled, on miss the operation joins the device's disk queue and
    /// the process blocks. `now` is the event time (chaos windows are
    /// evaluated against it); `attr_time` is the owning request's arrival
    /// time: operation counts are attributed to the rate window of the
    /// request that caused them (the paper counts data chunks per request
    /// stream, §IV-B), so backlog drained after a window ends does not
    /// contaminate the next window's measured rates.
    #[allow(clippy::too_many_arguments)]
    fn start_disk_stage(
        &mut self,
        now: f64,
        attr_time: f64,
        dev: usize,
        proc: usize,
        kind: DiskOpKind,
        object: ObjectId,
        chunk: u32,
    ) {
        let lookup = self.caches[dev].access(kind, object, chunk, &mut self.cache_rngs[dev]);
        let miss = lookup == Lookup::Miss;
        self.metrics.cache_access(attr_time, dev as u16, kind, miss);
        if kind == DiskOpKind::Data {
            self.emit(SimTelemetry::DataRead {
                at: attr_time,
                device: dev as u16,
            });
        }
        if miss {
            self.submit_disk(now, dev, proc as u16, kind, attr_time);
        } else {
            self.metrics.op_sample(kind, self.cfg.mem_latency, false);
            self.emit(SimTelemetry::Op {
                at: attr_time,
                device: dev as u16,
                kind,
                latency: self.cfg.mem_latency,
                was_miss: false,
            });
            self.cal.schedule_in(
                self.cfg.mem_latency,
                Ev::BeDone {
                    dev: dev as u16,
                    proc: proc as u16,
                },
            );
        }
    }

    fn submit_disk(&mut self, now: f64, dev: usize, proc: u16, kind: DiskOpKind, attr_time: f64) {
        if self.disks[dev].current.is_none() {
            self.start_disk_op(now, dev, proc, kind, attr_time);
        } else {
            self.disks[dev].queue.push_back((proc, kind, attr_time));
        }
    }

    fn start_disk_op(&mut self, now: f64, dev: usize, proc: u16, kind: DiskOpKind, attr_time: f64) {
        let profile = &self.disk_profiles[dev];
        let rng = &mut self.disk_rngs[dev];
        let svc = match kind {
            DiskOpKind::Index => sample(&profile.index, rng),
            DiskOpKind::Meta => sample(&profile.meta, rng),
            DiskOpKind::Data => sample(&profile.data, rng),
        };
        // Chaos: slow-disk / straggler multipliers keyed on when the op
        // *starts* (queued ops picked up inside a window are slowed even
        // if submitted before it). The metrics below see the degraded
        // value — exactly what a real benchmark would measure.
        let svc = svc * self.chaos.disk_factor(now, dev, &mut self.chaos_rng);
        self.disks[dev].current = Some((proc, kind));
        self.metrics.disk_service(dev as u16, kind, svc);
        self.metrics.op_sample(kind, svc, true);
        self.emit(SimTelemetry::Op {
            at: attr_time,
            device: dev as u16,
            kind,
            latency: svc,
            was_miss: true,
        });
        self.cal.schedule_in(svc, Ev::DiskDone { dev: dev as u16 });
    }

    fn on_disk_done(&mut self, now: f64, dev: usize) {
        let (proc, _kind) = self.disks[dev]
            .current
            .take()
            .expect("disk finished while idle");
        if let Some((next_proc, next_kind, next_attr)) = self.disks[dev].queue.pop_front() {
            self.start_disk_op(now, dev, next_proc, next_kind, next_attr);
        }
        self.stage_complete(now, dev, proc as usize);
    }

    /// Advances the current operation of a backend process after a stage
    /// (CPU timer or disk visit) completes.
    fn stage_complete(&mut self, now: f64, dev: usize, proc: usize) {
        let exec = self.procs[dev][proc]
            .exec
            .take()
            .expect("stage completed on idle process");
        match exec {
            Exec::Accept => {
                match self.cfg.accept_mode {
                    AcceptMode::PerConnection => {
                        // Serve exactly the oldest pooled connection; a
                        // connection whose coded read already completed is
                        // closed without handling.
                        if let Some(mut req) = self.procs[dev][proc].pool.pop_front() {
                            if self.fj_cancelled(&req) {
                                self.metrics.coded_cancel();
                            } else {
                                let wta = now - req.pool_enter;
                                self.metrics.wta(dev as u16, wta);
                                req.wta = wta;
                                req.be_enqueue = now;
                                self.procs[dev][proc].queue.push_back(Op::Handle(req));
                            }
                        }
                    }
                    AcceptMode::Batched => {
                        // Batch-accept every pooled connection.
                        let pool = std::mem::take(&mut self.procs[dev][proc].pool);
                        self.procs[dev][proc].accept_pending = false;
                        for mut req in pool {
                            if self.fj_cancelled(&req) {
                                self.metrics.coded_cancel();
                                continue;
                            }
                            let wta = now - req.pool_enter;
                            self.metrics.wta(dev as u16, wta);
                            req.wta = wta;
                            req.be_enqueue = now;
                            self.procs[dev][proc].queue.push_back(Op::Handle(req));
                        }
                    }
                }
                self.finish_op(now, dev, proc);
            }
            Exec::Handle { req, stage } => {
                // Lazy cancellation at stage boundaries: a coded sub-request
                // whose read completed elsewhere finishes the stage it was
                // in (the CPU/disk time is already spent) but advances no
                // further — in particular it issues no more disk reads.
                if stage != HandleStage::Data && self.fj_cancelled(&req) {
                    self.metrics.coded_cancel();
                    self.finish_op(now, dev, proc);
                    return;
                }
                self.advance_handle(now, dev, proc, req, stage);
            }
            Exec::Chunk {
                object,
                chunk_idx,
                remaining,
                arrival,
            } => {
                if remaining > 1 {
                    self.cal.schedule_in(
                        self.net_time,
                        Ev::NetDone {
                            dev: dev as u16,
                            proc: proc as u16,
                            object,
                            chunk_idx: chunk_idx + 1,
                            remaining: remaining - 1,
                            arrival,
                        },
                    );
                }
                self.finish_op(now, dev, proc);
            }
        }
    }

    /// Moves a handle operation to its next stage after the previous one
    /// completed (the body of [`Self::stage_complete`]'s handle arm).
    fn advance_handle(
        &mut self,
        now: f64,
        dev: usize,
        proc: usize,
        req: Request,
        stage: HandleStage,
    ) {
        match stage {
            HandleStage::Parse => {
                self.procs[dev][proc].exec = Some(Exec::Handle {
                    req,
                    stage: HandleStage::Index,
                });
                self.start_disk_stage(
                    now,
                    req.arrival,
                    dev,
                    proc,
                    DiskOpKind::Index,
                    req.object,
                    0,
                );
            }
            HandleStage::Index => {
                self.procs[dev][proc].exec = Some(Exec::Handle {
                    req,
                    stage: HandleStage::Meta,
                });
                self.start_disk_stage(now, req.arrival, dev, proc, DiskOpKind::Meta, req.object, 0);
            }
            HandleStage::Meta => {
                self.procs[dev][proc].exec = Some(Exec::Handle {
                    req,
                    stage: HandleStage::Data,
                });
                self.start_disk_stage(now, req.arrival, dev, proc, DiskOpKind::Data, req.object, 0);
            }
            HandleStage::Data => {
                // First chunk read: the response starts now (Eq. 1).
                // With retries, only the first attempt to respond counts
                // (later attempts are wasted work, as in real Swift).
                let mut record = if req.id != u32::MAX {
                    let state = &mut self.req_states[req.id as usize];
                    let first = !state.completed;
                    state.completed = true;
                    first
                } else {
                    true
                };
                // Coded join: only the k-th sub-request completion starts
                // the logical response. Earlier completions are silent
                // progress; a straggler that finished after the join (its
                // data read was already on disk when the read completed)
                // counts as finished work but transmits nothing further.
                let mut skip_chunks = false;
                if req.fj != u32::MAX {
                    self.metrics.coded_finish();
                    let st = &mut self.fj_states[req.fj as usize];
                    if st.done {
                        record = false;
                        skip_chunks = true;
                    } else {
                        st.needed -= 1;
                        if st.needed == 0 {
                            st.done = true;
                            // Never-launched deferred spares die with the
                            // join; pooled/queued stragglers are cancelled
                            // lazily at their next scheduling point.
                            st.reserve.clear();
                        } else {
                            record = false;
                        }
                    }
                }
                if record {
                    self.metrics.complete(CompletedRequest {
                        arrival: req.arrival,
                        latency: now - req.arrival,
                        be_latency: now - req.be_enqueue,
                        wta: req.wta,
                        device: dev as u16,
                    });
                    self.emit(SimTelemetry::Completed {
                        arrival: req.arrival,
                        completed_at: now,
                        latency: now - req.arrival,
                        device: dev as u16,
                    });
                }
                let chunks = self.cfg.chunks_for(req.size);
                if chunks > 1 && !skip_chunks {
                    self.cal.schedule_in(
                        self.net_time,
                        Ev::NetDone {
                            dev: dev as u16,
                            proc: proc as u16,
                            object: req.object,
                            chunk_idx: 1,
                            remaining: chunks - 1,
                            arrival: req.arrival,
                        },
                    );
                }
                self.finish_op(now, dev, proc);
            }
        }
    }

    /// Frontend timeout: if the request has not started its response, send
    /// another copy to a different replica (Swift-style retry).
    fn on_timeout(&mut self, now: f64, req_id: u32) {
        let state = self.req_states[req_id as usize];
        if state.completed {
            return;
        }
        self.metrics.retry();
        let retry = Request {
            arrival: state.arrival,
            object: state.object,
            size: state.size,
            device: u16::MAX,
            pool_enter: 0.0,
            be_enqueue: 0.0,
            wta: 0.0,
            id: req_id,
            fj: u32::MAX,
        };
        self.route_to_backend(now, retry);
    }

    fn finish_op(&mut self, now: f64, dev: usize, proc: usize) {
        self.procs[dev][proc].busy = false;
        self.procs[dev][proc].exec = None;
        self.pump(now, dev, proc);
    }
}

fn sample(d: &DynService, rng: &mut SmallRng) -> f64 {
    cos_distr::Distribution::sample(&**d, rng)
}

/// Convenience: build, run, and return metrics in one call.
pub fn run_simulation(
    cfg: ClusterConfig,
    metrics_config: MetricsConfig,
    trace: impl IntoIterator<Item = TraceEvent>,
) -> Metrics {
    Simulation::new(cfg, metrics_config).run(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use cos_distr::Degenerate;
    use std::sync::Arc;

    /// A small trace of evenly spaced single-chunk requests.
    fn sparse_trace(n: usize, gap: f64, size: u32) -> Vec<TraceEvent> {
        (0..n)
            .map(|i| TraceEvent {
                at: i as f64 * gap,
                object: (i % 500) as u32,
                size,
            })
            .collect()
    }

    fn quiet_config() -> ClusterConfig {
        ClusterConfig {
            cache: CacheConfig::Bernoulli {
                index_miss: 0.0,
                meta_miss: 0.0,
                data_miss: 0.0,
            },
            ..ClusterConfig::paper_s1()
        }
    }

    fn mcfg(horizon: f64) -> MetricsConfig {
        MetricsConfig {
            slas: vec![0.010, 0.050, 0.100],
            windows: vec![(0.0, horizon, 0.0)],
            collect_raw: true,
            op_sample_stride: 1,
        }
    }

    #[test]
    fn every_request_completes() {
        let m = run_simulation(quiet_config(), mcfg(1e9), sparse_trace(500, 0.01, 1000));
        assert_eq!(m.completed(), 500);
        assert_eq!(m.raw().len(), 500);
    }

    #[test]
    fn unloaded_latency_is_sum_of_parse_costs() {
        // All cache hits, spaced arrivals: latency = parse_fe + accept_cost
        // + parse_be + 3 × mem_latency.
        let cfg = quiet_config();
        let mem = cfg.mem_latency;
        let want = 0.0003 + cfg.accept_cost + 0.0005 + 3.0 * mem;
        let m = run_simulation(cfg, mcfg(1e9), sparse_trace(100, 0.5, 1000));
        for r in m.raw() {
            assert!(
                (r.latency - want).abs() < 1e-9,
                "latency {} want {want}",
                r.latency
            );
            assert!((r.be_latency - (0.0005 + 3.0 * mem)).abs() < 1e-9);
        }
    }

    #[test]
    fn disk_misses_lengthen_latency() {
        let mut cfg = quiet_config();
        cfg.cache = CacheConfig::Bernoulli {
            index_miss: 1.0,
            meta_miss: 1.0,
            data_miss: 1.0,
        };
        // Deterministic disk for exactness.
        cfg.disk.index = Arc::new(Degenerate::new(0.010));
        cfg.disk.meta = Arc::new(Degenerate::new(0.008));
        cfg.disk.data = Arc::new(Degenerate::new(0.014));
        let accept = ClusterConfig::paper_s1().accept_cost;
        let m = run_simulation(cfg, mcfg(1e9), sparse_trace(50, 0.5, 1000));
        let want = 0.0003 + accept + 0.0005 + 0.010 + 0.008 + 0.014;
        for r in m.raw() {
            assert!((r.latency - want).abs() < 1e-9, "latency {}", r.latency);
        }
        // Ground-truth miss ratios are 1.
        for d in &m.devices {
            if d.requests > 0 {
                assert_eq!(d.miss_ratio(DiskOpKind::Index), Some(1.0));
            }
        }
    }

    #[test]
    fn multi_chunk_objects_issue_extra_data_reads() {
        let mut cfg = quiet_config();
        cfg.cache = CacheConfig::Bernoulli {
            index_miss: 0.0,
            meta_miss: 0.0,
            data_miss: 1.0,
        };
        // 4-chunk objects.
        let size = 4 * cfg.chunk_size;
        let m = run_simulation(cfg, mcfg(1e9), sparse_trace(50, 0.5, size));
        let total_data: u64 = m.devices.iter().map(|d| d.data_ops).sum();
        assert_eq!(total_data, 200, "4 chunk reads per request");
        let total_requests: u64 = m.devices.iter().map(|d| d.requests).sum();
        assert_eq!(total_requests, 50);
        // Response latency includes only the FIRST chunk read.
        for r in m.raw() {
            assert!(
                r.latency < 0.2,
                "latency should not include trailing chunks"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_simulation(quiet_config(), mcfg(1e9), sparse_trace(200, 0.01, 1000));
        let b = run_simulation(quiet_config(), mcfg(1e9), sparse_trace(200, 0.01, 1000));
        assert_eq!(a.raw(), b.raw());
        let mut other = quiet_config();
        other.seed = 999;
        let c = run_simulation(other, mcfg(1e9), sparse_trace(200, 0.01, 1000));
        assert_ne!(a.raw(), c.raw());
    }

    #[test]
    fn wta_is_zero_when_unloaded_and_positive_under_load() {
        // Spaced arrivals: the accept op runs on an idle queue, so WTA is
        // exactly its own service cost.
        let quiet = run_simulation(quiet_config(), mcfg(1e9), sparse_trace(100, 0.5, 1000));
        let accept = ClusterConfig::paper_s1().accept_cost;
        for d in quiet.devices.iter().filter(|d| d.wta_count > 0) {
            let wta = d.mean_wta().unwrap();
            assert!((wta - accept).abs() < 1e-9, "unloaded WTA {wta}");
        }

        // Loaded: all-miss cache and tight arrivals → accept queues behind
        // disk-bound operations.
        let mut cfg = quiet_config();
        cfg.cache = CacheConfig::Bernoulli {
            index_miss: 1.0,
            meta_miss: 1.0,
            data_miss: 1.0,
        };
        let loaded = run_simulation(cfg, mcfg(1e9), sparse_trace(2000, 0.005, 1000));
        let loaded_wta = loaded
            .devices
            .iter()
            .filter_map(|d| d.mean_wta())
            .fold(0.0f64, f64::max);
        assert!(loaded_wta > 1e-4, "loaded WTA {loaded_wta}");
    }

    #[test]
    fn sla_counting_matches_raw_records() {
        let m = run_simulation(quiet_config(), mcfg(1e9), sparse_trace(300, 0.01, 1000));
        let sla = 0.010;
        let manual =
            m.raw().iter().filter(|r| r.latency <= sla).count() as f64 / m.raw().len() as f64;
        assert!((m.observed_fraction(0, 0).unwrap() - manual).abs() < 1e-12);
    }

    #[test]
    fn requests_spread_over_devices() {
        let m = run_simulation(quiet_config(), mcfg(1e9), sparse_trace(4000, 0.002, 1000));
        for d in &m.devices {
            let share = d.requests as f64 / 4000.0;
            assert!((share - 0.25).abs() < 0.08, "device share {share}");
        }
    }

    #[test]
    fn generous_timeout_changes_nothing() {
        let mut with = quiet_config();
        with.timeout_retry = Some(crate::config::TimeoutRetry {
            timeout: 10.0,
            max_retries: 2,
        });
        let a = run_simulation(with, mcfg(1e9), sparse_trace(300, 0.01, 1000));
        let b = run_simulation(quiet_config(), mcfg(1e9), sparse_trace(300, 0.01, 1000));
        assert_eq!(a.retries(), 0);
        assert_eq!(a.completed(), b.completed());
        // Same latency distribution (identical seeds and routing decisions).
        assert_eq!(a.raw().len(), b.raw().len());
    }

    #[test]
    fn tight_timeouts_cause_retries_without_double_counting() {
        // All-miss cache + tight arrivals + 20 ms timeout: many first
        // attempts exceed the timeout.
        let mut cfg = quiet_config();
        cfg.cache = CacheConfig::Bernoulli {
            index_miss: 1.0,
            meta_miss: 1.0,
            data_miss: 1.0,
        };
        cfg.timeout_retry = Some(crate::config::TimeoutRetry {
            timeout: 0.020,
            max_retries: 2,
        });
        let n = 1500;
        let m = run_simulation(cfg, mcfg(1e9), sparse_trace(n, 0.004, 1000));
        assert!(
            m.retries() > 50,
            "expected retries under overload, got {}",
            m.retries()
        );
        // Every logical request is recorded exactly once.
        assert_eq!(m.completed(), n as u64);
        assert_eq!(m.raw().len(), n);
        // Retries add load: total routed requests exceed logical requests.
        let routed: u64 = m.devices.iter().map(|d| d.requests).sum();
        assert_eq!(routed, n as u64 + m.retries());
    }

    #[test]
    fn retries_can_beat_a_slow_replica() {
        // One pathologically slow device: with retries, tail latency
        // improves because the retry lands on a healthy replica.
        let mut slow_disk = quiet_config();
        slow_disk.cache = CacheConfig::Bernoulli {
            index_miss: 1.0,
            meta_miss: 1.0,
            data_miss: 1.0,
        };
        slow_disk.device_overrides = vec![crate::config::DeviceOverride {
            device: 0,
            disk: Some(crate::config::DiskProfile {
                index: Arc::new(Degenerate::new(0.5)),
                meta: Arc::new(Degenerate::new(0.5)),
                data: Arc::new(Degenerate::new(0.5)),
            }),
            cache: None,
        }];
        let without = run_simulation(slow_disk.clone(), mcfg(1e9), sparse_trace(400, 0.05, 1000));
        let mut with = slow_disk;
        with.timeout_retry = Some(crate::config::TimeoutRetry {
            timeout: 0.2,
            max_retries: 2,
        });
        let with = run_simulation(with, mcfg(1e9), sparse_trace(400, 0.05, 1000));
        let p99 = |m: &crate::metrics::Metrics| {
            let mut lats: Vec<f64> = m.raw().iter().map(|r| r.latency).collect();
            cos_stats::exact_percentile(&mut lats, 0.99)
        };
        assert!(with.retries() > 0);
        assert!(
            p99(&with) < p99(&without),
            "retry p99 {} must beat no-retry p99 {}",
            p99(&with),
            p99(&without)
        );
    }

    #[test]
    fn telemetry_stream_matches_metrics() {
        let mut cfg = quiet_config();
        cfg.cache = CacheConfig::Bernoulli {
            index_miss: 0.4,
            meta_miss: 0.3,
            data_miss: 0.5,
        };
        let (tx, rx) = std::sync::mpsc::channel();
        let m = Simulation::new(cfg, mcfg(1e9))
            .with_telemetry(Box::new(tx))
            .run(sparse_trace(300, 0.02, 1000));
        let events: Vec<SimTelemetry> = rx.try_iter().collect();

        let count =
            |f: &dyn Fn(&SimTelemetry) -> bool| events.iter().filter(|e| f(e)).count() as u64;
        assert_eq!(
            count(&|e| matches!(e, SimTelemetry::Completed { .. })),
            m.completed()
        );
        let routed: u64 = m.devices.iter().map(|d| d.requests).sum();
        assert_eq!(count(&|e| matches!(e, SimTelemetry::Routed { .. })), routed);
        let data_ops: u64 = m.devices.iter().map(|d| d.data_ops).sum();
        assert_eq!(
            count(&|e| matches!(e, SimTelemetry::DataRead { .. })),
            data_ops
        );
        let all_ops: u64 = m
            .devices
            .iter()
            .map(|d| d.index_ops + d.meta_ops + d.data_ops)
            .sum();
        assert_eq!(count(&|e| matches!(e, SimTelemetry::Op { .. })), all_ops);
        let misses: u64 = m
            .devices
            .iter()
            .map(|d| d.index_miss + d.meta_miss + d.data_miss)
            .sum();
        assert_eq!(
            count(&|e| matches!(e, SimTelemetry::Op { was_miss: true, .. })),
            misses
        );

        // Completion latencies agree with the raw records.
        let mut tel_lat: Vec<f64> = events
            .iter()
            .filter_map(|e| match e {
                SimTelemetry::Completed { latency, .. } => Some(*latency),
                _ => None,
            })
            .collect();
        let mut raw_lat: Vec<f64> = m.raw().iter().map(|r| r.latency).collect();
        tel_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        raw_lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(tel_lat, raw_lat);
    }

    #[test]
    fn telemetry_off_is_the_default_and_identical() {
        let a = run_simulation(quiet_config(), mcfg(1e9), sparse_trace(100, 0.01, 1000));
        let b = Simulation::new(quiet_config(), mcfg(1e9))
            .with_telemetry(Box::new(|_e: SimTelemetry| {}))
            .run(sparse_trace(100, 0.01, 1000));
        assert_eq!(a.raw(), b.raw());
    }

    #[test]
    fn empty_chaos_schedule_is_bit_identical() {
        let plain = run_simulation(quiet_config(), mcfg(1e9), sparse_trace(200, 0.01, 1000));
        let chaos = Simulation::new(quiet_config(), mcfg(1e9))
            .with_chaos(crate::chaos::ChaosSchedule::none())
            .run(sparse_trace(200, 0.01, 1000));
        assert_eq!(plain.raw(), chaos.raw());
    }

    #[test]
    fn chaos_runs_are_deterministic_given_seed() {
        let schedule = crate::chaos::ChaosSchedule {
            faults: vec![
                crate::chaos::Fault::Straggler {
                    device: 1,
                    prob: 0.5,
                    factor: 8.0,
                    from: 0.0,
                    until: 5.0,
                },
                crate::chaos::Fault::Burst {
                    multiplier: 1.5,
                    from: 1.0,
                    until: 2.0,
                },
            ],
        };
        let mut cfg = quiet_config();
        cfg.cache = CacheConfig::Bernoulli {
            index_miss: 0.5,
            meta_miss: 0.5,
            data_miss: 0.5,
        };
        let run = |cfg: ClusterConfig| {
            Simulation::new(cfg, mcfg(1e9))
                .with_chaos(schedule.clone())
                .run(sparse_trace(400, 0.01, 1000))
        };
        let a = run(cfg.clone());
        let b = run(cfg);
        assert_eq!(a.raw(), b.raw());
        assert_eq!(a.completed(), b.completed());
    }

    #[test]
    fn slow_disk_fault_raises_latency_inside_its_window() {
        // All-miss cache with deterministic disks: outside the window every
        // unloaded request costs the same; inside, disk ops take 20×.
        let mut cfg = quiet_config();
        cfg.cache = CacheConfig::Bernoulli {
            index_miss: 1.0,
            meta_miss: 1.0,
            data_miss: 1.0,
        };
        cfg.disk.index = Arc::new(Degenerate::new(0.002));
        cfg.disk.meta = Arc::new(Degenerate::new(0.002));
        cfg.disk.data = Arc::new(Degenerate::new(0.003));
        let m = Simulation::new(cfg, mcfg(1e9))
            .with_chaos(crate::chaos::ChaosSchedule::single(
                crate::chaos::Fault::SlowDisk {
                    device: None,
                    factor: 20.0,
                    from: 1.0,
                    until: 2.0,
                },
            ))
            .run(sparse_trace(300, 0.01, 1000));
        let mean = |lo: f64, hi: f64| {
            let lats: Vec<f64> = m
                .raw()
                .iter()
                .filter(|r| r.arrival >= lo && r.arrival < hi)
                .map(|r| r.latency)
                .collect();
            assert!(!lats.is_empty());
            lats.iter().sum::<f64>() / lats.len() as f64
        };
        let before = mean(0.0, 0.9);
        let during = mean(1.1, 1.9);
        let after = mean(2.1, 3.0);
        assert!(
            during > 5.0 * before,
            "in-window mean {during} vs before {before}"
        );
        assert!(after < 2.0 * before, "recovered mean {after} vs {before}");
    }

    #[test]
    fn device_loss_starves_the_lost_device() {
        let baseline = run_simulation(quiet_config(), mcfg(1e9), sparse_trace(400, 0.01, 1000));
        assert!(baseline.devices[0].requests > 0, "device 0 normally routed");
        let m = Simulation::new(quiet_config(), mcfg(1e9))
            .with_chaos(crate::chaos::ChaosSchedule::single(
                crate::chaos::Fault::DeviceLoss {
                    device: 0,
                    from: 0.0,
                    until: 1e9,
                },
            ))
            .run(sparse_trace(400, 0.01, 1000));
        assert_eq!(m.devices[0].requests, 0, "lost device gets no requests");
        let routed: u64 = m.devices.iter().map(|d| d.requests).sum();
        assert_eq!(routed, 400, "survivors absorb the full load");
        assert_eq!(m.completed(), 400);
    }

    #[test]
    fn bursts_multiply_arrivals_and_completions() {
        // Integer multiplier → exactly multiplier − 1 injected copies per
        // trace arrival inside the window, no Bernoulli draw needed.
        let m = Simulation::new(quiet_config(), mcfg(1e9))
            .with_chaos(crate::chaos::ChaosSchedule::single(
                crate::chaos::Fault::Burst {
                    multiplier: 3.0,
                    from: 0.0,
                    until: 1e9,
                },
            ))
            .run(sparse_trace(200, 0.01, 1000));
        assert_eq!(m.completed(), 600, "3× arrivals, all completed");
    }

    #[test]
    fn op_samples_split_by_threshold() {
        let mut cfg = quiet_config();
        cfg.cache = CacheConfig::Bernoulli {
            index_miss: 0.5,
            meta_miss: 0.5,
            data_miss: 0.5,
        };
        let m = run_simulation(cfg, mcfg(1e9), sparse_trace(1000, 0.05, 1000));
        let threshold = 0.000015; // the paper's 0.015 ms
        for s in m.op_samples() {
            assert_eq!(s.was_miss, s.latency > threshold, "sample {s:?}");
        }
        assert!(!m.op_samples().is_empty());
    }

    fn coded_config(n: usize, k: usize, policy: RedundancyPolicy) -> ClusterConfig {
        ClusterConfig {
            devices: n.max(4),
            coding: Some(crate::config::CodingConfig { n, k, policy }),
            ..quiet_config()
        }
    }

    #[test]
    fn coded_unloaded_read_completes_once_at_parse_cost() {
        // (4,2) without redundancy: both chunk reads run in parallel on
        // idle devices, so the k-th completion lands at the same instant a
        // replicated GET would — and exactly one logical record is kept.
        let cfg = coded_config(4, 2, RedundancyPolicy::KOnly);
        let want = 0.0003 + cfg.accept_cost + 0.0005 + 3.0 * cfg.mem_latency;
        let n = 200;
        let m = run_simulation(cfg, mcfg(1e9), sparse_trace(n, 0.5, 1000));
        assert_eq!(m.completed(), n as u64);
        assert_eq!(m.raw().len(), n);
        for r in m.raw() {
            assert!((r.latency - want).abs() < 1e-9, "latency {}", r.latency);
        }
        // k-only: every launched sub-request is needed, nothing cancels.
        assert_eq!(m.coded_launched(), 2 * n as u64);
        assert_eq!(m.coded_finished(), 2 * n as u64);
        assert_eq!(m.coded_cancelled(), 0);
    }

    #[test]
    fn eager_redundancy_cancels_stragglers_without_leaks() {
        let mut cfg = coded_config(4, 2, RedundancyPolicy::Eager);
        cfg.cache = CacheConfig::Bernoulli {
            index_miss: 1.0,
            meta_miss: 1.0,
            data_miss: 1.0,
        };
        let n = 600;
        let m = run_simulation(cfg, mcfg(1e9), sparse_trace(n, 0.02, 1000));
        assert_eq!(m.completed(), n as u64);
        assert_eq!(m.coded_launched(), 4 * n as u64);
        // Op conservation after the drain: every launched sub-request
        // either ran its data read or was cancelled, never both or neither.
        assert_eq!(m.coded_launched(), m.coded_finished() + m.coded_cancelled());
        assert!(
            m.coded_cancelled() > 0,
            "disk-bound stragglers should be cancelled under load"
        );
    }

    #[test]
    fn deferred_spares_launch_only_when_the_read_is_slow() {
        // Generous delay on an unloaded cluster: reads finish in ~1.3 ms,
        // far below the deadline, so no spare is ever launched.
        let quiet = coded_config(4, 2, RedundancyPolicy::Deferred { delay: 1.0 });
        let n = 200;
        let m = run_simulation(quiet, mcfg(1e9), sparse_trace(n, 0.5, 1000));
        assert_eq!(m.coded_launched(), 2 * n as u64, "no deferred launches");
        assert_eq!(m.coded_cancelled(), 0);

        // Tight deadline on a disk-bound cluster: spares do launch, and
        // conservation still holds through the cancellations they cause.
        let mut slow = coded_config(4, 2, RedundancyPolicy::Deferred { delay: 0.002 });
        slow.cache = CacheConfig::Bernoulli {
            index_miss: 1.0,
            meta_miss: 1.0,
            data_miss: 1.0,
        };
        let m = run_simulation(slow, mcfg(1e9), sparse_trace(n, 0.05, 1000));
        assert_eq!(m.completed(), n as u64);
        assert!(
            m.coded_launched() > 2 * n as u64,
            "slow reads must trigger deferred spares, launched {}",
            m.coded_launched()
        );
        assert!(m.coded_launched() <= 4 * n as u64);
        assert_eq!(m.coded_launched(), m.coded_finished() + m.coded_cancelled());
    }

    #[test]
    fn coded_runs_are_deterministic_given_seed() {
        let trace = sparse_trace(400, 0.01, 1000);
        let cfg = || coded_config(6, 4, RedundancyPolicy::Eager);
        let a = run_simulation(cfg(), mcfg(1e9), trace.clone());
        let b = run_simulation(cfg(), mcfg(1e9), trace.clone());
        assert_eq!(a.raw(), b.raw());
        assert_eq!(a.coded_cancelled(), b.coded_cancelled());
        let mut other = cfg();
        other.seed = 999;
        let c = run_simulation(other, mcfg(1e9), trace);
        assert_ne!(a.raw(), c.raw());
    }

    #[test]
    fn eager_beats_k_only_under_disk_load() {
        // The point of redundant requests: at moderate disk-bound load the
        // k-of-n join of n launches has a lighter tail than the k-of-k.
        // (The rate matters: eager redundancy adds 50% device load here, so
        // at high utilization the extra queueing would swamp the gain.)
        let mut konly = coded_config(6, 4, RedundancyPolicy::KOnly);
        konly.cache = CacheConfig::Bernoulli {
            index_miss: 1.0,
            meta_miss: 1.0,
            data_miss: 1.0,
        };
        let mut eager = konly.clone();
        eager.coding = Some(crate::config::CodingConfig {
            n: 6,
            k: 4,
            policy: RedundancyPolicy::Eager,
        });
        let trace = sparse_trace(1200, 0.1, 1000);
        let mk = run_simulation(konly, mcfg(1e9), trace.clone());
        let me = run_simulation(eager, mcfg(1e9), trace);
        let p99 = |m: &Metrics| {
            let mut lat: Vec<f64> = m.raw().iter().map(|r| r.latency).collect();
            cos_stats::exact_percentile(&mut lat, 0.99)
        };
        assert!(
            p99(&me) < p99(&mk),
            "eager p99 {} should beat k-only p99 {}",
            p99(&me),
            p99(&mk)
        );
    }
}
