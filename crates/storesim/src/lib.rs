//! # cos-storesim
//!
//! A discrete-event simulator of an event-driven, two-tier cloud object
//! storage system — the substitute for the paper's OpenStack Swift testbed
//! (§V-A). See `DESIGN.md` §2 for the substitution argument: the analytic
//! model's claims are about queueing mechanics (FCFS operation interleaving,
//! batched `accept()`, disk blocking, chunked reads), all of which the
//! simulator reproduces mechanistically.
//!
//! * [`config`] — cluster configuration with paper-scenario presets;
//! * [`cache`] — Bernoulli and capacity-bounded LRU backend caches;
//! * [`sim`] — the event loop;
//! * [`fleet`] — deterministic tenant-tagged telemetry streams at fleet
//!   scale, feeding `cos-serve`'s per-tenant estimator shards;
//! * [`chaos`] — seed-deterministic fault injection (slow disks,
//!   stragglers, device loss, arrival bursts) for control-loop tests;
//! * [`metrics`] — SLA accounting per rate window plus the online metrics of
//!   §IV-B (arrival rates, miss ratios, disk service sums, WTA samples);
//! * [`telemetry`] — the live per-event export stream an online prediction
//!   service (`cos-serve`) ingests;
//! * [`calibration`] — the benchmarking rigs of §IV-A (disk and parse).

#![warn(missing_docs)]

pub mod cache;
pub mod calibration;
pub mod chaos;
pub mod config;
pub mod fleet;
pub mod metrics;
pub mod sim;
pub mod telemetry;

pub use cache::{BernoulliCache, Cache, Lookup, LruCache};
pub use calibration::{benchmark_disk, benchmark_parse, DiskBenchmark, ParseBenchmark};
pub use chaos::{ChaosSchedule, Fault};
pub use config::{
    AcceptMode, CacheConfig, ClusterConfig, CodingConfig, DeviceOverride, DiskOpKind, DiskProfile,
    RedundancyPolicy, TimeoutRetry,
};
pub use fleet::{FleetConfig, FleetScenario};
pub use metrics::{CompletedRequest, DeviceCounters, Metrics, MetricsConfig, OpSample};
pub use sim::{run_simulation, Simulation, PARTITIONS, REPLICAS};
pub use telemetry::{SimTelemetry, TelemetrySink};
