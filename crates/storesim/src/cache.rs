//! Backend cache models.
//!
//! The analytic model consumes *miss ratios*; the simulator provides two
//! sources for them. [`BernoulliCache`] applies configured per-kind miss
//! probabilities directly (scenario presets). [`LruCache`] is a real
//! capacity-bounded LRU over index entries, metadata entries, and data
//! chunks, so miss ratios *emerge* from the Zipf access pattern — this is
//! what the latency-threshold estimator of §IV-B is calibrated against
//! (ablation A3).

use crate::config::{CacheConfig, DiskOpKind};
use cos_workload::ObjectId;
use rand::RngCore;
use std::collections::HashMap;

/// A cache lookup outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Served from memory (≈ 0 latency).
    Hit,
    /// Must visit the disk.
    Miss,
}

/// Cache behaviour shared by both models.
pub trait Cache: Send {
    /// Looks up `(kind, object, chunk)`; on `Miss` the caller will read from
    /// disk and the entry is inserted (read-through).
    fn access(
        &mut self,
        kind: DiskOpKind,
        object: ObjectId,
        chunk: u32,
        rng: &mut dyn RngCore,
    ) -> Lookup;
}

/// Bernoulli cache: independent miss coin-flips per kind.
#[derive(Debug, Clone)]
pub struct BernoulliCache {
    index_miss: f64,
    meta_miss: f64,
    data_miss: f64,
}

impl BernoulliCache {
    /// Creates a Bernoulli cache from per-kind miss ratios.
    pub fn new(index_miss: f64, meta_miss: f64, data_miss: f64) -> Self {
        for m in [index_miss, meta_miss, data_miss] {
            assert!(
                (0.0..=1.0).contains(&m),
                "miss ratio must be in [0,1], got {m}"
            );
        }
        BernoulliCache {
            index_miss,
            meta_miss,
            data_miss,
        }
    }
}

impl Cache for BernoulliCache {
    fn access(
        &mut self,
        kind: DiskOpKind,
        _object: ObjectId,
        _chunk: u32,
        rng: &mut dyn RngCore,
    ) -> Lookup {
        let miss = match kind {
            DiskOpKind::Index => self.index_miss,
            DiskOpKind::Meta => self.meta_miss,
            DiskOpKind::Data => self.data_miss,
        };
        if cos_distr::traits::unit(rng) < miss {
            Lookup::Miss
        } else {
            Lookup::Hit
        }
    }
}

/// Key of a cached entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct EntryKey {
    kind_tag: u8,
    object: ObjectId,
    chunk: u32,
}

/// Capacity-bounded LRU cache (intrusive list over a slab).
#[derive(Debug)]
pub struct LruCache {
    capacity: u64,
    used: u64,
    index_entry_bytes: u32,
    meta_entry_bytes: u32,
    chunk_bytes: u32,
    map: HashMap<EntryKey, usize>,
    // Slab of nodes forming a doubly linked list; head = most recent.
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: Option<usize>,
    tail: Option<usize>,
}

#[derive(Debug, Clone, Copy)]
struct Node {
    key: EntryKey,
    bytes: u32,
    prev: Option<usize>,
    next: Option<usize>,
}

impl LruCache {
    /// Creates an LRU cache.
    ///
    /// `chunk_bytes` is the cost charged per cached data chunk (the cluster's
    /// chunk size).
    ///
    /// # Panics
    /// Panics on a zero capacity or zero entry sizes.
    pub fn new(
        capacity: u64,
        index_entry_bytes: u32,
        meta_entry_bytes: u32,
        chunk_bytes: u32,
    ) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        assert!(index_entry_bytes > 0 && meta_entry_bytes > 0 && chunk_bytes > 0);
        LruCache {
            capacity,
            used: 0,
            index_entry_bytes,
            meta_entry_bytes,
            chunk_bytes,
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: None,
            tail: None,
        }
    }

    /// Builds from the cluster cache config.
    ///
    /// # Panics
    /// Panics if called with a non-LRU config.
    pub fn from_config(config: &CacheConfig, chunk_bytes: u32) -> Self {
        match config {
            CacheConfig::Lru {
                capacity_bytes,
                index_entry_bytes,
                meta_entry_bytes,
            } => LruCache::new(
                *capacity_bytes,
                *index_entry_bytes,
                *meta_entry_bytes,
                chunk_bytes,
            ),
            other => panic!("LruCache::from_config requires an Lru config, got {other:?}"),
        }
    }

    /// Bytes currently cached.
    pub fn used_bytes(&self) -> u64 {
        self.used
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn entry_bytes(&self, kind: DiskOpKind) -> u32 {
        match kind {
            DiskOpKind::Index => self.index_entry_bytes,
            DiskOpKind::Meta => self.meta_entry_bytes,
            DiskOpKind::Data => self.chunk_bytes,
        }
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        match prev {
            Some(p) => self.nodes[p].next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.nodes[n].prev = prev,
            None => self.tail = prev,
        }
        self.nodes[idx].prev = None;
        self.nodes[idx].next = None;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = None;
        self.nodes[idx].next = self.head;
        if let Some(h) = self.head {
            self.nodes[h].prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
    }

    fn evict_until_fits(&mut self, incoming: u32) {
        while self.used + incoming as u64 > self.capacity {
            let Some(t) = self.tail else { break };
            let node = self.nodes[t];
            self.detach(t);
            self.map.remove(&node.key);
            self.used -= node.bytes as u64;
            self.free.push(t);
        }
    }

    fn insert(&mut self, key: EntryKey, bytes: u32) {
        self.evict_until_fits(bytes);
        if bytes as u64 > self.capacity {
            // Entry larger than the whole cache: don't cache it.
            return;
        }
        let node = Node {
            key,
            bytes,
            prev: None,
            next: None,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = node;
                i
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.used += bytes as u64;
        self.push_front(idx);
    }
}

fn kind_tag(kind: DiskOpKind) -> u8 {
    match kind {
        DiskOpKind::Index => 0,
        DiskOpKind::Meta => 1,
        DiskOpKind::Data => 2,
    }
}

impl Cache for LruCache {
    fn access(
        &mut self,
        kind: DiskOpKind,
        object: ObjectId,
        chunk: u32,
        _rng: &mut dyn RngCore,
    ) -> Lookup {
        let key = EntryKey {
            kind_tag: kind_tag(kind),
            object,
            chunk,
        };
        if let Some(&idx) = self.map.get(&key) {
            self.detach(idx);
            self.push_front(idx);
            return Lookup::Hit;
        }
        let bytes = self.entry_bytes(kind);
        self.insert(key, bytes);
        Lookup::Miss
    }
}

/// Builds the per-device cache from the config.
pub fn build_cache(config: &CacheConfig, chunk_bytes: u32) -> Box<dyn Cache> {
    match config {
        CacheConfig::Bernoulli {
            index_miss,
            meta_miss,
            data_miss,
        } => Box::new(BernoulliCache::new(*index_miss, *meta_miss, *data_miss)),
        CacheConfig::Lru { .. } => Box::new(LruCache::from_config(config, chunk_bytes)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn bernoulli_ratios_converge() {
        let mut c = BernoulliCache::new(0.3, 0.0, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let misses = (0..n)
            .filter(|_| c.access(DiskOpKind::Index, 0, 0, &mut rng) == Lookup::Miss)
            .count();
        assert!((misses as f64 / n as f64 - 0.3).abs() < 0.01);
        assert_eq!(c.access(DiskOpKind::Meta, 0, 0, &mut rng), Lookup::Hit);
        assert_eq!(c.access(DiskOpKind::Data, 0, 0, &mut rng), Lookup::Miss);
    }

    #[test]
    fn lru_hits_after_insert() {
        let mut c = LruCache::new(10_000, 100, 100, 1000);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(c.access(DiskOpKind::Index, 1, 0, &mut rng), Lookup::Miss);
        assert_eq!(c.access(DiskOpKind::Index, 1, 0, &mut rng), Lookup::Hit);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used_bytes(), 100);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // Capacity for exactly two chunks.
        let mut c = LruCache::new(2000, 100, 100, 1000);
        let mut rng = SmallRng::seed_from_u64(3);
        c.access(DiskOpKind::Data, 1, 0, &mut rng); // miss, insert
        c.access(DiskOpKind::Data, 2, 0, &mut rng); // miss, insert
        c.access(DiskOpKind::Data, 1, 0, &mut rng); // hit → 1 is MRU
        c.access(DiskOpKind::Data, 3, 0, &mut rng); // evicts 2
        assert_eq!(c.access(DiskOpKind::Data, 2, 0, &mut rng), Lookup::Miss);
        // Inserting 2 evicted 1 (LRU after 3 was added)... verify 3 is hit.
        assert_eq!(c.access(DiskOpKind::Data, 3, 0, &mut rng), Lookup::Hit);
    }

    #[test]
    fn lru_distinguishes_kinds_and_chunks() {
        let mut c = LruCache::new(100_000, 10, 10, 100);
        let mut rng = SmallRng::seed_from_u64(4);
        c.access(DiskOpKind::Index, 7, 0, &mut rng);
        assert_eq!(c.access(DiskOpKind::Meta, 7, 0, &mut rng), Lookup::Miss);
        c.access(DiskOpKind::Data, 7, 0, &mut rng);
        assert_eq!(c.access(DiskOpKind::Data, 7, 1, &mut rng), Lookup::Miss);
        assert_eq!(c.access(DiskOpKind::Data, 7, 0, &mut rng), Lookup::Hit);
    }

    #[test]
    fn lru_zipf_workload_has_high_hit_ratio() {
        // With a cache big enough for the hot set, Zipf traffic mostly hits.
        let mut c = LruCache::new(1_000_000, 100, 100, 1000);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut catalog_rng = SmallRng::seed_from_u64(6);
        let catalog = cos_workload::Catalog::synthesize(
            &cos_workload::CatalogConfig {
                objects: 10_000,
                ..Default::default()
            },
            &mut catalog_rng,
        );
        let mut hits = 0;
        let n = 50_000;
        for _ in 0..n {
            let obj = catalog.sample(&mut rng);
            if c.access(DiskOpKind::Data, obj, 0, &mut rng) == Lookup::Hit {
                hits += 1;
            }
        }
        let ratio = hits as f64 / n as f64;
        assert!(ratio > 0.4, "hit ratio {ratio}");
    }

    #[test]
    fn oversized_entry_not_cached() {
        let mut c = LruCache::new(500, 100, 100, 1000);
        let mut rng = SmallRng::seed_from_u64(7);
        assert_eq!(c.access(DiskOpKind::Data, 1, 0, &mut rng), Lookup::Miss);
        assert_eq!(c.access(DiskOpKind::Data, 1, 0, &mut rng), Lookup::Miss);
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn used_bytes_never_exceeds_capacity() {
        let mut c = LruCache::new(5_000, 100, 150, 1000);
        let mut rng = SmallRng::seed_from_u64(8);
        for i in 0..1000u32 {
            let kind = match i % 3 {
                0 => DiskOpKind::Index,
                1 => DiskOpKind::Meta,
                _ => DiskOpKind::Data,
            };
            c.access(kind, i % 97, i % 5, &mut rng);
            assert!(c.used_bytes() <= 5_000);
        }
        assert!(!c.is_empty());
    }
}
