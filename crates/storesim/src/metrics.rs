//! Simulation measurement: SLA accounting per rate window, per-device online
//! metrics (§IV-B inputs), WTA samples, and optional raw records.
//!
//! The paper's system "counts the number of requests that meet or violate
//! the SLA for each storage device at both frontend and backend tiers for
//! each minute" and evaluates per 5-minute constant-rate windows; windows
//! here come straight from the workload's [`cos_workload::PhaseSchedule`].

use crate::config::DiskOpKind;

/// Configuration of what to measure.
#[derive(Debug, Clone)]
pub struct MetricsConfig {
    /// SLA latency bounds in seconds (paper: 10 ms, 50 ms, 100 ms).
    pub slas: Vec<f64>,
    /// Measured windows `(start, end, nominal rate)` in seconds.
    pub windows: Vec<(f64, f64, f64)>,
    /// Keep raw per-request records (arrival, total latency, backend
    /// latency, device).
    pub collect_raw: bool,
    /// Keep every `op_sample_stride`-th per-operation latency sample
    /// (0 disables).
    pub op_sample_stride: u64,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        MetricsConfig {
            slas: vec![0.010, 0.050, 0.100],
            windows: Vec::new(),
            collect_raw: false,
            op_sample_stride: 0,
        }
    }
}

/// A completed request (raw record).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedRequest {
    /// Arrival time at the frontend.
    pub arrival: f64,
    /// Frontend-measured response latency (arrival → backend starts
    /// responding), the paper's measurement point.
    pub latency: f64,
    /// Backend share: from the HTTP request entering the backend op queue to
    /// response start (the paper's `Dbp`).
    pub be_latency: f64,
    /// Waiting time for being accept()-ed.
    pub wta: f64,
    /// Serving device.
    pub device: u16,
}

/// One sampled backend operation (for the §IV-B threshold estimator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpSample {
    /// Operation kind.
    pub kind: DiskOpKind,
    /// Observed operation latency in seconds (memory hits are microseconds,
    /// disk misses are milliseconds).
    pub latency: f64,
    /// Ground truth: did this operation actually visit the disk?
    pub was_miss: bool,
}

/// Per-device counters for the online metrics of §IV-B.
#[derive(Debug, Clone, Default)]
pub struct DeviceCounters {
    /// HTTP requests routed to this device.
    pub requests: u64,
    /// Index lookups issued / missed.
    pub index_ops: u64,
    /// Index lookups that went to disk.
    pub index_miss: u64,
    /// Metadata reads issued.
    pub meta_ops: u64,
    /// Metadata reads that went to disk.
    pub meta_miss: u64,
    /// Data chunk reads issued (all chunks).
    pub data_ops: u64,
    /// Data chunk reads that went to disk.
    pub data_miss: u64,
    /// Total disk busy time (seconds).
    pub disk_busy: f64,
    /// Disk operations served.
    pub disk_ops: u64,
    /// Summed disk service time per kind `[index, meta, data]`.
    pub disk_service_sum: [f64; 3],
    /// Disk operations per kind.
    pub disk_kind_ops: [u64; 3],
    /// Summed waiting-time-for-accept over accepted connections.
    pub wta_sum: f64,
    /// Accepted connections.
    pub wta_count: u64,
    /// Maximum observed WTA.
    pub wta_max: f64,
}

impl DeviceCounters {
    /// Measured miss ratio of a kind (`None` with no operations).
    pub fn miss_ratio(&self, kind: DiskOpKind) -> Option<f64> {
        let (miss, ops) = match kind {
            DiskOpKind::Index => (self.index_miss, self.index_ops),
            DiskOpKind::Meta => (self.meta_miss, self.meta_ops),
            DiskOpKind::Data => (self.data_miss, self.data_ops),
        };
        if ops == 0 {
            None
        } else {
            Some(miss as f64 / ops as f64)
        }
    }

    /// Mean observed raw disk service time across kinds (what Linux's
    /// aggregate disk statistics would report).
    pub fn mean_disk_service(&self) -> Option<f64> {
        if self.disk_ops == 0 {
            None
        } else {
            Some(self.disk_service_sum.iter().sum::<f64>() / self.disk_ops as f64)
        }
    }

    /// Mean WTA (`None` with no accepted connections).
    pub fn mean_wta(&self) -> Option<f64> {
        if self.wta_count == 0 {
            None
        } else {
            Some(self.wta_sum / self.wta_count as f64)
        }
    }
}

fn kind_idx(kind: DiskOpKind) -> usize {
    match kind {
        DiskOpKind::Index => 0,
        DiskOpKind::Meta => 1,
        DiskOpKind::Data => 2,
    }
}

/// All measurements from one simulation run.
#[derive(Debug)]
pub struct Metrics {
    config: MetricsConfig,
    /// `[window][sla] → (met, total)`.
    window_counts: Vec<Vec<(u64, u64)>>,
    /// `[window][device] → requests arrived`.
    window_device_requests: Vec<Vec<u64>>,
    /// `[window][device] → data chunk reads issued`.
    window_device_data_ops: Vec<Vec<u64>>,
    /// Per-device counters over the whole run.
    pub devices: Vec<DeviceCounters>,
    raw: Vec<CompletedRequest>,
    op_samples: Vec<OpSample>,
    op_counter: u64,
    completed: u64,
    retries: u64,
    coded_launched: u64,
    coded_finished: u64,
    coded_cancelled: u64,
}

impl Metrics {
    /// Creates a metrics sink for `devices` storage devices.
    pub fn new(config: MetricsConfig, devices: usize) -> Self {
        let nw = config.windows.len();
        let ns = config.slas.len();
        Metrics {
            window_counts: vec![vec![(0, 0); ns]; nw],
            window_device_requests: vec![vec![0; devices]; nw],
            window_device_data_ops: vec![vec![0; devices]; nw],
            devices: vec![DeviceCounters::default(); devices],
            raw: Vec::new(),
            op_samples: Vec::new(),
            op_counter: 0,
            completed: 0,
            retries: 0,
            coded_launched: 0,
            coded_finished: 0,
            coded_cancelled: 0,
            config,
        }
    }

    /// The metrics configuration.
    pub fn config(&self) -> &MetricsConfig {
        &self.config
    }

    /// Window index containing time `t`.
    pub fn window_of(&self, t: f64) -> Option<usize> {
        self.config
            .windows
            .iter()
            .position(|&(s, e, _)| t >= s && t < e)
    }

    /// Records a completed request.
    pub fn complete(&mut self, rec: CompletedRequest) {
        self.completed += 1;
        if let Some(w) = self.window_of(rec.arrival) {
            for (i, &sla) in self.config.slas.iter().enumerate() {
                let (met, total) = &mut self.window_counts[w][i];
                if rec.latency <= sla {
                    *met += 1;
                }
                *total += 1;
            }
        }
        if self.config.collect_raw {
            self.raw.push(rec);
        }
    }

    /// Records a request being routed to a device (at frontend completion).
    pub fn route(&mut self, t: f64, device: u16) {
        self.devices[device as usize].requests += 1;
        if let Some(w) = self.window_of(t) {
            self.window_device_requests[w][device as usize] += 1;
        }
    }

    /// Records a cache access outcome for an operation.
    pub fn cache_access(&mut self, t: f64, device: u16, kind: DiskOpKind, miss: bool) {
        let d = &mut self.devices[device as usize];
        match kind {
            DiskOpKind::Index => {
                d.index_ops += 1;
                if miss {
                    d.index_miss += 1;
                }
            }
            DiskOpKind::Meta => {
                d.meta_ops += 1;
                if miss {
                    d.meta_miss += 1;
                }
            }
            DiskOpKind::Data => {
                d.data_ops += 1;
                if miss {
                    d.data_miss += 1;
                }
                if let Some(w) = self.window_of(t) {
                    self.window_device_data_ops[w][device as usize] += 1;
                }
            }
        }
    }

    /// Records a disk operation's sampled service time.
    pub fn disk_service(&mut self, device: u16, kind: DiskOpKind, service: f64) {
        let d = &mut self.devices[device as usize];
        d.disk_busy += service;
        d.disk_ops += 1;
        d.disk_service_sum[kind_idx(kind)] += service;
        d.disk_kind_ops[kind_idx(kind)] += 1;
    }

    /// Records one operation latency sample (threshold-estimator input).
    pub fn op_sample(&mut self, kind: DiskOpKind, latency: f64, was_miss: bool) {
        if self.config.op_sample_stride == 0 {
            return;
        }
        self.op_counter += 1;
        if self.op_counter.is_multiple_of(self.config.op_sample_stride) {
            self.op_samples.push(OpSample {
                kind,
                latency,
                was_miss,
            });
        }
    }

    /// Records a waiting-time-for-accept sample.
    pub fn wta(&mut self, device: u16, wta: f64) {
        let d = &mut self.devices[device as usize];
        d.wta_sum += wta;
        d.wta_count += 1;
        d.wta_max = d.wta_max.max(wta);
    }

    /// Total completed requests.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Records a frontend timeout retry.
    pub fn retry(&mut self) {
        self.retries += 1;
    }

    /// Total frontend timeout retries issued.
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Records a coded sub-request entering a backend pool.
    pub fn coded_launch(&mut self) {
        self.coded_launched += 1;
    }

    /// Records a coded sub-request whose data read ran to completion
    /// (winners and losers alike).
    pub fn coded_finish(&mut self) {
        self.coded_finished += 1;
    }

    /// Records a coded sub-request dropped at a lazy-cancellation point.
    pub fn coded_cancel(&mut self) {
        self.coded_cancelled += 1;
    }

    /// Coded sub-requests launched. After a full drain,
    /// `coded_launched == coded_finished + coded_cancelled` — the
    /// op-conservation invariant the chaos regression asserts.
    pub fn coded_launched(&self) -> u64 {
        self.coded_launched
    }

    /// Coded sub-requests that ran their data read to completion.
    pub fn coded_finished(&self) -> u64 {
        self.coded_finished
    }

    /// Coded sub-requests cancelled before reading data.
    pub fn coded_cancelled(&self) -> u64 {
        self.coded_cancelled
    }

    /// Observed fraction of requests meeting `slas[sla_idx]` in window
    /// `window` (`None` for empty windows).
    pub fn observed_fraction(&self, window: usize, sla_idx: usize) -> Option<f64> {
        let (met, total) = *self.window_counts.get(window)?.get(sla_idx)?;
        if total == 0 {
            None
        } else {
            Some(met as f64 / total as f64)
        }
    }

    /// Requests routed to `device` during `window`.
    pub fn window_device_requests(&self, window: usize, device: usize) -> u64 {
        self.window_device_requests[window][device]
    }

    /// Data chunk reads issued for `device` during `window`.
    pub fn window_device_data_ops(&self, window: usize, device: usize) -> u64 {
        self.window_device_data_ops[window][device]
    }

    /// Raw per-request records (empty unless `collect_raw`).
    pub fn raw(&self) -> &[CompletedRequest] {
        &self.raw
    }

    /// Sampled operation latencies (empty unless `op_sample_stride > 0`).
    pub fn op_samples(&self) -> &[OpSample] {
        &self.op_samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> MetricsConfig {
        MetricsConfig {
            slas: vec![0.01, 0.1],
            windows: vec![(0.0, 10.0, 5.0), (10.0, 20.0, 10.0)],
            collect_raw: true,
            op_sample_stride: 1,
        }
    }

    fn rec(arrival: f64, latency: f64, device: u16) -> CompletedRequest {
        CompletedRequest {
            arrival,
            latency,
            be_latency: latency / 2.0,
            wta: 0.0,
            device,
        }
    }

    #[test]
    fn windows_partition_time() {
        let m = Metrics::new(config(), 2);
        assert_eq!(m.window_of(0.0), Some(0));
        assert_eq!(m.window_of(9.999), Some(0));
        assert_eq!(m.window_of(10.0), Some(1));
        assert_eq!(m.window_of(25.0), None);
    }

    #[test]
    fn sla_accounting_by_arrival_window() {
        let mut m = Metrics::new(config(), 2);
        m.complete(rec(1.0, 0.005, 0)); // meets both
        m.complete(rec(2.0, 0.05, 0)); // meets only 100ms
        m.complete(rec(15.0, 0.5, 1)); // meets none, window 1
        assert_eq!(m.observed_fraction(0, 0), Some(0.5));
        assert_eq!(m.observed_fraction(0, 1), Some(1.0));
        assert_eq!(m.observed_fraction(1, 0), Some(0.0));
        assert_eq!(m.completed(), 3);
        assert_eq!(m.raw().len(), 3);
    }

    #[test]
    fn out_of_window_requests_still_counted_globally() {
        let mut m = Metrics::new(config(), 1);
        m.complete(rec(100.0, 0.001, 0));
        assert_eq!(m.completed(), 1);
        assert_eq!(m.observed_fraction(0, 0), None);
    }

    #[test]
    fn device_counters_accumulate() {
        let mut m = Metrics::new(config(), 2);
        m.route(1.0, 1);
        m.cache_access(1.0, 1, DiskOpKind::Index, true);
        m.cache_access(1.0, 1, DiskOpKind::Index, false);
        m.cache_access(1.0, 1, DiskOpKind::Data, true);
        m.disk_service(1, DiskOpKind::Index, 0.012);
        m.disk_service(1, DiskOpKind::Data, 0.02);
        m.wta(1, 0.004);
        let d = &m.devices[1];
        assert_eq!(d.requests, 1);
        assert_eq!(d.miss_ratio(DiskOpKind::Index), Some(0.5));
        assert_eq!(d.miss_ratio(DiskOpKind::Data), Some(1.0));
        assert_eq!(d.miss_ratio(DiskOpKind::Meta), None);
        assert!((d.mean_disk_service().unwrap() - 0.016).abs() < 1e-12);
        assert_eq!(d.mean_wta(), Some(0.004));
        assert_eq!(m.window_device_requests(0, 1), 1);
        assert_eq!(m.window_device_data_ops(0, 1), 1);
    }

    #[test]
    fn op_sampling_respects_stride() {
        let mut cfg = config();
        cfg.op_sample_stride = 3;
        let mut m = Metrics::new(cfg, 1);
        for i in 0..9 {
            m.op_sample(DiskOpKind::Meta, i as f64, false);
        }
        assert_eq!(m.op_samples().len(), 3);
        let mut off = Metrics::new(
            MetricsConfig {
                op_sample_stride: 0,
                ..config()
            },
            1,
        );
        off.op_sample(DiskOpKind::Meta, 1.0, true);
        assert!(off.op_samples().is_empty());
    }
}
