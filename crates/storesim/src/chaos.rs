//! Fault injection for the simulated testbed.
//!
//! A [`ChaosSchedule`] is a list of [`Fault`]s, each active over a
//! half-open event-time window `[from, until)`. The simulator consults the
//! schedule at well-defined points — disk-op start, replica choice,
//! arrival — so faults perturb exactly the mechanism they name:
//!
//! * [`Fault::SlowDisk`] multiplies every disk service time of a device
//!   (or all devices) — a degraded spindle / RAID rebuild;
//! * [`Fault::Straggler`] multiplies a random *fraction* of a device's
//!   disk ops — intermittent tail-latency spikes;
//! * [`Fault::DeviceLoss`] removes a device from replica selection —
//!   requests fail over to surviving replicas, concentrating load;
//! * [`Fault::Burst`] multiplies the arrival process — a flash crowd.
//!
//! Chaos draws come from a **dedicated RNG stream** (`"chaos"`), so a run
//! with an empty schedule is bit-identical to a run built without
//! [`Simulation::with_chaos`](crate::Simulation::with_chaos) at all, and
//! any chaos run is reproducible from its seed. This is what lets the
//! repo-level control-loop test assert the *ordering* of drift detection,
//! anomaly scoring, and shedding deterministically per fault.

use rand::rngs::SmallRng;
use rand::Rng;

/// One injected fault, active over the event-time window `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Multiply every disk service time sampled on `device` (all devices
    /// when `None`) by `factor` (> 1 slows, < 1 would speed up).
    SlowDisk {
        /// Affected device, or `None` for every device.
        device: Option<usize>,
        /// Service-time multiplier (must be finite and positive).
        factor: f64,
        /// Window start (event time, inclusive).
        from: f64,
        /// Window end (event time, exclusive).
        until: f64,
    },
    /// Multiply each disk op on `device` by `factor` independently with
    /// probability `prob` — a straggling disk with intermittent stalls.
    Straggler {
        /// Affected device.
        device: usize,
        /// Per-operation probability of the stall.
        prob: f64,
        /// Service-time multiplier applied on a stall.
        factor: f64,
        /// Window start (event time, inclusive).
        from: f64,
        /// Window end (event time, exclusive).
        until: f64,
    },
    /// Remove `device` from replica selection: routing picks a surviving
    /// replica instead (the original choice stands only when every replica
    /// of the partition is lost).
    DeviceLoss {
        /// The lost device.
        device: usize,
        /// Window start (event time, inclusive).
        from: f64,
        /// Window end (event time, exclusive).
        until: f64,
    },
    /// Amplify the arrival process: for every trace arrival inside the
    /// window, inject extra copies so the effective rate is multiplied by
    /// `multiplier` (≥ 1; the fractional part is realized by a Bernoulli
    /// draw per arrival). Injected requests draw fresh object ids, so the
    /// extra load spreads over partitions like the trace does.
    Burst {
        /// Arrival-rate multiplier (≥ 1).
        multiplier: f64,
        /// Window start (event time, inclusive).
        from: f64,
        /// Window end (event time, exclusive).
        until: f64,
    },
}

impl Fault {
    fn window(&self) -> (f64, f64) {
        match *self {
            Fault::SlowDisk { from, until, .. }
            | Fault::Straggler { from, until, .. }
            | Fault::DeviceLoss { from, until, .. }
            | Fault::Burst { from, until, .. } => (from, until),
        }
    }

    fn active(&self, now: f64) -> bool {
        let (from, until) = self.window();
        now >= from && now < until
    }
}

/// A fault-injection plan: the list of faults the simulator consults.
/// Empty by default (and an empty schedule changes nothing, bit for bit).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosSchedule {
    /// The injected faults. Windows may overlap; multipliers compose.
    pub faults: Vec<Fault>,
}

impl ChaosSchedule {
    /// The empty schedule (injects nothing).
    pub fn none() -> ChaosSchedule {
        ChaosSchedule::default()
    }

    /// A schedule with one fault.
    pub fn single(fault: Fault) -> ChaosSchedule {
        ChaosSchedule {
            faults: vec![fault],
        }
    }

    /// Whether the schedule has no faults at all.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Panics on nonsensical faults (mirrors
    /// [`ClusterConfig::validate`](crate::config::ClusterConfig::validate)).
    pub fn validate(&self, devices: usize) {
        for f in &self.faults {
            let (from, until) = f.window();
            assert!(
                from.is_finite() && until.is_finite() && from < until,
                "fault window [{from}, {until}) must be a non-empty finite interval"
            );
            match *f {
                Fault::SlowDisk { device, factor, .. } => {
                    assert!(
                        factor.is_finite() && factor > 0.0,
                        "slow-disk factor must be finite and positive, got {factor}"
                    );
                    if let Some(d) = device {
                        assert!(d < devices, "slow-disk fault on nonexistent device {d}");
                    }
                }
                Fault::Straggler {
                    device,
                    prob,
                    factor,
                    ..
                } => {
                    assert!(
                        (0.0..=1.0).contains(&prob),
                        "straggler probability must be in [0,1], got {prob}"
                    );
                    assert!(
                        factor.is_finite() && factor > 0.0,
                        "straggler factor must be finite and positive, got {factor}"
                    );
                    assert!(
                        device < devices,
                        "straggler fault on nonexistent device {device}"
                    );
                }
                Fault::DeviceLoss { device, .. } => {
                    assert!(
                        device < devices,
                        "device-loss fault on nonexistent device {device}"
                    );
                }
                Fault::Burst { multiplier, .. } => {
                    assert!(
                        multiplier.is_finite() && multiplier >= 1.0,
                        "burst multiplier must be >= 1, got {multiplier}"
                    );
                }
            }
        }
    }

    /// The combined service-time multiplier for a disk op starting on
    /// `dev` at `now`. Consumes `rng` only for straggler draws inside an
    /// active window, so inactive schedules leave the stream untouched.
    pub(crate) fn disk_factor(&self, now: f64, dev: usize, rng: &mut SmallRng) -> f64 {
        let mut factor = 1.0;
        for f in &self.faults {
            if !f.active(now) {
                continue;
            }
            match *f {
                Fault::SlowDisk {
                    device, factor: x, ..
                } if device.is_none() || device == Some(dev) => factor *= x,
                // Short-circuit keeps the draw conditional on the device
                // match, so unrelated devices leave the stream untouched.
                Fault::Straggler {
                    device,
                    prob,
                    factor: x,
                    ..
                } if device == dev && rng.gen::<f64>() < prob => factor *= x,
                _ => {}
            }
        }
        factor
    }

    /// Whether `dev` is lost (removed from replica selection) at `now`.
    pub(crate) fn device_lost(&self, now: f64, dev: usize) -> bool {
        self.faults.iter().any(|f| {
            matches!(*f, Fault::DeviceLoss { device, .. } if device == dev) && f.active(now)
        })
    }

    /// The combined arrival multiplier at `now` (1.0 outside any burst).
    pub(crate) fn burst_multiplier(&self, now: f64) -> f64 {
        self.faults
            .iter()
            .filter(|f| f.active(now))
            .map(|f| match *f {
                Fault::Burst { multiplier, .. } => multiplier,
                _ => 1.0,
            })
            .product()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn windows_are_half_open() {
        let f = Fault::SlowDisk {
            device: None,
            factor: 4.0,
            from: 10.0,
            until: 20.0,
        };
        assert!(!f.active(9.999));
        assert!(f.active(10.0));
        assert!(f.active(19.999));
        assert!(!f.active(20.0));
    }

    #[test]
    fn slow_disk_targets_its_device_and_composes() {
        let s = ChaosSchedule {
            faults: vec![
                Fault::SlowDisk {
                    device: Some(1),
                    factor: 3.0,
                    from: 0.0,
                    until: 100.0,
                },
                Fault::SlowDisk {
                    device: None,
                    factor: 2.0,
                    from: 0.0,
                    until: 100.0,
                },
            ],
        };
        let mut r = rng();
        assert_eq!(s.disk_factor(5.0, 0, &mut r), 2.0);
        assert_eq!(s.disk_factor(5.0, 1, &mut r), 6.0);
        assert_eq!(s.disk_factor(200.0, 1, &mut r), 1.0);
    }

    #[test]
    fn straggler_draws_only_inside_its_window() {
        let s = ChaosSchedule::single(Fault::Straggler {
            device: 0,
            prob: 1.0,
            factor: 10.0,
            from: 10.0,
            until: 20.0,
        });
        let mut a = rng();
        // Outside the window (or the wrong device) the stream is untouched.
        assert_eq!(s.disk_factor(5.0, 0, &mut a), 1.0);
        assert_eq!(s.disk_factor(15.0, 1, &mut a), 1.0);
        let mut b = rng();
        assert_eq!(a.gen::<u64>(), b.gen::<u64>(), "no draws consumed");
        // Inside: prob 1 always stalls.
        assert_eq!(s.disk_factor(15.0, 0, &mut a), 10.0);
    }

    #[test]
    fn loss_and_burst_report_their_windows() {
        let s = ChaosSchedule {
            faults: vec![
                Fault::DeviceLoss {
                    device: 2,
                    from: 10.0,
                    until: 20.0,
                },
                Fault::Burst {
                    multiplier: 3.0,
                    from: 30.0,
                    until: 40.0,
                },
            ],
        };
        assert!(s.device_lost(15.0, 2));
        assert!(!s.device_lost(15.0, 1));
        assert!(!s.device_lost(25.0, 2));
        assert_eq!(s.burst_multiplier(35.0), 3.0);
        assert_eq!(s.burst_multiplier(45.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-empty finite interval")]
    fn validation_rejects_inverted_windows() {
        ChaosSchedule::single(Fault::Burst {
            multiplier: 2.0,
            from: 20.0,
            until: 10.0,
        })
        .validate(4);
    }

    #[test]
    #[should_panic(expected = "nonexistent device")]
    fn validation_rejects_unknown_devices() {
        ChaosSchedule::single(Fault::DeviceLoss {
            device: 9,
            from: 0.0,
            until: 1.0,
        })
        .validate(4);
    }

    #[test]
    #[should_panic(expected = "multiplier must be >= 1")]
    fn validation_rejects_shrinking_bursts() {
        ChaosSchedule::single(Fault::Burst {
            multiplier: 0.5,
            from: 0.0,
            until: 1.0,
        })
        .validate(4);
    }
}
