//! Cluster configuration for the simulated object store.
//!
//! Mirrors the paper's testbed (§V-A): a frontend tier of event-driven
//! proxy processes, a backend tier of storage devices with `N_be` dedicated
//! processes each, HDD-class disks benchmarked per operation type, a
//! memory-limited cache, and chunked data reads.

use cos_distr::{Degenerate, DynService, Gamma};
use std::sync::Arc;

/// Per-operation disk service-time laws (what §IV-A benchmarks and fits).
#[derive(Debug, Clone)]
pub struct DiskProfile {
    /// Index lookup (e.g. open(2) walking directory entries / inodes).
    pub index: DynService,
    /// Metadata read (extended attributes).
    pub meta: DynService,
    /// Data chunk read.
    pub data: DynService,
}

impl DiskProfile {
    /// An HDD-like profile with Gamma service times in the range of the
    /// paper's Fig. 5 (means ≈ 12 / 8 / 14 ms, moderate shapes).
    pub fn hdd_like() -> Self {
        DiskProfile {
            index: Arc::new(Gamma::new(3.0, 250.0)),
            meta: Arc::new(Gamma::new(2.5, 312.5)),
            data: Arc::new(Gamma::new(3.5, 245.0)),
        }
    }

    /// Mean raw service time of a given operation kind.
    pub fn mean_of(&self, kind: DiskOpKind) -> f64 {
        match kind {
            DiskOpKind::Index => self.index.mean(),
            DiskOpKind::Meta => self.meta.mean(),
            DiskOpKind::Data => self.data.mean(),
        }
    }
}

/// The three disk-visiting operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DiskOpKind {
    /// Index lookup.
    Index,
    /// Metadata read.
    Meta,
    /// Data chunk read.
    Data,
}

/// How the event-driven process serves its connection pool (§III-C,
/// Fig. 4). Brecht et al. \[14\] showed accept strategies materially change
/// server behaviour; the two disciplines here bracket the design space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptMode {
    /// One `accept()` operation per pending connection: each connecting
    /// request waits a full pass of the request-processing queue, which is
    /// the behaviour the paper's WTA model describes (`A(t) = W_be(t)` by
    /// PASTA).
    PerConnection,
    /// A single `accept()` operation drains the whole pool: late arrivals
    /// piggyback on an accept already in flight, shrinking their wait (the
    /// paper notes batching as a source of S16 load imbalance).
    Batched,
}

/// Cache behaviour at the backend.
#[derive(Debug, Clone)]
pub enum CacheConfig {
    /// Fixed Bernoulli miss probabilities per operation kind — the direct
    /// knob the analytic model consumes.
    Bernoulli {
        /// Index lookup miss ratio.
        index_miss: f64,
        /// Metadata read miss ratio.
        meta_miss: f64,
        /// Data chunk read miss ratio.
        data_miss: f64,
    },
    /// An LRU cache with finite byte capacity: miss ratios *emerge* from the
    /// Zipf access pattern (used by the calibration ablation A3).
    Lru {
        /// Total cache capacity in bytes per device.
        capacity_bytes: u64,
        /// Bytes charged per cached index entry.
        index_entry_bytes: u32,
        /// Bytes charged per cached metadata entry.
        meta_entry_bytes: u32,
    },
}

impl CacheConfig {
    /// Validates ratio ranges.
    pub fn validate(&self) {
        if let CacheConfig::Bernoulli {
            index_miss,
            meta_miss,
            data_miss,
        } = self
        {
            for (name, m) in [
                ("index", index_miss),
                ("meta", meta_miss),
                ("data", data_miss),
            ] {
                assert!(
                    (0.0..=1.0).contains(m),
                    "{name} miss ratio must be in [0,1], got {m}"
                );
            }
        }
    }
}

/// Frontend timeout-and-retry policy — the "software mechanisms" the
/// paper's assumption 5 (§III-A) explicitly excludes from the model. The
/// simulator supports them so the exclusion can be demonstrated: when
/// timeouts and retries dominate, no steady-state model applies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeoutRetry {
    /// How long the frontend waits for a response before re-sending the
    /// request to another replica (seconds).
    pub timeout: f64,
    /// Maximum retries after the first attempt.
    pub max_retries: u32,
}

impl TimeoutRetry {
    /// Validates the policy.
    pub fn validate(&self) {
        assert!(
            self.timeout.is_finite() && self.timeout > 0.0,
            "timeout must be positive"
        );
    }
}

/// When the redundant sub-requests of an (n,k) coded read are launched.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RedundancyPolicy {
    /// Launch exactly the `k` needed chunk reads — no redundancy.
    KOnly,
    /// Launch all `n` chunk reads immediately; once the k-th completes the
    /// stragglers are cancelled (lazily, at their next scheduling point).
    Eager,
    /// Launch `k` reads first and the remaining `n − k` only if the read
    /// has not completed after `delay` seconds.
    Deferred {
        /// Seconds before the spare sub-requests are launched.
        delay: f64,
    },
}

/// (n,k) erasure-coding scenario: every object is striped over `n` devices
/// and a GET completes when the k-th-fastest chunk read finishes.
///
/// Coding replaces replication: requests bypass the replica table and fan
/// out over the stripe instead, and device loss is tolerated by `k < n`
/// rather than by failover. Mutually exclusive with
/// [`ClusterConfig::timeout_retry`] (both are frontend re-issue
/// mechanisms; composing them is out of scope).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodingConfig {
    /// Stripe width: total coded chunks per object.
    pub n: usize,
    /// Chunks needed to reconstruct the object.
    pub k: usize,
    /// Redundant-launch policy.
    pub policy: RedundancyPolicy,
}

impl CodingConfig {
    /// Validates the coding parameters against the cluster size.
    ///
    /// # Panics
    /// Panics unless `1 ≤ k ≤ n ≤ devices` (each stripe chunk needs its
    /// own device) and any deferred delay is positive and finite.
    pub fn validate(&self, devices: usize) {
        assert!(
            self.k >= 1 && self.k <= self.n,
            "coding requires 1 <= k <= n, got k={}, n={}",
            self.k,
            self.n
        );
        assert!(
            self.n <= devices,
            "stripe width n={} exceeds device count {devices}",
            self.n
        );
        if let RedundancyPolicy::Deferred { delay } = self.policy {
            assert!(
                delay.is_finite() && delay > 0.0,
                "deferred-redundancy delay must be positive, got {delay}"
            );
        }
    }
}

/// Per-device overrides for heterogeneous clusters (a slower disk, a
/// colder cache). Devices not mentioned use the cluster-wide defaults.
#[derive(Debug, Clone)]
pub struct DeviceOverride {
    /// Device index this override applies to.
    pub device: usize,
    /// Replacement disk profile, if any.
    pub disk: Option<DiskProfile>,
    /// Replacement cache config, if any.
    pub cache: Option<CacheConfig>,
}

/// Full cluster configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Total frontend processes (paper: 3 proxy servers).
    pub frontend_processes: usize,
    /// Number of storage devices (paper: 4 × 1 TB HDD).
    pub devices: usize,
    /// Processes per storage device: `N_be` (1 for S1, 16 for S16).
    pub processes_per_device: usize,
    /// Data chunk size in bytes (Swift default: 64 KB).
    pub chunk_size: u32,
    /// Frontend request-parsing latency.
    pub parse_fe: DynService,
    /// Backend request-parsing latency.
    pub parse_be: DynService,
    /// Service time of one `accept()` operation in the op queue.
    pub accept_cost: f64,
    /// Accept discipline (see [`AcceptMode`]).
    pub accept_mode: AcceptMode,
    /// Backend→frontend network bandwidth in bytes/second (paper: 1 Gbps);
    /// governs the delay before the next chunk read is enqueued.
    pub network_bandwidth: f64,
    /// Latency of a memory-served (cache-hit) operation. The model
    /// approximates this as 0; the simulator keeps it real (microseconds) so
    /// the 0.015 ms latency-threshold estimator of §IV-B has something to
    /// discriminate.
    pub mem_latency: f64,
    /// Disk service-time laws.
    pub disk: DiskProfile,
    /// Cache behaviour.
    pub cache: CacheConfig,
    /// Per-device overrides (heterogeneous clusters).
    pub device_overrides: Vec<DeviceOverride>,
    /// Optional frontend timeout/retry policy (None = the paper's "normal
    /// status" assumption).
    pub timeout_retry: Option<TimeoutRetry>,
    /// Optional (n,k) erasure coding (None = replicated objects).
    pub coding: Option<CodingConfig>,
    /// Master RNG seed.
    pub seed: u64,
}

impl ClusterConfig {
    /// A testbed-like configuration for scenario S1 (`N_be = 1`), with
    /// Bernoulli miss ratios tuned so the sweep saturates before its end,
    /// as in Fig. 6.
    pub fn paper_s1() -> Self {
        ClusterConfig {
            frontend_processes: 3,
            devices: 4,
            processes_per_device: 1,
            chunk_size: 64 * 1024,
            parse_fe: Arc::new(Degenerate::new(0.0003)),
            parse_be: Arc::new(Degenerate::new(0.0005)),
            accept_cost: 0.0005,
            accept_mode: AcceptMode::PerConnection,
            network_bandwidth: 125_000_000.0, // 1 Gbps
            mem_latency: 0.000003,
            disk: DiskProfile::hdd_like(),
            cache: CacheConfig::Bernoulli {
                index_miss: 0.30,
                meta_miss: 0.25,
                data_miss: 0.40,
            },
            device_overrides: Vec::new(),
            timeout_retry: None,
            coding: None,
            seed: 0xC05C05,
        }
    }

    /// Scenario S16 (`N_be = 16`): more processes per device and a warmer
    /// cache (the paper warms S16 at 500 req/s vs 300), letting the sweep
    /// extend to 600 req/s as in Fig. 7.
    pub fn paper_s16() -> Self {
        ClusterConfig {
            processes_per_device: 16,
            cache: CacheConfig::Bernoulli {
                index_miss: 0.14,
                meta_miss: 0.10,
                data_miss: 0.20,
            },
            ..ClusterConfig::paper_s1()
        }
    }

    /// Sanity-checks the configuration.
    ///
    /// # Panics
    /// Panics on structurally invalid values.
    pub fn validate(&self) {
        assert!(
            self.frontend_processes >= 1,
            "need at least one frontend process"
        );
        assert!(self.devices >= 1, "need at least one device");
        assert!(
            self.processes_per_device >= 1,
            "need at least one backend process per device"
        );
        assert!(self.chunk_size >= 1, "chunk size must be positive");
        assert!(self.accept_cost >= 0.0 && self.accept_cost.is_finite());
        assert!(self.network_bandwidth > 0.0 && self.network_bandwidth.is_finite());
        assert!(self.mem_latency >= 0.0 && self.mem_latency.is_finite());
        self.cache.validate();
        for o in &self.device_overrides {
            assert!(
                o.device < self.devices,
                "override for nonexistent device {}",
                o.device
            );
            if let Some(c) = &o.cache {
                c.validate();
            }
        }
        if let Some(tr) = &self.timeout_retry {
            tr.validate();
        }
        if let Some(c) = &self.coding {
            c.validate(self.devices);
            assert!(
                self.timeout_retry.is_none(),
                "coding and timeout_retry are mutually exclusive"
            );
        }
    }

    /// The effective disk profile of a device, overrides applied.
    pub fn disk_for(&self, device: usize) -> &DiskProfile {
        self.device_overrides
            .iter()
            .find(|o| o.device == device)
            .and_then(|o| o.disk.as_ref())
            .unwrap_or(&self.disk)
    }

    /// The effective cache config of a device, overrides applied.
    pub fn cache_for(&self, device: usize) -> &CacheConfig {
        self.device_overrides
            .iter()
            .find(|o| o.device == device)
            .and_then(|o| o.cache.as_ref())
            .unwrap_or(&self.cache)
    }

    /// Number of chunks needed for an object of `size` bytes (≥ 1).
    pub fn chunks_for(&self, size: u32) -> u32 {
        size.div_ceil(self.chunk_size).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        ClusterConfig::paper_s1().validate();
        ClusterConfig::paper_s16().validate();
    }

    #[test]
    fn hdd_profile_means_in_fig5_range() {
        let d = DiskProfile::hdd_like();
        // Fig. 5 shows service times roughly 5–80 ms.
        assert!(
            (0.005..0.03).contains(&d.index.mean()),
            "index {}",
            d.index.mean()
        );
        assert!(
            (0.005..0.03).contains(&d.meta.mean()),
            "meta {}",
            d.meta.mean()
        );
        assert!(
            (0.005..0.03).contains(&d.data.mean()),
            "data {}",
            d.data.mean()
        );
        assert_eq!(d.mean_of(DiskOpKind::Index), d.index.mean());
    }

    #[test]
    fn chunk_count_rounds_up() {
        let c = ClusterConfig::paper_s1();
        assert_eq!(c.chunks_for(1), 1);
        assert_eq!(c.chunks_for(64 * 1024), 1);
        assert_eq!(c.chunks_for(64 * 1024 + 1), 2);
        assert_eq!(c.chunks_for(0), 1);
        assert_eq!(c.chunks_for(1024 * 1024), 16);
    }

    #[test]
    fn s16_differs_in_processes_and_cache() {
        let s16 = ClusterConfig::paper_s16();
        assert_eq!(s16.processes_per_device, 16);
        match s16.cache {
            CacheConfig::Bernoulli { index_miss, .. } => assert!(index_miss < 0.2),
            _ => panic!("expected Bernoulli cache"),
        }
    }

    #[test]
    fn coding_presets_validate() {
        let mut cfg = ClusterConfig::paper_s1();
        cfg.coding = Some(CodingConfig {
            n: 4,
            k: 2,
            policy: RedundancyPolicy::Eager,
        });
        cfg.validate();
        cfg.coding = Some(CodingConfig {
            n: 3,
            k: 3,
            policy: RedundancyPolicy::Deferred { delay: 0.05 },
        });
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "exceeds device count")]
    fn stripe_wider_than_cluster_rejected() {
        let mut cfg = ClusterConfig::paper_s1();
        cfg.coding = Some(CodingConfig {
            n: 5,
            k: 2,
            policy: RedundancyPolicy::KOnly,
        });
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "mutually exclusive")]
    fn coding_with_timeout_retry_rejected() {
        let mut cfg = ClusterConfig::paper_s1();
        cfg.coding = Some(CodingConfig {
            n: 4,
            k: 2,
            policy: RedundancyPolicy::KOnly,
        });
        cfg.timeout_retry = Some(TimeoutRetry {
            timeout: 0.2,
            max_retries: 1,
        });
        cfg.validate();
    }

    #[test]
    #[should_panic]
    fn invalid_miss_ratio_rejected() {
        CacheConfig::Bernoulli {
            index_miss: 1.5,
            meta_miss: 0.0,
            data_miss: 0.0,
        }
        .validate();
    }
}
