//! Fleet scenario — per-tenant telemetry streams at storage-fleet scale.
//!
//! The discrete-event simulator ([`crate::sim`]) models *one* cluster
//! mechanistically; a fleet-scale prediction service instead shards its
//! estimators per tenant and refits thousands of device models in one
//! parallel sweep. What that path needs from the testbed is not another
//! event loop but a **deterministic, tenant-tagged telemetry source** whose
//! per-tenant streams have genuinely different operating points — so a
//! correct service produces *different* fits per shard and a cross-tenant
//! leak is visible as a wrong answer, not a coincidence.
//!
//! [`FleetScenario`] is exactly that: for each tenant it draws a stable
//! per-tenant character (completion-latency mix, slow-op fraction) from a
//! seeded PRNG and synthesizes the same event shape the calibrator
//! ingests everywhere else — per device and tick: one arrival, one data
//! read, one op per class, one completion. Two properties are load-bearing
//! and tested:
//!
//! * **Determinism** — [`FleetScenario::events_for`] depends only on
//!   `(seed, tenant index)`, never on how streams are interleaved, so the
//!   tagged fleet stream and a standalone single-tenant feed are the same
//!   events (the repo-level bit-identity tests rely on this);
//! * **Distinctness** — different tenants draw different characters, so
//!   per-tenant fits must differ.
//!
//! Sizing note: the serve-side calibrator only fits devices that have seen
//! ~20 requests inside its sliding window, so `rate_per_device × duration`
//! should comfortably exceed that floor (the defaults do).

use cos_serve::{OpClass, TelemetryEvent, TenantId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Shape of one fleet scenario: how many tenants, how big each tenant's
/// cluster is, and how hard it is driven.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of tenants (independent estimator shards downstream).
    pub tenants: usize,
    /// Devices per tenant — must match the `CalibrationBase::devices` the
    /// consuming service was built with.
    pub devices: usize,
    /// Arrival rate per device (req/s); also the data-read and completion
    /// rate, matching the calibrator's expected event shape.
    pub rate_per_device: f64,
    /// Event-time length of each tenant's stream, in seconds.
    pub duration: f64,
    /// PRNG seed for the per-tenant characters.
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            tenants: 16,
            devices: 4,
            rate_per_device: 40.0,
            duration: 21.0,
            seed: 7,
        }
    }
}

impl FleetConfig {
    /// Validates the shape, naming the offending knob.
    pub fn validate(&self) -> Result<(), String> {
        if self.tenants == 0 {
            return Err("fleet config: `tenants` must be at least 1".into());
        }
        if self.devices == 0 {
            return Err("fleet config: `devices` must be at least 1".into());
        }
        if !(self.rate_per_device.is_finite() && self.rate_per_device > 0.0) {
            return Err("fleet config: `rate_per_device` must be positive and finite".into());
        }
        if !(self.duration.is_finite() && self.duration > 0.0) {
            return Err("fleet config: `duration` must be positive and finite".into());
        }
        Ok(())
    }
}

/// Telemetry records emitted per device per tick: arrival, data read, one
/// op per [`OpClass`], completion.
const EVENTS_PER_DEVICE_TICK: usize = 3 + OpClass::ALL.len();

/// A validated fleet scenario: a deterministic generator of tenant-tagged
/// telemetry streams (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct FleetScenario {
    config: FleetConfig,
}

impl FleetScenario {
    /// Builds a scenario from a validated config.
    pub fn new(config: FleetConfig) -> Result<FleetScenario, String> {
        config.validate()?;
        Ok(FleetScenario { config })
    }

    /// The scenario's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// The id of tenant `index`: `tenant-000`, `tenant-001`, …
    ///
    /// # Panics
    /// If `index >= config.tenants`.
    pub fn tenant_id(&self, index: usize) -> TenantId {
        assert!(index < self.config.tenants, "tenant index out of range");
        TenantId::new(&format!("tenant-{index:03}")).expect("generated tenant id is valid")
    }

    /// Tenant `index`'s full event stream, time-ordered. Deterministic in
    /// `(config.seed, index)` alone: interleaving tenants into a fleet
    /// stream or feeding one tenant standalone yields identical events.
    ///
    /// # Panics
    /// If `index >= config.tenants`.
    pub fn events_for(&self, index: usize) -> Vec<TelemetryEvent> {
        assert!(index < self.config.tenants, "tenant index out of range");
        let mut rng = SmallRng::seed_from_u64(
            self.config
                .seed
                .wrapping_add((index as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        // The tenant's stable character: how often completions land in the
        // slow mode, and where the two modes sit. Ranges are wide enough
        // that two tenants' attainment curves are visibly different.
        let slow_fraction = rng.gen_range(0.15..0.45);
        let slow_latency = rng.gen_range(0.020..0.045);
        let fast_latency = rng.gen_range(0.003..0.006);
        let op_miss = rng.gen_range(0.2..0.4);

        let dt = 1.0 / self.config.rate_per_device;
        let ticks = self.ticks();
        let mut out = Vec::with_capacity(ticks * self.config.devices * EVENTS_PER_DEVICE_TICK);
        for tick in 0..ticks {
            let t = tick as f64 * dt;
            for device in 0..self.config.devices {
                out.push(TelemetryEvent::Arrival { at: t, device });
                out.push(TelemetryEvent::DataRead { at: t, device });
                for class in OpClass::ALL {
                    let latency = if rng.gen_bool(op_miss) {
                        0.010
                    } else {
                        0.000_002
                    };
                    out.push(TelemetryEvent::Op {
                        at: t,
                        device,
                        class,
                        latency,
                    });
                }
                let latency = if rng.gen_bool(slow_fraction) {
                    slow_latency
                } else {
                    fast_latency
                };
                out.push(TelemetryEvent::Completion {
                    arrival: t,
                    latency,
                    device,
                });
            }
        }
        out
    }

    /// Arrival ticks per tenant stream.
    fn ticks(&self) -> usize {
        (self.config.duration * self.config.rate_per_device).ceil() as usize
    }

    /// Events each tenant's stream contains.
    pub fn events_per_tenant(&self) -> usize {
        self.ticks() * self.config.devices * EVENTS_PER_DEVICE_TICK
    }

    /// The whole fleet's stream, tenant-tagged and interleaved tick by
    /// tick (every tenant's events for tick 0, then tick 1, …) — the
    /// arrival order a shared ingest bus would see. Per tenant, the
    /// subsequence equals [`events_for`](Self::events_for) exactly.
    pub fn tagged_stream(&self) -> Vec<(TenantId, TelemetryEvent)> {
        let per_tick = self.config.devices * EVENTS_PER_DEVICE_TICK;
        let ids: Vec<TenantId> = (0..self.config.tenants)
            .map(|i| self.tenant_id(i))
            .collect();
        let streams: Vec<Vec<TelemetryEvent>> = (0..self.config.tenants)
            .map(|i| self.events_for(i))
            .collect();
        let mut out = Vec::with_capacity(self.config.tenants * self.events_per_tenant());
        for tick in 0..self.ticks() {
            let range = tick * per_tick..(tick + 1) * per_tick;
            for (id, stream) in ids.iter().zip(&streams) {
                for ev in &stream[range.clone()] {
                    out.push((id.clone(), *ev));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_names_the_offending_knob() {
        for (cfg, needle) in [
            (
                FleetConfig {
                    tenants: 0,
                    ..FleetConfig::default()
                },
                "tenants",
            ),
            (
                FleetConfig {
                    devices: 0,
                    ..FleetConfig::default()
                },
                "devices",
            ),
            (
                FleetConfig {
                    rate_per_device: 0.0,
                    ..FleetConfig::default()
                },
                "rate_per_device",
            ),
            (
                FleetConfig {
                    duration: f64::NAN,
                    ..FleetConfig::default()
                },
                "duration",
            ),
        ] {
            let err = FleetScenario::new(cfg).unwrap_err();
            assert!(err.contains(needle), "{err}");
        }
        assert!(FleetScenario::new(FleetConfig::default()).is_ok());
    }

    #[test]
    fn streams_are_deterministic_and_tenants_differ() {
        let scenario = FleetScenario::new(FleetConfig {
            tenants: 3,
            devices: 2,
            duration: 2.0,
            ..FleetConfig::default()
        })
        .unwrap();
        assert_eq!(scenario.events_for(0), scenario.events_for(0));
        assert_ne!(
            scenario.events_for(0),
            scenario.events_for(1),
            "tenants must have distinct characters"
        );
        assert_eq!(scenario.events_for(0).len(), scenario.events_per_tenant());
        // A different seed reshuffles every tenant.
        let reseeded = FleetScenario::new(FleetConfig {
            seed: 8,
            ..*scenario.config()
        })
        .unwrap();
        assert_ne!(scenario.events_for(0), reseeded.events_for(0));
    }

    #[test]
    fn tagged_stream_interleaves_without_reordering_any_tenant() {
        let scenario = FleetScenario::new(FleetConfig {
            tenants: 3,
            devices: 2,
            duration: 1.0,
            ..FleetConfig::default()
        })
        .unwrap();
        let stream = scenario.tagged_stream();
        assert_eq!(stream.len(), 3 * scenario.events_per_tenant());
        for i in 0..3 {
            let id = scenario.tenant_id(i);
            let subsequence: Vec<TelemetryEvent> = stream
                .iter()
                .filter(|(t, _)| *t == id)
                .map(|&(_, ev)| ev)
                .collect();
            assert_eq!(
                subsequence,
                scenario.events_for(i),
                "interleaving must preserve tenant {i}'s stream"
            );
        }
        // Tick-interleaved: the first tenants' first events come before any
        // tenant's second tick.
        assert_eq!(stream[0].0, scenario.tenant_id(0));
        let per_tick = 2 * EVENTS_PER_DEVICE_TICK;
        assert_eq!(stream[per_tick].0, scenario.tenant_id(1));
    }
}
