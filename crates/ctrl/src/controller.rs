//! The controller: per-publication policy evaluation, per-request
//! admission decisions.
//!
//! Two very different paths share this type:
//!
//! * [`Controller::decide`] is the **hot path** — the gate calls it once
//!   per request, on the connection thread, before routing. It reads one
//!   atomic (the shed fraction) and, only while shedding is active, does
//!   one `fetch_add` on a per-class error-diffusion accumulator. No locks,
//!   no allocation, no model evaluation: the budget is well under a
//!   microsecond (enforced by `perf_baseline --check`).
//! * [`Controller::tick`] is the **slow path** — a poller (the
//!   [`Ticker`] thread, or a test driving event time by hand) calls it
//!   after telemetry lands. It is generation-gated: work happens only when
//!   the service has published a new [`cos_serve::SnapshotState`] since
//!   the last tick, so the policy adjusts exactly once per re-fit attempt
//!   no matter how often it is polled — which also makes control-loop
//!   tests deterministic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cos_serve::{Query, ServeError, SnapshotReader, TenantId};

use crate::admission::{AdmissionPolicy, InvalidPolicy, Shed, SlaClass};
use crate::anomaly::{Anomaly, AnomalyConfig, AnomalyDetector};

/// Everything [`Controller::new`] needs besides the reader.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CtrlConfig {
    /// Admission policy (goal, AIMD knobs, shed ladder cap).
    pub admission: AdmissionPolicy,
    /// Anomaly detector knobs.
    pub anomaly: AnomalyConfig,
}

/// What one generation-consuming [`Controller::tick`] concluded.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TickReport {
    /// Event time at the tick.
    pub at: f64,
    /// The publication generation this report consumed.
    pub generation: u64,
    /// Predicted attainment of the policy goal's SLA at the calibrated
    /// operating point (`None` while uncalibrated / disconnected).
    pub attainment: Option<f64>,
    /// Max rate (req/s) still meeting the goal, when the solve succeeded.
    pub headroom: Option<f64>,
    /// Calibrated total arrival rate of the epoch the tick saw.
    pub rate: Option<f64>,
    /// Whether the epoch's own re-fit failed on an unstable operating
    /// point (ρ ≥ 1) — a violation even though stale predictions look fine.
    pub unstable: bool,
    /// Whether this tick classified the system as violating the goal.
    pub violating: bool,
    /// Total shed fraction after this tick.
    pub shed: f64,
    /// Anomalies scored by this tick's drift verdicts.
    pub anomalies_scored: u32,
}

impl Default for TickReport {
    fn default() -> Self {
        TickReport {
            at: 0.0,
            generation: 0,
            attainment: None,
            headroom: None,
            rate: None,
            unstable: false,
            violating: false,
            shed: 0.0,
            anomalies_scored: 0,
        }
    }
}

/// Counters and latest-state snapshot for dashboards (`/metrics`).
#[derive(Debug, Clone, PartialEq)]
pub struct CtrlStats {
    /// Current total shed fraction.
    pub shed_fraction: f64,
    /// Requests admitted since startup (all classes).
    pub admitted_total: u64,
    /// Requests shed since startup, indexed like [`SlaClass::SHEDDABLE`].
    pub shed_total: [u64; 3],
    /// Generation-consuming ticks so far.
    pub ticks: u64,
    /// Anomalies ever scored.
    pub anomalies_total: u64,
    /// Per-SLA `(sla, latest z-score, residuals absorbed)`.
    pub scores: Vec<(f64, f64, u64)>,
    /// The most recent tick's conclusions.
    pub last: TickReport,
}

struct Inner {
    detector: AnomalyDetector,
    last_generation: Option<u64>,
    report: TickReport,
    ticks: u64,
}

/// Per-tenant shed-budget registry, consulted by
/// [`Controller::decide_for`]: a tenant's budget *caps* the shed fraction
/// applied to that tenant's requests (`effective = min(fleet shed,
/// budget)`). A budget of `0.0` exempts the tenant from shedding entirely;
/// `1.0` (or no recorded budget) leaves the fleet-wide fraction untouched.
///
/// The registry is written rarely (operator/dashboard actions) and read on
/// the admission hot path, so the common case — no budgets recorded at
/// all — is kept off the mutex with a population counter: an empty
/// registry costs one relaxed atomic load per decision.
#[derive(Debug, Default)]
pub struct TenantShedBudgets {
    budgets: Mutex<HashMap<TenantId, f64>>,
    /// Number of recorded budgets, maintained alongside the map so the
    /// hot path can skip the lock when nothing is registered.
    population: AtomicUsize,
}

impl TenantShedBudgets {
    /// Sets `tenant`'s shed budget, clamped to `[0, 1]` (the fraction of
    /// that tenant's traffic the controller may refuse under pressure).
    pub fn set(&self, tenant: TenantId, fraction: f64) {
        let fraction = fraction.clamp(0.0, 1.0);
        let mut budgets = self.budgets.lock().expect("tenant budgets lock");
        if budgets.insert(tenant, fraction).is_none() {
            self.population.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The budget recorded for `tenant`, if any.
    pub fn get(&self, tenant: &TenantId) -> Option<f64> {
        self.budgets
            .lock()
            .expect("tenant budgets lock")
            .get(tenant)
            .copied()
    }

    /// The shed cap to apply to `tenant`'s requests: the recorded budget,
    /// or `None` when the tenant is uncapped. One relaxed load (no lock)
    /// when the registry is empty — the steady state of a fleet that has
    /// never configured budgets.
    pub fn cap_for(&self, tenant: &TenantId) -> Option<f64> {
        if self.population.load(Ordering::Relaxed) == 0 {
            return None;
        }
        self.get(tenant)
    }

    /// Removes `tenant`'s budget, returning it.
    pub fn remove(&self, tenant: &TenantId) -> Option<f64> {
        let removed = self
            .budgets
            .lock()
            .expect("tenant budgets lock")
            .remove(tenant);
        if removed.is_some() {
            self.population.fetch_sub(1, Ordering::Relaxed);
        }
        removed
    }

    /// How many tenants have a recorded budget.
    pub fn len(&self) -> usize {
        self.budgets.lock().expect("tenant budgets lock").len()
    }

    /// Whether no tenant has a recorded budget.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Fixed-point denominator of the error-diffusion accumulators.
const ACC_ONE: u64 = 1_000_000;

/// The admission controller + anomaly detector over one service's
/// published snapshots. Share it between the gate and a ticker behind an
/// `Arc`.
pub struct Controller {
    reader: SnapshotReader,
    policy: AdmissionPolicy,
    /// `f64` bits of the current total shed fraction.
    shed_bits: AtomicU64,
    /// Error-diffusion accumulators, one per sheddable class: admitting a
    /// request adds the class's effective shed fraction (in millionths);
    /// crossing a whole unit sheds. Deterministic under a single client,
    /// and fair — sheds spread evenly instead of clustering.
    acc: [AtomicU64; 3],
    admitted_total: AtomicU64,
    shed_total: [AtomicU64; 3],
    tenant_budgets: TenantShedBudgets,
    inner: Mutex<Inner>,
}

impl Controller {
    /// Creates a controller polling `reader`, with validated knobs.
    pub fn new(reader: SnapshotReader, config: CtrlConfig) -> Result<Controller, InvalidPolicy> {
        config.admission.validate()?;
        let detector = AnomalyDetector::new(config.anomaly)?;
        Ok(Controller {
            reader,
            policy: config.admission,
            shed_bits: AtomicU64::new(0f64.to_bits()),
            acc: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            admitted_total: AtomicU64::new(0),
            shed_total: [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)],
            tenant_budgets: TenantShedBudgets::default(),
            inner: Mutex::new(Inner {
                detector,
                last_generation: None,
                report: TickReport::default(),
                ticks: 0,
            }),
        })
    }

    /// The policy this controller runs.
    pub fn policy(&self) -> &AdmissionPolicy {
        &self.policy
    }

    /// The per-tenant shed-budget registry (see [`TenantShedBudgets`] for
    /// its current stub status).
    pub fn tenant_budgets(&self) -> &TenantShedBudgets {
        &self.tenant_budgets
    }

    /// Current total shed fraction.
    pub fn shed_fraction(&self) -> f64 {
        f64::from_bits(self.shed_bits.load(Ordering::Relaxed))
    }

    /// Forces the total shed fraction (clamped to `[0, max_shed]`),
    /// bypassing the policy. A test/demo hook — the next violating or
    /// healthy tick adjusts from this value as if the policy had set it.
    pub fn force_shed(&self, f: f64) {
        let f = f.clamp(0.0, self.policy.max_shed);
        self.shed_bits.store(f.to_bits(), Ordering::Relaxed);
    }

    /// Per-request admission decision with no tenant attribution: the
    /// fleet-wide shed fraction applies uncapped. `Ok` admits; `Err`
    /// carries the `Retry-After` the gate answers with the 429.
    #[inline]
    pub fn decide(&self, class: SlaClass) -> Result<(), Shed> {
        self.decide_capped(class, None)
    }

    /// Tenant-attributed admission decision: `tenant`'s recorded shed
    /// budget (see [`TenantShedBudgets`]) caps the shed fraction applied
    /// to this request. With no budget recorded — in particular with an
    /// empty registry, which costs one extra relaxed load — the decision
    /// is identical to [`decide`](Self::decide).
    #[inline]
    pub fn decide_for(&self, tenant: &TenantId, class: SlaClass) -> Result<(), Shed> {
        self.decide_capped(class, self.tenant_budgets.cap_for(tenant))
    }

    #[inline]
    fn decide_capped(&self, class: SlaClass, cap: Option<f64>) -> Result<(), Shed> {
        let Some(slot) = class.slot() else {
            // Control-plane traffic is never shed.
            self.admitted_total.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        };
        let f = f64::from_bits(self.shed_bits.load(Ordering::Relaxed));
        let mut eff = class.effective_shed(f);
        if let Some(cap) = cap {
            eff = eff.min(cap);
        }
        let drop = if eff <= 0.0 {
            false
        } else if eff >= 1.0 {
            true
        } else {
            let step = (eff * ACC_ONE as f64) as u64;
            let prev = self.acc[slot].fetch_add(step, Ordering::Relaxed);
            (prev % ACC_ONE) + step >= ACC_ONE
        };
        if drop {
            self.shed_total[slot].fetch_add(1, Ordering::Relaxed);
            Err(Shed {
                class,
                retry_after: self.policy.retry_after,
            })
        } else {
            self.admitted_total.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    /// Evaluates the policy against the newest published snapshot.
    ///
    /// Generation-gated: if the service has not published since the last
    /// tick, this returns the previous report untouched. Otherwise it
    /// classifies the epoch (violating / healthy / in-band), adjusts the
    /// shed fraction (AIMD with the model-driven floor — see
    /// [`AdmissionPolicy`]), and feeds the epoch's drift verdicts to the
    /// anomaly detector.
    pub fn tick(&self) -> TickReport {
        let mut inner = self.inner.lock().expect("controller tick lock");
        let generation = self.reader.generation();
        if inner.last_generation == Some(generation) {
            return inner.report;
        }
        let Ok(state) = self.reader.state() else {
            // Disconnected: hold everything (the gate is dying anyway).
            return inner.report;
        };
        inner.last_generation = Some(generation);

        let goal = self.policy.goal;
        let attainment = self.reader.attainment(&Query::new().sla(goal.sla));
        let rate = state
            .snapshot
            .as_ref()
            .map(|s| s.params.frontend.arrival_rate);
        let predict_unstable = matches!(attainment, Err(ServeError::Unstable { .. }));
        let unstable = state.unstable_fit || predict_unstable;
        let att_value = attainment.as_ref().ok().map(|p| p.value);

        #[derive(PartialEq)]
        enum Health {
            Violating,
            Healthy,
            Hold,
        }
        let health = if unstable {
            Health::Violating
        } else {
            match att_value {
                Some(v) if v < goal.target_fraction - self.policy.hysteresis => Health::Violating,
                Some(v) if v >= goal.target_fraction => Health::Healthy,
                // In the hysteresis band, or no epoch yet: hold. Shedding
                // blind while uncalibrated would refuse the very traffic
                // calibration needs.
                _ => Health::Hold,
            }
        };

        let mut shed = self.shed_fraction();
        let mut headroom = None;
        match health {
            Health::Violating => {
                // Model-driven floor: the headroom solve says how much
                // traffic the goal can sustain; `1 − headroom/λ` is the
                // excess to shed. The additive step then ratchets further
                // on every violating epoch the floor underestimates.
                if let Ok(h) = self.reader.admissible_rate(
                    &Query::new()
                        .sla(goal.sla)
                        .target(goal.target_fraction)
                        .upper(self.policy.headroom_upper),
                ) {
                    headroom = Some(h.value);
                }
                let model_shed = match (headroom, rate) {
                    (Some(h), Some(r)) if r > h && r > 0.0 => 1.0 - h / r,
                    _ => 0.0,
                };
                shed = (shed + self.policy.shed_step)
                    .max(model_shed)
                    .min(self.policy.max_shed);
            }
            Health::Healthy => {
                shed *= self.policy.recover_factor;
                if shed < 0.005 {
                    shed = 0.0;
                }
            }
            Health::Hold => {}
        }
        self.shed_bits.store(shed.to_bits(), Ordering::Relaxed);

        let at = self.reader.event_time();
        let mut scored = 0u32;
        for d in &state.drift {
            if let (Some(observed), Some(predicted)) = (d.observed, d.predicted) {
                if inner
                    .detector
                    .observe(at, d.sla, observed, predicted)
                    .is_some()
                {
                    scored += 1;
                }
            }
        }

        inner.report = TickReport {
            at,
            generation,
            attainment: att_value,
            headroom,
            rate,
            unstable,
            violating: health == Health::Violating,
            shed,
            anomalies_scored: scored,
        };
        inner.ticks += 1;
        inner.report
    }

    /// Counters + latest tick, snapshotted together.
    pub fn stats(&self) -> CtrlStats {
        let inner = self.inner.lock().expect("controller stats lock");
        CtrlStats {
            shed_fraction: self.shed_fraction(),
            admitted_total: self.admitted_total.load(Ordering::Relaxed),
            shed_total: [
                self.shed_total[0].load(Ordering::Relaxed),
                self.shed_total[1].load(Ordering::Relaxed),
                self.shed_total[2].load(Ordering::Relaxed),
            ],
            ticks: inner.ticks,
            anomalies_total: inner.detector.total(),
            scores: inner.detector.scores(),
            last: inner.report,
        }
    }

    /// Retained anomalies, oldest first.
    pub fn anomalies(&self) -> Vec<Anomaly> {
        let inner = self.inner.lock().expect("controller anomalies lock");
        inner.detector.anomalies().copied().collect()
    }

    /// Spawns a wall-clock poller calling [`tick`](Controller::tick) every
    /// `interval` until the returned [`Ticker`] is dropped or the service
    /// disconnects. Production deployments use this; tests usually drive
    /// `tick()` by hand for determinism.
    pub fn spawn_ticker(self: &Arc<Self>, interval: Duration) -> Ticker {
        let ctrl = Arc::clone(self);
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("cos-ctrl".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Acquire) {
                    if ctrl.reader.is_closed() {
                        break;
                    }
                    ctrl.tick();
                    std::thread::park_timeout(interval);
                }
            })
            .expect("spawn controller ticker");
        Ticker {
            stop,
            join: Some(join),
        }
    }
}

impl std::fmt::Debug for Controller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Controller")
            .field("shed_fraction", &self.shed_fraction())
            .field("policy", &self.policy)
            .finish()
    }
}

/// Owning handle of the background ticker thread; dropping it stops the
/// thread promptly (unpark + flag).
pub struct Ticker {
    stop: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl Drop for Ticker {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(join) = self.join.take() {
            join.thread().unpark();
            let _ = join.join();
        }
    }
}

impl std::fmt::Debug for Ticker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticker").finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a live service + controller over a tiny calibration base.
    fn rig(policy: AdmissionPolicy) -> (cos_serve::SlaService, Arc<Controller>) {
        use cos_distr::{Degenerate, Gamma};
        use cos_queueing::from_distribution;
        let base = cos_serve::CalibrationBase {
            index_law: from_distribution(Gamma::new(3.0, 250.0)),
            meta_law: from_distribution(Gamma::new(2.5, 312.5)),
            data_law: from_distribution(Gamma::new(3.5, 245.0)),
            parse_be: from_distribution(Degenerate::new(0.0005)),
            parse_fe: from_distribution(Degenerate::new(0.0003)),
            devices: 2,
            processes_per_device: 1,
            frontend_processes: 3,
        };
        let service = cos_serve::SlaService::new(base, cos_serve::ServeConfig::default());
        let ctrl = Arc::new(
            Controller::new(
                service.reader(),
                CtrlConfig {
                    admission: policy,
                    ..CtrlConfig::default()
                },
            )
            .unwrap(),
        );
        (service, ctrl)
    }

    /// A steady healthy stream: every completion fast, moderate miss mix.
    fn feed(service: &mut cos_serve::SlaService, from: f64, duration: f64, latency: f64) {
        use cos_serve::TelemetryEvent;
        let dt = 1.0 / 40.0;
        let mut t = from;
        let mut i = 0u64;
        while t < from + duration {
            for d in 0..2 {
                service.ingest(TelemetryEvent::Arrival { at: t, device: d });
                service.ingest(TelemetryEvent::DataRead { at: t, device: d });
                for class in cos_serve::OpClass::ALL {
                    let missed = i % 10 < 3;
                    service.ingest(TelemetryEvent::Op {
                        at: t,
                        device: d,
                        class,
                        latency: if missed { 0.010 } else { 0.000_002 },
                    });
                    i += 1;
                }
                service.ingest(TelemetryEvent::Completion {
                    arrival: t,
                    latency,
                    device: d,
                });
            }
            t += dt;
        }
    }

    #[test]
    fn decide_admits_everything_at_zero_shed() {
        let (_service, ctrl) = rig(AdmissionPolicy::default());
        for class in [
            SlaClass::Batch,
            SlaClass::Standard,
            SlaClass::Premium,
            SlaClass::Control,
        ] {
            for _ in 0..100 {
                assert!(ctrl.decide(class).is_ok());
            }
        }
        assert_eq!(ctrl.stats().admitted_total, 400);
        assert_eq!(ctrl.stats().shed_total, [0, 0, 0]);
    }

    #[test]
    fn error_diffusion_sheds_the_exact_fraction() {
        let (_service, ctrl) = rig(AdmissionPolicy::default());
        ctrl.force_shed(0.5);
        // Batch: effective = 0.5 → exactly every second request sheds.
        let shed = (0..1000)
            .filter(|_| ctrl.decide(SlaClass::Batch).is_err())
            .count();
        assert_eq!(shed, 500);
        // Standard: (0.5 − 0.25)/0.75 = 1/3 of requests (±1: a third is
        // not exactly representable in the fixed-point accumulator).
        let shed = (0..900)
            .filter(|_| ctrl.decide(SlaClass::Standard).is_err())
            .count() as i64;
        assert!((shed - 300).abs() <= 1, "standard shed {shed}");
        // Premium: below its floor — nothing sheds. Control: never.
        assert_eq!(
            (0..100)
                .filter(|_| ctrl.decide(SlaClass::Premium).is_err())
                .count(),
            0
        );
        assert_eq!(
            (0..100)
                .filter(|_| ctrl.decide(SlaClass::Control).is_err())
                .count(),
            0
        );
        let stats = ctrl.stats();
        assert_eq!(stats.shed_total[0], 500);
        assert_eq!(stats.shed_total[2], 0);
    }

    #[test]
    fn tick_is_generation_gated() {
        let (mut service, ctrl) = rig(AdmissionPolicy::default());
        feed(&mut service, 0.0, 20.0, 0.004);
        service.refit_now();
        let first = ctrl.tick();
        assert!(first.attainment.is_some());
        // No new publication: the tick is a no-op returning the same report.
        let second = ctrl.tick();
        assert_eq!(first, second);
        assert_eq!(ctrl.stats().ticks, 1);
        service.refit_now();
        ctrl.tick();
        assert_eq!(ctrl.stats().ticks, 2);
    }

    #[test]
    fn healthy_epochs_decay_a_forced_shed_to_zero() {
        let (mut service, ctrl) = rig(AdmissionPolicy {
            goal: cos_model::SlaGoal::new(0.050, 0.5),
            ..AdmissionPolicy::default()
        });
        feed(&mut service, 0.0, 20.0, 0.004);
        service.refit_now();
        ctrl.force_shed(0.4);
        let mut last = 0.4;
        for round in 0..6 {
            service.refit_now();
            let r = ctrl.tick();
            assert!(
                r.shed <= last,
                "round {round}: shed must not grow ({} > {last})",
                r.shed
            );
            last = r.shed;
        }
        assert_eq!(last, 0.0, "multiplicative decay must snap to zero");
    }

    #[test]
    fn violating_epochs_shed_and_report_it() {
        // Goal impossible to meet: every completion takes 30 ms against a
        // 10 ms bound at 99.9%.
        let (mut service, ctrl) = rig(AdmissionPolicy {
            goal: cos_model::SlaGoal::new(0.010, 0.999),
            ..AdmissionPolicy::default()
        });
        feed(&mut service, 0.0, 20.0, 0.030);
        service.refit_now();
        let r = ctrl.tick();
        assert!(r.violating, "attainment {:?}", r.attainment);
        assert!(r.shed > 0.0);
        let shed = (0..1000)
            .filter(|_| ctrl.decide(SlaClass::Batch).is_err())
            .count();
        assert!(shed > 0, "a violating epoch must shed some batch load");
    }

    #[test]
    fn uncalibrated_service_holds_at_zero_shed() {
        let (_service, ctrl) = rig(AdmissionPolicy::default());
        let r = ctrl.tick();
        assert!(!r.violating);
        assert_eq!(r.shed, 0.0);
        assert!(r.attainment.is_none());
        assert!(ctrl.decide(SlaClass::Batch).is_ok());
    }

    #[test]
    fn tenant_shed_budgets_record_clamp_and_remove() {
        let (_service, ctrl) = rig(AdmissionPolicy::default());
        let blue = TenantId::new("blue").unwrap();
        assert!(ctrl.tenant_budgets().is_empty());
        assert_eq!(ctrl.tenant_budgets().cap_for(&blue), None);
        ctrl.tenant_budgets().set(blue.clone(), 1.5);
        assert_eq!(ctrl.tenant_budgets().get(&blue), Some(1.0), "clamped");
        ctrl.tenant_budgets().set(blue.clone(), 0.25);
        assert_eq!(ctrl.tenant_budgets().len(), 1);
        assert_eq!(ctrl.tenant_budgets().cap_for(&blue), Some(0.25));
        // At zero shed a budget changes nothing: min(0, 0.25) = 0.
        for _ in 0..100 {
            assert!(ctrl.decide_for(&blue, SlaClass::Standard).is_ok());
        }
        assert_eq!(ctrl.tenant_budgets().remove(&blue), Some(0.25));
        assert_eq!(ctrl.tenant_budgets().remove(&blue), None, "idempotent");
        assert!(ctrl.tenant_budgets().is_empty());
        assert_eq!(ctrl.tenant_budgets().cap_for(&blue), None);
    }

    /// The satellite contract: under one violating epoch, two tenants
    /// with different budgets shed differently — an exempt tenant
    /// (budget 0) loses nothing while an uncapped tenant sheds the
    /// fleet-wide batch fraction, and a fractional budget lands between.
    #[test]
    fn tenant_budgets_cap_shedding_under_a_violating_epoch() {
        // Same impossible goal as `violating_epochs_shed_and_report_it`:
        // 30 ms completions against a 10 ms bound at 99.9%.
        let (mut service, ctrl) = rig(AdmissionPolicy {
            goal: cos_model::SlaGoal::new(0.010, 0.999),
            ..AdmissionPolicy::default()
        });
        feed(&mut service, 0.0, 20.0, 0.030);
        service.refit_now();
        let report = ctrl.tick();
        assert!(report.violating);
        assert!(report.shed > 0.0);

        let gold = TenantId::new("gold").unwrap();
        let bulk = TenantId::new("bulk").unwrap();
        let half = TenantId::new("half").unwrap();
        ctrl.tenant_budgets().set(gold.clone(), 0.0);
        ctrl.tenant_budgets().set(half.clone(), report.shed / 2.0);
        // `bulk` records no budget: uncapped.

        let shed_count = |tenant: &TenantId| {
            (0..1000)
                .filter(|_| ctrl.decide_for(tenant, SlaClass::Batch).is_err())
                .count()
        };
        let gold_shed = shed_count(&gold);
        let half_shed = shed_count(&half);
        let bulk_shed = shed_count(&bulk);
        assert_eq!(gold_shed, 0, "budget 0 exempts the tenant entirely");
        assert!(
            bulk_shed > 0,
            "uncapped tenant must shed under a violating epoch"
        );
        assert!(
            half_shed > 0 && half_shed < bulk_shed,
            "a fractional budget must land between exempt and uncapped \
             (half {half_shed}, bulk {bulk_shed})"
        );
        // Control-plane traffic stays unsheddable regardless of tenant.
        assert!(ctrl.decide_for(&bulk, SlaClass::Control).is_ok());
    }

    #[test]
    fn ticker_thread_polls_and_stops_on_drop() {
        let (mut service, ctrl) = rig(AdmissionPolicy::default());
        feed(&mut service, 0.0, 20.0, 0.004);
        service.refit_now();
        let ticker = ctrl.spawn_ticker(Duration::from_millis(1));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ctrl.stats().ticks == 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(ctrl.stats().ticks >= 1, "ticker must consume the epoch");
        drop(ticker);
    }
}
