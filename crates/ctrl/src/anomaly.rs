//! Streaming anomaly detection over drift residuals.
//!
//! The service's drift monitor already pairs *observed* attainment with the
//! *model-predicted* attainment per SLA (see `cos_serve::DriftReport`); the
//! detector here scores the residual stream `r = observed − predicted` with
//! a streaming robust z-score: an EWMA tracks the residual's running center
//! and an EWMA of absolute deviations tracks its scale (a streaming stand-in
//! for the median absolute deviation — resistant to the very outliers it is
//! meant to flag, because one spike moves the scale by at most `alpha` of
//! itself). A residual more than [`AnomalyConfig::threshold`] scales away
//! from center is recorded as a scored [`Anomaly`].
//!
//! The detector is deliberately *level-triggered on change*: a fault first
//! shows up as a residual spike (old epoch still predicts health, observed
//! attainment collapses) and is scored immediately — typically before the
//! next re-fit folds the fault into the model. After calibration absorbs
//! the fault the residual re-centers and scoring stops, which is exactly
//! right: a *persistently degraded but correctly predicted* system is the
//! admission controller's business, not the anomaly detector's.

use std::collections::VecDeque;

use crate::admission::InvalidPolicy;

/// Knobs of the streaming robust z-score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnomalyConfig {
    /// EWMA weight of the newest residual, in `(0, 1]`.
    pub alpha: f64,
    /// Robust z-score at or above which a residual is anomalous.
    pub threshold: f64,
    /// Residuals a stream must absorb before it may score (warm-up guard:
    /// the first published verdicts land on an empty history).
    pub min_samples: u64,
    /// Scale floor: a perfectly quiet stream must not turn the z-score
    /// into a divide-by-almost-zero alarm bell. Attainments live in
    /// `[0, 1]`, so this is an absolute attainment gap.
    pub min_scale: f64,
    /// Ring-buffer capacity of retained anomalies (oldest evicted first).
    pub capacity: usize,
}

impl Default for AnomalyConfig {
    fn default() -> Self {
        AnomalyConfig {
            alpha: 0.25,
            threshold: 3.0,
            min_samples: 3,
            min_scale: 0.01,
            capacity: 64,
        }
    }
}

impl AnomalyConfig {
    /// Validates the knobs.
    pub fn validate(&self) -> Result<(), InvalidPolicy> {
        let err = |field: &'static str, reason: String| Err(InvalidPolicy { field, reason });
        if !self.alpha.is_finite() || self.alpha <= 0.0 || self.alpha > 1.0 {
            return err("alpha", format!("{} must be in (0, 1]", self.alpha));
        }
        if !self.threshold.is_finite() || self.threshold <= 0.0 {
            return err(
                "threshold",
                format!("{} must be finite and positive", self.threshold),
            );
        }
        if !self.min_scale.is_finite() || self.min_scale <= 0.0 {
            return err(
                "min_scale",
                format!("{} must be finite and positive", self.min_scale),
            );
        }
        if self.capacity == 0 {
            return err("capacity", "must retain at least one anomaly".into());
        }
        Ok(())
    }
}

/// One scored anomaly: at event time `at`, the observed attainment of
/// SLA `sla` sat `score` robust standard deviations away from the running
/// residual center.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Anomaly {
    /// Event time of the publication that carried the residual.
    pub at: f64,
    /// The SLA bound (seconds) whose attainment misbehaved.
    pub sla: f64,
    /// Robust z-score of the residual (always ≥ the threshold).
    pub score: f64,
    /// Observed attainment over the drift window.
    pub observed: f64,
    /// Model-predicted attainment at the same instant.
    pub predicted: f64,
}

/// Per-SLA residual stream state.
#[derive(Debug, Clone, Copy)]
struct Stream {
    sla: f64,
    /// EWMA of the residual.
    center: f64,
    /// EWMA of absolute deviations from the center (the robust scale).
    scale: f64,
    /// Residuals absorbed.
    n: u64,
    /// Most recent z-score (0 until the stream warms up).
    last_score: f64,
}

/// The streaming detector. Single-writer by design (the controller feeds
/// it under its tick lock); readers take cheap snapshots.
#[derive(Debug)]
pub struct AnomalyDetector {
    config: AnomalyConfig,
    streams: Vec<Stream>,
    ring: VecDeque<Anomaly>,
    total: u64,
}

impl AnomalyDetector {
    /// Creates a detector with validated knobs.
    pub fn new(config: AnomalyConfig) -> Result<AnomalyDetector, InvalidPolicy> {
        config.validate()?;
        Ok(AnomalyDetector {
            config,
            streams: Vec::new(),
            ring: VecDeque::new(),
            total: 0,
        })
    }

    /// Feeds one drift verdict; returns the anomaly if the residual scored
    /// at or above the threshold.
    pub fn observe(&mut self, at: f64, sla: f64, observed: f64, predicted: f64) -> Option<Anomaly> {
        let residual = observed - predicted;
        if !residual.is_finite() {
            return None;
        }
        let c = self.config;
        let idx = match self.streams.iter().position(|s| s.sla == sla) {
            Some(i) => i,
            None => {
                self.streams.push(Stream {
                    sla,
                    center: 0.0,
                    scale: 0.0,
                    n: 0,
                    last_score: 0.0,
                });
                self.streams.len() - 1
            }
        };
        let s = &mut self.streams[idx];
        // Score against history *before* folding the residual in, so the
        // spike is judged by the quiet past, not by itself.
        let mut out = None;
        if s.n >= c.min_samples {
            let z = (residual - s.center).abs() / s.scale.max(c.min_scale);
            s.last_score = z;
            if z >= c.threshold {
                let a = Anomaly {
                    at,
                    sla,
                    score: z,
                    observed,
                    predicted,
                };
                if self.ring.len() == c.capacity {
                    self.ring.pop_front();
                }
                self.ring.push_back(a);
                self.total += 1;
                out = Some(a);
            }
        }
        let s = &mut self.streams[idx];
        let e = residual - s.center;
        s.center += c.alpha * e;
        s.scale += c.alpha * (e.abs() - s.scale);
        s.n += 1;
        out
    }

    /// Retained anomalies, oldest first (bounded by the capacity).
    pub fn anomalies(&self) -> impl Iterator<Item = &Anomaly> {
        self.ring.iter()
    }

    /// Total anomalies ever scored (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-SLA `(sla, latest z-score, residuals absorbed)` — the gauge set
    /// `/metrics` exposes.
    pub fn scores(&self) -> Vec<(f64, f64, u64)> {
        self.streams
            .iter()
            .map(|s| (s.sla, s.last_score, s.n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detector() -> AnomalyDetector {
        AnomalyDetector::new(AnomalyConfig::default()).unwrap()
    }

    #[test]
    fn quiet_residuals_never_score() {
        let mut d = detector();
        for i in 0..50 {
            // Model error jitter well inside the scale floor.
            let obs = 0.95 + 0.002 * ((i % 3) as f64 - 1.0);
            assert!(d.observe(i as f64, 0.05, obs, 0.95).is_none());
        }
        assert_eq!(d.total(), 0);
        assert!(d.anomalies().next().is_none());
    }

    #[test]
    fn a_residual_spike_scores_then_recenters() {
        let mut d = detector();
        for i in 0..10 {
            d.observe(i as f64, 0.05, 0.95, 0.95);
        }
        // Fault: observed attainment collapses 25 points below prediction.
        let a = d.observe(10.0, 0.05, 0.70, 0.95).expect("spike must score");
        assert!(a.score >= 3.0, "score {}", a.score);
        assert_eq!(a.sla, 0.05);
        assert_eq!(d.total(), 1);
        // Once the fault persists, the EWMA absorbs it and scoring stops —
        // the detector flags *change*, not steady-state degradation.
        for i in 11..40 {
            d.observe(i as f64, 0.05, 0.70, 0.70);
        }
        assert!(d.observe(40.0, 0.05, 0.70, 0.70).is_none());
    }

    #[test]
    fn warmup_guard_suppresses_the_first_residuals() {
        let mut d = detector();
        // Even a huge first residual cannot score before min_samples.
        assert!(d.observe(0.0, 0.05, 0.1, 0.99).is_none());
        assert!(d.observe(1.0, 0.05, 0.1, 0.99).is_none());
        assert_eq!(d.total(), 0);
    }

    #[test]
    fn streams_are_tracked_per_sla() {
        let mut d = detector();
        for i in 0..10 {
            d.observe(i as f64, 0.01, 0.8, 0.8);
            d.observe(i as f64, 0.05, 0.99, 0.99);
        }
        // Only the 10 ms stream spikes.
        let a = d.observe(10.0, 0.01, 0.3, 0.8).unwrap();
        assert_eq!(a.sla, 0.01);
        assert!(d.observe(10.0, 0.05, 0.99, 0.99).is_none());
        let scores = d.scores();
        assert_eq!(scores.len(), 2);
        assert!(scores.iter().any(|&(sla, z, _)| sla == 0.01 && z >= 3.0));
    }

    #[test]
    fn ring_is_bounded_and_total_keeps_counting() {
        let mut d = AnomalyDetector::new(AnomalyConfig {
            capacity: 4,
            ..AnomalyConfig::default()
        })
        .unwrap();
        // Six spike/quiet cycles: each quiet stretch re-converges the
        // EWMAs, so every spike scores against a calm history again.
        let mut scored = 0;
        let mut t = 0.0;
        for _ in 0..6 {
            for _ in 0..30 {
                d.observe(t, 0.05, 0.95, 0.95);
                t += 1.0;
            }
            if d.observe(t, 0.05, 0.1, 0.95).is_some() {
                scored += 1;
            }
            t += 1.0;
        }
        assert!(scored > 4, "expected repeated scoring, got {scored}");
        assert_eq!(d.anomalies().count(), 4, "ring bounded at capacity");
        assert_eq!(d.total(), scored);
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        let bad = [
            AnomalyConfig {
                alpha: 0.0,
                ..AnomalyConfig::default()
            },
            AnomalyConfig {
                threshold: f64::NAN,
                ..AnomalyConfig::default()
            },
            AnomalyConfig {
                min_scale: 0.0,
                ..AnomalyConfig::default()
            },
            AnomalyConfig {
                capacity: 0,
                ..AnomalyConfig::default()
            },
        ];
        for c in bad {
            assert!(c.validate().is_err(), "{c:?}");
        }
        assert!(AnomalyConfig::default().validate().is_ok());
    }
}
