//! Admission policy: SLA classes, the shed ladder, and the AIMD knobs.
//!
//! The controller maintains one *total* shed fraction `f ∈ [0, 1]`; each
//! request class maps it to its own effective fraction through a priority
//! ladder (see [`SlaClass::effective_shed`]): batch traffic absorbs the
//! first wave of shedding, standard traffic the second, premium traffic
//! only under severe overload, and control-plane traffic (telemetry,
//! status, metrics) is never shed — starving the very feedback loop that
//! decides when to re-admit would wedge the controller in the shed state.

/// Priority class of one request, decided by the gate from the route and
/// the `x-sla-class` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlaClass {
    /// Bulk / best-effort traffic: first to be shed.
    Batch,
    /// The default class for prediction queries.
    Standard,
    /// High-priority tenants: shed only under severe overload.
    Premium,
    /// Control-plane traffic (telemetry ingest, status, metrics,
    /// anomalies): never shed.
    Control,
}

impl SlaClass {
    /// The sheddable classes, in shed order (lowest priority first). Used
    /// to index per-class counters; [`SlaClass::Control`] has no slot.
    pub const SHEDDABLE: [SlaClass; 3] = [SlaClass::Batch, SlaClass::Standard, SlaClass::Premium];

    /// Slot of this class in per-class arrays (`None` for `Control`).
    pub fn slot(self) -> Option<usize> {
        match self {
            SlaClass::Batch => Some(0),
            SlaClass::Standard => Some(1),
            SlaClass::Premium => Some(2),
            SlaClass::Control => None,
        }
    }

    /// Total-shed fraction at which this class *starts* shedding.
    fn floor(self) -> f64 {
        match self {
            SlaClass::Batch => 0.0,
            SlaClass::Standard => 0.25,
            SlaClass::Premium => 0.75,
            SlaClass::Control => f64::INFINITY,
        }
    }

    /// This class's own shed fraction when the total is `f`: zero below
    /// the class floor, then rising linearly to 1 at `f = 1`. The ladder
    /// ranks classes strictly — at any total, a higher-priority class
    /// sheds no more than a lower-priority one.
    pub fn effective_shed(self, f: f64) -> f64 {
        let floor = self.floor();
        if f <= floor {
            return 0.0;
        }
        ((f - floor) / (1.0 - floor)).clamp(0.0, 1.0)
    }

    /// Parses the `x-sla-class` request header (case-insensitive).
    /// `Control` is not nameable from the wire — it is assigned by route.
    pub fn from_header(value: &str) -> Option<SlaClass> {
        let v = value.trim();
        if v.eq_ignore_ascii_case("batch") {
            Some(SlaClass::Batch)
        } else if v.eq_ignore_ascii_case("standard") {
            Some(SlaClass::Standard)
        } else if v.eq_ignore_ascii_case("premium") {
            Some(SlaClass::Premium)
        } else {
            None
        }
    }

    /// Stable lowercase name (metrics label / JSON value).
    pub fn name(self) -> &'static str {
        match self {
            SlaClass::Batch => "batch",
            SlaClass::Standard => "standard",
            SlaClass::Premium => "premium",
            SlaClass::Control => "control",
        }
    }
}

/// The typed refusal [`Controller::decide`](crate::Controller::decide)
/// answers for shed load; the gate turns it into
/// `429 Too Many Requests` with a `Retry-After` header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shed {
    /// The class the shed request was classified as.
    pub class: SlaClass,
    /// Suggested client back-off, seconds (the `Retry-After` value).
    pub retry_after: u32,
}

impl std::fmt::Display for Shed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "request shed (class {}, retry after {} s): predicted SLA attainment below target",
            self.class.name(),
            self.retry_after
        )
    }
}

impl std::error::Error for Shed {}

/// The hysteresis/AIMD policy of the admission controller.
///
/// Per published epoch the controller classifies the system as *violating*
/// (predicted attainment below `goal.target_fraction - hysteresis`, or the
/// re-fit itself failed on an unstable operating point), *healthy*
/// (attainment at or above the target), or *in the band* between the two.
/// Violations raise the shed fraction additively by `shed_step` — floored
/// at the model-driven estimate `1 − headroom/λ`, so the first violating
/// epoch already sheds roughly the model's estimated excess instead of
/// creeping up — and recovery decays it multiplicatively by
/// `recover_factor`. The in-between band holds the fraction steady, which
/// is the hysteresis that stops flapping at the threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionPolicy {
    /// The SLA the controller defends: latency bound + required attainment.
    pub goal: cos_model::SlaGoal,
    /// Upper bracket (req/s) for the headroom solve.
    pub headroom_upper: f64,
    /// Additive shed increase per violating epoch, in `(0, 1]`.
    pub shed_step: f64,
    /// Multiplicative shed decay per healthy epoch, in `[0, 1)`.
    pub recover_factor: f64,
    /// Attainment band below the target treated as "close enough to hold".
    pub hysteresis: f64,
    /// Hard cap on the total shed fraction, in `(0, 1]`.
    pub max_shed: f64,
    /// `Retry-After` seconds answered with every shed.
    pub retry_after: u32,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            goal: cos_model::SlaGoal::new(0.050, 0.9),
            headroom_upper: 10_000.0,
            shed_step: 0.05,
            recover_factor: 0.25,
            hysteresis: 0.02,
            max_shed: 0.95,
            retry_after: 1,
        }
    }
}

/// An [`AdmissionPolicy`] (or [`AnomalyConfig`](crate::AnomalyConfig))
/// value the controller refused, with the field and the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidPolicy {
    /// The offending field, as named on the config struct.
    pub field: &'static str,
    /// Why the value is nonsensical.
    pub reason: String,
}

impl std::fmt::Display for InvalidPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid controller policy {}: {}",
            self.field, self.reason
        )
    }
}

impl std::error::Error for InvalidPolicy {}

impl AdmissionPolicy {
    /// Validates the knobs.
    pub fn validate(&self) -> Result<(), InvalidPolicy> {
        let err = |field: &'static str, reason: String| Err(InvalidPolicy { field, reason });
        if !self.headroom_upper.is_finite() || self.headroom_upper <= 0.0 {
            return err(
                "headroom_upper",
                format!("{} must be finite and positive", self.headroom_upper),
            );
        }
        if !self.shed_step.is_finite() || self.shed_step <= 0.0 || self.shed_step > 1.0 {
            return err("shed_step", format!("{} must be in (0, 1]", self.shed_step));
        }
        if !self.recover_factor.is_finite() || !(0.0..1.0).contains(&self.recover_factor) {
            return err(
                "recover_factor",
                format!("{} must be in [0, 1)", self.recover_factor),
            );
        }
        if !self.hysteresis.is_finite() || self.hysteresis < 0.0 || self.hysteresis >= 1.0 {
            return err(
                "hysteresis",
                format!("{} must be in [0, 1)", self.hysteresis),
            );
        }
        if !self.max_shed.is_finite() || self.max_shed <= 0.0 || self.max_shed > 1.0 {
            return err("max_shed", format!("{} must be in (0, 1]", self.max_shed));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_ranks_classes_strictly() {
        for f in [0.0, 0.1, 0.3, 0.5, 0.76, 0.9, 1.0] {
            let b = SlaClass::Batch.effective_shed(f);
            let s = SlaClass::Standard.effective_shed(f);
            let p = SlaClass::Premium.effective_shed(f);
            assert!(b >= s && s >= p, "ladder inverted at f={f}: {b} {s} {p}");
            assert_eq!(SlaClass::Control.effective_shed(f), 0.0);
        }
        // Below the floors nothing sheds; at f = 1 every sheddable class
        // sheds everything.
        assert_eq!(SlaClass::Standard.effective_shed(0.2), 0.0);
        assert_eq!(SlaClass::Premium.effective_shed(0.5), 0.0);
        for c in SlaClass::SHEDDABLE {
            assert_eq!(c.effective_shed(1.0), 1.0);
            assert_eq!(c.effective_shed(0.0), 0.0);
        }
    }

    #[test]
    fn header_parsing_is_case_insensitive_and_rejects_control() {
        assert_eq!(SlaClass::from_header("batch"), Some(SlaClass::Batch));
        assert_eq!(SlaClass::from_header(" Premium "), Some(SlaClass::Premium));
        assert_eq!(SlaClass::from_header("STANDARD"), Some(SlaClass::Standard));
        assert_eq!(SlaClass::from_header("control"), None);
        assert_eq!(SlaClass::from_header("gold"), None);
    }

    #[test]
    fn policy_validation_rejects_nonsense() {
        assert!(AdmissionPolicy::default().validate().is_ok());
        let cases: &[(AdmissionPolicy, &str)] = &[
            (
                AdmissionPolicy {
                    headroom_upper: 0.0,
                    ..AdmissionPolicy::default()
                },
                "headroom_upper",
            ),
            (
                AdmissionPolicy {
                    shed_step: 0.0,
                    ..AdmissionPolicy::default()
                },
                "shed_step",
            ),
            (
                AdmissionPolicy {
                    recover_factor: 1.0,
                    ..AdmissionPolicy::default()
                },
                "recover_factor",
            ),
            (
                AdmissionPolicy {
                    hysteresis: -0.1,
                    ..AdmissionPolicy::default()
                },
                "hysteresis",
            ),
            (
                AdmissionPolicy {
                    max_shed: 1.5,
                    ..AdmissionPolicy::default()
                },
                "max_shed",
            ),
        ];
        for (p, field) in cases {
            let e = p.validate().unwrap_err();
            assert_eq!(e.field, *field);
            assert!(e.to_string().contains(field), "{e}");
        }
    }

    #[test]
    fn shed_displays_class_and_backoff() {
        let s = Shed {
            class: SlaClass::Batch,
            retry_after: 2,
        };
        assert!(s.to_string().contains("batch"));
        assert!(s.to_string().contains("2 s"));
    }
}
