//! # cos-ctrl
//!
//! The control loop over the prediction stack: the piece that *acts* on
//! the paper's predictions instead of only reporting them. The paper's
//! headline use case is capacity planning — "will the SLA hold at this
//! load?" — and the natural operational consequence is admission control:
//! when the fitted Eq. 3 mixture model says attainment is about to fall
//! below target, refuse just enough load (and just the right load) to
//! keep the promise for everyone else.
//!
//! Three pieces, std-only like the rest of the workspace:
//!
//! * [`admission`] — SLA classes with a priority shed ladder, the typed
//!   [`Shed`] refusal, and the hysteresis/AIMD [`AdmissionPolicy`];
//! * [`anomaly`] — a streaming robust z-score detector over the drift
//!   residuals (observed vs model-predicted attainment);
//! * [`controller`] — the [`Controller`] combining both over a lock-free
//!   [`cos_serve::SnapshotReader`]: a sub-microsecond per-request
//!   [`decide`](Controller::decide) for the gate's hot path and a
//!   generation-gated [`tick`](Controller::tick) that re-evaluates policy
//!   exactly once per published re-fit.
//!
//! The distinctive design choice is that the controller is **model-driven
//! first, feedback-driven second**: on the first violating epoch it jumps
//! straight to the shed fraction the headroom solver implies
//! (`1 − headroom/λ`) rather than probing its way up, and only then lets
//! the additive-increase / multiplicative-decrease loop correct what the
//! model got wrong. Fault-injection coverage lives in `cos-storesim`'s
//! chaos harness and the repo-level `tests/control_loop.rs`.

#![warn(missing_docs)]

pub mod admission;
pub mod anomaly;
pub mod controller;

pub use admission::{AdmissionPolicy, InvalidPolicy, Shed, SlaClass};
pub use anomaly::{Anomaly, AnomalyConfig, AnomalyDetector};
pub use controller::{Controller, CtrlConfig, CtrlStats, TenantShedBudgets, TickReport, Ticker};
