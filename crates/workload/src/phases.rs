//! The paper's three-phase load schedule (§V-B).
//!
//! *Warmup* (fixed rate, populates caches), *transition* (low fixed rate),
//! then a *benchmarking* sweep in which the arrival rate steps from a start
//! to an end value, holding each rate for a fixed window. The paper holds
//! 5 minutes per rate with step 5 req/s; a `time_scale` knob compresses the
//! schedule so test and bench runs finish quickly while keeping the same
//! rate ladder.

/// One constant-rate segment of the schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Arrival rate in requests per second.
    pub rate: f64,
    /// Duration in seconds.
    pub duration: f64,
    /// Whether latencies in this segment count toward the evaluation.
    pub measured: bool,
}

/// The full schedule.
#[derive(Debug, Clone)]
pub struct PhaseSchedule {
    segments: Vec<Segment>,
}

/// Configuration mirroring §V-B.
#[derive(Debug, Clone)]
pub struct PhaseConfig {
    /// Warmup arrival rate (paper: 300 for S1, 500 for S16).
    pub warmup_rate: f64,
    /// Warmup duration in seconds (paper: 3 h).
    pub warmup_duration: f64,
    /// Transition rate (paper: 10 req/s).
    pub transition_rate: f64,
    /// Transition duration in seconds (paper: 1 h).
    pub transition_duration: f64,
    /// First benchmarking rate (paper: 10).
    pub sweep_start: f64,
    /// Last benchmarking rate, inclusive (paper: 350 for S1, 600 for S16).
    pub sweep_end: f64,
    /// Rate increment (paper: 5).
    pub sweep_step: f64,
    /// Hold time per rate in seconds (paper: 300 s).
    pub hold: f64,
    /// Uniform time compression factor (1.0 = paper-faithful).
    pub time_scale: f64,
}

impl PhaseConfig {
    /// The paper's S1 schedule.
    pub fn paper_s1() -> Self {
        PhaseConfig {
            warmup_rate: 300.0,
            warmup_duration: 3.0 * 3600.0,
            transition_rate: 10.0,
            transition_duration: 3600.0,
            sweep_start: 10.0,
            sweep_end: 350.0,
            sweep_step: 5.0,
            hold: 300.0,
            time_scale: 1.0,
        }
    }

    /// The paper's S16 schedule.
    pub fn paper_s16() -> Self {
        PhaseConfig {
            warmup_rate: 500.0,
            sweep_end: 600.0,
            ..PhaseConfig::paper_s1()
        }
    }

    /// Applies a time compression factor (durations divide by `scale`).
    pub fn scaled(mut self, scale: f64) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "time scale must be positive"
        );
        self.time_scale = scale;
        self
    }
}

impl PhaseSchedule {
    /// Builds the schedule from a configuration.
    ///
    /// # Panics
    /// Panics on non-positive rates/durations or an empty sweep.
    pub fn new(config: &PhaseConfig) -> Self {
        assert!(config.warmup_rate > 0.0 && config.transition_rate > 0.0);
        assert!(config.sweep_step > 0.0 && config.sweep_end >= config.sweep_start);
        assert!(config.hold > 0.0 && config.time_scale > 0.0);
        let k = 1.0 / config.time_scale;
        let mut segments = Vec::new();
        if config.warmup_duration > 0.0 {
            segments.push(Segment {
                rate: config.warmup_rate,
                duration: config.warmup_duration * k,
                measured: false,
            });
        }
        if config.transition_duration > 0.0 {
            segments.push(Segment {
                rate: config.transition_rate,
                duration: config.transition_duration * k,
                measured: false,
            });
        }
        let mut rate = config.sweep_start;
        while rate <= config.sweep_end + 1e-9 {
            segments.push(Segment {
                rate,
                duration: config.hold * k,
                measured: true,
            });
            rate += config.sweep_step;
        }
        PhaseSchedule { segments }
    }

    /// All segments in order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Only the measured (benchmarking) segments.
    pub fn measured_segments(&self) -> impl Iterator<Item = &Segment> {
        self.segments.iter().filter(|s| s.measured)
    }

    /// Total schedule duration in seconds.
    pub fn total_duration(&self) -> f64 {
        self.segments.iter().map(|s| s.duration).sum()
    }

    /// The arrival rate in force at absolute time `t` (`None` past the end).
    pub fn rate_at(&self, t: f64) -> Option<f64> {
        let mut acc = 0.0;
        for s in &self.segments {
            acc += s.duration;
            if t < acc {
                return Some(s.rate);
            }
        }
        None
    }

    /// Start/end times of each measured segment, with its rate.
    pub fn measured_windows(&self) -> Vec<(f64, f64, f64)> {
        let mut acc = 0.0;
        let mut out = Vec::new();
        for s in &self.segments {
            let start = acc;
            acc += s.duration;
            if s.measured {
                out.push((start, acc, s.rate));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_s1_shape() {
        let sched = PhaseSchedule::new(&PhaseConfig::paper_s1());
        // (350 − 10)/5 + 1 = 69 measured segments.
        assert_eq!(sched.measured_segments().count(), 69);
        assert_eq!(sched.segments().len(), 71);
        let total = sched.total_duration();
        assert!((total - (3.0 * 3600.0 + 3600.0 + 69.0 * 300.0)).abs() < 1e-6);
    }

    #[test]
    fn paper_s16_extends_sweep() {
        let sched = PhaseSchedule::new(&PhaseConfig::paper_s16());
        // (600 − 10)/5 + 1 = 119 measured segments.
        assert_eq!(sched.measured_segments().count(), 119);
        assert_eq!(sched.segments()[0].rate, 500.0);
    }

    #[test]
    fn scaling_compresses_time_not_rates() {
        let base = PhaseSchedule::new(&PhaseConfig::paper_s1());
        let fast = PhaseSchedule::new(&PhaseConfig::paper_s1().scaled(60.0));
        assert_eq!(base.segments().len(), fast.segments().len());
        assert!((fast.total_duration() - base.total_duration() / 60.0).abs() < 1e-6);
        for (a, b) in base.segments().iter().zip(fast.segments()) {
            assert_eq!(a.rate, b.rate);
        }
    }

    #[test]
    fn rate_at_walks_segments() {
        let cfg = PhaseConfig {
            warmup_rate: 100.0,
            warmup_duration: 10.0,
            transition_rate: 5.0,
            transition_duration: 10.0,
            sweep_start: 10.0,
            sweep_end: 20.0,
            sweep_step: 10.0,
            hold: 10.0,
            time_scale: 1.0,
        };
        let sched = PhaseSchedule::new(&cfg);
        assert_eq!(sched.rate_at(5.0), Some(100.0));
        assert_eq!(sched.rate_at(15.0), Some(5.0));
        assert_eq!(sched.rate_at(25.0), Some(10.0));
        assert_eq!(sched.rate_at(35.0), Some(20.0));
        assert_eq!(sched.rate_at(45.0), None);
    }

    #[test]
    fn measured_windows_align() {
        let cfg = PhaseConfig {
            warmup_rate: 1.0,
            warmup_duration: 100.0,
            transition_rate: 1.0,
            transition_duration: 50.0,
            sweep_start: 10.0,
            sweep_end: 15.0,
            sweep_step: 5.0,
            hold: 30.0,
            time_scale: 1.0,
        };
        let sched = PhaseSchedule::new(&cfg);
        let windows = sched.measured_windows();
        assert_eq!(windows, vec![(150.0, 180.0, 10.0), (180.0, 210.0, 15.0)]);
    }

    #[test]
    fn zero_warmup_is_allowed() {
        let cfg = PhaseConfig {
            warmup_duration: 0.0,
            transition_duration: 0.0,
            ..PhaseConfig::paper_s1()
        };
        let sched = PhaseSchedule::new(&cfg);
        assert!(sched.segments().iter().all(|s| s.measured));
    }
}
