//! Object catalog: the population of blobs with sizes and popularity.
//!
//! The paper replays a Wikipedia media trace whose surviving objects average
//! ~32 KB, and cites the long-tail access distribution of blob stores
//! (\[8\], \[9\]). We synthesize an equivalent catalog: log-normal sizes and
//! Zipf(α) popularity over `n` objects.

use cos_distr::{Distribution, LogNormal};
use rand::RngCore;

/// Identifier of an object in the catalog.
pub type ObjectId = u32;

/// A synthesized object population.
#[derive(Debug, Clone)]
pub struct Catalog {
    sizes: Vec<u32>,
    /// Cumulative popularity weights for sampling (normalized to 1.0 at the
    /// end).
    popularity_cdf: Vec<f64>,
}

/// Configuration for catalog synthesis.
#[derive(Debug, Clone)]
pub struct CatalogConfig {
    /// Number of objects.
    pub objects: usize,
    /// Mean object size in bytes (paper: ~32 KB).
    pub mean_size: f64,
    /// Median object size in bytes (controls the tail heaviness).
    pub median_size: f64,
    /// Zipf exponent for popularity (~0.9–1.1 for web objects).
    pub zipf_exponent: f64,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        CatalogConfig {
            objects: 100_000,
            mean_size: 32.0 * 1024.0,
            median_size: 12.0 * 1024.0,
            zipf_exponent: 0.9,
        }
    }
}

impl Catalog {
    /// Synthesizes a catalog.
    ///
    /// Popularity rank is randomly assigned across object ids, so popular
    /// objects are spread over storage devices exactly as hashing would
    /// spread them.
    ///
    /// # Panics
    /// Panics on zero objects, non-positive sizes, or `median >= mean`.
    pub fn synthesize(config: &CatalogConfig, rng: &mut dyn RngCore) -> Self {
        assert!(config.objects > 0, "catalog needs at least one object");
        assert!(config.zipf_exponent > 0.0, "zipf exponent must be positive");
        let size_dist = LogNormal::from_mean_median(config.mean_size, config.median_size);
        let sizes: Vec<u32> = (0..config.objects)
            .map(|_| size_dist.sample(rng).round().max(1.0) as u32)
            .collect();

        // Zipf weights by id order; ids are already "random" with respect to
        // placement, so no extra shuffle is needed for device balance.
        let mut cdf = Vec::with_capacity(config.objects);
        let mut acc = 0.0;
        for rank in 1..=config.objects {
            acc += 1.0 / (rank as f64).powf(config.zipf_exponent);
            cdf.push(acc);
        }
        let total = acc;
        for w in &mut cdf {
            *w /= total;
        }
        Catalog {
            sizes,
            popularity_cdf: cdf,
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// True when the catalog is empty (never, post-construction).
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Size in bytes of object `id`.
    ///
    /// # Panics
    /// Panics on an out-of-range id.
    pub fn size_of(&self, id: ObjectId) -> u32 {
        self.sizes[id as usize]
    }

    /// Mean object size in bytes.
    pub fn mean_size(&self) -> f64 {
        self.sizes.iter().map(|&s| s as f64).sum::<f64>() / self.len() as f64
    }

    /// Samples an object id according to Zipf popularity.
    pub fn sample(&self, rng: &mut dyn RngCore) -> ObjectId {
        let u = cos_distr::traits::unit(rng);
        self.popularity_cdf.partition_point(|&c| c < u) as ObjectId
    }

    /// The mean size weighted by popularity (the *request* size average,
    /// which differs from the catalog average under Zipf skew; the paper
    /// reports ~32 KB objects but ~10 KB mean request size).
    pub fn mean_request_size(&self) -> f64 {
        let mut prev = 0.0;
        let mut acc = 0.0;
        for (i, &c) in self.popularity_cdf.iter().enumerate() {
            acc += (c - prev) * self.sizes[i] as f64;
            prev = c;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn small_catalog(seed: u64) -> Catalog {
        let mut rng = SmallRng::seed_from_u64(seed);
        Catalog::synthesize(
            &CatalogConfig {
                objects: 10_000,
                ..CatalogConfig::default()
            },
            &mut rng,
        )
    }

    #[test]
    fn sizes_match_configured_mean() {
        let c = small_catalog(1);
        let mean = c.mean_size();
        assert!(
            (mean - 32.0 * 1024.0).abs() / (32.0 * 1024.0) < 0.1,
            "mean size {mean}"
        );
        assert_eq!(c.len(), 10_000);
        assert!(!c.is_empty());
    }

    #[test]
    fn sampling_is_zipf_skewed() {
        let c = small_catalog(2);
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 200_000;
        let mut counts = vec![0u32; c.len()];
        for _ in 0..n {
            counts[c.sample(&mut rng) as usize] += 1;
        }
        // Rank 1 (id 0) should be sampled ~ (1/1^α)/H times; with α = 0.9 and
        // 10k objects H ≈ Σ 1/r^0.9 ≈ 25. Expect several thousand hits.
        assert!(
            counts[0] > 20 * counts[99],
            "c0={} c99={}",
            counts[0],
            counts[99]
        );
        // All ids reachable in principle: the tail collectively gets mass.
        let tail: u32 = counts[5000..].iter().sum();
        assert!(tail > 0);
    }

    #[test]
    fn popularity_cdf_is_monotone_and_normalized() {
        let c = small_catalog(4);
        let cdf = &c.popularity_cdf;
        for w in cdf.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!((cdf.last().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn request_size_close_to_catalog_mean_when_uncorrelated() {
        // Sizes and popularity are independent here, so the request-weighted
        // mean should be close to the unweighted mean in expectation.
        let c = small_catalog(5);
        let ratio = c.mean_request_size() / c.mean_size();
        assert!(ratio > 0.5 && ratio < 2.0, "ratio {ratio}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = small_catalog(9);
        let b = small_catalog(9);
        assert_eq!(a.sizes, b.sizes);
    }

    #[test]
    #[should_panic]
    fn rejects_empty_catalog() {
        let mut rng = SmallRng::seed_from_u64(0);
        Catalog::synthesize(
            &CatalogConfig {
                objects: 0,
                ..CatalogConfig::default()
            },
            &mut rng,
        );
    }
}
