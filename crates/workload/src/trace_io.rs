//! Trace files: save/load and timestamp rewriting.
//!
//! The paper replays a wikibench-derived trace and "change\[s\] the timestamp
//! field of each request" to impose the synthetic rate schedule (§V-B).
//! This module provides the equivalent plumbing: a plain-text trace format
//! (one `timestamp object_id size` triple per line, `#` comments), readers
//! and writers, and the timestamp-rewriting transform that keeps object
//! identities while imposing new Poisson arrivals from a
//! [`PhaseSchedule`].

use crate::arrivals::{ArrivalProcess, PoissonArrivals};
use crate::phases::PhaseSchedule;
use crate::trace::TraceEvent;
use rand::RngCore;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Errors from trace file handling.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A line that does not parse, with its 1-based line number.
    Malformed {
        /// Line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// Timestamps must be nondecreasing.
    OutOfOrder {
        /// Line number of the violation.
        line: usize,
    },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceIoError::Malformed { line, content } => {
                write!(f, "malformed trace line {line}: {content:?}")
            }
            TraceIoError::OutOfOrder { line } => {
                write!(f, "timestamps out of order at line {line}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// Writes a trace in the text format (`timestamp object size` per line).
pub fn save_trace(path: &Path, trace: &[TraceEvent]) -> Result<(), TraceIoError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "# cosmodel trace: timestamp_s object_id size_bytes")?;
    for e in trace {
        writeln!(w, "{:.9} {} {}", e.at, e.object, e.size)?;
    }
    w.flush()?;
    Ok(())
}

/// Loads a trace written by [`save_trace`] (or hand-made in the same
/// format). Blank lines and `#` comments are ignored.
pub fn load_trace(path: &Path) -> Result<Vec<TraceEvent>, TraceIoError> {
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);
    let mut out = Vec::new();
    let mut last = f64::NEG_INFINITY;
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let parsed = (|| {
            let at: f64 = parts.next()?.parse().ok()?;
            let object: u32 = parts.next()?.parse().ok()?;
            let size: u32 = parts.next()?.parse().ok()?;
            if parts.next().is_some() || !at.is_finite() || at < 0.0 {
                return None;
            }
            Some(TraceEvent { at, object, size })
        })();
        match parsed {
            Some(e) => {
                if e.at < last {
                    return Err(TraceIoError::OutOfOrder { line: i + 1 });
                }
                last = e.at;
                out.push(e);
            }
            None => {
                return Err(TraceIoError::Malformed {
                    line: i + 1,
                    content: trimmed.to_string(),
                })
            }
        }
    }
    Ok(out)
}

/// The paper's §V-B transform: keep the trace's object references (in
/// order), replace the timestamps with Poisson arrivals following
/// `schedule`. If the schedule generates more arrivals than the trace has
/// references, the trace is cycled; if fewer, the tail is dropped — both
/// choices match replaying a finite trace against a synthetic load curve.
pub fn retime_to_schedule(
    trace: &[TraceEvent],
    schedule: &PhaseSchedule,
    rng: &mut dyn RngCore,
) -> Vec<TraceEvent> {
    assert!(!trace.is_empty(), "cannot retime an empty trace");
    let segments = schedule.segments();
    assert!(!segments.is_empty(), "schedule has no segments");
    let mut out = Vec::new();
    let mut idx = 0usize;
    let mut now = 0.0f64;
    let mut seg_end = 0.0f64;
    let mut seg_iter = segments.iter();
    let mut arrivals: Option<PoissonArrivals> = None;
    loop {
        while now >= seg_end {
            match seg_iter.next() {
                Some(seg) => {
                    now = seg_end;
                    seg_end += seg.duration;
                    arrivals = Some(PoissonArrivals::new(seg.rate));
                }
                None => return out,
            }
        }
        let gap = arrivals.as_mut().expect("segment active").next_gap(rng);
        now += gap;
        if now >= seg_end {
            continue;
        }
        let source = &trace[idx % trace.len()];
        idx += 1;
        out.push(TraceEvent {
            at: now,
            object: source.object,
            size: source.size,
        });
    }
}

/// Uniformly rescales a trace's arrival rate by `factor` (timestamps divide
/// by it), as in "experiment with a broader range of arriving rates".
pub fn rescale_rate(trace: &[TraceEvent], factor: f64) -> Vec<TraceEvent> {
    assert!(
        factor.is_finite() && factor > 0.0,
        "factor must be positive"
    );
    trace
        .iter()
        .map(|e| TraceEvent {
            at: e.at / factor,
            ..*e
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::PhaseConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("cosmodel-test-{}-{name}", std::process::id()));
        p
    }

    fn sample_trace() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                at: 0.0,
                object: 5,
                size: 1000,
            },
            TraceEvent {
                at: 0.5,
                object: 7,
                size: 64 * 1024,
            },
            TraceEvent {
                at: 1.25,
                object: 5,
                size: 1000,
            },
        ]
    }

    #[test]
    fn save_load_roundtrip() {
        let path = tmp("roundtrip.trace");
        let trace = sample_trace();
        save_trace(&path, &trace).unwrap();
        let loaded = load_trace(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), trace.len());
        for (a, b) in loaded.iter().zip(&trace) {
            assert!((a.at - b.at).abs() < 1e-9);
            assert_eq!(a.object, b.object);
            assert_eq!(a.size, b.size);
        }
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let path = tmp("comments.trace");
        std::fs::write(&path, "# header\n\n0.5 1 100\n# middle\n1.0 2 200\n").unwrap();
        let loaded = load_trace(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[1].object, 2);
    }

    #[test]
    fn malformed_line_reported_with_number() {
        let path = tmp("malformed.trace");
        std::fs::write(&path, "0.5 1 100\nnot a line\n").unwrap();
        let err = load_trace(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        match err {
            TraceIoError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn out_of_order_rejected() {
        let path = tmp("order.trace");
        std::fs::write(&path, "1.0 1 100\n0.5 2 100\n").unwrap();
        let err = load_trace(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, TraceIoError::OutOfOrder { line: 2 }));
    }

    #[test]
    fn retime_keeps_object_sequence_and_schedule() {
        let schedule = crate::phases::PhaseSchedule::new(&PhaseConfig {
            warmup_rate: 100.0,
            warmup_duration: 2.0,
            transition_rate: 10.0,
            transition_duration: 1.0,
            sweep_start: 50.0,
            sweep_end: 50.0,
            sweep_step: 5.0,
            hold: 2.0,
            time_scale: 1.0,
        });
        let mut rng = SmallRng::seed_from_u64(3);
        let base = sample_trace();
        let retimed = retime_to_schedule(&base, &schedule, &mut rng);
        assert!(!retimed.is_empty());
        // Object references cycle through the source trace in order.
        for (i, e) in retimed.iter().enumerate() {
            let src = &base[i % base.len()];
            assert_eq!(e.object, src.object);
            assert_eq!(e.size, src.size);
        }
        // Timestamps follow the schedule bounds and are sorted.
        let total = schedule.total_duration();
        let mut prev = 0.0;
        for e in &retimed {
            assert!(e.at >= prev && e.at < total);
            prev = e.at;
        }
        // Roughly 100·2 + 10·1 + 50·2 = 310 arrivals.
        assert!(
            (retimed.len() as f64 - 310.0).abs() < 100.0,
            "{}",
            retimed.len()
        );
    }

    #[test]
    fn rescale_divides_timestamps() {
        let scaled = rescale_rate(&sample_trace(), 2.0);
        assert!((scaled[1].at - 0.25).abs() < 1e-12);
        assert_eq!(scaled[1].object, 7);
    }

    #[test]
    #[should_panic]
    fn rescale_rejects_zero() {
        rescale_rate(&sample_trace(), 0.0);
    }
}
