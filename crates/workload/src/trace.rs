//! Trace synthesis and replay.
//!
//! The paper rewrites the timestamps of the Wikipedia media trace to impose
//! a synthetic three-phase rate schedule while keeping object identities and
//! sizes (§V-B). We do the equivalent: draw object references from the
//! Zipf catalog, with Poisson timestamps that follow a [`PhaseSchedule`].
//! Traces can be generated eagerly (a `Vec`) or streamed via an iterator for
//! long runs.

use crate::arrivals::{ArrivalProcess, PoissonArrivals};
use crate::catalog::{Catalog, ObjectId};
use crate::phases::PhaseSchedule;
use rand::RngCore;

/// One GET request in the trace (read-only workload, §III-A assumption 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Arrival time in seconds from trace start.
    pub at: f64,
    /// Requested object.
    pub object: ObjectId,
    /// Object size in bytes (denormalized from the catalog for convenience).
    pub size: u32,
}

/// Streaming trace generator following a phase schedule.
pub struct TraceStream<'a, R: RngCore> {
    catalog: &'a Catalog,
    schedule: &'a PhaseSchedule,
    rng: R,
    arrivals: PoissonArrivals,
    now: f64,
    segment_idx: usize,
    segment_end: f64,
    exhausted: bool,
}

impl<'a, R: RngCore> TraceStream<'a, R> {
    /// Creates a stream over the schedule.
    pub fn new(catalog: &'a Catalog, schedule: &'a PhaseSchedule, rng: R) -> Self {
        let segments = schedule.segments();
        assert!(!segments.is_empty(), "schedule has no segments");
        TraceStream {
            catalog,
            schedule,
            rng,
            arrivals: PoissonArrivals::new(segments[0].rate),
            now: 0.0,
            segment_idx: 0,
            segment_end: segments[0].duration,
            exhausted: false,
        }
    }
}

impl<R: RngCore> Iterator for TraceStream<'_, R> {
    type Item = TraceEvent;

    fn next(&mut self) -> Option<TraceEvent> {
        if self.exhausted {
            return None;
        }
        loop {
            let gap = self.arrivals.next_gap(&mut self.rng);
            let candidate = self.now + gap;
            if candidate < self.segment_end {
                self.now = candidate;
                let object = self.catalog.sample(&mut self.rng);
                return Some(TraceEvent {
                    at: candidate,
                    object,
                    size: self.catalog.size_of(object),
                });
            }
            // Advance to the next segment; restart the clock at its boundary
            // (memorylessness makes discarding the overshoot exact for
            // Poisson arrivals).
            self.segment_idx += 1;
            let segments = self.schedule.segments();
            if self.segment_idx >= segments.len() {
                self.exhausted = true;
                return None;
            }
            self.now = self.segment_end;
            self.segment_end += segments[self.segment_idx].duration;
            self.arrivals.set_rate(segments[self.segment_idx].rate);
        }
    }
}

/// Eagerly materializes the full trace.
pub fn synthesize_trace<R: RngCore>(
    catalog: &Catalog,
    schedule: &PhaseSchedule,
    rng: R,
) -> Vec<TraceEvent> {
    TraceStream::new(catalog, schedule, rng).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use crate::phases::PhaseConfig;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (Catalog, PhaseSchedule) {
        let mut rng = SmallRng::seed_from_u64(100);
        let catalog = Catalog::synthesize(
            &CatalogConfig {
                objects: 1000,
                ..CatalogConfig::default()
            },
            &mut rng,
        );
        let cfg = PhaseConfig {
            warmup_rate: 50.0,
            warmup_duration: 10.0,
            transition_rate: 5.0,
            transition_duration: 4.0,
            sweep_start: 20.0,
            sweep_end: 40.0,
            sweep_step: 10.0,
            hold: 10.0,
            time_scale: 1.0,
        };
        (catalog, PhaseSchedule::new(&cfg))
    }

    #[test]
    fn timestamps_monotone_and_bounded() {
        let (catalog, schedule) = setup();
        let trace = synthesize_trace(&catalog, &schedule, SmallRng::seed_from_u64(7));
        assert!(!trace.is_empty());
        for w in trace.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        let end = schedule.total_duration();
        assert!(trace.last().unwrap().at < end);
    }

    #[test]
    fn per_segment_rates_respected() {
        let (catalog, schedule) = setup();
        let trace = synthesize_trace(&catalog, &schedule, SmallRng::seed_from_u64(8));
        // Warmup [0,10) at 50 req/s → ~500 events.
        let warm = trace.iter().filter(|e| e.at < 10.0).count();
        assert!((warm as f64 - 500.0).abs() < 100.0, "warmup count {warm}");
        // Transition [10,14) at 5 req/s → ~20 events.
        let trans = trace.iter().filter(|e| e.at >= 10.0 && e.at < 14.0).count();
        assert!(trans < 60, "transition count {trans}");
        // Middle sweep segment [24,34) at 30 req/s → ~300 events.
        let mid = trace.iter().filter(|e| e.at >= 24.0 && e.at < 34.0).count();
        assert!(
            (mid as f64 - 300.0).abs() < 90.0,
            "middle segment count {mid}"
        );
        // Last sweep segment [34,44) at 40 req/s → ~400 events.
        let last = trace.iter().filter(|e| e.at >= 34.0 && e.at < 44.0).count();
        assert!(
            (last as f64 - 400.0).abs() < 90.0,
            "last segment count {last}"
        );
    }

    #[test]
    fn sizes_denormalized_from_catalog() {
        let (catalog, schedule) = setup();
        let trace = synthesize_trace(&catalog, &schedule, SmallRng::seed_from_u64(9));
        for e in trace.iter().take(100) {
            assert_eq!(e.size, catalog.size_of(e.object));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (catalog, schedule) = setup();
        let a = synthesize_trace(&catalog, &schedule, SmallRng::seed_from_u64(10));
        let b = synthesize_trace(&catalog, &schedule, SmallRng::seed_from_u64(10));
        assert_eq!(a, b);
        let c = synthesize_trace(&catalog, &schedule, SmallRng::seed_from_u64(11));
        assert_ne!(a, c);
    }

    #[test]
    fn stream_is_lazy_and_matches_collect() {
        let (catalog, schedule) = setup();
        let mut stream = TraceStream::new(&catalog, &schedule, SmallRng::seed_from_u64(12));
        let first = stream.next().unwrap();
        let eager = synthesize_trace(&catalog, &schedule, SmallRng::seed_from_u64(12));
        assert_eq!(first, eager[0]);
    }
}
