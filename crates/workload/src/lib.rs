//! # cos-workload
//!
//! Wikipedia-like object-store workload synthesis, replacing the wikibench
//! media trace the paper replays (§V-A): a Zipf/log-normal object
//! [`catalog`], Poisson [`arrivals`], the three-phase rate schedule of §V-B
//! ([`phases`]), [`trace`] synthesis/streaming, and trace files +
//! timestamp rewriting ([`trace_io`], the paper's §V-B transform). All
//! generation is deterministic in the seed.

#![warn(missing_docs)]

pub mod arrivals;
pub mod catalog;
pub mod phases;
pub mod trace;
pub mod trace_io;

pub use arrivals::{ArrivalProcess, DeterministicArrivals, PoissonArrivals};
pub use catalog::{Catalog, CatalogConfig, ObjectId};
pub use phases::{PhaseConfig, PhaseSchedule, Segment};
pub use trace::{synthesize_trace, TraceEvent, TraceStream};
pub use trace_io::{load_trace, rescale_rate, retime_to_schedule, save_trace, TraceIoError};
