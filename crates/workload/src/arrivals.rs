//! Arrival processes.
//!
//! The model assumes Poisson arrivals (§III-A, assumption 1), and the
//! paper's modified ssbench issues requests in an open loop; we generate
//! arrivals the same way. A deterministic process is included for
//! closed-loop-style calibration runs and for testing.

use rand::RngCore;

/// Generates the next inter-arrival gap (seconds).
pub trait ArrivalProcess {
    /// Draws the next gap at the current rate.
    fn next_gap(&mut self, rng: &mut dyn RngCore) -> f64;
    /// Current rate (arrivals per second).
    fn rate(&self) -> f64;
    /// Changes the rate (used between schedule segments).
    fn set_rate(&mut self, rate: f64);
}

/// Poisson process: exponential gaps with mean `1/rate`.
#[derive(Debug, Clone, Copy)]
pub struct PoissonArrivals {
    rate: f64,
}

impl PoissonArrivals {
    /// Creates a Poisson arrival process.
    ///
    /// # Panics
    /// Panics unless `rate` is finite and positive.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive, got {rate}"
        );
        PoissonArrivals { rate }
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_gap(&mut self, rng: &mut dyn RngCore) -> f64 {
        -cos_distr::traits::open_unit(rng).ln() / self.rate
    }
    fn rate(&self) -> f64 {
        self.rate
    }
    fn set_rate(&mut self, rate: f64) {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive, got {rate}"
        );
        self.rate = rate;
    }
}

/// Deterministic (evenly spaced) arrivals.
#[derive(Debug, Clone, Copy)]
pub struct DeterministicArrivals {
    rate: f64,
}

impl DeterministicArrivals {
    /// Creates a deterministic arrival process.
    ///
    /// # Panics
    /// Panics unless `rate` is finite and positive.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive, got {rate}"
        );
        DeterministicArrivals { rate }
    }
}

impl ArrivalProcess for DeterministicArrivals {
    fn next_gap(&mut self, _rng: &mut dyn RngCore) -> f64 {
        1.0 / self.rate
    }
    fn rate(&self) -> f64 {
        self.rate
    }
    fn set_rate(&mut self, rate: f64) {
        assert!(
            rate.is_finite() && rate > 0.0,
            "arrival rate must be positive, got {rate}"
        );
        self.rate = rate;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn poisson_gap_mean() {
        let mut p = PoissonArrivals::new(50.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| p.next_gap(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.02).abs() < 0.001, "mean gap {mean}");
    }

    #[test]
    fn poisson_counts_match_rate() {
        // Count arrivals in 1-second windows: variance ≈ mean (Poisson).
        let mut p = PoissonArrivals::new(20.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut t = 0.0;
        let mut counts = vec![0u32; 2000];
        while t < 2000.0 {
            t += p.next_gap(&mut rng);
            if t < 2000.0 {
                counts[t as usize] += 1;
            }
        }
        let mean = counts.iter().map(|&c| c as f64).sum::<f64>() / counts.len() as f64;
        let var = counts
            .iter()
            .map(|&c| (c as f64 - mean).powi(2))
            .sum::<f64>()
            / counts.len() as f64;
        assert!((mean - 20.0).abs() < 0.5, "mean {mean}");
        assert!(
            (var / mean - 1.0).abs() < 0.15,
            "index of dispersion {}",
            var / mean
        );
    }

    #[test]
    fn rate_change_takes_effect() {
        let mut p = PoissonArrivals::new(1.0);
        p.set_rate(1000.0);
        assert_eq!(p.rate(), 1000.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| p.next_gap(&mut rng)).sum::<f64>() / 10_000.0;
        assert!(mean < 0.002);
    }

    #[test]
    fn deterministic_is_constant() {
        let mut d = DeterministicArrivals::new(4.0);
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10 {
            assert_eq!(d.next_gap(&mut rng), 0.25);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_zero_rate() {
        PoissonArrivals::new(0.0);
    }
}
