//! Property-based tests for workload synthesis.

use cos_workload::{Catalog, CatalogConfig, PhaseConfig, PhaseSchedule, TraceStream};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn small_schedule(warmup: f64, hold: f64, start: f64, end: f64) -> PhaseSchedule {
    PhaseSchedule::new(&PhaseConfig {
        warmup_rate: 50.0,
        warmup_duration: warmup,
        transition_rate: 5.0,
        transition_duration: 1.0,
        sweep_start: start,
        sweep_end: end,
        sweep_step: 10.0,
        hold,
        time_scale: 1.0,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn trace_is_time_sorted_and_bounded(
        seed in 0u64..10_000,
        warmup in 0.5f64..5.0,
        hold in 0.5f64..5.0,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let catalog = Catalog::synthesize(
            &CatalogConfig { objects: 500, ..CatalogConfig::default() },
            &mut rng,
        );
        let schedule = small_schedule(warmup, hold, 20.0, 60.0);
        let trace: Vec<_> =
            TraceStream::new(&catalog, &schedule, SmallRng::seed_from_u64(seed ^ 1)).collect();
        let total = schedule.total_duration();
        let mut prev = 0.0;
        for e in &trace {
            prop_assert!(e.at >= prev && e.at < total);
            prop_assert!((e.object as usize) < catalog.len());
            prop_assert_eq!(e.size, catalog.size_of(e.object));
            prev = e.at;
        }
    }

    #[test]
    fn measured_windows_tile_the_sweep(
        start in 10.0f64..50.0,
        steps in 1usize..10,
        hold in 1.0f64..10.0,
    ) {
        let end = start + (steps as f64 - 1.0) * 10.0;
        let schedule = small_schedule(1.0, hold, start, end);
        let windows = schedule.measured_windows();
        prop_assert_eq!(windows.len(), steps);
        for w in windows.windows(2) {
            prop_assert!((w[0].1 - w[1].0).abs() < 1e-9, "windows must be contiguous");
        }
        for (i, &(s, e, rate)) in schedule.measured_windows().iter().enumerate() {
            prop_assert!((e - s - hold).abs() < 1e-9);
            prop_assert!((rate - (start + 10.0 * i as f64)).abs() < 1e-9);
        }
    }

    #[test]
    fn catalog_sampling_within_bounds(seed in 0u64..10_000, objects in 1usize..2000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let catalog = Catalog::synthesize(
            &CatalogConfig { objects, ..CatalogConfig::default() },
            &mut rng,
        );
        for _ in 0..200 {
            let id = catalog.sample(&mut rng);
            prop_assert!((id as usize) < objects);
            prop_assert!(catalog.size_of(id) >= 1);
        }
    }

    #[test]
    fn event_count_tracks_expected_rate(seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let catalog = Catalog::synthesize(
            &CatalogConfig { objects: 200, ..CatalogConfig::default() },
            &mut rng,
        );
        // 100 seconds at 50 req/s → 5000 ± 5σ (σ = √5000 ≈ 71).
        let schedule = small_schedule(100.0, 1.0, 10.0, 10.0);
        let n = TraceStream::new(&catalog, &schedule, SmallRng::seed_from_u64(seed ^ 2))
            .filter(|e| e.at < 100.0)
            .count();
        prop_assert!((n as f64 - 5000.0).abs() < 360.0, "count {n}");
    }
}
