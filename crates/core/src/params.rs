//! Model inputs.
//!
//! The model's parameters fall into two groups (§IV): *device performance
//! properties* obtained by workload-independent benchmarking (fitted disk
//! service-time distributions, parse latencies) and *system online metrics*
//! (arrival rates, data-read rates, cache miss ratios). [`DeviceParams`]
//! bundles both for one storage device; [`SystemParams`] adds the frontend
//! tier.

use cos_queueing::DynServiceTime;

/// Parameters of one storage device at the backend tier.
#[derive(Clone)]
pub struct DeviceParams {
    /// Request arrival rate `r` at this device (req/s).
    pub arrival_rate: f64,
    /// Data chunk read rate `r_data` at this device (reads/s); determined by
    /// `r`, the chunk size, and object sizes (§III-B). Must be ≥ `r`.
    pub data_read_rate: f64,
    /// Cache miss ratio of index lookups.
    pub miss_index: f64,
    /// Cache miss ratio of metadata reads.
    pub miss_meta: f64,
    /// Cache miss ratio of data chunk reads.
    pub miss_data: f64,
    /// Disk service-time law of index lookups (`index_d`, fitted Gamma).
    pub index_disk: DynServiceTime,
    /// Disk service-time law of metadata reads (`meta_d`).
    pub meta_disk: DynServiceTime,
    /// Disk service-time law of data reads (`data_d`).
    pub data_disk: DynServiceTime,
    /// Backend request-parsing law (`parse_be`).
    pub parse_be: DynServiceTime,
    /// Number of processes dedicated to this device (`N_be`).
    pub processes: usize,
}

impl std::fmt::Debug for DeviceParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceParams")
            .field("arrival_rate", &self.arrival_rate)
            .field("data_read_rate", &self.data_read_rate)
            .field("miss_index", &self.miss_index)
            .field("miss_meta", &self.miss_meta)
            .field("miss_data", &self.miss_data)
            .field("processes", &self.processes)
            .finish_non_exhaustive()
    }
}

impl DeviceParams {
    /// Mean extra data reads per union operation, `p = (r_data − r)/r`.
    pub fn extra_reads(&self) -> f64 {
        (self.data_read_rate - self.arrival_rate) / self.arrival_rate
    }

    /// Validates rates and ratios.
    ///
    /// # Panics
    /// Panics on invalid values.
    pub fn validate(&self) {
        assert!(
            self.arrival_rate.is_finite() && self.arrival_rate > 0.0,
            "device arrival rate must be positive, got {}",
            self.arrival_rate
        );
        assert!(
            self.data_read_rate >= self.arrival_rate - 1e-12,
            "data read rate {} must be at least the arrival rate {} (every request reads one chunk)",
            self.data_read_rate,
            self.arrival_rate
        );
        for (name, m) in [
            ("index", self.miss_index),
            ("meta", self.miss_meta),
            ("data", self.miss_data),
        ] {
            assert!(
                (0.0..=1.0).contains(&m),
                "{name} miss ratio must be in [0,1], got {m}"
            );
        }
        assert!(self.processes >= 1, "a device needs at least one process");
    }
}

/// Parameters of the frontend tier.
#[derive(Clone)]
pub struct FrontendParams {
    /// Total system arrival rate (req/s).
    pub arrival_rate: f64,
    /// Number of frontend processes (`N_fe`).
    pub processes: usize,
    /// Frontend request-parsing law (`parse_fe`).
    pub parse_fe: DynServiceTime,
}

impl std::fmt::Debug for FrontendParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontendParams")
            .field("arrival_rate", &self.arrival_rate)
            .field("processes", &self.processes)
            .finish_non_exhaustive()
    }
}

impl FrontendParams {
    /// Per-process arrival rate `r_i = r / N_fe`.
    pub fn per_process_rate(&self) -> f64 {
        self.arrival_rate / self.processes as f64
    }

    /// Validates rates.
    ///
    /// # Panics
    /// Panics on invalid values.
    pub fn validate(&self) {
        assert!(
            self.arrival_rate.is_finite() && self.arrival_rate > 0.0,
            "frontend arrival rate must be positive"
        );
        assert!(self.processes >= 1, "need at least one frontend process");
    }
}

/// The full system: frontend tier plus one entry per storage device.
#[derive(Debug, Clone)]
pub struct SystemParams {
    /// Frontend tier parameters.
    pub frontend: FrontendParams,
    /// Per-device parameters.
    pub devices: Vec<DeviceParams>,
}

impl SystemParams {
    /// Validates the whole parameter set.
    ///
    /// # Panics
    /// Panics on invalid values or an empty device list.
    pub fn validate(&self) {
        self.frontend.validate();
        assert!(!self.devices.is_empty(), "need at least one device");
        for d in &self.devices {
            d.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cos_distr::{Degenerate, Gamma};
    use cos_queueing::from_distribution;

    pub(crate) fn sample_device(rate: f64) -> DeviceParams {
        DeviceParams {
            arrival_rate: rate,
            data_read_rate: rate * 1.1,
            miss_index: 0.3,
            miss_meta: 0.3,
            miss_data: 0.5,
            index_disk: from_distribution(Gamma::new(3.0, 250.0)),
            meta_disk: from_distribution(Gamma::new(2.5, 312.5)),
            data_disk: from_distribution(Gamma::new(3.5, 245.0)),
            parse_be: from_distribution(Degenerate::new(0.0005)),
            processes: 1,
        }
    }

    #[test]
    fn extra_reads_formula() {
        let d = sample_device(100.0);
        assert!((d.extra_reads() - 0.1).abs() < 1e-12);
        d.validate();
    }

    #[test]
    fn frontend_per_process_rate() {
        let fe = FrontendParams {
            arrival_rate: 300.0,
            processes: 3,
            parse_fe: from_distribution(Degenerate::new(0.0003)),
        };
        assert_eq!(fe.per_process_rate(), 100.0);
        fe.validate();
    }

    #[test]
    #[should_panic]
    fn rejects_data_rate_below_arrival_rate() {
        let mut d = sample_device(100.0);
        d.data_read_rate = 50.0;
        d.validate();
    }

    #[test]
    #[should_panic]
    fn rejects_empty_system() {
        SystemParams {
            frontend: FrontendParams {
                arrival_rate: 1.0,
                processes: 1,
                parse_fe: from_distribution(Degenerate::new(0.0)),
            },
            devices: vec![],
        }
        .validate();
    }
}
