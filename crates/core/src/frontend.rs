//! Frontend-tier model (§III-C).
//!
//! Each of the `N_fe` homogeneous frontend processes is an M/G/1 queue with
//! request-parsing service times and per-process arrival rate `r / N_fe`;
//! the distribution of `S_q` (queueing + parsing at the frontend) equals
//! that of any single process.

use crate::backend::ModelError;
use crate::params::FrontendParams;
use cos_numeric::Complex64;
use cos_queueing::{Mg1, QueueError};

/// One homogeneous set of a (possibly heterogeneous) frontend tier.
#[derive(Clone)]
pub struct FrontendSetParams {
    /// Fraction of total traffic this set receives, in `(0, 1]`.
    pub share: f64,
    /// Processes in this set.
    pub processes: usize,
    /// Parse law of this set's servers.
    pub parse_fe: cos_queueing::DynServiceTime,
}

impl std::fmt::Debug for FrontendSetParams {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontendSetParams")
            .field("share", &self.share)
            .field("processes", &self.processes)
            .finish_non_exhaustive()
    }
}

/// The frontend-tier model: one M/G/1 per homogeneous set; `S_q` is the
/// share-weighted mixture over sets (§III-C: "the frontend tier of
/// heterogeneous servers can be divided into several sets of homogeneous
/// servers, and the distribution of queueing latencies can be calculated
/// separately").
pub struct FrontendModel {
    sets: Vec<(f64, Mg1)>,
}

impl std::fmt::Debug for FrontendModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FrontendModel")
            .field("sets", &self.sets.len())
            .field("utilization", &self.utilization())
            .finish()
    }
}

fn build_mg1(rate: f64, parse: cos_queueing::DynServiceTime) -> Result<Mg1, ModelError> {
    Mg1::new(rate, parse).map_err(|e| match e {
        QueueError::Unstable { utilization } => ModelError::UnstableFrontend { utilization },
        QueueError::InvalidArrivalRate(r) => panic!("validated params produced invalid rate {r}"),
    })
}

impl FrontendModel {
    /// Builds a homogeneous frontend model.
    pub fn new(params: &FrontendParams) -> Result<Self, ModelError> {
        params.validate();
        let mg1 = build_mg1(params.per_process_rate(), params.parse_fe.clone())?;
        Ok(FrontendModel {
            sets: vec![(1.0, mg1)],
        })
    }

    /// Builds a heterogeneous frontend model from homogeneous sets. Shares
    /// must be positive and are normalized internally.
    ///
    /// # Panics
    /// Panics on an empty set list or non-positive shares/rates.
    pub fn heterogeneous(total_rate: f64, sets: &[FrontendSetParams]) -> Result<Self, ModelError> {
        assert!(!sets.is_empty(), "need at least one frontend set");
        assert!(
            total_rate.is_finite() && total_rate > 0.0,
            "total rate must be positive"
        );
        let share_sum: f64 = sets.iter().map(|s| s.share).sum();
        assert!(
            sets.iter().all(|s| s.share > 0.0) && share_sum > 0.0,
            "shares must be positive"
        );
        let mut out = Vec::with_capacity(sets.len());
        for set in sets {
            assert!(set.processes >= 1, "each set needs at least one process");
            let share = set.share / share_sum;
            let per_process = total_rate * share / set.processes as f64;
            out.push((share, build_mg1(per_process, set.parse_fe.clone())?));
        }
        Ok(FrontendModel { sets: out })
    }

    /// Traffic-weighted utilization across sets.
    pub fn utilization(&self) -> f64 {
        self.sets.iter().map(|(w, q)| w * q.utilization()).sum()
    }

    /// LST of `S_q`: the share-weighted mixture of per-set P–K sojourn
    /// transforms.
    pub fn sojourn_lst(&self, s: Complex64) -> Complex64 {
        self.sets
            .iter()
            .map(|(w, q)| q.sojourn_lst(s) * *w)
            .fold(Complex64::ZERO, |a, b| a + b)
    }

    /// Batch [`FrontendModel::sojourn_lst`]: one per-set sojourn batch,
    /// accumulated in set order (the scalar fold), bit-identical to the
    /// scalar path.
    pub fn sojourn_lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(s.len(), out.len(), "abscissa/output length mismatch");
        out.fill(Complex64::ZERO);
        let mut tmp = vec![Complex64::ZERO; s.len()];
        for (w, q) in &self.sets {
            q.sojourn_lst_batch(s, &mut tmp);
            for (o, t) in out.iter_mut().zip(tmp.iter()) {
                *o += *t * *w;
            }
        }
    }

    /// Mean frontend sojourn (share-weighted).
    pub fn mean_sojourn(&self) -> f64 {
        self.sets.iter().map(|(w, q)| w * q.mean_sojourn()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cos_distr::Degenerate;
    use cos_queueing::from_distribution;

    fn params(rate: f64, nfe: usize) -> FrontendParams {
        FrontendParams {
            arrival_rate: rate,
            processes: nfe,
            parse_fe: from_distribution(Degenerate::new(0.0003)),
        }
    }

    #[test]
    fn light_load_sojourn_is_parse_time() {
        let m = FrontendModel::new(&params(30.0, 3)).unwrap();
        assert!((m.mean_sojourn() - 0.0003).abs() < 1e-6);
        assert!(m.utilization() < 0.01);
    }

    #[test]
    fn splits_rate_across_processes() {
        let one = FrontendModel::new(&params(1000.0, 1)).unwrap();
        let three = FrontendModel::new(&params(1000.0, 3)).unwrap();
        assert!((one.utilization() - 3.0 * three.utilization()).abs() < 1e-12);
        assert!(three.mean_sojourn() < one.mean_sojourn());
    }

    #[test]
    fn rejects_overload() {
        // 0.3 ms parse ⇒ one process saturates at ~3333 req/s.
        let err = FrontendModel::new(&params(4000.0, 1)).unwrap_err();
        assert!(matches!(err, ModelError::UnstableFrontend { .. }));
    }

    #[test]
    fn sojourn_lst_near_origin() {
        let m = FrontendModel::new(&params(300.0, 3)).unwrap();
        let near = m.sojourn_lst(Complex64::from_real(1e-8));
        assert!((near - Complex64::ONE).abs() < 1e-5);
    }

    #[test]
    fn heterogeneous_single_set_equals_homogeneous() {
        use crate::frontend::FrontendSetParams;
        let homo = FrontendModel::new(&params(300.0, 3)).unwrap();
        let hetero = FrontendModel::heterogeneous(
            300.0,
            &[FrontendSetParams {
                share: 1.0,
                processes: 3,
                parse_fe: from_distribution(Degenerate::new(0.0003)),
            }],
        )
        .unwrap();
        let s = Complex64::new(2.0, 5.0);
        assert!((homo.sojourn_lst(s) - hetero.sojourn_lst(s)).abs() < 1e-14);
        assert!((homo.mean_sojourn() - hetero.mean_sojourn()).abs() < 1e-15);
    }

    #[test]
    fn heterogeneous_mixes_fast_and_slow_sets() {
        use crate::frontend::FrontendSetParams;
        // Half the traffic on servers with 4x slower parsing.
        let hetero = FrontendModel::heterogeneous(
            600.0,
            &[
                FrontendSetParams {
                    share: 0.5,
                    processes: 2,
                    parse_fe: from_distribution(Degenerate::new(0.0003)),
                },
                FrontendSetParams {
                    share: 0.5,
                    processes: 2,
                    parse_fe: from_distribution(Degenerate::new(0.0012)),
                },
            ],
        )
        .unwrap();
        let fast_only = FrontendModel::new(&params(600.0, 4)).unwrap();
        assert!(hetero.mean_sojourn() > fast_only.mean_sojourn());
        // Mixture mean = average of the two per-set sojourns.
        let fast = FrontendModel::new(&FrontendParams {
            arrival_rate: 300.0,
            processes: 2,
            parse_fe: from_distribution(Degenerate::new(0.0003)),
        })
        .unwrap();
        let slow = FrontendModel::new(&FrontendParams {
            arrival_rate: 300.0,
            processes: 2,
            parse_fe: from_distribution(Degenerate::new(0.0012)),
        })
        .unwrap();
        let want = 0.5 * fast.mean_sojourn() + 0.5 * slow.mean_sojourn();
        assert!((hetero.mean_sojourn() - want).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_rejects_overloaded_set() {
        use crate::frontend::FrontendSetParams;
        let err = FrontendModel::heterogeneous(
            8000.0,
            &[FrontendSetParams {
                share: 1.0,
                processes: 2,
                parse_fe: from_distribution(Degenerate::new(0.0003)),
            }],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::UnstableFrontend { .. }));
    }
}
