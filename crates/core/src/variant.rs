//! Model variants: the paper's full model and the two baselines of §V-C.

/// Which model to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelVariant {
    /// The paper's full model: union operation + waiting time for being
    /// accept()-ed.
    Full,
    /// ODOPR baseline — "One Disk Operation Per Request": index lookups,
    /// metadata reads, and extra data reads are assumed to always hit the
    /// cache, imitating prior models of simpler storage servers.
    Odopr,
    /// noWTA baseline — the waiting time for being accept()-ed is ignored
    /// (`W_a = δ`), imitating models that overlook the accept queue.
    NoWta,
    /// Extension (this reproduction): length-biased **residual** WTA.
    /// A Poisson-arriving connection lands inside an accept lifetime with
    /// probability proportional to the lifetime's length; its wait is the
    /// equilibrium residual of `W_be`, whose LST is the closed form
    /// `(1 − L[W](s)) / (s·E[W])`. Sits between the paper's approximation
    /// (full lifetime) and noWTA.
    ResidualWta,
}

impl ModelVariant {
    /// The paper's three models (Fig. 6/7, Tables I–II).
    pub const ALL: [ModelVariant; 3] =
        [ModelVariant::Full, ModelVariant::Odopr, ModelVariant::NoWta];

    /// The paper's three models plus this reproduction's residual-WTA
    /// extension.
    pub const ALL_EXTENDED: [ModelVariant; 4] = [
        ModelVariant::Full,
        ModelVariant::Odopr,
        ModelVariant::NoWta,
        ModelVariant::ResidualWta,
    ];

    /// Whether the variant includes a WTA term in the frontend composition
    /// (Eq. 2).
    pub fn includes_wta(&self) -> bool {
        !matches!(self, ModelVariant::NoWta)
    }
}

impl std::fmt::Display for ModelVariant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            ModelVariant::Full => "Our Model",
            ModelVariant::Odopr => "ODOPR Model",
            ModelVariant::NoWta => "noWTA Model",
            ModelVariant::ResidualWta => "residualWTA Model",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wta_inclusion() {
        assert!(ModelVariant::Full.includes_wta());
        assert!(ModelVariant::Odopr.includes_wta());
        assert!(!ModelVariant::NoWta.includes_wta());
        assert!(ModelVariant::ResidualWta.includes_wta());
    }

    #[test]
    fn display_names() {
        assert_eq!(ModelVariant::Full.to_string(), "Our Model");
        assert_eq!(ModelVariant::ALL.len(), 3);
    }
}
