//! Erasure-coded (n,k) read model: fork-join over per-device sojourns.
//!
//! A coded GET forks into `launched` chunk sub-requests (one per stripe
//! device) and responds once `needed` of them complete. Exact fork-join
//! queues have no closed form for `n > 2`, so this module follows the
//! MDS-queue playbook (see PAPERS.md): keep the paper's per-device sojourn
//! transforms (Eq. 2) as *marginals* — their fitted arrival rates already
//! carry the redundant sub-request load — and combine them with a k-of-n
//! order-statistics tail under independence. Two computable envelopes
//! bracket that point prediction:
//!
//! * **pessimistic** (CDF lower bound): the minimum of the *split-merge*
//!   system — one M/G/1 whose service is the k-th order statistic of
//!   `launched` exponential branches, a cluster that blocks strictly more
//!   than real fork-join — and the distribution-free Bonferroni bound
//!   `(Σ F_i − (k−1)) / (n − k + 1)`, which is valid under **any**
//!   dependence between branches;
//! * **optimistic** (CDF upper bound): the independence combine over
//!   per-branch marginals with the WTA term dropped (the better of the
//!   `NoWta` / `Odopr` variants per device) — each marginal is
//!   stochastically faster than the real branch, which pays WTA like any
//!   other request.

use crate::backend::ModelError;
use crate::params::SystemParams;
use crate::system::SystemModel;
use crate::variant::ModelVariant;
use cos_numeric::laplace::{InversionConfig, LaplaceFn};
use cos_numeric::Complex64;
use cos_queueing::fork_join::{k_of_n_tail, split_merge};
use cos_queueing::Mg1;

/// How a coded read fans out: `launched` sub-requests in flight, `needed`
/// completions to respond. Eager (n,k) redundancy launches `n`; a plain
/// k-only read launches exactly `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CodingSpec {
    /// Sub-requests put in flight per logical read.
    pub launched: usize,
    /// Completions required to reconstruct the object.
    pub needed: usize,
}

impl CodingSpec {
    /// Builds a spec.
    ///
    /// # Panics
    /// Panics unless `1 ≤ needed ≤ launched`.
    pub fn new(launched: usize, needed: usize) -> Self {
        assert!(
            (1..=launched).contains(&needed),
            "need 1 <= needed <= launched, got needed={needed}, launched={launched}"
        );
        CodingSpec { launched, needed }
    }

    /// Eager redundancy: all `n` chunks requested, `k` needed.
    pub fn eager(n: usize, k: usize) -> Self {
        CodingSpec::new(n, k)
    }

    /// No redundancy: exactly the `k` needed chunks are requested.
    pub fn k_only(k: usize) -> Self {
        CodingSpec::new(k, k)
    }
}

/// The bracketing envelope around the point prediction at one time point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodedBounds {
    /// CDF lower bound: min(split-merge, Bonferroni).
    pub pessimistic: f64,
    /// CDF upper bound: independence over WTA-free marginals.
    pub optimistic: f64,
}

/// Fork-join latency model for (n,k) coded reads.
///
/// Construction mirrors [`SystemModel`] — same [`SystemParams`], same
/// stability errors — and the query surface mirrors it too
/// ([`fraction_meeting_sla`](CodedReadModel::fraction_meeting_sla),
/// [`latency_percentile`](CodedReadModel::latency_percentile)), so the
/// serve cache treats coded queries exactly like replicated ones. Branch
/// `i` of a read reads from device `i % devices` (the simulator stripes
/// round-robin, so under a homogeneous fit every device is statistically
/// identical and the fold-down loses nothing).
#[derive(Debug)]
pub struct CodedReadModel {
    spec: CodingSpec,
    full: SystemModel,
    no_wta: SystemModel,
    odopr: SystemModel,
    split_merge: Option<Mg1>,
    inversion: InversionConfig,
}

impl CodedReadModel {
    /// Builds the coded model from fitted parameters.
    ///
    /// The per-device arrival rates in `params` must already include the
    /// redundant sub-request load (that is how the simulator fit measures
    /// them); `params.frontend.arrival_rate` stays the *logical* read rate
    /// and drives the split-merge bound. Fails like [`SystemModel::new`]
    /// when any marginal queue is unstable.
    pub fn new(params: &SystemParams, spec: CodingSpec) -> Result<Self, ModelError> {
        let full = SystemModel::new(params, ModelVariant::Full)?;
        let no_wta = SystemModel::new(params, ModelVariant::NoWta)?;
        let odopr = SystemModel::new(params, ModelVariant::Odopr)?;
        // Split-merge branch service ≈ Exp(1/union mean), rate-weighted
        // across devices. The M/G/1 can be unstable even when the real
        // (pipelined) system is fine — the bound then degrades to
        // Bonferroni alone.
        let mut weighted = 0.0;
        let mut total = 0.0;
        for d in full.devices() {
            weighted += d.arrival_rate() * d.backend().union_mean();
            total += d.arrival_rate();
        }
        let branch_mean = weighted / total;
        let split_merge = if branch_mean > 0.0 {
            split_merge(
                params.frontend.arrival_rate,
                branch_mean,
                spec.launched,
                spec.needed,
            )
            .ok()
        } else {
            None
        };
        Ok(CodedReadModel {
            spec,
            full,
            no_wta,
            odopr,
            split_merge,
            inversion: InversionConfig::default(),
        })
    }

    /// The (launched, needed) spec this model answers for.
    pub fn spec(&self) -> CodingSpec {
        self.spec
    }

    /// Whether the split-merge anchor is available (its M/G/1 is stable).
    pub fn has_split_merge(&self) -> bool {
        self.split_merge.is_some()
    }

    /// Per-branch completion probabilities by `t` under `model`'s
    /// marginals, computed once per distinct device.
    fn branch_probs(&self, model: &SystemModel, t: f64) -> Vec<f64> {
        let nd = model.devices().len();
        let mut per_device: Vec<Option<f64>> = vec![None; nd];
        let mut probs = Vec::with_capacity(self.spec.launched);
        for i in 0..self.spec.launched {
            let d = i % nd;
            let p = match per_device[d] {
                Some(p) => p,
                None => {
                    let p = model.device_fraction_meeting(d, t);
                    per_device[d] = Some(p);
                    p
                }
            };
            probs.push(p);
        }
        probs
    }

    /// Point prediction: P[coded read completes within `sla`] — the
    /// independence combine over the Full-variant marginals.
    pub fn fraction_meeting_sla(&self, sla: f64) -> f64 {
        k_of_n_tail(&self.branch_probs(&self.full, sla), self.spec.needed)
    }

    /// The split-merge anchor's CDF at `t` (frontend sojourn composed with
    /// the blocking M/G/1), or `None` when that queue is unstable.
    pub fn split_merge_fraction(&self, t: f64) -> Option<f64> {
        let sm = self.split_merge.as_ref()?;
        let lst = SplitMergeResponseLst { model: self, sm };
        Some(cos_numeric::cdf_from_lst(&lst, t, &self.inversion))
    }

    /// The bracketing envelope at `t` (see module docs for the bound
    /// derivations). `pessimistic ≤ fraction_meeting_sla(t) ≤ optimistic`
    /// up to inversion noise (~1e-9).
    pub fn bounds(&self, t: f64) -> CodedBounds {
        let n = self.spec.launched;
        let k = self.spec.needed;
        let full_probs = self.branch_probs(&self.full, t);
        let sum_full: f64 = full_probs.iter().sum();
        let bonferroni = ((sum_full - (k - 1) as f64) / (n - k + 1) as f64).clamp(0.0, 1.0);
        let pessimistic = match self.split_merge_fraction(t) {
            Some(sm) => sm.min(bonferroni),
            None => bonferroni,
        };
        let no_wta = self.branch_probs(&self.no_wta, t);
        let odopr = self.branch_probs(&self.odopr, t);
        let optimistic_probs: Vec<f64> = no_wta
            .iter()
            .zip(odopr.iter())
            .map(|(a, b)| a.max(*b))
            .collect();
        let optimistic = k_of_n_tail(&optimistic_probs, k);
        CodedBounds {
            pessimistic,
            optimistic,
        }
    }

    /// Mean response of a single branch (Full marginals) — the inversion
    /// seed for percentile queries.
    pub fn branch_mean_response(&self) -> f64 {
        self.full.mean_response()
    }

    /// Smallest `t` with `fraction_meeting_sla(t) ≥ p`, or `None` when the
    /// bracketing search exhausts its budget.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p < 1`.
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..1.0).contains(&p), "p must be in [0, 1), got {p}");
        if p == 0.0 {
            return Some(0.0);
        }
        cos_numeric::invert_monotone(
            |t| self.fraction_meeting_sla(t),
            p,
            self.branch_mean_response().max(1e-6),
            40,
            cos_numeric::QUANTILE_INVERSION_BUDGET,
        )
    }
}

/// [`LaplaceFn`] view of the split-merge response transform — frontend
/// sojourn times the blocking M/G/1's sojourn — with a batch path whose
/// per-point grouping matches the scalar product exactly (both component
/// batches are bit-identical to their scalars, and the final multiply is
/// the same left-associated pair).
struct SplitMergeResponseLst<'a> {
    model: &'a CodedReadModel,
    sm: &'a Mg1,
}

impl LaplaceFn for SplitMergeResponseLst<'_> {
    fn eval(&self, s: Complex64) -> Complex64 {
        self.model.full.frontend().sojourn_lst(s) * self.sm.sojourn_lst(s)
    }

    fn eval_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(s.len(), out.len(), "abscissa/output length mismatch");
        self.model.full.frontend().sojourn_lst_batch(s, out);
        let mut sm = vec![Complex64::ZERO; s.len()];
        self.sm.sojourn_lst_batch(s, &mut sm);
        for (o, m) in out.iter_mut().zip(sm.iter()) {
            *o *= *m;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{DeviceParams, FrontendParams};
    use cos_distr::{Degenerate, Gamma};
    use cos_queueing::from_distribution;

    fn device(rate: f64, nbe: usize) -> DeviceParams {
        DeviceParams {
            arrival_rate: rate,
            data_read_rate: rate * 1.1,
            miss_index: 0.3,
            miss_meta: 0.3,
            miss_data: 0.5,
            index_disk: from_distribution(Gamma::new(3.0, 250.0)),
            meta_disk: from_distribution(Gamma::new(2.5, 312.5)),
            data_disk: from_distribution(Gamma::new(3.5, 245.0)),
            parse_be: from_distribution(Degenerate::new(0.0005)),
            processes: nbe,
        }
    }

    fn system(rate_per_device: f64, devices: usize, nbe: usize) -> SystemParams {
        SystemParams {
            frontend: FrontendParams {
                arrival_rate: rate_per_device * devices as f64,
                processes: 3,
                parse_fe: from_distribution(Degenerate::new(0.0003)),
            },
            devices: (0..devices).map(|_| device(rate_per_device, nbe)).collect(),
        }
    }

    #[test]
    fn single_branch_reduces_to_the_plain_system() {
        // (1,1) coding is just a replicated GET: the combine is the
        // identity and the coded CDF equals the device/system CDF.
        let params = system(40.0, 4, 1);
        let coded = CodedReadModel::new(&params, CodingSpec::new(1, 1)).unwrap();
        let plain = SystemModel::new(&params, ModelVariant::Full).unwrap();
        for &t in &[0.01, 0.03, 0.08] {
            let c = coded.fraction_meeting_sla(t);
            let p = plain.device_fraction_meeting(0, t);
            assert!((c - p).abs() < 1e-12, "t={t}: coded {c} vs plain {p}");
        }
    }

    #[test]
    fn bounds_bracket_the_point_prediction() {
        let params = system(40.0, 6, 1);
        for &(n, k) in &[(4usize, 2usize), (6, 4), (6, 6), (4, 1)] {
            let m = CodedReadModel::new(&params, CodingSpec::new(n, k)).unwrap();
            for i in 1..=12 {
                let t = i as f64 * 0.01;
                let point = m.fraction_meeting_sla(t);
                let b = m.bounds(t);
                assert!(
                    b.pessimistic <= point + 1e-7,
                    "(n={n},k={k}) t={t}: pessimistic {} > point {point}",
                    b.pessimistic
                );
                assert!(
                    b.optimistic >= point - 1e-7,
                    "(n={n},k={k}) t={t}: optimistic {} < point {point}",
                    b.optimistic
                );
            }
        }
    }

    #[test]
    fn fraction_is_monotone_in_t_and_in_the_spec() {
        let params = system(40.0, 6, 1);
        let m64 = CodedReadModel::new(&params, CodingSpec::new(6, 4)).unwrap();
        let mut prev = 0.0;
        for i in 1..=10 {
            let f = m64.fraction_meeting_sla(i as f64 * 0.015);
            assert!(f >= prev - 1e-12 && (0.0..=1.0).contains(&f));
            prev = f;
        }
        // Needing more completions is slower; launching spares is faster.
        let m66 = CodedReadModel::new(&params, CodingSpec::new(6, 6)).unwrap();
        let m44 = CodedReadModel::new(&params, CodingSpec::new(4, 4)).unwrap();
        for &t in &[0.02, 0.05, 0.1] {
            assert!(m66.fraction_meeting_sla(t) <= m64.fraction_meeting_sla(t) + 1e-12);
            assert!(m64.fraction_meeting_sla(t) >= m44.fraction_meeting_sla(t) - 1e-12);
        }
    }

    #[test]
    fn percentile_inverts_fraction() {
        let params = system(40.0, 6, 1);
        let m = CodedReadModel::new(&params, CodingSpec::eager(6, 4)).unwrap();
        for &p in &[0.5, 0.95, 0.99] {
            let t = m.latency_percentile(p).unwrap();
            let back = m.fraction_meeting_sla(t);
            assert!((back - p).abs() < 1e-3, "p={p}: t={t} back={back}");
        }
        assert_eq!(m.latency_percentile(0.0), Some(0.0));
    }

    #[test]
    fn split_merge_anchor_composes_and_degrades_gracefully() {
        // Light load: the blocking M/G/1 is stable and its CDF is a valid
        // distribution function below the point prediction at the median.
        let light = system(8.0, 6, 1);
        let m = CodedReadModel::new(&light, CodingSpec::eager(6, 4)).unwrap();
        assert!(m.has_split_merge());
        let t50 = m.latency_percentile(0.5).unwrap();
        let sm = m.split_merge_fraction(t50).unwrap();
        assert!((0.0..=1.0).contains(&sm));
        // Heavy (but marginally stable) load: split-merge blocking can
        // push the anchor queue past saturation; bounds still work.
        let heavy = system(55.0, 6, 1);
        let hm = CodedReadModel::new(&heavy, CodingSpec::eager(6, 6)).unwrap();
        if !hm.has_split_merge() {
            assert_eq!(hm.split_merge_fraction(0.05), None);
        }
        let b = hm.bounds(0.05);
        assert!(b.pessimistic <= b.optimistic + 1e-7);
    }

    #[test]
    fn split_merge_batch_is_bit_identical_to_scalar() {
        let params = system(8.0, 6, 1);
        let m = CodedReadModel::new(&params, CodingSpec::eager(6, 4)).unwrap();
        let sm = m.split_merge.as_ref().expect("stable at light load");
        let lst = SplitMergeResponseLst { model: &m, sm };
        let s: Vec<Complex64> = (0..48)
            .map(|i| Complex64::new(1.0 + i as f64 * 5.7, (i as f64 - 24.0) * 11.3))
            .collect();
        let mut batch = vec![Complex64::ZERO; s.len()];
        lst.eval_batch(&s, &mut batch);
        for (i, &si) in s.iter().enumerate() {
            let scalar = lst.eval(si);
            assert_eq!(scalar.re.to_bits(), batch[i].re.to_bits(), "re at {i}");
            assert_eq!(scalar.im.to_bits(), batch[i].im.to_bits(), "im at {i}");
        }
    }

    #[test]
    fn unstable_marginals_are_reported() {
        let params = system(80.0, 4, 1);
        assert!(matches!(
            CodedReadModel::new(&params, CodingSpec::new(4, 2)),
            Err(ModelError::UnstableBackend { .. })
        ));
    }

    #[test]
    #[should_panic]
    fn spec_rejects_needed_above_launched() {
        CodingSpec::new(2, 3);
    }
}
