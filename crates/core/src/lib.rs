//! # cos-model
//!
//! The analytic latency-percentile model of *"Predicting Response Latency
//! Percentiles for Cloud Object Storage Systems"* (Su, Feng, Hua, Shi —
//! ICPP 2017), implemented end to end:
//!
//! * [`params`] — the model's inputs (device performance properties +
//!   system online metrics, §IV);
//! * [`components`] — cache-aware operation laws `m·op_d + (1−m)·δ`;
//! * [`backend`] — the union-operation M/G/1 backend model, with the
//!   M/M/1/K disk approximation for `N_be > 1` (§III-B);
//! * [`wta`] — waiting time for being accept()-ed: the paper approximation
//!   `W_a = W_be`, the paper's exact integral, and the length-biased
//!   equilibrium form (§III-C, ablation A1);
//! * [`frontend`] — the frontend parse M/G/1 (§III-C);
//! * [`system`] — Eq. 2/Eq. 3 composition and the percentile-prediction
//!   API ([`SystemModel::fraction_meeting_sla`]);
//! * [`variant`] — the Full model and the ODOPR / noWTA baselines (§V-C);
//! * [`estimate`] — parameter estimation (§IV): distribution fitting,
//!   latency-threshold miss ratios, disk service-time decomposition;
//! * [`planning`] — the §I what-if applications: capacity planning,
//!   overload control, bottleneck identification, elastic storage;
//! * [`sensitivity`] — which measured input moves the prediction most;
//! * [`coded`] — (n,k) erasure-coded reads: the k-of-n fork-join combine
//!   over per-device sojourns, with split-merge/Bonferroni and
//!   independence envelopes.

#![warn(missing_docs)]

pub mod backend;
pub mod coded;
pub mod components;
pub mod estimate;
pub mod frontend;
pub mod params;
pub mod planning;
pub mod sensitivity;
pub mod system;
pub mod variant;
pub mod wta;

pub use backend::{BackendModel, ModelError};
pub use coded::{CodedBounds, CodedReadModel, CodingSpec};
pub use estimate::{
    decompose_disk_service, fit_disk_law, miss_ratio_by_threshold, rescale_to_mean,
    try_decompose_disk_service, DecomposeError, FittedDiskLaw, ThresholdMissEstimator,
    LATENCY_THRESHOLD,
};
pub use frontend::{FrontendModel, FrontendSetParams};
pub use params::{DeviceParams, FrontendParams, SystemParams};
pub use planning::{
    elastic_plan, max_admissible_rate, max_admissible_rate_par, min_devices, model_at_rate,
    rank_bottlenecks, SlaGoal,
};
pub use sensitivity::{sla_sensitivities, sla_sensitivities_par, Parameter, Sensitivity};
pub use system::{DeviceModel, SystemModel};
pub use variant::ModelVariant;
