//! What-if analyses (§I): the applications the paper motivates the model
//! with — capacity planning, overload control, bottleneck identification,
//! and elastic storage — built on [`SystemModel`].
//!
//! All of these evaluate the model at hypothetical operating points, which
//! is exactly what an analytic (rather than simulation-based) model is for:
//! each evaluation is a few Laplace inversions, microseconds not minutes.

use crate::backend::ModelError;
use crate::params::{DeviceParams, FrontendParams, SystemParams};
use crate::system::SystemModel;
use crate::variant::ModelVariant;

/// An SLA target: at least `target_fraction` of requests within `sla`
/// seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlaGoal {
    /// Latency bound in seconds.
    pub sla: f64,
    /// Required fraction of requests meeting the bound, in `(0, 1)`.
    pub target_fraction: f64,
}

impl SlaGoal {
    /// Creates a goal.
    ///
    /// # Panics
    /// Panics on out-of-range values.
    pub fn new(sla: f64, target_fraction: f64) -> Self {
        assert!(
            sla > 0.0 && sla.is_finite(),
            "SLA must be positive, got {sla}"
        );
        assert!(
            target_fraction > 0.0 && target_fraction < 1.0,
            "target fraction must be in (0,1), got {target_fraction}"
        );
        SlaGoal {
            sla,
            target_fraction,
        }
    }

    /// Whether a model meets this goal.
    pub fn met_by(&self, model: &SystemModel) -> bool {
        model.fraction_meeting_sla(self.sla) >= self.target_fraction
    }
}

impl SystemParams {
    /// Returns a copy scaled to a new total arrival rate, preserving each
    /// device's traffic share and data-read ratio.
    ///
    /// # Panics
    /// Panics unless `total_rate` is positive and finite.
    pub fn scaled_to_rate(&self, total_rate: f64) -> SystemParams {
        assert!(
            total_rate.is_finite() && total_rate > 0.0,
            "rate must be positive"
        );
        let current: f64 = self.devices.iter().map(|d| d.arrival_rate).sum();
        let k = total_rate / current;
        let devices = self
            .devices
            .iter()
            .map(|d| DeviceParams {
                arrival_rate: d.arrival_rate * k,
                data_read_rate: d.data_read_rate * k,
                ..d.clone()
            })
            .collect();
        SystemParams {
            frontend: FrontendParams {
                arrival_rate: total_rate,
                ..self.frontend.clone()
            },
            devices,
        }
    }
}

/// Overload control (§I): the largest total arrival rate at which the goal
/// still holds, found by bisection over `[0, upper]`. Returns `None` if the
/// goal fails even as the rate approaches zero.
pub fn max_admissible_rate(
    template: &SystemParams,
    variant: ModelVariant,
    goal: SlaGoal,
    upper: f64,
) -> Option<f64> {
    assert!(
        upper > 0.0 && upper.is_finite(),
        "upper bound must be positive"
    );
    let ok = |rate: f64| -> bool {
        SystemModel::new(&template.scaled_to_rate(rate), variant)
            .map(|m| goal.met_by(&m))
            .unwrap_or(false)
    };
    let mut lo = upper * 1e-4;
    if !ok(lo) {
        return None;
    }
    let mut hi = upper;
    if ok(hi) {
        return Some(hi);
    }
    for _ in 0..50 {
        let mid = 0.5 * (lo + hi);
        if ok(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(lo)
}

/// Parallel [`max_admissible_rate`]: each refinement round probes a
/// **fixed** grid of 8 interior rates concurrently on `workers` threads
/// (via [`cos_par::par_map`]) and shrinks the bracket to the last-passing /
/// first-failing pair. Probe positions depend only on the bracket — never
/// on scheduling — so the result is **identical for every worker count**,
/// including `workers = 1`.
///
/// Sixteen 9-fold shrink rounds refine past the serial version's 50
/// bisection halvings, so the two agree to the same tolerance, but the
/// parallel version's wall-clock is `rounds × slowest-probe` instead of
/// `50 × probe`.
pub fn max_admissible_rate_par(
    template: &SystemParams,
    variant: ModelVariant,
    goal: SlaGoal,
    upper: f64,
    workers: usize,
) -> Option<f64> {
    assert!(
        upper > 0.0 && upper.is_finite(),
        "upper bound must be positive"
    );
    let ok = |rate: f64| -> bool {
        SystemModel::new(&template.scaled_to_rate(rate), variant)
            .map(|m| goal.met_by(&m))
            .unwrap_or(false)
    };
    let mut lo = upper * 1e-4;
    if !ok(lo) {
        return None;
    }
    let mut hi = upper;
    if ok(hi) {
        return Some(hi);
    }
    const PROBES: usize = 8;
    const ROUNDS: usize = 16;
    for _ in 0..ROUNDS {
        let step = (hi - lo) / (PROBES + 1) as f64;
        let rates: Vec<f64> = (1..=PROBES).map(|k| lo + step * k as f64).collect();
        let passed = cos_par::par_map(workers, &rates, |_, &r| ok(r));
        // The goal is monotone in rate, so results form a true… false…
        // prefix; scan in rate order (par_map preserves it) for the edge.
        for (&rate, &p) in rates.iter().zip(&passed) {
            if p {
                lo = rate;
            } else {
                hi = rate;
                break;
            }
        }
        if hi - lo <= 1e-9 * upper {
            break;
        }
    }
    Some(lo)
}

/// Capacity planning (§I): the smallest number of identical devices that
/// meets the goal at `total_rate`, up to `max_devices`.
pub fn min_devices(
    device_template: &DeviceParams,
    frontend: &FrontendParams,
    variant: ModelVariant,
    goal: SlaGoal,
    total_rate: f64,
    max_devices: usize,
) -> Option<usize> {
    for n in 1..=max_devices {
        let per_device = total_rate / n as f64;
        let k = per_device / device_template.arrival_rate;
        let device = DeviceParams {
            arrival_rate: per_device,
            data_read_rate: device_template.data_read_rate * k,
            ..device_template.clone()
        };
        let params = SystemParams {
            frontend: FrontendParams {
                arrival_rate: total_rate,
                ..frontend.clone()
            },
            devices: vec![device; n],
        };
        if let Ok(m) = SystemModel::new(&params, variant) {
            if goal.met_by(&m) {
                return Some(n);
            }
        }
    }
    None
}

/// Elastic storage (§I): minimum device counts for a sequence of
/// anticipated rates (e.g. a diurnal profile), one entry per rate.
pub fn elastic_plan(
    device_template: &DeviceParams,
    frontend: &FrontendParams,
    variant: ModelVariant,
    goal: SlaGoal,
    rates: &[f64],
    max_devices: usize,
) -> Vec<Option<usize>> {
    rates
        .iter()
        .map(|&r| min_devices(device_template, frontend, variant, goal, r, max_devices))
        .collect()
}

/// Bottleneck identification (§I): ranks devices by their predicted
/// fraction of requests meeting the SLA, worst first. Returns
/// `(device_index, fraction)` pairs.
pub fn rank_bottlenecks(model: &SystemModel, sla: f64) -> Vec<(usize, f64)> {
    let mut out: Vec<(usize, f64)> = (0..model.devices().len())
        .map(|i| (i, model.device_fraction_meeting(i, sla)))
        .collect();
    out.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fractions"));
    out
}

/// Builds the model at a hypothetical rate, surfacing instability as the
/// typed error (useful for dashboards that distinguish "SLA violated" from
/// "no steady state").
pub fn model_at_rate(
    template: &SystemParams,
    variant: ModelVariant,
    total_rate: f64,
) -> Result<SystemModel, ModelError> {
    SystemModel::new(&template.scaled_to_rate(total_rate), variant)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cos_distr::{Degenerate, Gamma};
    use cos_queueing::from_distribution;

    fn device(rate: f64) -> DeviceParams {
        DeviceParams {
            arrival_rate: rate,
            data_read_rate: rate * 1.1,
            miss_index: 0.3,
            miss_meta: 0.25,
            miss_data: 0.4,
            index_disk: from_distribution(Gamma::new(3.0, 250.0)),
            meta_disk: from_distribution(Gamma::new(2.5, 312.5)),
            data_disk: from_distribution(Gamma::new(3.5, 245.0)),
            parse_be: from_distribution(Degenerate::new(0.0005)),
            processes: 1,
        }
    }

    fn frontend(rate: f64) -> FrontendParams {
        FrontendParams {
            arrival_rate: rate,
            processes: 3,
            parse_fe: from_distribution(Degenerate::new(0.0003)),
        }
    }

    fn template(rate: f64) -> SystemParams {
        SystemParams {
            frontend: frontend(rate),
            devices: (0..4).map(|_| device(rate / 4.0)).collect(),
        }
    }

    #[test]
    fn scaling_preserves_shares_and_ratios() {
        let mut t = template(100.0);
        t.devices[0].arrival_rate = 40.0;
        t.devices[0].data_read_rate = 44.0;
        for d in &mut t.devices[1..] {
            d.arrival_rate = 20.0;
            d.data_read_rate = 22.0;
        }
        let scaled = t.scaled_to_rate(200.0);
        assert!((scaled.devices[0].arrival_rate - 80.0).abs() < 1e-9);
        assert!((scaled.devices[1].arrival_rate - 40.0).abs() < 1e-9);
        assert!(
            (scaled.devices[0].data_read_rate / scaled.devices[0].arrival_rate - 1.1).abs() < 1e-9
        );
        assert!((scaled.frontend.arrival_rate - 200.0).abs() < 1e-12);
    }

    #[test]
    fn admissible_rate_is_consistent_with_goal() {
        let goal = SlaGoal::new(0.100, 0.90);
        let t = template(100.0);
        let limit = max_admissible_rate(&t, ModelVariant::Full, goal, 1000.0).unwrap();
        assert!(limit > 10.0 && limit < 1000.0, "limit {limit}");
        // Goal holds just below, fails just above.
        let below = model_at_rate(&t, ModelVariant::Full, limit * 0.98).unwrap();
        assert!(goal.met_by(&below));
        let above = model_at_rate(&t, ModelVariant::Full, limit * 1.05);
        assert!(above.map(|m| !goal.met_by(&m)).unwrap_or(true));
    }

    #[test]
    fn admissible_rate_none_for_impossible_goal() {
        // Disk-bound latencies can never put 99.9% under 1 ms.
        let goal = SlaGoal::new(0.001, 0.999);
        assert_eq!(
            max_admissible_rate(&template(100.0), ModelVariant::Full, goal, 500.0),
            None
        );
    }

    #[test]
    fn min_devices_monotone_in_rate() {
        let goal = SlaGoal::new(0.100, 0.90);
        let d = device(25.0);
        let fe = frontend(100.0);
        let n1 = min_devices(&d, &fe, ModelVariant::Full, goal, 100.0, 64).unwrap();
        let n2 = min_devices(&d, &fe, ModelVariant::Full, goal, 400.0, 64).unwrap();
        assert!(
            n2 >= n1,
            "more load cannot need fewer devices ({n1} -> {n2})"
        );
        assert!(n1 >= 1);
    }

    #[test]
    fn elastic_plan_tracks_rates() {
        let goal = SlaGoal::new(0.100, 0.90);
        let d = device(25.0);
        let fe = frontend(100.0);
        let plan = elastic_plan(
            &d,
            &fe,
            ModelVariant::Full,
            goal,
            &[50.0, 200.0, 800.0],
            128,
        );
        assert_eq!(plan.len(), 3);
        let counts: Vec<usize> = plan.iter().map(|p| p.unwrap()).collect();
        assert!(
            counts[0] <= counts[1] && counts[1] <= counts[2],
            "{counts:?}"
        );
    }

    #[test]
    fn bottleneck_ranking_finds_the_hot_device() {
        let mut t = template(120.0);
        t.devices[2].miss_index = 0.6;
        t.devices[2].miss_data = 0.7;
        let m = SystemModel::new(&t, ModelVariant::Full).unwrap();
        let ranked = rank_bottlenecks(&m, 0.05);
        assert_eq!(ranked[0].0, 2, "hot device must rank worst: {ranked:?}");
        assert!(ranked[0].1 < ranked[3].1);
    }

    #[test]
    #[should_panic]
    fn goal_rejects_bad_fraction() {
        SlaGoal::new(0.1, 1.5);
    }

    #[test]
    fn parallel_admissible_rate_is_worker_count_independent() {
        let goal = SlaGoal::new(0.100, 0.90);
        let t = template(100.0);
        let one = max_admissible_rate_par(&t, ModelVariant::Full, goal, 1000.0, 1).unwrap();
        for workers in [2, 4, 7] {
            let w = max_admissible_rate_par(&t, ModelVariant::Full, goal, 1000.0, workers).unwrap();
            assert_eq!(
                one.to_bits(),
                w.to_bits(),
                "workers={workers}: {one} vs {w}"
            );
        }
        // And it agrees with the serial bisection to fine tolerance.
        let serial = max_admissible_rate(&t, ModelVariant::Full, goal, 1000.0).unwrap();
        assert!(
            (one - serial).abs() / serial < 1e-4,
            "par {one} vs serial {serial}"
        );
    }

    #[test]
    fn parallel_admissible_rate_none_for_impossible_goal() {
        let goal = SlaGoal::new(0.001, 0.999);
        assert_eq!(
            max_admissible_rate_par(&template(100.0), ModelVariant::Full, goal, 500.0, 4),
            None
        );
    }
}
