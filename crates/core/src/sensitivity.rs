//! Parameter sensitivity of the percentile prediction.
//!
//! Part of the "what-if" toolbox (§I): given an operating point, which
//! measured input moves the predicted SLA percentile the most? Computed by
//! central finite differences on the model inputs — each probe is just a
//! model rebuild plus a few Laplace inversions.

use crate::backend::ModelError;
use crate::params::SystemParams;
use crate::system::SystemModel;
use crate::variant::ModelVariant;

/// Which scalar input is perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Parameter {
    /// A device's request arrival rate (its data-read rate scales along, so
    /// `p` stays fixed).
    ArrivalRate {
        /// Device index.
        device: usize,
    },
    /// A device's index-lookup miss ratio.
    MissIndex {
        /// Device index.
        device: usize,
    },
    /// A device's metadata-read miss ratio.
    MissMeta {
        /// Device index.
        device: usize,
    },
    /// A device's data-read miss ratio.
    MissData {
        /// Device index.
        device: usize,
    },
}

/// One sensitivity result: `d P(meet SLA) / d (relative change)` — the
/// change in predicted percentile per +100% relative change of the input,
/// linearized at the operating point.
#[derive(Debug, Clone, Copy)]
pub struct Sensitivity {
    /// The perturbed input.
    pub parameter: Parameter,
    /// Linearized derivative (negative: increasing the input hurts the SLA).
    pub derivative: f64,
}

fn perturbed(params: &SystemParams, parameter: Parameter, factor: f64) -> SystemParams {
    let mut out = params.clone();
    match parameter {
        Parameter::ArrivalRate { device } => {
            let d = &mut out.devices[device];
            d.arrival_rate *= factor;
            d.data_read_rate *= factor;
        }
        Parameter::MissIndex { device } => {
            let d = &mut out.devices[device];
            d.miss_index = (d.miss_index * factor).min(1.0);
        }
        Parameter::MissMeta { device } => {
            let d = &mut out.devices[device];
            d.miss_meta = (d.miss_meta * factor).min(1.0);
        }
        Parameter::MissData { device } => {
            let d = &mut out.devices[device];
            d.miss_data = (d.miss_data * factor).min(1.0);
        }
    }
    out
}

/// Computes the sensitivity of `P(latency <= sla)` to every device's rate
/// and miss ratios, sorted by magnitude descending. Inputs whose
/// perturbation makes the model unstable are reported with
/// `derivative = -f64::INFINITY` (the strongest possible signal).
pub fn sla_sensitivities(
    params: &SystemParams,
    variant: ModelVariant,
    sla: f64,
    relative_step: f64,
) -> Result<Vec<Sensitivity>, ModelError> {
    assert!(
        relative_step > 0.0 && relative_step < 0.5,
        "relative step must be in (0, 0.5), got {relative_step}"
    );
    // Baseline must be valid.
    SystemModel::new(params, variant)?;
    let eval = |p: &SystemParams| -> Option<f64> {
        SystemModel::new(p, variant)
            .ok()
            .map(|m| m.fraction_meeting_sla(sla))
    };
    let mut out = Vec::new();
    for device in 0..params.devices.len() {
        for parameter in [
            Parameter::ArrivalRate { device },
            Parameter::MissIndex { device },
            Parameter::MissMeta { device },
            Parameter::MissData { device },
        ] {
            let up = eval(&perturbed(params, parameter, 1.0 + relative_step));
            let down = eval(&perturbed(params, parameter, 1.0 - relative_step));
            let derivative = match (up, down) {
                (Some(u), Some(d)) => (u - d) / (2.0 * relative_step),
                // Perturbing upward destabilizes the system: maximal signal.
                (None, Some(_)) => f64::NEG_INFINITY,
                _ => f64::NEG_INFINITY,
            };
            out.push(Sensitivity {
                parameter,
                derivative,
            });
        }
    }
    out.sort_by(|a, b| {
        b.derivative
            .abs()
            .partial_cmp(&a.derivative.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(out)
}

/// Parallel [`sla_sensitivities`]: the `8 × devices` finite-difference
/// probes (one up, one down per input) are independent model builds, so
/// they fan out over `workers` threads via [`cos_par::par_map`]. Each probe
/// is computed single-threaded and results are merged positionally, so the
/// output is **bit-identical** to the serial version for any worker count.
pub fn sla_sensitivities_par(
    params: &SystemParams,
    variant: ModelVariant,
    sla: f64,
    relative_step: f64,
    workers: usize,
) -> Result<Vec<Sensitivity>, ModelError> {
    assert!(
        relative_step > 0.0 && relative_step < 0.5,
        "relative step must be in (0, 0.5), got {relative_step}"
    );
    SystemModel::new(params, variant)?;
    let parameters: Vec<Parameter> = (0..params.devices.len())
        .flat_map(|device| {
            [
                Parameter::ArrivalRate { device },
                Parameter::MissIndex { device },
                Parameter::MissMeta { device },
                Parameter::MissData { device },
            ]
        })
        .collect();
    let probes: Vec<(Parameter, f64)> = parameters
        .iter()
        .flat_map(|&p| [(p, 1.0 + relative_step), (p, 1.0 - relative_step)])
        .collect();
    let evals = cos_par::par_map(workers, &probes, |_, &(p, factor)| {
        SystemModel::new(&perturbed(params, p, factor), variant)
            .ok()
            .map(|m| m.fraction_meeting_sla(sla))
    });
    let mut out = Vec::with_capacity(parameters.len());
    for (i, &parameter) in parameters.iter().enumerate() {
        let (up, down) = (evals[2 * i], evals[2 * i + 1]);
        let derivative = match (up, down) {
            (Some(u), Some(d)) => (u - d) / (2.0 * relative_step),
            _ => f64::NEG_INFINITY,
        };
        out.push(Sensitivity {
            parameter,
            derivative,
        });
    }
    out.sort_by(|a, b| {
        b.derivative
            .abs()
            .partial_cmp(&a.derivative.abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{DeviceParams, FrontendParams};
    use cos_distr::{Degenerate, Gamma};
    use cos_queueing::from_distribution;

    fn params(rate: f64) -> SystemParams {
        let device = |r: f64| DeviceParams {
            arrival_rate: r,
            data_read_rate: r * 1.1,
            miss_index: 0.3,
            miss_meta: 0.25,
            miss_data: 0.4,
            index_disk: from_distribution(Gamma::new(3.0, 250.0)),
            meta_disk: from_distribution(Gamma::new(2.5, 312.5)),
            data_disk: from_distribution(Gamma::new(3.5, 245.0)),
            parse_be: from_distribution(Degenerate::new(0.0005)),
            processes: 1,
        };
        SystemParams {
            frontend: FrontendParams {
                arrival_rate: rate,
                processes: 3,
                parse_fe: from_distribution(Degenerate::new(0.0003)),
            },
            devices: (0..4).map(|_| device(rate / 4.0)).collect(),
        }
    }

    #[test]
    fn all_derivatives_nonpositive() {
        // More load or more misses can only hurt the SLA.
        let s = sla_sensitivities(&params(120.0), ModelVariant::Full, 0.05, 0.05).unwrap();
        assert_eq!(s.len(), 16);
        for x in &s {
            assert!(
                x.derivative <= 1e-6,
                "{:?} has positive derivative {}",
                x.parameter,
                x.derivative
            );
        }
    }

    #[test]
    fn data_miss_dominates_meta_miss() {
        // Data reads are both slower and more frequent (extra chunks), so
        // their miss ratio must matter more than the metadata one.
        let s = sla_sensitivities(&params(120.0), ModelVariant::Full, 0.05, 0.05).unwrap();
        let get = |want: Parameter| {
            s.iter()
                .find(|x| x.parameter == want)
                .unwrap()
                .derivative
                .abs()
        };
        assert!(
            get(Parameter::MissData { device: 0 }) > get(Parameter::MissMeta { device: 0 }),
            "{s:?}"
        );
    }

    #[test]
    fn sensitivities_grow_with_load() {
        let light = sla_sensitivities(&params(60.0), ModelVariant::Full, 0.05, 0.05).unwrap();
        let heavy = sla_sensitivities(&params(200.0), ModelVariant::Full, 0.05, 0.05).unwrap();
        let top = |s: &[Sensitivity]| s[0].derivative.abs();
        assert!(top(&heavy) > top(&light));
    }

    #[test]
    fn near_saturation_reports_instability() {
        // At ~97% utilization a +5% rate bump destabilizes the queue.
        let s = sla_sensitivities(&params(318.0), ModelVariant::Full, 0.05, 0.05).unwrap();
        assert!(
            s.iter().any(|x| x.derivative == f64::NEG_INFINITY),
            "expected an instability flag near saturation: {s:?}"
        );
    }

    #[test]
    fn baseline_instability_is_an_error() {
        assert!(sla_sensitivities(&params(400.0), ModelVariant::Full, 0.05, 0.05).is_err());
    }

    #[test]
    fn parallel_sensitivities_bit_identical_to_serial() {
        let p = params(120.0);
        let serial = sla_sensitivities(&p, ModelVariant::Full, 0.05, 0.05).unwrap();
        for workers in [1, 2, 4, 7] {
            let par = sla_sensitivities_par(&p, ModelVariant::Full, 0.05, 0.05, workers).unwrap();
            assert_eq!(serial.len(), par.len());
            for (a, b) in serial.iter().zip(par.iter()) {
                assert_eq!(a.parameter, b.parameter, "workers={workers}");
                assert_eq!(
                    a.derivative.to_bits(),
                    b.derivative.to_bits(),
                    "workers={workers}: {:?} {} vs {}",
                    a.parameter,
                    a.derivative,
                    b.derivative
                );
            }
        }
    }
}
