//! Parameter estimation (§IV) — turning benchmark samples and online metrics
//! into [`crate::params::DeviceParams`] inputs.
//!
//! * Fitting benchmarked disk latencies to LST-capable families (Fig. 5);
//! * the **latency-threshold** cache-miss estimator (0.015 ms in the paper's
//!   testbed — "thanks to the huge speed gap between memory and disk");
//! * the **proportional decomposition** of the aggregate disk service time
//!   (Linux only reports a summary value) into per-operation means by
//!   solving `b_i/p_i = b_m/p_m = b_d/p_d` under the weighted-mean
//!   constraint.

use cos_distr::{Empirical, Family, FitReport, Fitted};
use cos_queueing::{from_distribution, DynServiceTime};

/// The paper's hit/miss latency threshold (0.015 ms).
pub const LATENCY_THRESHOLD: f64 = 0.000_015;

/// Estimates a cache miss ratio from observed operation latencies: the
/// fraction exceeding `threshold` (§IV-B).
///
/// # Panics
/// Panics on an empty sample.
pub fn miss_ratio_by_threshold(latencies: &[f64], threshold: f64) -> f64 {
    assert!(
        !latencies.is_empty(),
        "cannot estimate a miss ratio from no samples"
    );
    latencies.iter().filter(|&&l| l > threshold).count() as f64 / latencies.len() as f64
}

/// Incremental form of [`miss_ratio_by_threshold`] for streaming telemetry:
/// feeds one operation latency at a time and keeps only two counters, so a
/// long-running service never buffers samples.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdMissEstimator {
    threshold: f64,
    over: u64,
    total: u64,
}

impl ThresholdMissEstimator {
    /// Creates an estimator with the given hit/miss latency threshold
    /// (use [`LATENCY_THRESHOLD`] for the paper's 0.015 ms).
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "threshold must be positive"
        );
        ThresholdMissEstimator {
            threshold,
            over: 0,
            total: 0,
        }
    }

    /// Records one operation latency.
    pub fn observe(&mut self, latency: f64) {
        self.total += 1;
        if latency > self.threshold {
            self.over += 1;
        }
    }

    /// Estimated miss ratio (`None` before any observation — unlike the
    /// batch form, streaming callers must handle the empty case).
    pub fn ratio(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.over as f64 / self.total as f64)
        }
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.total
    }
}

/// Why an online decomposition could not be performed this refit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DecomposeError {
    /// The aggregate mean disk service time was non-positive.
    BadOverallMean(f64),
    /// A benchmarked proportion was non-positive.
    BadProportion(f64),
    /// No operations reach the disk (all-hit window): nothing to decompose.
    NoDiskTraffic,
}

impl std::fmt::Display for DecomposeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecomposeError::BadOverallMean(b) => {
                write!(f, "overall disk service time must be positive, got {b}")
            }
            DecomposeError::BadProportion(p) => {
                write!(f, "benchmarked proportions must be positive, got {p}")
            }
            DecomposeError::NoDiskTraffic => {
                write!(f, "no operations reach the disk; nothing to decompose")
            }
        }
    }
}

impl std::error::Error for DecomposeError {}

/// Non-panicking [`decompose_disk_service`] for online refits, where an
/// idle or all-hit measurement window is an expected condition (serve the
/// previous epoch) rather than a programming error.
pub fn try_decompose_disk_service(
    b_overall: f64,
    proportions: [f64; 3],
    misses: [f64; 3],
    r: f64,
    r_data: f64,
) -> Result<[f64; 3], DecomposeError> {
    if !(b_overall.is_finite() && b_overall > 0.0) {
        return Err(DecomposeError::BadOverallMean(b_overall));
    }
    if let Some(&p) = proportions.iter().find(|p| !(p.is_finite() && **p > 0.0)) {
        return Err(DecomposeError::BadProportion(p));
    }
    let [mi, mm, md] = misses;
    let op_rate = mi * r + mm * r + md * r_data;
    if !(op_rate.is_finite() && op_rate > 0.0) {
        return Err(DecomposeError::NoDiskTraffic);
    }
    Ok(decompose_disk_service(
        b_overall,
        proportions,
        misses,
        r,
        r_data,
    ))
}

/// Decomposes the aggregate mean disk service time into per-operation means.
///
/// Inputs: overall mean `b`, per-operation proportions `p = [p_i, p_m, p_d]`
/// (from offline benchmarking, assumed stable as disk service times
/// fluctuate, §IV-A), miss ratios `m = [m_i, m_m, m_d]`, request rate `r`,
/// and data-read rate `r_data`. Solves
///
/// `b_i/p_i = b_m/p_m = b_d/p_d` and
/// `m_i b_i r + m_m b_m r + m_d b_d r_data = (m_i r + m_m r + m_d r_data) b`.
///
/// # Panics
/// Panics on non-positive proportions or a zero disk-op rate.
pub fn decompose_disk_service(
    b_overall: f64,
    proportions: [f64; 3],
    misses: [f64; 3],
    r: f64,
    r_data: f64,
) -> [f64; 3] {
    assert!(
        b_overall > 0.0,
        "overall disk service time must be positive"
    );
    assert!(
        proportions.iter().all(|&p| p > 0.0),
        "proportions must be positive"
    );
    let [pi, pm, pd] = proportions;
    let [mi, mm, md] = misses;
    let op_rate = mi * r + mm * r + md * r_data;
    assert!(
        op_rate > 0.0,
        "no operations reach the disk; nothing to decompose"
    );
    // With b_k = c·p_k, the constraint gives c directly.
    let weighted = mi * pi * r + mm * pm * r + md * pd * r_data;
    let c = op_rate * b_overall / weighted;
    [c * pi, c * pm, c * pd]
}

/// A disk law fitted from benchmark samples, with its model-selection
/// report.
pub struct FittedDiskLaw {
    /// The service-time law handed to the model.
    pub law: DynServiceTime,
    /// The winning family.
    pub family: Family,
    /// The full ranked report (for Fig. 5-style output).
    pub report: FitReport,
}

impl std::fmt::Debug for FittedDiskLaw {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FittedDiskLaw")
            .field("family", &self.family)
            .field("mean", &self.law.mean())
            .field("ks", &self.report.best().ks)
            .finish()
    }
}

/// Fits benchmarked disk latencies (§IV-A): runs the four-family selection
/// and converts the winner into a model-ready service law.
pub fn fit_disk_law(samples: &Empirical) -> FittedDiskLaw {
    let report = cos_distr::fit_best(samples);
    let best = report.best().fitted;
    let law: DynServiceTime = match best {
        Fitted::Degenerate(d) => from_distribution(d),
        Fitted::Exponential(e) => from_distribution(e),
        Fitted::Normal(n) => from_distribution(n),
        Fitted::Gamma(g) => from_distribution(g),
    };
    FittedDiskLaw {
        law,
        family: best.family(),
        report,
    }
}

/// Rescales fitted per-operation disk laws so their means match an online
/// decomposition while keeping their shape (the paper assumes the
/// *proportions* of `b_i, b_m, b_d` persist as absolute values drift).
///
/// For the Gamma family this means holding the shape `k` and adjusting the
/// rate `l`; generically we scale time by `target_mean / current_mean`,
/// which is exactly that for Gamma.
pub fn rescale_to_mean(law: &DynServiceTime, target_mean: f64) -> DynServiceTime {
    assert!(target_mean > 0.0, "target mean must be positive");
    let current = law.mean();
    assert!(current > 0.0, "cannot rescale a zero-mean law");
    let k = target_mean / current;
    let inner = law.clone();
    let second = law.second_moment() * k * k;
    std::sync::Arc::new(cos_queueing::TransformServiceTime::new(
        move |s| inner.lst(s * k),
        target_mean,
        second,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cos_distr::{Distribution as _, Gamma};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn threshold_estimator_exact_on_separated_latencies() {
        // Memory ~3 µs, disk ~12 ms: the 15 µs threshold separates exactly.
        let mut lat = vec![0.000_003; 700];
        lat.extend(vec![0.012; 300]);
        let m = miss_ratio_by_threshold(&lat, LATENCY_THRESHOLD);
        assert!((m - 0.3).abs() < 1e-12);
    }

    #[test]
    fn threshold_estimator_on_noisy_gamma_misses() {
        let g = Gamma::new(3.0, 250.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut lat: Vec<f64> = (0..6000).map(|_| g.sample(&mut rng)).collect();
        lat.extend(vec![0.000_002; 4000]);
        let m = miss_ratio_by_threshold(&lat, LATENCY_THRESHOLD);
        assert!((m - 0.6).abs() < 0.01, "estimated {m}");
    }

    #[test]
    fn decomposition_preserves_proportions_and_constraint() {
        let b = 0.012;
        let proportions = [12.0, 8.0, 14.0];
        let misses = [0.3, 0.3, 0.5];
        let (r, r_data) = (100.0, 110.0);
        let [bi, bm, bd] = decompose_disk_service(b, proportions, misses, r, r_data);
        // Proportions hold.
        assert!((bi / 12.0 - bm / 8.0).abs() < 1e-12);
        assert!((bm / 8.0 - bd / 14.0).abs() < 1e-12);
        // Weighted-mean constraint holds.
        let lhs = misses[0] * bi * r + misses[1] * bm * r + misses[2] * bd * r_data;
        let rhs = (misses[0] * r + misses[1] * r + misses[2] * r_data) * b;
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn decomposition_roundtrip_from_known_components() {
        // Build the aggregate from known b_i, b_m, b_d, then recover them.
        let (bi, bm, bd) = (0.012, 0.008, 0.014);
        let misses = [0.3, 0.3, 0.5];
        let (r, r_data) = (80.0, 96.0);
        let op_rate = misses[0] * r + misses[1] * r + misses[2] * r_data;
        let b = (misses[0] * bi * r + misses[1] * bm * r + misses[2] * bd * r_data) / op_rate;
        let got = decompose_disk_service(b, [bi, bm, bd], misses, r, r_data);
        assert!((got[0] - bi).abs() < 1e-12);
        assert!((got[1] - bm).abs() < 1e-12);
        assert!((got[2] - bd).abs() < 1e-12);
    }

    #[test]
    fn fit_disk_law_selects_gamma_on_gamma_data() {
        let g = Gamma::new(3.0, 250.0);
        let mut rng = SmallRng::seed_from_u64(5);
        let sample = Empirical::new((0..20_000).map(|_| g.sample(&mut rng)).collect());
        let fitted = fit_disk_law(&sample);
        assert_eq!(fitted.family, Family::Gamma);
        assert!((fitted.law.mean() - g.mean()).abs() / g.mean() < 0.05);
        assert!(fitted.report.candidates.len() >= 3);
    }

    #[test]
    fn rescale_preserves_shape() {
        let g = Gamma::new(3.0, 250.0); // mean 12 ms
        let law = from_distribution(g);
        let scaled = rescale_to_mean(&law, 0.024);
        assert!((scaled.mean() - 0.024).abs() < 1e-12);
        // SCV is shape-determined and must be unchanged: E[X²]/E[X]² fixed.
        let scv_old = law.second_moment() / (law.mean() * law.mean());
        let scv_new = scaled.second_moment() / (scaled.mean() * scaled.mean());
        assert!((scv_old - scv_new).abs() < 1e-12);
        // The LST matches the doubled-mean Gamma exactly.
        let g2 = Gamma::new(3.0, 125.0);
        let s = cos_numeric::Complex64::new(3.0, 7.0);
        assert!((scaled.lst(s) - cos_distr::Lst::lst(&g2, s)).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn decompose_rejects_all_hit_system() {
        decompose_disk_service(0.01, [1.0, 1.0, 1.0], [0.0, 0.0, 0.0], 10.0, 11.0);
    }

    #[test]
    fn incremental_threshold_matches_batch() {
        let mut lat = vec![0.000_003; 700];
        lat.extend(vec![0.012; 300]);
        let mut inc = ThresholdMissEstimator::new(LATENCY_THRESHOLD);
        for &l in &lat {
            inc.observe(l);
        }
        let batch = miss_ratio_by_threshold(&lat, LATENCY_THRESHOLD);
        assert_eq!(inc.ratio(), Some(batch));
        assert_eq!(inc.count(), 1000);
        assert_eq!(ThresholdMissEstimator::new(1.0).ratio(), None);
    }

    #[test]
    fn try_decompose_matches_panicking_form_when_valid() {
        let got =
            try_decompose_disk_service(0.012, [12.0, 8.0, 14.0], [0.3, 0.3, 0.5], 100.0, 110.0)
                .unwrap();
        let want = decompose_disk_service(0.012, [12.0, 8.0, 14.0], [0.3, 0.3, 0.5], 100.0, 110.0);
        assert_eq!(got, want);
    }

    #[test]
    fn try_decompose_reports_typed_errors() {
        assert_eq!(
            try_decompose_disk_service(0.01, [1.0, 1.0, 1.0], [0.0, 0.0, 0.0], 10.0, 11.0),
            Err(DecomposeError::NoDiskTraffic)
        );
        assert_eq!(
            try_decompose_disk_service(0.0, [1.0, 1.0, 1.0], [0.5, 0.5, 0.5], 10.0, 11.0),
            Err(DecomposeError::BadOverallMean(0.0))
        );
        assert!(matches!(
            try_decompose_disk_service(0.01, [1.0, -2.0, 1.0], [0.5, 0.5, 0.5], 10.0, 11.0),
            Err(DecomposeError::BadProportion(_))
        ));
    }
}
