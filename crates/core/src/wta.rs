//! Waiting time for being accept()-ed (§III-C) — the paper's second
//! contribution, plus the exact forms it approximates (ablation A1).
//!
//! By PASTA, the lifetime distribution `A` of an accept() operation equals
//! the waiting-time distribution `W_be` of the backend request-processing
//! queue. The paper then *approximates* the connecting request's wait by the
//! full lifetime: `W_a = A = W_be`. The exact law it writes down is
//!
//! `P(W_a > t) = ∫_{x ≥ t} a(x) (x − t)/x dx`
//!
//! (a request arriving uniformly within a lifetime of length `x` waits more
//! than `t` with probability `(x−t)/x`). This module evaluates the paper
//! approximation, the paper's exact integral, and the length-biased
//! (equilibrium/inspection) variant that weights lifetimes by how many
//! Poisson arrivals they cover.

use crate::backend::BackendModel;
use cos_numeric::laplace::InversionConfig;
use cos_numeric::quad::adaptive_simpson;
use cos_numeric::Complex64;

/// Paper approximation: `P(W_a > t) = P(W_be > t)`.
pub fn paper_wta_ccdf(backend: &BackendModel, t: f64, config: &InversionConfig) -> f64 {
    cos_numeric::ccdf_from_lst(&|s| backend.waiting_lst(s), t, config)
}

/// Mean WTA under the paper approximation: `E[W_a] = E[W_be]`.
pub fn paper_wta_mean(backend: &BackendModel) -> f64 {
    backend.mean_waiting()
}

/// Continuous-part density of `W_be` at `x > 0`: the P–K waiting law has an
/// atom of mass `1 − ρ` at zero plus a continuous density.
fn waiting_density(backend: &BackendModel, x: f64, config: &InversionConfig) -> f64 {
    let atom = 1.0 - backend.utilization();
    let continuous = move |s: Complex64| backend.waiting_lst(s) - atom;
    config.invert(&continuous, x).max(0.0)
}

/// The paper's exact WTA tail: `P(W_a > t) = ∫_{x≥t} a(x) (x − t)/x dx`,
/// averaging per accept *lifetime* (each lifetime counted once).
pub fn exact_wta_ccdf(backend: &BackendModel, t: f64, config: &InversionConfig) -> f64 {
    assert!(t >= 0.0, "time must be nonnegative");
    if t == 0.0 {
        // Every request with a positive-lifetime accept waits; the zero atom
        // contributes zero wait.
        return backend.utilization();
    }
    let cfg = *config;
    let integrand = move |x: f64| {
        if x <= t {
            0.0
        } else {
            waiting_density(backend, x, &cfg) * (x - t) / x
        }
    };
    // The P–K waiting tail decays geometrically; 40 mean waits of headroom
    // bounds the truncated mass far below the quadrature tolerance while
    // keeping the numerically-inverted density away from its noise floor.
    let upper = t + 40.0 * backend.mean_waiting().max(1e-6);
    adaptive_simpson(&integrand, t, upper, 1e-7).clamp(0.0, 1.0)
}

/// Mean of the paper's exact WTA: `E = ∫ a(x) · x/2 dx = E[W_be]/2`
/// (per-lifetime averaging halves the approximation's mean).
pub fn exact_wta_mean(backend: &BackendModel) -> f64 {
    0.5 * backend.mean_waiting()
}

/// Length-biased (equilibrium) WTA tail: a Poisson arrival lands in a
/// lifetime with probability proportional to its length, so the residual
/// wait follows the equilibrium distribution
/// `P(W_a > t) = ∫_t^∞ P(W_be > u) du / E[W_be]`.
pub fn equilibrium_wta_ccdf(backend: &BackendModel, t: f64, config: &InversionConfig) -> f64 {
    assert!(t >= 0.0, "time must be nonnegative");
    let mean = backend.mean_waiting();
    if mean <= 0.0 {
        return 0.0;
    }
    let cfg = *config;
    let tail = move |u: f64| cos_numeric::ccdf_from_lst(&|s| backend.waiting_lst(s), u, &cfg);
    let upper = t + 40.0 * mean;
    (adaptive_simpson(&tail, t, upper, 1e-7) / mean).clamp(0.0, 1.0)
}

/// Mean equilibrium WTA: `E[W_be²] / (2 E[W_be])`, computed from the P–K
/// moments rather than nested quadrature. The second moment of the waiting
/// time comes from the Takács recurrence:
/// `E[W²] = 2 E[W]² + λ E[B³]/(3(1−ρ))`; since `E[B³]` is not tracked, we
/// instead differentiate the waiting LST numerically at the origin.
pub fn equilibrium_wta_mean(backend: &BackendModel) -> f64 {
    let mean = backend.mean_waiting();
    if mean <= 0.0 {
        return 0.0;
    }
    // Second derivative of L[W](s) at 0 gives E[W²]; use a central
    // second-difference with a dimensionless step (s·E[W] ≈ 0.05) balancing
    // truncation against cancellation.
    let h = 0.05 / mean;
    let f = |s: f64| backend.waiting_lst(Complex64::from_real(s)).re;
    let w2 = (f(h) - 2.0 * f(0.0) + f(-h)) / (h * h);
    (w2 / (2.0 * mean)).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::DeviceParams;
    use crate::variant::ModelVariant;
    use cos_distr::{Degenerate, Gamma};
    use cos_queueing::from_distribution;

    fn backend(rate: f64) -> BackendModel {
        let p = DeviceParams {
            arrival_rate: rate,
            data_read_rate: rate * 1.1,
            miss_index: 0.3,
            miss_meta: 0.3,
            miss_data: 0.5,
            index_disk: from_distribution(Gamma::new(3.0, 250.0)),
            meta_disk: from_distribution(Gamma::new(2.5, 312.5)),
            data_disk: from_distribution(Gamma::new(3.5, 245.0)),
            parse_be: from_distribution(Degenerate::new(0.0005)),
            processes: 1,
        };
        BackendModel::new(&p, ModelVariant::Full).unwrap()
    }

    #[test]
    fn paper_approximation_dominates_exact() {
        // The approximation assigns the FULL lifetime as the wait, so its
        // tail must dominate the paper-exact tail everywhere.
        let b = backend(40.0);
        let cfg = InversionConfig::default();
        for &t in &[0.002, 0.01, 0.03] {
            let approx = paper_wta_ccdf(&b, t, &cfg);
            let exact = exact_wta_ccdf(&b, t, &cfg);
            assert!(
                approx >= exact - 1e-4,
                "t={t}: approx {approx} must dominate exact {exact}"
            );
        }
    }

    #[test]
    fn exact_mean_is_half_of_approximation() {
        let b = backend(40.0);
        assert!((exact_wta_mean(&b) - 0.5 * paper_wta_mean(&b)).abs() < 1e-15);
    }

    #[test]
    fn exact_ccdf_at_zero_is_utilization() {
        let b = backend(40.0);
        let cfg = InversionConfig::default();
        assert!((exact_wta_ccdf(&b, 0.0, &cfg) - b.utilization()).abs() < 1e-12);
    }

    #[test]
    fn equilibrium_mean_exceeds_exact_mean() {
        // Length-biasing weights long lifetimes more heavily:
        // E[W²]/(2E[W]) > E[W]/2 unless W is deterministic.
        let b = backend(50.0);
        let eq = equilibrium_wta_mean(&b);
        assert!(
            eq > exact_wta_mean(&b),
            "equilibrium {eq} vs exact {}",
            exact_wta_mean(&b)
        );
    }

    #[test]
    fn overestimation_grows_with_load() {
        // §V-B: "this overestimation increases as the length of the request
        // processing queue increases" — the gap between approximation and
        // exact mean is half the mean waiting time, which grows with load.
        let light = backend(20.0);
        let heavy = backend(60.0);
        let gap_light = paper_wta_mean(&light) - exact_wta_mean(&light);
        let gap_heavy = paper_wta_mean(&heavy) - exact_wta_mean(&heavy);
        assert!(gap_heavy > gap_light);
    }

    #[test]
    fn tails_decrease_in_t() {
        let b = backend(45.0);
        let cfg = InversionConfig::default();
        let e1 = exact_wta_ccdf(&b, 0.005, &cfg);
        let e2 = exact_wta_ccdf(&b, 0.02, &cfg);
        assert!(e1 >= e2);
        let q1 = equilibrium_wta_ccdf(&b, 0.005, &cfg);
        let q2 = equilibrium_wta_ccdf(&b, 0.02, &cfg);
        assert!(q1 >= q2);
    }
}
