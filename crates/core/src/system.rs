//! End-to-end system model (Eq. 2 and Eq. 3) — the public prediction API.
//!
//! Per device, the frontend-measured response latency composes three
//! independent components (Eq. 2): `S_fe = S_q ∗ W_a ∗ S_be`. The system
//! CDF is the arrival-rate-weighted mixture over devices (Eq. 3):
//! `S(t) = Σ r_j S_j(t) / Σ r_j`.

use crate::backend::{BackendModel, ModelError};
use crate::frontend::FrontendModel;
use crate::params::SystemParams;
use crate::variant::ModelVariant;
use cos_numeric::laplace::{InversionConfig, LaplaceFn};
use cos_numeric::Complex64;

/// One device's end-to-end model.
#[derive(Debug)]
pub struct DeviceModel {
    backend: BackendModel,
    arrival_rate: f64,
    variant: ModelVariant,
}

impl DeviceModel {
    /// The backend part.
    pub fn backend(&self) -> &BackendModel {
        &self.backend
    }

    /// This device's arrival rate (mixture weight in Eq. 3).
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }
}

/// The full-system latency model.
#[derive(Debug)]
pub struct SystemModel {
    frontend: FrontendModel,
    devices: Vec<DeviceModel>,
    variant: ModelVariant,
    inversion: InversionConfig,
}

impl SystemModel {
    /// Builds the model for the given parameters and variant.
    ///
    /// Fails with [`ModelError`] if any queue is unstable — the paper's
    /// assumption 5 (normal status) excludes such operating points.
    pub fn new(params: &SystemParams, variant: ModelVariant) -> Result<Self, ModelError> {
        params.validate();
        let frontend = FrontendModel::new(&params.frontend)?;
        let devices = params
            .devices
            .iter()
            .map(|d| {
                Ok(DeviceModel {
                    backend: BackendModel::new(d, variant)?,
                    arrival_rate: d.arrival_rate,
                    variant,
                })
            })
            .collect::<Result<Vec<_>, ModelError>>()?;
        Ok(SystemModel {
            frontend,
            devices,
            variant,
            inversion: InversionConfig::default(),
        })
    }

    /// Overrides the Laplace-inversion configuration.
    pub fn with_inversion(mut self, inversion: InversionConfig) -> Self {
        self.inversion = inversion;
        self
    }

    /// Replaces the frontend model, e.g. with a heterogeneous-tier model
    /// built via [`FrontendModel::heterogeneous`] (§III-C).
    pub fn with_frontend(mut self, frontend: FrontendModel) -> Self {
        self.frontend = frontend;
        self
    }

    /// The model variant.
    pub fn variant(&self) -> ModelVariant {
        self.variant
    }

    /// The frontend model.
    pub fn frontend(&self) -> &FrontendModel {
        &self.frontend
    }

    /// Per-device models.
    pub fn devices(&self) -> &[DeviceModel] {
        &self.devices
    }

    /// LST of `S_fe` for device `idx` (Eq. 2): `S_q · W_a · S_be`.
    pub fn device_response_lst(&self, idx: usize, s: Complex64) -> Complex64 {
        let d = &self.devices[idx];
        let mut lst = self.frontend.sojourn_lst(s) * d.backend.sojourn_lst(s);
        match d.variant {
            // W_a = W_be (the paper's approximation, §III-C).
            ModelVariant::Full | ModelVariant::Odopr => {
                lst *= d.backend.waiting_lst(s);
            }
            ModelVariant::NoWta => {}
            // A connection arriving while the process is idle (probability
            // 1 − ρ, PASTA) is accepted immediately; otherwise it lands in
            // an in-flight accept lifetime and waits the length-biased
            // equilibrium residual of W_be, with LST (1 − L[W](s))/(s·E[W]):
            // W_a = (1 − ρ)·δ + ρ·W_eq.
            ModelVariant::ResidualWta => {
                let mean = d.backend.mean_waiting();
                let rho = d.backend.utilization();
                if mean > 1e-15 {
                    let eq = (Complex64::ONE - d.backend.waiting_lst(s)) / (s * mean);
                    lst *= eq * rho + (1.0 - rho);
                }
            }
        }
        lst
    }

    /// Batch [`SystemModel::device_response_lst`]: the frontend mixture,
    /// the backend response, and the WTA factor share one pass over the
    /// component transforms (see
    /// [`BackendModel::sojourn_and_waiting_lst_batch`]) instead of
    /// re-walking the whole composite tree per abscissa. Bit-identical to
    /// the scalar path.
    pub fn device_response_lst_batch(&self, idx: usize, s: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(s.len(), out.len(), "abscissa/output length mismatch");
        let d = &self.devices[idx];
        let mut sojourn = vec![Complex64::ZERO; s.len()];
        let mut waiting = vec![Complex64::ZERO; s.len()];
        d.backend
            .sojourn_and_waiting_lst_batch(s, &mut sojourn, &mut waiting);
        self.frontend.sojourn_lst_batch(s, out);
        match d.variant {
            ModelVariant::Full | ModelVariant::Odopr => {
                for i in 0..s.len() {
                    // (S_q · S_be) · W_a — the scalar grouping.
                    out[i] = out[i] * sojourn[i] * waiting[i];
                }
            }
            ModelVariant::NoWta => {
                for i in 0..s.len() {
                    out[i] *= sojourn[i];
                }
            }
            ModelVariant::ResidualWta => {
                let mean = d.backend.mean_waiting();
                let rho = d.backend.utilization();
                for i in 0..s.len() {
                    out[i] *= sojourn[i];
                    if mean > 1e-15 {
                        let eq = (Complex64::ONE - waiting[i]) / (s[i] * mean);
                        out[i] *= eq * rho + (1.0 - rho);
                    }
                }
            }
        }
    }

    /// CDF of the response latency of device `idx` at `t`.
    pub fn device_fraction_meeting(&self, idx: usize, sla: f64) -> f64 {
        cos_numeric::cdf_from_lst(
            &DeviceResponseLst { model: self, idx },
            sla,
            &self.inversion,
        )
    }

    /// Predicted percentile of requests meeting `sla` for the whole system
    /// (Eq. 3).
    pub fn fraction_meeting_sla(&self, sla: f64) -> f64 {
        let total_rate: f64 = self.devices.iter().map(|d| d.arrival_rate).sum();
        let mut acc = 0.0;
        for (i, d) in self.devices.iter().enumerate() {
            acc += d.arrival_rate * self.device_fraction_meeting(i, sla);
        }
        acc / total_rate
    }

    /// Mean end-to-end response latency for device `idx`.
    pub fn device_mean_response(&self, idx: usize) -> f64 {
        let d = &self.devices[idx];
        let wta = match d.variant {
            ModelVariant::Full | ModelVariant::Odopr => d.backend.mean_waiting(),
            ModelVariant::NoWta => 0.0,
            ModelVariant::ResidualWta => {
                d.backend.utilization() * crate::wta::equilibrium_wta_mean(&d.backend)
            }
        };
        self.frontend.mean_sojourn() + wta + d.backend.mean_sojourn()
    }

    /// Mean system response latency (rate-weighted over devices).
    pub fn mean_response(&self) -> f64 {
        let total_rate: f64 = self.devices.iter().map(|d| d.arrival_rate).sum();
        self.devices
            .iter()
            .enumerate()
            .map(|(i, d)| d.arrival_rate * self.device_mean_response(i))
            .sum::<f64>()
            / total_rate
    }

    /// Latency bound met by fraction `p` of requests (inverse of Eq. 3),
    /// found by a budgeted bracketed Ridders search on the monotone system
    /// CDF (each probe costs one transform inversion per device, so the
    /// probe budget — not per-probe cost — dominates the latency of this
    /// call). Returns `None` if the search fails to bracket.
    pub fn latency_percentile(&self, p: f64) -> Option<f64> {
        assert!((0.0..1.0).contains(&p), "p must be in [0,1), got {p}");
        if p == 0.0 {
            return Some(0.0);
        }
        cos_numeric::invert_monotone(
            |t| self.fraction_meeting_sla(t),
            p,
            self.mean_response().max(1e-6),
            40,
            cos_numeric::QUANTILE_INVERSION_BUDGET,
        )
    }
}

/// [`LaplaceFn`] view of one device's composite response transform, so the
/// inversion routines hit [`SystemModel::device_response_lst_batch`] instead
/// of re-walking the component tree per abscissa through a scalar closure.
struct DeviceResponseLst<'a> {
    model: &'a SystemModel,
    idx: usize,
}

impl LaplaceFn for DeviceResponseLst<'_> {
    fn eval(&self, s: Complex64) -> Complex64 {
        self.model.device_response_lst(self.idx, s)
    }
    fn eval_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        self.model.device_response_lst_batch(self.idx, s, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{DeviceParams, FrontendParams};
    use cos_distr::{Degenerate, Gamma};
    use cos_queueing::from_distribution;

    fn device(rate: f64, nbe: usize) -> DeviceParams {
        DeviceParams {
            arrival_rate: rate,
            data_read_rate: rate * 1.1,
            miss_index: 0.3,
            miss_meta: 0.3,
            miss_data: 0.5,
            index_disk: from_distribution(Gamma::new(3.0, 250.0)),
            meta_disk: from_distribution(Gamma::new(2.5, 312.5)),
            data_disk: from_distribution(Gamma::new(3.5, 245.0)),
            parse_be: from_distribution(Degenerate::new(0.0005)),
            processes: nbe,
        }
    }

    fn system(rate_per_device: f64, devices: usize, nbe: usize) -> SystemParams {
        SystemParams {
            frontend: FrontendParams {
                arrival_rate: rate_per_device * devices as f64,
                processes: 3,
                parse_fe: from_distribution(Degenerate::new(0.0003)),
            },
            devices: (0..devices).map(|_| device(rate_per_device, nbe)).collect(),
        }
    }

    #[test]
    fn symmetric_system_equals_single_device() {
        let params = system(40.0, 4, 1);
        let m = SystemModel::new(&params, ModelVariant::Full).unwrap();
        let sys = m.fraction_meeting_sla(0.05);
        let dev = m.device_fraction_meeting(0, 0.05);
        assert!(
            (sys - dev).abs() < 1e-9,
            "identical devices ⇒ Eq. 3 is a no-op"
        );
    }

    #[test]
    fn heterogeneous_mixture_weights_by_rate() {
        // One idle-ish device, one loaded device with 3× the traffic.
        let mut params = system(15.0, 2, 1);
        params.devices[1].arrival_rate = 45.0;
        params.devices[1].data_read_rate = 45.0 * 1.1;
        params.frontend.arrival_rate = 60.0;
        let m = SystemModel::new(&params, ModelVariant::Full).unwrap();
        let f0 = m.device_fraction_meeting(0, 0.03);
        let f1 = m.device_fraction_meeting(1, 0.03);
        let want = (15.0 * f0 + 45.0 * f1) / 60.0;
        assert!((m.fraction_meeting_sla(0.03) - want).abs() < 1e-12);
        assert!(f0 > f1, "lighter device must look better");
    }

    #[test]
    fn nowta_predicts_better_percentiles_than_full() {
        let params = system(50.0, 4, 1);
        let full = SystemModel::new(&params, ModelVariant::Full).unwrap();
        let nowta = SystemModel::new(&params, ModelVariant::NoWta).unwrap();
        for &sla in &[0.01, 0.05, 0.1] {
            assert!(
                nowta.fraction_meeting_sla(sla) >= full.fraction_meeting_sla(sla) - 1e-9,
                "sla={sla}"
            );
        }
    }

    #[test]
    fn odopr_is_most_optimistic() {
        let params = system(50.0, 4, 1);
        let full = SystemModel::new(&params, ModelVariant::Full).unwrap();
        let odopr = SystemModel::new(&params, ModelVariant::Odopr).unwrap();
        for &sla in &[0.01, 0.05, 0.1] {
            assert!(
                odopr.fraction_meeting_sla(sla) > full.fraction_meeting_sla(sla),
                "sla={sla}"
            );
        }
    }

    #[test]
    fn residual_wta_is_consistent_and_bounded() {
        let params = system(50.0, 4, 1);
        let full = SystemModel::new(&params, ModelVariant::Full).unwrap();
        let residual = SystemModel::new(&params, ModelVariant::ResidualWta).unwrap();
        let nowta = SystemModel::new(&params, ModelVariant::NoWta).unwrap();
        // Mean identity: residual mean = noWTA mean + ρ·E_eq[W].
        let be = residual.devices()[0].backend();
        let want =
            nowta.device_mean_response(0) + be.utilization() * crate::wta::equilibrium_wta_mean(be);
        assert!(
            (residual.device_mean_response(0) - want).abs() < 1e-9,
            "got {}, want {want}",
            residual.device_mean_response(0)
        );
        // Valid monotone CDF strictly between the extremes in the far tail
        // (where ordering by mean shows up).
        let mut prev = 0.0;
        for i in 1..=10 {
            let sla = i as f64 * 0.02;
            let r = residual.fraction_meeting_sla(sla);
            assert!((0.0..=1.0).contains(&r));
            assert!(r >= prev - 1e-7);
            prev = r;
        }
        // The residual WTA adds a nonzero positive delay, so it predicts
        // worse percentiles than noWTA somewhere.
        assert!(residual.fraction_meeting_sla(0.05) < nowta.fraction_meeting_sla(0.05));
        // And it never predicts a worse *mean* than full when W's SCV > 1
        // fails; just sanity-bound it within the two extremes' span x2.
        let lo = nowta.mean_response();
        let hi = full.mean_response();
        let m = residual.mean_response();
        assert!(
            m > lo && m < lo + 2.0 * (hi - lo),
            "mean {m} outside [{lo}, {hi}] band"
        );
    }

    #[test]
    fn fraction_increases_with_sla() {
        let m = SystemModel::new(&system(45.0, 4, 1), ModelVariant::Full).unwrap();
        let f10 = m.fraction_meeting_sla(0.01);
        let f50 = m.fraction_meeting_sla(0.05);
        let f100 = m.fraction_meeting_sla(0.10);
        assert!(f10 <= f50 && f50 <= f100, "{f10} {f50} {f100}");
        assert!(f100 <= 1.0 && f10 >= 0.0);
    }

    #[test]
    fn percentile_inverts_fraction() {
        let m = SystemModel::new(&system(40.0, 4, 1), ModelVariant::Full).unwrap();
        let t95 = m.latency_percentile(0.95).unwrap();
        let back = m.fraction_meeting_sla(t95);
        assert!((back - 0.95).abs() < 1e-3, "t95={t95} back={back}");
    }

    #[test]
    fn s16_style_system_builds() {
        let mut params = system(150.0, 4, 16);
        for d in &mut params.devices {
            d.miss_index = 0.10;
            d.miss_meta = 0.08;
            d.miss_data = 0.18;
        }
        let m = SystemModel::new(&params, ModelVariant::Full).unwrap();
        let f = m.fraction_meeting_sla(0.1);
        assert!(
            f > 0.5,
            "S16-style system at moderate load should mostly meet 100 ms, got {f}"
        );
    }

    #[test]
    fn unstable_load_is_reported() {
        let params = system(80.0, 4, 1);
        assert!(matches!(
            SystemModel::new(&params, ModelVariant::Full),
            Err(ModelError::UnstableBackend { .. })
        ));
    }

    #[test]
    fn mean_response_composition() {
        let m = SystemModel::new(&system(40.0, 4, 1), ModelVariant::Full).unwrap();
        let d = &m.devices()[0];
        let want =
            m.frontend().mean_sojourn() + d.backend().mean_waiting() + d.backend().mean_sojourn();
        assert!((m.device_mean_response(0) - want).abs() < 1e-15);
        assert!((m.mean_response() - want).abs() < 1e-12);
    }
}
