//! Backend-tier model (§III-B).
//!
//! For `N_be = 1` the request-processing queue is an M/G/1 queue of union
//! operations. For `N_be > 1` the shared disk is modeled as M/M/1/K with
//! `K = N_be`; its sojourn time becomes the per-process "disk service time"
//! (`index_d = meta_d = data_d = S_diskN`), the per-process arrival rate is
//! `r / N_be`, and the `N_be = 1` machinery applies unchanged.

use crate::components::{CacheMixed, Mm1kSojournService, ZeroService};
use crate::params::DeviceParams;
use crate::variant::ModelVariant;
use cos_numeric::Complex64;
use cos_queueing::{DynServiceTime, Mg1, Mm1k, QueueError, ServiceTime, UnionOperation};
use std::sync::Arc;

/// Errors from model construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A backend process queue has utilization ≥ 1.
    UnstableBackend {
        /// The offending utilization `ρ = r·B̄`.
        utilization: f64,
    },
    /// The frontend parse queue has utilization ≥ 1.
    UnstableFrontend {
        /// The offending utilization.
        utilization: f64,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::UnstableBackend { utilization } => {
                write!(
                    f,
                    "backend queue unstable (utilization {utilization:.3} >= 1)"
                )
            }
            ModelError::UnstableFrontend { utilization } => {
                write!(
                    f,
                    "frontend queue unstable (utilization {utilization:.3} >= 1)"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

/// The backend model of one storage device.
pub struct BackendModel {
    mg1: Mg1,
    union: Arc<UnionOperation>,
    disk_queue: Option<Mm1k>,
}

impl std::fmt::Debug for BackendModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackendModel")
            .field("utilization", &self.mg1.utilization())
            .field("union_mean", &ServiceTime::mean(&*self.union))
            .field("disk_queue", &self.disk_queue)
            .finish()
    }
}

impl BackendModel {
    /// Builds the backend model for a device under a given model variant.
    pub fn new(params: &DeviceParams, variant: ModelVariant) -> Result<Self, ModelError> {
        params.validate();

        // Variant-adjusted miss ratios and extra reads. ODOPR assumes at
        // most One Disk Operation Per Request: index lookups, metadata
        // reads, and extra data reads are all cache hits (§V-C).
        let (miss_index, miss_meta, extra_reads) = match variant {
            ModelVariant::Odopr => (0.0, 0.0, 0.0),
            _ => (params.miss_index, params.miss_meta, params.extra_reads()),
        };
        let miss_data = params.miss_data;

        let nbe = params.processes;
        let per_process_rate = params.arrival_rate / nbe as f64;

        let (index_law, meta_law, data_law, disk_queue) = if nbe == 1 {
            (
                CacheMixed::shared(miss_index, params.index_disk.clone()),
                CacheMixed::shared(miss_meta, params.meta_disk.clone()),
                CacheMixed::shared(miss_data, params.data_disk.clone()),
                None,
            )
        } else {
            // Disk arrival rate r_disk = m_i·r + m_m·r + m_d·r_data, and raw
            // mean disk service time b as the per-operation weighted mean.
            let r = params.arrival_rate;
            let r_data = match variant {
                ModelVariant::Odopr => r, // extra reads never reach the disk
                _ => params.data_read_rate,
            };
            let r_disk = miss_index * r + miss_meta * r + miss_data * r_data;
            if r_disk <= 1e-12 {
                // Nothing ever reaches the disk.
                let zero = ZeroService::shared();
                (
                    CacheMixed::shared(miss_index, zero.clone()),
                    CacheMixed::shared(miss_meta, zero.clone()),
                    CacheMixed::shared(miss_data, zero),
                    None,
                )
            } else {
                let weighted = miss_index * r * params.index_disk.mean()
                    + miss_meta * r * params.meta_disk.mean()
                    + miss_data * r_data * params.data_disk.mean();
                let b = weighted / r_disk;
                let mm1k = Mm1k::new(r_disk, 1.0 / b, nbe);
                let sdisk: DynServiceTime = Arc::new(Mm1kSojournService::new(mm1k));
                (
                    CacheMixed::shared(miss_index, sdisk.clone()),
                    CacheMixed::shared(miss_meta, sdisk.clone()),
                    CacheMixed::shared(miss_data, sdisk),
                    Some(mm1k),
                )
            }
        };

        let union = Arc::new(UnionOperation::new(
            params.parse_be.clone(),
            index_law,
            meta_law,
            data_law,
            extra_reads,
        ));
        let mg1 =
            Mg1::new(per_process_rate, union.clone() as DynServiceTime).map_err(|e| match e {
                QueueError::Unstable { utilization } => ModelError::UnstableBackend { utilization },
                QueueError::InvalidArrivalRate(r) => {
                    panic!("validated params produced invalid rate {r}")
                }
            })?;
        Ok(BackendModel {
            mg1,
            union,
            disk_queue,
        })
    }

    /// Utilization of one backend process queue.
    pub fn utilization(&self) -> f64 {
        self.mg1.utilization()
    }

    /// The disk M/M/1/K model when `N_be > 1` (and the disk is ever used).
    pub fn disk_queue(&self) -> Option<&Mm1k> {
        self.disk_queue.as_ref()
    }

    /// Mean union-operation service time `B̄_be`.
    pub fn union_mean(&self) -> f64 {
        ServiceTime::mean(&*self.union)
    }

    /// LST of the waiting time in the request-processing queue (`W_be`,
    /// Pollaczek–Khinchin).
    pub fn waiting_lst(&self, s: Complex64) -> Complex64 {
        self.mg1.waiting_lst(s)
    }

    /// Mean waiting time in the request-processing queue.
    pub fn mean_waiting(&self) -> f64 {
        self.mg1.mean_waiting()
    }

    /// LST of the backend response latency (Eq. 1):
    /// `S_be = W_be ∗ parse ∗ index ∗ meta ∗ data` (one data chunk).
    pub fn sojourn_lst(&self, s: Complex64) -> Complex64 {
        self.mg1.waiting_lst(s) * self.union.response_lst(s)
    }

    /// Batch [`BackendModel::waiting_lst`].
    pub fn waiting_lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        self.mg1.waiting_lst_batch(s, out)
    }

    /// Evaluates both Eq. 1 transforms — the backend response `S_be` and
    /// the waiting time `W_be` — for a whole abscissa batch with **one**
    /// pass over the union-operation components.
    ///
    /// The scalar path evaluates every component LST three times per
    /// abscissa (once inside `W_be`'s full union LST, once for the response
    /// tail, and — under the Full/ODOPR WTA composition — once more for the
    /// repeated `W_be` factor); here the shared `parse·index·meta·data`
    /// product is computed once and reused. Outputs are bit-identical to
    /// [`BackendModel::sojourn_lst`] / [`BackendModel::waiting_lst`].
    pub fn sojourn_and_waiting_lst_batch(
        &self,
        s: &[Complex64],
        sojourn: &mut [Complex64],
        waiting: &mut [Complex64],
    ) {
        // `sojourn` holds the response tail, `waiting` the full union LST…
        self.union.response_and_union_lst_batch(s, sojourn, waiting);
        // …then both are finished through the P–K transform per point.
        for i in 0..s.len() {
            let w = self.mg1.waiting_lst_given_service(s[i], waiting[i]);
            waiting[i] = w;
            sojourn[i] = w * sojourn[i];
        }
    }

    /// Mean backend response latency.
    pub fn mean_sojourn(&self) -> f64 {
        self.mg1.mean_waiting() + self.union.response_mean()
    }

    /// Backend response CDF at `t` via numerical inversion.
    pub fn sojourn_cdf(&self, t: f64, config: &cos_numeric::InversionConfig) -> f64 {
        cos_numeric::cdf_from_lst(&|s| self.sojourn_lst(s), t, config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cos_distr::{Degenerate, Gamma};
    use cos_numeric::InversionConfig;
    use cos_queueing::from_distribution;

    fn device(rate: f64, nbe: usize) -> DeviceParams {
        DeviceParams {
            arrival_rate: rate,
            data_read_rate: rate * 1.1,
            miss_index: 0.3,
            miss_meta: 0.3,
            miss_data: 0.5,
            index_disk: from_distribution(Gamma::new(3.0, 250.0)),
            meta_disk: from_distribution(Gamma::new(2.5, 312.5)),
            data_disk: from_distribution(Gamma::new(3.5, 245.0)),
            parse_be: from_distribution(Degenerate::new(0.0005)),
            processes: nbe,
        }
    }

    /// S16-style warm-cache device: the disk must stay subcritical, which
    /// requires the warmer cache the paper's S16 runs exhibit.
    fn warm_device(rate: f64, nbe: usize) -> DeviceParams {
        DeviceParams {
            miss_index: 0.10,
            miss_meta: 0.08,
            miss_data: 0.18,
            ..device(rate, nbe)
        }
    }

    #[test]
    fn single_process_union_mean_matches_paper_formula() {
        let p = device(50.0, 1);
        let m = BackendModel::new(&p, ModelVariant::Full).unwrap();
        // B̄ = parse + m_i·b_i + m_m·b_m + (1+p)·m_d·b_d
        let want = 0.0005 + 0.3 * 0.012 + 0.3 * 0.008 + 1.1 * 0.5 * (3.5 / 245.0);
        assert!(
            (m.union_mean() - want).abs() < 1e-9,
            "got {}",
            m.union_mean()
        );
        assert!(m.disk_queue().is_none());
    }

    #[test]
    fn odopr_strips_index_meta_and_extra_reads() {
        let p = device(50.0, 1);
        let full = BackendModel::new(&p, ModelVariant::Full).unwrap();
        let odopr = BackendModel::new(&p, ModelVariant::Odopr).unwrap();
        let want = 0.0005 + 0.5 * (3.5 / 245.0);
        assert!((odopr.union_mean() - want).abs() < 1e-9);
        assert!(odopr.union_mean() < full.union_mean());
        // ODOPR therefore predicts uniformly better latency CDFs.
        let cfg = InversionConfig::default();
        for &t in &[0.005, 0.02, 0.05] {
            assert!(odopr.sojourn_cdf(t, &cfg) >= full.sojourn_cdf(t, &cfg) - 1e-9);
        }
    }

    #[test]
    fn nowta_matches_full_at_backend() {
        // WTA only enters at the frontend composition; backend models agree.
        let p = device(50.0, 1);
        let full = BackendModel::new(&p, ModelVariant::Full).unwrap();
        let nowta = BackendModel::new(&p, ModelVariant::NoWta).unwrap();
        let s = Complex64::new(1.0, 2.0);
        assert!((full.sojourn_lst(s) - nowta.sojourn_lst(s)).abs() < 1e-14);
    }

    #[test]
    fn rejects_unstable_load() {
        // B̄ ≈ 13.9 ms ⇒ saturation near 72 req/s per process.
        let p = device(80.0, 1);
        let err = BackendModel::new(&p, ModelVariant::Full).unwrap_err();
        assert!(matches!(err, ModelError::UnstableBackend { utilization } if utilization > 1.0));
    }

    #[test]
    fn multi_process_uses_mm1k_disk() {
        let p = warm_device(100.0, 16);
        let m = BackendModel::new(&p, ModelVariant::Full).unwrap();
        let disk = m
            .disk_queue()
            .expect("16-process device models disk as M/M/1/K");
        assert_eq!(disk.capacity(), 16);
        // r_disk = 0.10·100 + 0.08·100 + 0.18·110 = 37.8 ops/s.
        assert!((disk.arrival_rate() - 37.8).abs() < 1e-9);
        // Per-process utilization must be far below 1 at 100/16 req/s.
        assert!(m.utilization() < 1.0);
    }

    #[test]
    fn mm1k_disk_inflates_latencies_vs_raw() {
        // With contention, the per-process "disk service time" (M/M/1/K
        // sojourn) exceeds the raw mean disk service time.
        let p = warm_device(100.0, 16);
        let m = BackendModel::new(&p, ModelVariant::Full).unwrap();
        let disk = m.disk_queue().unwrap();
        let raw_mean = 1.0 / disk.service_rate();
        assert!(disk.mean_sojourn() > raw_mean);
    }

    #[test]
    fn overloaded_disk_makes_processes_unstable() {
        // At 300 req/s per device with a cold cache, the disk is offered
        // ~4x its capacity; the per-process M/G/1 must reject the point.
        let p = device(300.0, 16);
        let err = BackendModel::new(&p, ModelVariant::Full).unwrap_err();
        assert!(matches!(err, ModelError::UnstableBackend { utilization } if utilization > 1.0));
    }

    #[test]
    fn all_hit_multi_process_device_never_touches_disk() {
        let mut p = device(300.0, 4);
        p.miss_index = 0.0;
        p.miss_meta = 0.0;
        p.miss_data = 0.0;
        let m = BackendModel::new(&p, ModelVariant::Full).unwrap();
        assert!(m.disk_queue().is_none());
        assert!((m.union_mean() - 0.0005).abs() < 1e-12);
    }

    #[test]
    fn sojourn_cdf_monotone_in_load() {
        let cfg = InversionConfig::default();
        let light = BackendModel::new(&device(20.0, 1), ModelVariant::Full).unwrap();
        let heavy = BackendModel::new(&device(65.0, 1), ModelVariant::Full).unwrap();
        for &t in &[0.01, 0.05, 0.1] {
            assert!(
                light.sojourn_cdf(t, &cfg) > heavy.sojourn_cdf(t, &cfg),
                "t={t}"
            );
        }
    }

    #[test]
    fn mean_sojourn_consistent_with_lst_derivative() {
        let m = BackendModel::new(&device(40.0, 1), ModelVariant::Full).unwrap();
        // h must be large enough that 1 − L_B(h) keeps ~9 significant
        // digits (s·B̄ ≈ 1e-5), or cancellation swamps the quotient.
        let h = 1e-3;
        let d = (m.sojourn_lst(Complex64::from_real(h)) - m.sojourn_lst(Complex64::from_real(-h)))
            .re
            / (2.0 * h);
        assert!(
            (-d - m.mean_sojourn()).abs() / m.mean_sojourn() < 1e-4,
            "deriv {} mean {}",
            -d,
            m.mean_sojourn()
        );
    }
}
