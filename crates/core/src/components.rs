//! Service-time components shared by the model variants.
//!
//! [`CacheMixed`] is the paper's cache-aware operation law
//! `op(t) = m·op_d(t) + (1 − m)·δ(t)` lifted to the [`ServiceTime`]
//! interface, so it also works when the underlying "disk" law is only
//! available in transform space (the M/M/1/K sojourn of §III-B).

use cos_numeric::Complex64;
use cos_queueing::{DynServiceTime, ServiceTime};
use std::sync::Arc;

/// Cache-aware operation: disk-served with probability `miss`, otherwise a
/// zero-latency memory hit.
pub struct CacheMixed {
    miss: f64,
    disk: DynServiceTime,
}

impl CacheMixed {
    /// Builds the mixture `m·disk + (1 − m)·δ`.
    ///
    /// # Panics
    /// Panics unless `miss` is in `[0, 1]`.
    pub fn new(miss: f64, disk: DynServiceTime) -> Self {
        assert!(
            (0.0..=1.0).contains(&miss),
            "miss ratio must be in [0,1], got {miss}"
        );
        CacheMixed { miss, disk }
    }

    /// Shared-handle constructor.
    pub fn shared(miss: f64, disk: DynServiceTime) -> DynServiceTime {
        Arc::new(CacheMixed::new(miss, disk))
    }

    /// The miss ratio.
    pub fn miss(&self) -> f64 {
        self.miss
    }
}

impl std::fmt::Debug for CacheMixed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheMixed")
            .field("miss", &self.miss)
            .field("disk_mean", &self.disk.mean())
            .finish()
    }
}

impl ServiceTime for CacheMixed {
    fn lst(&self, s: Complex64) -> Complex64 {
        // L[op](s) = m·L[op_d](s) + (1 − m)  (δ has LST 1).
        self.disk.lst(s) * self.miss + (1.0 - self.miss)
    }
    fn mean(&self) -> f64 {
        self.miss * self.disk.mean()
    }
    fn second_moment(&self) -> f64 {
        self.miss * self.disk.second_moment()
    }
    fn lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        // One disk batch, then the affine cache mix per point — the same
        // expression the scalar path evaluates.
        self.disk.lst_batch(s, out);
        let hit = 1.0 - self.miss;
        for o in out.iter_mut() {
            *o = *o * self.miss + hit;
        }
    }
}

/// A zero-latency (identity) service time: the LST is identically 1.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroService;

impl ZeroService {
    /// Shared-handle constructor.
    pub fn shared() -> DynServiceTime {
        Arc::new(ZeroService)
    }
}

impl ServiceTime for ZeroService {
    fn lst(&self, _s: Complex64) -> Complex64 {
        Complex64::ONE
    }
    fn mean(&self) -> f64 {
        0.0
    }
    fn second_moment(&self) -> f64 {
        0.0
    }
    fn lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(s.len(), out.len(), "abscissa/output length mismatch");
        out.fill(Complex64::ONE);
    }
}

/// The M/M/1/K disk sojourn lifted to a [`ServiceTime`] with precomputed
/// moments — the per-process "disk service time" `S_diskN` of §III-B.
///
/// Replaces the previous closure-based `TransformServiceTime` wrapper so
/// the batch path can reach [`Mm1k::sojourn_lst_batch`](cos_queueing::Mm1k::sojourn_lst_batch) (which hoists the
/// state probabilities out of the per-abscissa loop) instead of falling
/// back to scalar evaluation through an opaque `Fn`.
#[derive(Debug, Clone, Copy)]
pub struct Mm1kSojournService {
    queue: cos_queueing::Mm1k,
    mean: f64,
    second_moment: f64,
}

impl Mm1kSojournService {
    /// Wraps an M/M/1/K queue's accepted-customer sojourn law.
    pub fn new(queue: cos_queueing::Mm1k) -> Self {
        Mm1kSojournService {
            queue,
            mean: queue.mean_sojourn(),
            second_moment: queue.sojourn_second_moment(),
        }
    }
}

impl ServiceTime for Mm1kSojournService {
    fn lst(&self, s: Complex64) -> Complex64 {
        self.queue.sojourn_lst(s)
    }
    fn mean(&self) -> f64 {
        self.mean
    }
    fn second_moment(&self) -> f64 {
        self.second_moment
    }
    fn lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        self.queue.sojourn_lst_batch(s, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cos_distr::Gamma;
    use cos_queueing::from_distribution;

    #[test]
    fn cache_mixed_matches_distr_mixture() {
        let g = Gamma::new(2.0, 100.0);
        let mixed = CacheMixed::new(0.4, from_distribution(g));
        let reference = cos_distr::Mixture::cache_miss(0.4, Arc::new(g));
        let s = Complex64::new(3.0, -5.0);
        assert!((mixed.lst(s) - cos_distr::Lst::lst(&reference, s)).abs() < 1e-14);
        assert!((mixed.mean() - cos_distr::Distribution::mean(&reference)).abs() < 1e-15);
        assert!(
            (mixed.second_moment() - cos_distr::Distribution::second_moment(&reference)).abs()
                < 1e-15
        );
    }

    #[test]
    fn extreme_ratios() {
        let g = from_distribution(Gamma::new(2.0, 100.0));
        let hit = CacheMixed::new(0.0, g.clone());
        assert_eq!(hit.mean(), 0.0);
        assert_eq!(hit.lst(Complex64::new(1.0, 1.0)), Complex64::ONE);
        let miss = CacheMixed::new(1.0, g.clone());
        assert!((miss.mean() - g.mean()).abs() < 1e-15);
    }

    #[test]
    fn zero_service_is_identity() {
        let z = ZeroService;
        assert_eq!(z.mean(), 0.0);
        assert_eq!(z.second_moment(), 0.0);
        assert_eq!(z.lst(Complex64::new(2.0, 3.0)), Complex64::ONE);
    }

    #[test]
    #[should_panic]
    fn rejects_bad_ratio() {
        CacheMixed::new(1.5, ZeroService::shared());
    }
}
