//! Property-based tests on the analytic model: structural invariants that
//! must hold at every stable operating point.

use cos_distr::{Degenerate, Gamma};
use cos_model::{DeviceParams, FrontendParams, ModelVariant, SystemModel, SystemParams};
use cos_queueing::from_distribution;
use proptest::prelude::*;

fn device(rate: f64, nbe: usize, mi: f64, mm: f64, md: f64) -> DeviceParams {
    DeviceParams {
        arrival_rate: rate,
        data_read_rate: rate * 1.1,
        miss_index: mi,
        miss_meta: mm,
        miss_data: md,
        index_disk: from_distribution(Gamma::new(3.0, 250.0)),
        meta_disk: from_distribution(Gamma::new(2.5, 312.5)),
        data_disk: from_distribution(Gamma::new(3.5, 245.0)),
        parse_be: from_distribution(Degenerate::new(0.0005)),
        processes: nbe,
    }
}

fn system(rate: f64, nbe: usize, mi: f64, mm: f64, md: f64) -> SystemParams {
    SystemParams {
        frontend: FrontendParams {
            arrival_rate: rate * 4.0,
            processes: 3,
            parse_fe: from_distribution(Degenerate::new(0.0003)),
        },
        devices: (0..4).map(|_| device(rate, nbe, mi, mm, md)).collect(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn predictions_are_valid_probabilities_and_monotone_in_sla(
        rate in 5.0f64..55.0,
        mi in 0.0f64..0.4,
        mm in 0.0f64..0.4,
        md in 0.05f64..0.5,
    ) {
        let params = system(rate, 1, mi, mm, md);
        prop_assume!(SystemModel::new(&params, ModelVariant::Full).is_ok());
        let m = SystemModel::new(&params, ModelVariant::Full).unwrap();
        let mut prev = 0.0;
        for i in 1..=10 {
            let sla = i as f64 * 0.02;
            let p = m.fraction_meeting_sla(sla);
            prop_assert!((0.0..=1.0).contains(&p), "sla={sla}: p={p}");
            prop_assert!(p >= prev - 1e-6, "sla={sla}: {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    fn more_load_never_improves_percentiles(
        rate in 5.0f64..30.0,
        bump in 1.1f64..1.8,
        md in 0.1f64..0.5,
    ) {
        let light = system(rate, 1, 0.3, 0.25, md);
        let heavy = system(rate * bump, 1, 0.3, 0.25, md);
        prop_assume!(SystemModel::new(&heavy, ModelVariant::Full).is_ok());
        let a = SystemModel::new(&light, ModelVariant::Full).unwrap();
        let b = SystemModel::new(&heavy, ModelVariant::Full).unwrap();
        for &sla in &[0.02, 0.05, 0.1] {
            prop_assert!(
                a.fraction_meeting_sla(sla) >= b.fraction_meeting_sla(sla) - 1e-6,
                "sla={sla}"
            );
        }
    }

    #[test]
    fn odopr_is_always_most_optimistic(
        rate in 5.0f64..50.0,
        mi in 0.05f64..0.4,
        md in 0.1f64..0.5,
    ) {
        let params = system(rate, 1, mi, mi, md);
        prop_assume!(SystemModel::new(&params, ModelVariant::Full).is_ok());
        let full = SystemModel::new(&params, ModelVariant::Full).unwrap();
        let odopr = SystemModel::new(&params, ModelVariant::Odopr).unwrap();
        for &sla in &[0.02, 0.05, 0.1] {
            prop_assert!(
                odopr.fraction_meeting_sla(sla) >= full.fraction_meeting_sla(sla) - 1e-6,
                "sla={sla}"
            );
        }
        prop_assert!(odopr.mean_response() <= full.mean_response() + 1e-12);
    }

    #[test]
    fn nowta_dominates_full(
        rate in 5.0f64..50.0,
        md in 0.1f64..0.5,
    ) {
        let params = system(rate, 1, 0.3, 0.25, md);
        prop_assume!(SystemModel::new(&params, ModelVariant::Full).is_ok());
        let full = SystemModel::new(&params, ModelVariant::Full).unwrap();
        let nowta = SystemModel::new(&params, ModelVariant::NoWta).unwrap();
        for &sla in &[0.02, 0.05, 0.1] {
            prop_assert!(
                nowta.fraction_meeting_sla(sla) >= full.fraction_meeting_sla(sla) - 1e-6,
                "sla={sla}"
            );
        }
    }

    #[test]
    fn mean_equals_component_sum(
        rate in 5.0f64..50.0,
        md in 0.1f64..0.5,
        nbe in 1usize..8,
    ) {
        let params = system(rate, nbe, 0.15, 0.1, md);
        prop_assume!(SystemModel::new(&params, ModelVariant::Full).is_ok());
        let m = SystemModel::new(&params, ModelVariant::Full).unwrap();
        let d = &m.devices()[0];
        let want = m.frontend().mean_sojourn()
            + d.backend().mean_waiting()
            + d.backend().mean_sojourn();
        prop_assert!((m.device_mean_response(0) - want).abs() < 1e-12);
    }

    #[test]
    fn percentile_inverse_is_consistent(
        rate in 10.0f64..40.0,
        p in 0.5f64..0.99,
    ) {
        let params = system(rate, 1, 0.3, 0.25, 0.4);
        let m = SystemModel::new(&params, ModelVariant::Full).unwrap();
        if let Some(t) = m.latency_percentile(p) {
            let back = m.fraction_meeting_sla(t);
            prop_assert!((back - p).abs() < 5e-3, "p={p} t={t} back={back}");
        }
    }

    #[test]
    fn stability_boundary_matches_union_mean(
        md in 0.1f64..0.5,
    ) {
        // The model must accept rates just below 1/B̄ and reject just above.
        let probe = system(10.0, 1, 0.3, 0.25, md);
        let m = SystemModel::new(&probe, ModelVariant::Full).unwrap();
        let util_at_10 = m.devices()[0].backend().utilization();
        let critical = 10.0 / util_at_10; // per-device critical rate
        let below = system(critical * 0.97, 1, 0.3, 0.25, md);
        let above = system(critical * 1.03, 1, 0.3, 0.25, md);
        prop_assert!(SystemModel::new(&below, ModelVariant::Full).is_ok());
        prop_assert!(SystemModel::new(&above, ModelVariant::Full).is_err());
    }
}
