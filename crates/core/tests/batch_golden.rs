//! Golden bit-identity tests: the batched composite response transform must
//! reproduce the scalar path exactly (`f64::to_bits` equality), for every
//! model variant and for both the S1-like and S16-like system shapes, on a
//! contour covering the Euler vertical line and Gaver–Stehfest real points.

use cos_distr::{Degenerate, Gamma};
use cos_model::params::{DeviceParams, FrontendParams};
use cos_model::{ModelVariant, SystemModel, SystemParams};
use cos_numeric::Complex64;
use cos_queueing::from_distribution;

fn s1_params(rate: f64) -> SystemParams {
    SystemParams {
        frontend: FrontendParams {
            arrival_rate: rate * 4.0,
            processes: 3,
            parse_fe: from_distribution(Degenerate::new(0.0003)),
        },
        devices: (0..4)
            .map(|_| DeviceParams {
                arrival_rate: rate,
                data_read_rate: rate * 1.1,
                miss_index: 0.3,
                miss_meta: 0.25,
                miss_data: 0.4,
                index_disk: from_distribution(Gamma::new(3.0, 250.0)),
                meta_disk: from_distribution(Gamma::new(2.5, 312.5)),
                data_disk: from_distribution(Gamma::new(3.5, 245.0)),
                parse_be: from_distribution(Degenerate::new(0.0005)),
                processes: 1,
            })
            .collect(),
    }
}

fn s16_params(rate: f64) -> SystemParams {
    let mut p = s1_params(rate);
    for d in &mut p.devices {
        d.miss_index = 0.10;
        d.miss_meta = 0.08;
        d.miss_data = 0.18;
        d.processes = 16;
    }
    p
}

/// Abscissae representative of both inversion algorithms: the Euler
/// vertical line `(a/2t, kπ/t)` and real Gaver–Stehfest points `k ln2 / t`.
fn contour() -> Vec<Complex64> {
    let mut s = Vec::new();
    for &t in &[0.005, 0.05, 0.4] {
        let half_a = 18.4 / (2.0 * t);
        s.push(Complex64::from_real(half_a));
        for k in 1..=24 {
            s.push(Complex64::new(half_a, k as f64 * std::f64::consts::PI / t));
        }
        for k in 1..=14 {
            s.push(Complex64::from_real(k as f64 * std::f64::consts::LN_2 / t));
        }
    }
    s
}

fn assert_bits_equal(scalar: &[Complex64], batch: &[Complex64], what: &str) {
    for (i, (a, b)) in scalar.iter().zip(batch.iter()).enumerate() {
        assert_eq!(
            a.re.to_bits(),
            b.re.to_bits(),
            "{what}: re differs at point {i}: {} vs {}",
            a.re,
            b.re
        );
        assert_eq!(
            a.im.to_bits(),
            b.im.to_bits(),
            "{what}: im differs at point {i}: {} vs {}",
            a.im,
            b.im
        );
    }
}

fn check_all_devices(params: &SystemParams, variant: ModelVariant, what: &str) {
    let m = SystemModel::new(params, variant).unwrap();
    let s = contour();
    let mut batch = vec![Complex64::ZERO; s.len()];
    for idx in 0..m.devices().len() {
        let scalar: Vec<Complex64> = s.iter().map(|&p| m.device_response_lst(idx, p)).collect();
        m.device_response_lst_batch(idx, &s, &mut batch);
        assert_bits_equal(&scalar, &batch, &format!("{what} device {idx}"));
    }
}

#[test]
fn full_variant_batch_is_bit_identical() {
    check_all_devices(&s1_params(40.0), ModelVariant::Full, "S1/full");
    check_all_devices(&s16_params(150.0), ModelVariant::Full, "S16/full");
}

#[test]
fn odopr_variant_batch_is_bit_identical() {
    check_all_devices(&s1_params(40.0), ModelVariant::Odopr, "S1/odopr");
    check_all_devices(&s16_params(150.0), ModelVariant::Odopr, "S16/odopr");
}

#[test]
fn nowta_variant_batch_is_bit_identical() {
    check_all_devices(&s1_params(40.0), ModelVariant::NoWta, "S1/nowta");
    check_all_devices(&s16_params(150.0), ModelVariant::NoWta, "S16/nowta");
}

#[test]
fn residual_wta_variant_batch_is_bit_identical() {
    check_all_devices(&s1_params(40.0), ModelVariant::ResidualWta, "S1/residual");
    check_all_devices(
        &s16_params(150.0),
        ModelVariant::ResidualWta,
        "S16/residual",
    );
}

#[test]
fn batched_cdf_matches_closure_cdf() {
    // The full inversion pipeline through the batch path must agree with a
    // scalar closure fed to the same inversion (different call graph, same
    // arithmetic): bit-identity holds because eval_batch replicates the
    // scalar op order.
    let m = SystemModel::new(&s1_params(40.0), ModelVariant::Full).unwrap();
    let cfg = cos_numeric::InversionConfig::default();
    for &t in &[0.01, 0.05, 0.1] {
        let via_batch = m.device_fraction_meeting(0, t);
        let via_closure = cos_numeric::cdf_from_lst(&|s| m.device_response_lst(0, s), t, &cfg);
        assert_eq!(
            via_batch.to_bits(),
            via_closure.to_bits(),
            "t={t}: {via_batch} vs {via_closure}"
        );
    }
}
