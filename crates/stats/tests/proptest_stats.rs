//! Property-based tests for the statistics utilities.

use cos_stats::{
    exact_percentile, fraction_within, ErrorSummary, Histogram, P2Quantile, PredictionPoint,
    SlaMeter,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn percentile_is_order_statistic_bound(
        mut values in proptest::collection::vec(0.0f64..1e6, 1..300),
        p in 0.0f64..=1.0,
    ) {
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0f64, f64::max);
        let q = exact_percentile(&mut values, p);
        prop_assert!(q >= min - 1e-9 && q <= max + 1e-9);
    }

    #[test]
    fn fraction_within_monotone(
        values in proptest::collection::vec(0.0f64..100.0, 1..200),
        t in 0.0f64..100.0,
        dt in 0.0f64..50.0,
    ) {
        prop_assert!(fraction_within(&values, t + dt) >= fraction_within(&values, t));
    }

    #[test]
    fn histogram_fraction_consistent_with_exact(
        values in proptest::collection::vec(0.0f64..10.0, 10..500),
        t in 0.0f64..10.0,
    ) {
        let mut h = Histogram::new(10.0, 1000);
        for &v in &values {
            h.record(v);
        }
        let exact = fraction_within(&values, t);
        // Sub-bin interpolation bounds the error by one bin's mass.
        prop_assert!((h.fraction_within(t) - exact).abs() <= 0.1 + 2.0 / values.len() as f64);
    }

    #[test]
    fn histogram_quantile_and_fraction_are_inverses(
        values in proptest::collection::vec(0.0f64..10.0, 50..500),
        p in 0.05f64..0.95,
    ) {
        let mut h = Histogram::new(20.0, 2000);
        for &v in &values {
            h.record(v);
        }
        let q = h.quantile(p).unwrap();
        let back = h.fraction_within(q);
        prop_assert!((back - p).abs() < 0.05, "p={p} q={q} back={back}");
    }

    #[test]
    fn p2_tracks_exact_median(values in proptest::collection::vec(0.0f64..1.0, 200..2000)) {
        let mut est = P2Quantile::new(0.5);
        for &v in &values {
            est.observe(v);
        }
        let mut sorted = values.clone();
        let exact = exact_percentile(&mut sorted, 0.5);
        let got = est.estimate().unwrap();
        prop_assert!((got - exact).abs() < 0.12, "p2 {got} exact {exact}");
    }

    #[test]
    fn sla_meter_overall_is_weighted_bin_average(
        latencies in proptest::collection::vec((0.0f64..100.0, 0.0f64..0.2), 1..300),
    ) {
        let mut m = SlaMeter::new(0.1, 10.0);
        let mut met = 0u64;
        for &(at, lat) in &latencies {
            m.record(at, lat);
            if lat <= 0.1 {
                met += 1;
            }
        }
        let want = met as f64 / latencies.len() as f64;
        prop_assert!((m.overall_fraction().unwrap() - want).abs() < 1e-12);
    }

    #[test]
    fn error_summary_bounds(
        pts in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..100),
    ) {
        let points: Vec<PredictionPoint> = pts
            .iter()
            .map(|&(observed, predicted)| PredictionPoint { observed, predicted })
            .collect();
        let s = ErrorSummary::from_points(&points);
        prop_assert!(s.best <= s.mean + 1e-12);
        prop_assert!(s.mean <= s.worst + 1e-12);
        prop_assert!(s.bias.abs() <= s.mean + 1e-12);
        prop_assert_eq!(s.count, points.len());
    }
}
