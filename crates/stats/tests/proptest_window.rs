//! Property-based tests for the sliding-window estimators.

use cos_stats::{exact_percentile, P2Quantile, RateWindow, RotatingQuantile};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The windowed rate estimator converges to the true rate of a Poisson
    /// arrival process: the in-window count is Poisson(λW), so the
    /// estimate's standard deviation is √(λ/W); six of those bound the
    /// error with overwhelming margin.
    #[test]
    fn rate_window_converges_to_poisson_rate(
        rate in 20.0f64..120.0,
        window in 5.0f64..20.0,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut w = RateWindow::new(window, 25);
        let duration = 3.0 * window;
        let mut t = 0.0;
        while t < duration {
            t += -(1.0 - rng.gen::<f64>()).ln() / rate;
            if t < duration {
                w.record(t);
            }
        }
        let est = w.rate(duration).unwrap();
        let sigma = (rate / window).sqrt();
        prop_assert!(
            (est - rate).abs() < 6.0 * sigma + 2.0,
            "estimate {est} vs true rate {rate} (window {window})"
        );
    }

    /// A longer window averages more arrivals, so the estimate from the
    /// long window is (statistically) at least as accurate; assert the weak
    /// deterministic form — both stay inside their own confidence bands.
    #[test]
    fn rate_window_bands_scale_with_window_length(
        rate in 30.0f64..100.0,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let (short_len, long_len) = (4.0, 16.0);
        let mut short = RateWindow::new(short_len, 16);
        let mut long = RateWindow::new(long_len, 16);
        let duration = 2.0 * long_len;
        let mut t = 0.0;
        while t < duration {
            t += -(1.0 - rng.gen::<f64>()).ln() / rate;
            if t < duration {
                short.record(t);
                long.record(t);
            }
        }
        for (w, len) in [(&short, short_len), (&long, long_len)] {
            let est = w.rate(duration).unwrap();
            let sigma = (rate / len).sqrt();
            prop_assert!((est - rate).abs() < 6.0 * sigma + 2.0, "len {len}: {est} vs {rate}");
        }
    }

    /// Within one epoch the rotating quantile is exactly P², which must
    /// agree with the exact sample percentile to within the usual P²
    /// tolerance on uniform data.
    #[test]
    fn rotating_quantile_tracks_exact_percentile(
        p in 0.10f64..0.90,
        n in 500usize..2000,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let window = 1e6; // no rotation: pure P² over the whole sample
        let mut q = RotatingQuantile::new(p, window, 5);
        let mut reference = P2Quantile::new(p);
        let mut values = Vec::with_capacity(n);
        for i in 0..n {
            let x = rng.gen::<f64>();
            q.observe(i as f64, x);
            reference.observe(x);
            values.push(x);
        }
        let est = q.estimate().unwrap();
        prop_assert_eq!(est.to_bits(), reference.estimate().unwrap().to_bits(),
            "single-epoch rotating quantile must BE P²");
        let exact = exact_percentile(&mut values, p);
        prop_assert!((est - exact).abs() < 0.05, "P² {est} vs exact {exact} at p={p}");
    }

    /// After a regime change and a full epoch of new data, the estimate
    /// reflects the new regime's exact percentile, not the old one's.
    #[test]
    fn rotating_quantile_follows_regime_to_new_exact_percentile(
        p in 0.20f64..0.80,
        offset in 5.0f64..20.0,
        seed in 0u64..1_000,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let window = 10.0;
        let mut q = RotatingQuantile::new(p, window, 20);
        // Epoch A: uniform [0,1). Epochs B…: uniform [offset, offset+1).
        for i in 0..1000 {
            q.observe(i as f64 * 0.01, rng.gen::<f64>());
        }
        let mut late = Vec::new();
        for i in 0..3000 {
            let x = offset + rng.gen::<f64>();
            q.observe(10.0 + i as f64 * 0.01, x);
            late.push(x);
        }
        let est = q.estimate().unwrap();
        // Compare against the exact percentile of the last full epoch's
        // worth of samples — generous tolerance, the point is regime
        // attachment (old regime was ≥ 4 units away).
        let exact = exact_percentile(&mut late, p);
        prop_assert!((est - exact).abs() < 0.2, "estimate {est} vs late-regime exact {exact}");
    }
}
