//! Percentile estimation: exact (sorted-sample) and streaming (P²).
//!
//! The evaluation counts "percentile of requests meeting SLA" per time bin
//! (§V-B); exact percentiles are used offline while the P² estimator lets
//! long simulator runs track quantiles in O(1) memory.

/// Exact percentile of a sample with linear interpolation.
///
/// # Panics
/// Panics on an empty slice or `p` outside `[0, 1]`.
pub fn exact_percentile(values: &mut [f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let n = values.len();
    if n == 1 {
        return values[0];
    }
    let pos = p * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    values[lo] * (1.0 - frac) + values[hi] * frac
}

/// Fraction of values `<= threshold` (the "percentile of requests meeting
/// SLA" in the paper's sense).
pub fn fraction_within(values: &[f64], threshold: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v <= threshold).count() as f64 / values.len() as f64
}

/// Jain & Chlamtac's P² streaming quantile estimator.
///
/// Tracks a single quantile with five markers and no sample storage.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    heights: [f64; 5],
    positions: [f64; 5],
    desired: [f64; 5],
    increments: [f64; 5],
    count: usize,
    initial: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `p`-quantile.
    ///
    /// # Panics
    /// Panics unless `p` is in `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "P2 requires p in (0,1), got {p}");
        P2Quantile {
            p,
            heights: [0.0; 5],
            positions: [1.0, 2.0, 3.0, 4.0, 5.0],
            desired: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            increments: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            initial: Vec::with_capacity(5),
        }
    }

    /// Number of observations seen.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Feeds one observation.
    ///
    /// # Panics
    /// Panics on a non-finite observation — a NaN would silently poison
    /// every marker from then on.
    pub fn observe(&mut self, x: f64) {
        assert!(x.is_finite(), "P2 observation must be finite, got {x}");
        self.count += 1;
        if self.initial.len() < 5 {
            self.initial.push(x);
            if self.initial.len() == 5 {
                self.initial
                    .sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                self.heights.copy_from_slice(&self.initial);
            }
            return;
        }
        // Find cell k such that heights[k] <= x < heights[k+1].
        let k = if x < self.heights[0] {
            self.heights[0] = x;
            0
        } else if x >= self.heights[4] {
            self.heights[4] = x;
            3
        } else {
            let mut k = 0;
            for i in 0..4 {
                if x >= self.heights[i] && x < self.heights[i + 1] {
                    k = i;
                    break;
                }
            }
            k
        };
        for pos in self.positions.iter_mut().skip(k + 1) {
            *pos += 1.0;
        }
        for (d, inc) in self.desired.iter_mut().zip(self.increments.iter()) {
            *d += inc;
        }
        // Adjust interior markers with the parabolic formula.
        for i in 1..4 {
            let d = self.desired[i] - self.positions[i];
            let below = self.positions[i] - self.positions[i - 1];
            let above = self.positions[i + 1] - self.positions[i];
            if (d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0) {
                let sign = d.signum();
                let candidate = self.parabolic(i, sign);
                let new_h = if self.heights[i - 1] < candidate && candidate < self.heights[i + 1] {
                    candidate
                } else {
                    self.linear(i, sign)
                };
                self.heights[i] = new_h;
                self.positions[i] += sign;
            }
        }
    }

    fn parabolic(&self, i: usize, sign: f64) -> f64 {
        let q = &self.heights;
        let n = &self.positions;
        q[i] + sign / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + sign) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - sign) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, sign: f64) -> f64 {
        let j = (i as f64 + sign) as usize;
        self.heights[i]
            + sign * (self.heights[j] - self.heights[i]) / (self.positions[j] - self.positions[i])
    }

    /// Current quantile estimate. With 5 or fewer observations the exact
    /// percentile of the buffered sample is served (the middle marker is
    /// the sample *median* at that point, wrong for tail quantiles);
    /// completely empty returns `None`.
    pub fn estimate(&self) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        if self.count <= 5 {
            let mut buf = self.initial.clone();
            return Some(exact_percentile(&mut buf, self.p));
        }
        Some(self.heights[2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_percentile_basics() {
        let mut v = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(exact_percentile(&mut v, 0.0), 1.0);
        assert_eq!(exact_percentile(&mut v, 1.0), 4.0);
        assert_eq!(exact_percentile(&mut v, 0.5), 2.5);
    }

    #[test]
    fn fraction_within_counts_inclusive() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(fraction_within(&v, 2.0), 0.5);
        assert_eq!(fraction_within(&v, 0.5), 0.0);
        assert_eq!(fraction_within(&v, 10.0), 1.0);
        assert_eq!(fraction_within(&[], 1.0), 0.0);
    }

    #[test]
    fn p2_matches_exact_on_uniform_stream() {
        let mut est = P2Quantile::new(0.95);
        let mut vals = Vec::new();
        // Deterministic pseudo-random stream (LCG).
        let mut state = 12345u64;
        for _ in 0..50_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 11) as f64 / (1u64 << 53) as f64;
            est.observe(x);
            vals.push(x);
        }
        let exact = exact_percentile(&mut vals, 0.95);
        let got = est.estimate().unwrap();
        assert!((got - exact).abs() < 0.01, "p2 {got} exact {exact}");
    }

    #[test]
    fn p2_with_few_samples_falls_back() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.estimate(), None);
        est.observe(3.0);
        est.observe(1.0);
        assert_eq!(est.estimate(), Some(2.0));
        assert_eq!(est.count(), 2);
    }

    #[test]
    fn p2_skewed_distribution() {
        // Exponential-ish data via inverse transform of the LCG stream.
        let mut est = P2Quantile::new(0.9);
        let mut vals = Vec::new();
        let mut state = 999u64;
        for _ in 0..100_000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((state >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
            let x = -u.ln();
            est.observe(x);
            vals.push(x);
        }
        let exact = exact_percentile(&mut vals, 0.9);
        let got = est.estimate().unwrap();
        assert!((got - exact).abs() / exact < 0.03, "p2 {got} exact {exact}");
    }

    #[test]
    #[should_panic]
    fn exact_percentile_rejects_empty() {
        exact_percentile(&mut [], 0.5);
    }

    #[test]
    fn p2_exactly_five_samples_respects_tail_quantile() {
        // At exactly 5 observations the middle marker is the sample median;
        // a 0.99-quantile estimate must not collapse to it.
        let mut est = P2Quantile::new(0.99);
        for x in [1.0, 2.0, 3.0, 4.0, 100.0] {
            est.observe(x);
        }
        let got = est.estimate().unwrap();
        assert!(
            got > 90.0,
            "p99 of 5 samples should be near the max, got {got}"
        );
    }

    #[test]
    fn p2_all_equal_samples_stay_exact() {
        for &p in &[0.1, 0.5, 0.9, 0.99] {
            let mut est = P2Quantile::new(p);
            for _ in 0..1000 {
                est.observe(7.25);
            }
            assert_eq!(est.estimate(), Some(7.25), "p = {p}");
        }
    }

    #[test]
    fn p2_nearly_equal_samples_stay_bounded() {
        // Duplicates in the initial 5 plus near-equal data must not produce
        // NaN (division hazards in the marker adjustment) or escape the
        // data range.
        let mut est = P2Quantile::new(0.9);
        for i in 0..10_000u32 {
            let x = if i % 3 == 0 {
                5.0
            } else {
                5.0 + 1e-12 * f64::from(i % 7)
            };
            est.observe(x);
        }
        let got = est.estimate().unwrap();
        assert!(got.is_finite());
        assert!((5.0..=5.0 + 1e-9).contains(&got), "estimate {got}");
    }

    #[test]
    fn p2_single_observation() {
        let mut est = P2Quantile::new(0.95);
        est.observe(12.0);
        assert_eq!(est.estimate(), Some(12.0));
    }

    #[test]
    #[should_panic]
    fn p2_rejects_nan() {
        P2Quantile::new(0.5).observe(f64::NAN);
    }
}
