//! Streaming moments and batch-means confidence intervals.
//!
//! Welford's algorithm accumulates mean/variance in one pass without
//! catastrophic cancellation; the batch-means method gives confidence
//! intervals for steady-state simulation output, where consecutive
//! latencies are autocorrelated and the naive standard error is wrong.

/// One-pass mean/variance accumulator (Welford).
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "observations must be finite, got {x}");
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.mean)
        }
    }

    /// Unbiased sample variance (`None` with fewer than 2 observations).
    pub fn variance(&self) -> Option<f64> {
        if self.count < 2 {
            None
        } else {
            Some(self.m2 / (self.count - 1) as f64)
        }
    }

    /// Standard error of the mean (`None` with fewer than 2 observations).
    pub fn stderr(&self) -> Option<f64> {
        self.variance().map(|v| (v / self.count as f64).sqrt())
    }

    /// Merges another accumulator (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.mean += delta * other.count as f64 / total as f64;
        self.count = total;
    }
}

/// Batch-means estimator for autocorrelated steady-state output: groups
/// observations into fixed-size batches and treats batch means as
/// approximately independent.
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current: Welford,
    batches: Welford,
}

impl BatchMeans {
    /// Creates an estimator with the given batch size.
    ///
    /// # Panics
    /// Panics if `batch_size` is zero.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        BatchMeans {
            batch_size,
            current: Welford::new(),
            batches: Welford::new(),
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.current.push(x);
        if self.current.count() == self.batch_size {
            self.batches
                .push(self.current.mean().expect("nonempty batch"));
            self.current = Welford::new();
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> u64 {
        self.batches.count()
    }

    /// Grand mean over completed batches (`None` before the first batch).
    pub fn mean(&self) -> Option<f64> {
        self.batches.mean()
    }

    /// Half-width of an approximate confidence interval with normal
    /// critical value `z` (e.g. 1.96 for 95%); `None` with fewer than 2
    /// completed batches.
    pub fn ci_halfwidth(&self, z: f64) -> Option<f64> {
        self.batches.stderr().map(|se| z * se)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_two_pass_statistics() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        assert_eq!(w.mean(), Some(5.0));
        // Two-pass unbiased variance: Σ(x−5)² / 7 = 32/7.
        assert!((w.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.count(), 8);
    }

    #[test]
    fn empty_and_single_are_none() {
        let mut w = Welford::new();
        assert_eq!(w.mean(), None);
        w.push(3.0);
        assert_eq!(w.mean(), Some(3.0));
        assert_eq!(w.variance(), None);
        assert_eq!(w.stderr(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        let mut whole = Welford::new();
        for i in 0..100 {
            let x = (i as f64).sin() * 10.0;
            if i % 2 == 0 {
                a.push(x);
            } else {
                b.push(x);
            }
            whole.push(x);
        }
        a.merge(&b);
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-12);
        assert!((a.variance().unwrap() - whole.variance().unwrap()).abs() < 1e-9);
        // Merging an empty accumulator is a no-op.
        let before = a;
        a.merge(&Welford::new());
        assert_eq!(a.mean(), before.mean());
    }

    #[test]
    fn numerical_robustness_with_large_offset() {
        // Naive sum-of-squares fails here; Welford must not.
        let mut w = Welford::new();
        for i in 0..1000 {
            w.push(1e9 + (i % 2) as f64);
        }
        assert!(
            (w.variance().unwrap() - 0.25025).abs() < 1e-3,
            "{:?}",
            w.variance()
        );
    }

    #[test]
    fn batch_means_basics() {
        let mut bm = BatchMeans::new(10);
        for i in 0..95 {
            bm.push(i as f64);
        }
        // 9 complete batches (the last 5 observations are pending).
        assert_eq!(bm.batches(), 9);
        // Batch means are 4.5, 14.5, ..., 84.5 → grand mean 44.5.
        assert!((bm.mean().unwrap() - 44.5).abs() < 1e-12);
        assert!(bm.ci_halfwidth(1.96).unwrap() > 0.0);
    }

    #[test]
    fn ci_shrinks_with_more_batches() {
        let mk = |n: usize| {
            let mut bm = BatchMeans::new(5);
            let mut state = 42u64;
            for _ in 0..n {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                bm.push((state >> 11) as f64 / (1u64 << 53) as f64);
            }
            bm.ci_halfwidth(1.96).unwrap()
        };
        assert!(mk(10_000) < mk(100));
    }

    #[test]
    #[should_panic]
    fn rejects_nan() {
        Welford::new().push(f64::NAN);
    }
}
