//! Fixed-width latency histogram.
//!
//! Cheap enough for hot simulator paths, precise enough for percentile
//! series in the figure reproductions (sub-bin linear interpolation).

/// A histogram over `[0, max)` with uniform bins plus an overflow bin.
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: f64,
    counts: Vec<u64>,
    overflow: u64,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Creates a histogram covering `[0, max)` with `bins` uniform bins.
    ///
    /// # Panics
    /// Panics unless `max > 0` and `bins >= 1`.
    pub fn new(max: f64, bins: usize) -> Self {
        assert!(
            max.is_finite() && max > 0.0,
            "histogram max must be positive, got {max}"
        );
        assert!(bins >= 1, "histogram needs at least one bin");
        Histogram {
            bin_width: max / bins as f64,
            counts: vec![0; bins],
            overflow: 0,
            total: 0,
            sum: 0.0,
        }
    }

    /// Records one value (negative values clamp into the first bin).
    pub fn record(&mut self, value: f64) {
        assert!(
            value.is_finite(),
            "histogram values must be finite, got {value}"
        );
        let v = value.max(0.0);
        let idx = (v / self.bin_width) as usize;
        if idx < self.counts.len() {
            self.counts[idx] += 1;
        } else {
            self.overflow += 1;
        }
        self.total += 1;
        self.sum += v;
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum / self.total as f64)
        }
    }

    /// Fraction of values `<= threshold`, with sub-bin interpolation.
    pub fn fraction_within(&self, threshold: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if threshold < 0.0 {
            return 0.0;
        }
        let pos = threshold / self.bin_width;
        let full = pos.floor() as usize;
        let mut acc = 0u64;
        for &c in self.counts.iter().take(full.min(self.counts.len())) {
            acc += c;
        }
        let mut frac = acc as f64;
        if full < self.counts.len() {
            frac += self.counts[full] as f64 * (pos - full as f64);
        }
        (frac / self.total as f64).min(1.0)
    }

    /// Approximate `p`-quantile (`None` when empty).
    ///
    /// # Panics
    /// Panics unless `p` is in `[0, 1]`.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1], got {p}");
        if self.total == 0 {
            return None;
        }
        let target = p * self.total as f64;
        let mut acc = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let next = acc + c as f64;
            if next >= target && c > 0 {
                let within = (target - acc) / c as f64;
                return Some((i as f64 + within) * self.bin_width);
            }
            acc = next;
        }
        // Overflow bin: report the lower edge of overflow.
        Some(self.bin_width * self.counts.len() as f64)
    }

    /// Fraction of values that fell past the covered range.
    pub fn overflow_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.overflow as f64 / self.total as f64
        }
    }

    /// Merges another histogram with identical geometry.
    ///
    /// # Panics
    /// Panics if the geometries differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.counts.len(), other.counts.len(), "bin count mismatch");
        assert!(
            (self.bin_width - other.bin_width).abs() < 1e-12 * self.bin_width,
            "bin width mismatch"
        );
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_counts() {
        let mut h = Histogram::new(10.0, 10);
        for v in [0.5, 1.5, 2.5, 3.5, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert!((h.overflow_fraction() - 0.2).abs() < 1e-12);
        assert!((h.mean().unwrap() - 21.6).abs() < 1e-12);
    }

    #[test]
    fn fraction_within_interpolates() {
        let mut h = Histogram::new(10.0, 10);
        // 10 values uniform in [0,1): all in first bin.
        for i in 0..10 {
            h.record(i as f64 / 10.0);
        }
        assert!((h.fraction_within(0.5) - 0.5).abs() < 1e-12);
        assert_eq!(h.fraction_within(1.0), 1.0);
        assert_eq!(h.fraction_within(-1.0), 0.0);
    }

    #[test]
    fn quantile_roundtrip() {
        let mut h = Histogram::new(100.0, 1000);
        for i in 0..1000 {
            h.record(i as f64 / 10.0);
        }
        let q = h.quantile(0.9).unwrap();
        assert!((q - 90.0).abs() < 0.5, "q = {q}");
        assert_eq!(Histogram::new(1.0, 1).quantile(0.5), None);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = Histogram::new(10.0, 5);
        let mut b = Histogram::new(10.0, 5);
        a.record(1.0);
        b.record(2.0);
        b.record(20.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!((a.overflow_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn merge_rejects_mismatched_bins() {
        let mut a = Histogram::new(10.0, 5);
        let b = Histogram::new(10.0, 6);
        a.merge(&b);
    }

    #[test]
    #[should_panic]
    fn rejects_nan() {
        Histogram::new(1.0, 1).record(f64::NAN);
    }
}
