//! Event-time sliding windows for online calibration (§IV-B, streaming).
//!
//! The offline pipeline reads each 5-minute window's counters after the
//! run; a live prediction service instead needs *rolling* versions of the
//! same estimators — arrival rates, miss ratios, mean disk service — that
//! decay old observations as the workload shifts. These windows are driven
//! by **event time** (the telemetry timestamps), not wall-clock time, so
//! replayed traces calibrate identically to live streams.
//!
//! All window types share a time-bucketed ring ([`BucketRing`]): the window
//! is split into `buckets` equal slices and a slot is recycled lazily when
//! its bucket index comes around again. Memory is O(buckets), every
//! operation is O(1) amortized, and moderately out-of-order events (within
//! the window) still land in the right slot.

use crate::percentile::P2Quantile;

/// Aggregate totals over the live portion of a [`BucketRing`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowTotals {
    /// Sum of recorded values.
    pub sum: f64,
    /// Number of recorded events.
    pub count: u64,
    /// Number of events recorded with the flag set.
    pub flagged: u64,
    /// Seconds of event time the live slots span (≤ the window length).
    pub covered: f64,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    bucket: i64,
    sum: f64,
    count: u64,
    flagged: u64,
}

const EMPTY_SLOT: Slot = Slot {
    bucket: i64::MIN,
    sum: 0.0,
    count: 0,
    flagged: 0,
};

/// A time-bucketed sliding-window accumulator.
///
/// Records `(time, value, flag)` triples and aggregates over the trailing
/// window. Slots are stamped with their bucket index, so stale slots are
/// excluded from queries without any eager expiry work.
#[derive(Debug, Clone)]
pub struct BucketRing {
    width: f64,
    slots: Vec<Slot>,
    /// Bucket of the earliest event ever recorded (`i64::MAX` before any).
    first_bucket: i64,
}

impl BucketRing {
    /// Creates a ring covering `window` seconds with `buckets` slots.
    ///
    /// # Panics
    /// Panics unless `window > 0` and `buckets >= 1`.
    pub fn new(window: f64, buckets: usize) -> Self {
        assert!(
            window.is_finite() && window > 0.0,
            "window must be positive, got {window}"
        );
        assert!(buckets >= 1, "need at least one bucket");
        BucketRing {
            width: window / buckets as f64,
            slots: vec![EMPTY_SLOT; buckets],
            first_bucket: i64::MAX,
        }
    }

    /// The window length in seconds.
    pub fn window(&self) -> f64 {
        self.width * self.slots.len() as f64
    }

    fn bucket_of(&self, t: f64) -> i64 {
        (t / self.width).floor() as i64
    }

    /// Records one event at time `t`. Events older than the slot currently
    /// occupying their position (more than one window in the past relative
    /// to the newest data) are dropped.
    pub fn record(&mut self, t: f64, value: f64, flag: bool) {
        let b = self.bucket_of(t);
        self.first_bucket = self.first_bucket.min(b);
        let len = self.slots.len() as i64;
        let slot = &mut self.slots[b.rem_euclid(len) as usize];
        if slot.bucket > b {
            return; // a newer epoch owns this slot; the event expired
        }
        if slot.bucket < b {
            *slot = Slot {
                bucket: b,
                ..EMPTY_SLOT
            };
        }
        slot.sum += value;
        slot.count += 1;
        if flag {
            slot.flagged += 1;
        }
    }

    /// Totals over events in the window ending at `now`.
    pub fn totals(&self, now: f64) -> WindowTotals {
        let now_b = self.bucket_of(now);
        let len = self.slots.len() as i64;
        let lo = now_b - len + 1;
        let mut out = WindowTotals {
            sum: 0.0,
            count: 0,
            flagged: 0,
            covered: 0.0,
        };
        for slot in &self.slots {
            if slot.bucket >= lo && slot.bucket <= now_b {
                out.sum += slot.sum;
                out.count += slot.count;
                out.flagged += slot.flagged;
            }
        }
        // Event-time coverage: from the window's left edge (or the first
        // observation's bucket, whichever is later) to `now`.
        let start = self.width * lo.max(self.first_bucket.min(now_b)) as f64;
        out.covered = (now - start).max(0.0);
        out
    }
}

/// Windowed arrival-rate estimator: events per second over the trailing
/// window.
#[derive(Debug, Clone)]
pub struct RateWindow {
    ring: BucketRing,
}

impl RateWindow {
    /// Creates a rate window of `window` seconds with `buckets` slots.
    pub fn new(window: f64, buckets: usize) -> Self {
        RateWindow {
            ring: BucketRing::new(window, buckets),
        }
    }

    /// Records one arrival at time `t`.
    pub fn record(&mut self, t: f64) {
        self.ring.record(t, 0.0, false);
    }

    /// Events per second over the window ending at `now` (`None` before any
    /// event time has accumulated).
    pub fn rate(&self, now: f64) -> Option<f64> {
        let totals = self.ring.totals(now);
        if totals.covered <= 0.0 {
            return None;
        }
        Some(totals.count as f64 / totals.covered)
    }

    /// Events currently inside the window ending at `now`.
    pub fn count(&self, now: f64) -> u64 {
        self.ring.totals(now).count
    }
}

/// Windowed flagged-event ratio — the streaming form of the §IV-B
/// latency-threshold miss-ratio estimator (record `flag = latency >
/// threshold`) and of observed SLA attainment (record `flag = latency <=
/// sla`).
#[derive(Debug, Clone)]
pub struct WindowedRatio {
    ring: BucketRing,
}

impl WindowedRatio {
    /// Creates a ratio window of `window` seconds with `buckets` slots.
    pub fn new(window: f64, buckets: usize) -> Self {
        WindowedRatio {
            ring: BucketRing::new(window, buckets),
        }
    }

    /// Records one event at time `t`.
    pub fn record(&mut self, t: f64, flag: bool) {
        self.ring.record(t, 0.0, flag);
    }

    /// Fraction of flagged events in the window ending at `now` (`None`
    /// with no events — an empty window has no ratio, not ratio 0).
    pub fn ratio(&self, now: f64) -> Option<f64> {
        let totals = self.ring.totals(now);
        if totals.count == 0 {
            return None;
        }
        Some(totals.flagged as f64 / totals.count as f64)
    }

    /// Events currently inside the window ending at `now`.
    pub fn count(&self, now: f64) -> u64 {
        self.ring.totals(now).count
    }
}

/// Windowed mean of a recorded value (e.g. per-operation disk service
/// time).
#[derive(Debug, Clone)]
pub struct WindowedMean {
    ring: BucketRing,
}

impl WindowedMean {
    /// Creates a mean window of `window` seconds with `buckets` slots.
    pub fn new(window: f64, buckets: usize) -> Self {
        WindowedMean {
            ring: BucketRing::new(window, buckets),
        }
    }

    /// Records one observation at time `t`.
    pub fn record(&mut self, t: f64, value: f64) {
        self.ring.record(t, value, false);
    }

    /// Mean over the window ending at `now` (`None` with no observations).
    pub fn mean(&self, now: f64) -> Option<f64> {
        let totals = self.ring.totals(now);
        if totals.count == 0 {
            return None;
        }
        Some(totals.sum / totals.count as f64)
    }

    /// Observations currently inside the window ending at `now`.
    pub fn count(&self, now: f64) -> u64 {
        self.ring.totals(now).count
    }
}

/// A windowed quantile built from rotating [`P2Quantile`] epochs.
///
/// P² cannot forget, so a sliding quantile keeps one estimator per epoch of
/// `window` seconds and reads the **previous completed** epoch once the
/// current one is still warming up. Rotation across empty epochs (no
/// observations for one or more whole windows) is guarded: the last
/// completed estimate is retained and flagged stale rather than panicking
/// or reporting `NaN`.
#[derive(Debug, Clone)]
pub struct RotatingQuantile {
    p: f64,
    window: f64,
    min_samples: usize,
    epoch_start: f64,
    current: P2Quantile,
    /// Last completed epoch's estimate and sample count.
    last: Option<(f64, usize)>,
    /// Whole empty epochs skipped since the last completed estimate.
    skipped: u64,
}

impl RotatingQuantile {
    /// Creates a rotating `p`-quantile with epoch length `window` seconds.
    /// The current epoch's estimate is used once it has `min_samples`
    /// observations; before that the previous epoch's estimate is served.
    ///
    /// # Panics
    /// Panics unless `p` is in `(0, 1)` and `window > 0`.
    pub fn new(p: f64, window: f64, min_samples: usize) -> Self {
        assert!(
            window.is_finite() && window > 0.0,
            "window must be positive, got {window}"
        );
        RotatingQuantile {
            p,
            window,
            min_samples: min_samples.max(5),
            epoch_start: 0.0,
            current: P2Quantile::new(p),
            last: None,
            skipped: 0,
        }
    }

    /// Records one observation at event time `t`, rotating epochs as
    /// needed.
    pub fn observe(&mut self, t: f64, x: f64) {
        self.rotate_to(t);
        self.current.observe(x);
    }

    /// Rotates epochs so the epoch containing `t` is current. Empty epochs
    /// in between are skipped without disturbing the last-good estimate.
    pub fn rotate_to(&mut self, t: f64) {
        if t < self.epoch_start + self.window {
            return;
        }
        let elapsed = ((t - self.epoch_start) / self.window).floor().max(1.0);
        // Close out the current epoch if it saw data; otherwise it counts
        // toward the stale-epoch tally.
        if let Some(est) = self.current.estimate() {
            self.last = Some((est, self.current.count()));
            self.skipped = elapsed as u64 - 1;
        } else {
            self.skipped += elapsed as u64;
        }
        self.epoch_start += elapsed * self.window;
        self.current = P2Quantile::new(self.p);
    }

    /// Current quantile estimate: the live epoch once warmed up, else the
    /// last completed epoch, else whatever the live epoch has.
    pub fn estimate(&self) -> Option<f64> {
        if self.current.count() >= self.min_samples {
            return self.current.estimate();
        }
        if let Some((est, _)) = self.last {
            return Some(est);
        }
        self.current.estimate()
    }

    /// Whole empty epochs since the newest completed estimate — nonzero
    /// means [`Self::estimate`] may be serving stale data.
    pub fn stale_epochs(&self) -> u64 {
        self.skipped
    }

    /// Observations in the live epoch.
    pub fn live_count(&self) -> usize {
        self.current.count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_window_tracks_uniform_arrivals() {
        let mut w = RateWindow::new(10.0, 20);
        // 50 arrivals/s for 30 seconds.
        for i in 0..1500 {
            w.record(i as f64 * 0.02);
        }
        let rate = w.rate(30.0).unwrap();
        assert!((rate - 50.0).abs() < 5.0, "rate {rate}");
    }

    #[test]
    fn rate_window_forgets_old_bursts() {
        let mut w = RateWindow::new(5.0, 10);
        for i in 0..1000 {
            w.record(i as f64 * 0.001); // burst in the first second
        }
        // Quiet until t=20: the burst left the window entirely.
        assert_eq!(w.count(20.0), 0);
        assert_eq!(w.rate(20.0), Some(0.0));
    }

    #[test]
    fn rate_window_early_coverage_is_elapsed_time() {
        let mut w = RateWindow::new(100.0, 50);
        for i in 0..100 {
            w.record(i as f64 * 0.01); // 100/s for one second
        }
        // Only ~1 s elapsed: rate must divide by ~1 s, not the 100 s window.
        let rate = w.rate(1.0).unwrap();
        assert!((rate - 100.0).abs() < 20.0, "rate {rate}");
    }

    #[test]
    fn empty_windows_return_none() {
        let w = RateWindow::new(1.0, 4);
        assert_eq!(w.rate(5.0), None);
        let r = WindowedRatio::new(1.0, 4);
        assert_eq!(r.ratio(5.0), None);
        let m = WindowedMean::new(1.0, 4);
        assert_eq!(m.mean(5.0), None);
    }

    #[test]
    fn ratio_window_estimates_fraction() {
        let mut r = WindowedRatio::new(10.0, 10);
        for i in 0..1000 {
            r.record(i as f64 * 0.005, i % 4 == 0);
        }
        let got = r.ratio(5.0).unwrap();
        assert!((got - 0.25).abs() < 0.02, "ratio {got}");
    }

    #[test]
    fn ratio_window_follows_a_shift() {
        let mut r = WindowedRatio::new(2.0, 8);
        for i in 0..2000 {
            r.record(i as f64 * 0.005, true); // all flagged until t=10
        }
        for i in 0..2000 {
            r.record(10.0 + i as f64 * 0.005, false); // none after
        }
        let late = r.ratio(20.0).unwrap();
        assert!(
            late < 0.01,
            "ratio {late} should have forgotten the flagged phase"
        );
    }

    #[test]
    fn mean_window_averages_recent_values() {
        let mut m = WindowedMean::new(4.0, 8);
        for i in 0..100 {
            m.record(i as f64 * 0.1, 2.0); // value 2 until t=10
        }
        for i in 0..100 {
            m.record(10.0 + i as f64 * 0.01, 6.0); // value 6 in [10, 11]
        }
        let got = m.mean(11.0).unwrap();
        assert!(got > 5.0, "old values must have decayed, got {got}");
    }

    #[test]
    fn out_of_order_within_window_is_kept() {
        let mut w = RateWindow::new(10.0, 10);
        w.record(5.0);
        w.record(3.0); // older but inside the window
        assert_eq!(w.count(5.5), 2);
    }

    #[test]
    fn expired_out_of_order_event_is_dropped() {
        let mut w = RateWindow::new(1.0, 2);
        w.record(10.0);
        w.record(0.2); // a full window in the past
        assert_eq!(w.count(10.0), 1);
    }

    #[test]
    fn rotating_quantile_converges_then_rotates() {
        let mut q = RotatingQuantile::new(0.9, 10.0, 20);
        let mut state = 7u64;
        for i in 0..5000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = (state >> 11) as f64 / (1u64 << 53) as f64;
            q.observe(i as f64 * 0.01, x); // 50 s of uniform [0,1) data
        }
        let est = q.estimate().unwrap();
        assert!((est - 0.9).abs() < 0.05, "estimate {est}");
        assert_eq!(q.stale_epochs(), 0);
    }

    #[test]
    fn rotating_quantile_survives_empty_epochs() {
        let mut q = RotatingQuantile::new(0.5, 1.0, 5);
        for i in 0..100 {
            q.observe(i as f64 * 0.01, 42.0); // one busy epoch of constant 42
        }
        // A long silence, then a single late observation.
        q.observe(50.0, 1.0);
        let est = q.estimate().unwrap();
        assert!(est.is_finite());
        assert_eq!(est, 42.0, "last-good estimate served while warming");
        assert!(q.stale_epochs() > 10, "stale epochs {}", q.stale_epochs());
    }

    #[test]
    fn rotating_quantile_tracks_regime_change() {
        let mut q = RotatingQuantile::new(0.5, 5.0, 10);
        for i in 0..1000 {
            q.observe(i as f64 * 0.01, 1.0); // median 1 until t=10
        }
        for i in 0..1000 {
            q.observe(10.0 + i as f64 * 0.01, 9.0); // median 9 after
        }
        assert_eq!(q.estimate(), Some(9.0));
    }

    #[test]
    fn rotating_quantile_all_equal_is_exact() {
        let mut q = RotatingQuantile::new(0.99, 10.0, 5);
        for i in 0..100 {
            q.observe(i as f64 * 0.001, 3.5);
        }
        assert_eq!(q.estimate(), Some(3.5));
    }
}
