//! # cos-stats
//!
//! Measurement utilities for the evaluation: percentile estimation
//! ([`percentile`]), latency histograms ([`histogram`]), time-binned SLA
//! meters matching the paper's per-minute bookkeeping ([`sla`]),
//! prediction-error summaries for Tables I/II ([`error`]), plain-text
//! table rendering for the experiment binaries ([`table`]), streaming
//! moments + batch-means confidence intervals ([`welford`]), and
//! event-time sliding windows for online calibration ([`window`]).

#![warn(missing_docs)]

pub mod error;
pub mod histogram;
pub mod percentile;
pub mod sla;
pub mod table;
pub mod welford;
pub mod window;

pub use error::{pooled_summary, ErrorSummary, PredictionPoint};
pub use histogram::Histogram;
pub use percentile::{exact_percentile, fraction_within, P2Quantile};
pub use sla::SlaMeter;
pub use table::{ms, pct, TextTable};
pub use welford::{BatchMeans, Welford};
pub use window::{
    BucketRing, RateWindow, RotatingQuantile, WindowTotals, WindowedMean, WindowedRatio,
};
