//! Plain-text table rendering for the experiment binaries.
//!
//! The `fig*`/`table*` binaries print paper-style rows; this keeps the
//! formatting in one place and testable.

/// A simple left-padded text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width must match header");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows exist.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let cell = &cells[i];
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i] - cell.len()));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a fraction as a percentage with two decimals ("4.44%").
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Formats a latency in seconds as milliseconds ("12.3ms").
pub fn ms(x: f64) -> String {
    format!("{:.1}ms", 1000.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(vec!["Scenario", "SLA", "Mean"]);
        t.push_row(vec!["S1", "10ms", "2.91%"]);
        t.push_row(vec!["S16", "100ms", "1.96%"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Scenario"));
        assert!(lines[2].starts_with("S1"));
        // Columns align: "SLA" column starts at the same offset everywhere.
        let off = lines[0].find("SLA").unwrap();
        assert_eq!(&lines[3][off..off + 5], "100ms");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.0444), "4.44%");
        assert_eq!(ms(0.0123), "12.3ms");
    }

    #[test]
    fn len_tracking() {
        let mut t = TextTable::new(vec!["a"]);
        assert!(t.is_empty());
        t.push_row(vec!["1"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.push_row(vec!["only one"]);
    }
}
