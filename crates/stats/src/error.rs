//! Prediction-error bookkeeping for the evaluation tables.
//!
//! Table I reports best/worst/mean **absolute** prediction error of the
//! model per (scenario, SLA); Table II compares mean absolute errors across
//! models. An "error" is the difference between the predicted and observed
//! percentile of requests meeting the SLA, in percentage points.

/// A single (observed, predicted) percentile pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictionPoint {
    /// Observed fraction of requests meeting the SLA, in `[0, 1]`.
    pub observed: f64,
    /// Model-predicted fraction, in `[0, 1]`.
    pub predicted: f64,
}

impl PredictionPoint {
    /// Signed error `predicted − observed`.
    pub fn signed_error(&self) -> f64 {
        self.predicted - self.observed
    }

    /// Absolute error `|predicted − observed|`.
    pub fn abs_error(&self) -> f64 {
        self.signed_error().abs()
    }
}

/// Best/worst/mean absolute error over a series of prediction points
/// (one row of Table I).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorSummary {
    /// Smallest absolute error.
    pub best: f64,
    /// Largest absolute error.
    pub worst: f64,
    /// Mean absolute error.
    pub mean: f64,
    /// Mean signed error (positive = systematic overestimation).
    pub bias: f64,
    /// Number of points.
    pub count: usize,
}

impl ErrorSummary {
    /// Summarizes a series of prediction points.
    ///
    /// # Panics
    /// Panics on an empty series.
    pub fn from_points(points: &[PredictionPoint]) -> Self {
        assert!(!points.is_empty(), "cannot summarize an empty series");
        let mut best = f64::INFINITY;
        let mut worst = 0.0f64;
        let mut sum_abs = 0.0;
        let mut sum_signed = 0.0;
        for p in points {
            let e = p.abs_error();
            best = best.min(e);
            worst = worst.max(e);
            sum_abs += e;
            sum_signed += p.signed_error();
        }
        ErrorSummary {
            best,
            worst,
            mean: sum_abs / points.len() as f64,
            bias: sum_signed / points.len() as f64,
            count: points.len(),
        }
    }

    /// Relative reduction of this summary's mean error vs a baseline's,
    /// as in "our model reduces the prediction errors by up to 73%".
    pub fn relative_reduction_vs(&self, baseline: &ErrorSummary) -> f64 {
        if baseline.mean == 0.0 {
            0.0
        } else {
            (baseline.mean - self.mean) / baseline.mean
        }
    }
}

/// Pools several series into one overall summary (the paper's "the
/// prediction error of our model is 4.44% on average" aggregates all
/// scenarios and SLAs).
pub fn pooled_summary(series: &[&[PredictionPoint]]) -> ErrorSummary {
    let all: Vec<PredictionPoint> = series.iter().flat_map(|s| s.iter().copied()).collect();
    ErrorSummary::from_points(&all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(observed: f64, predicted: f64) -> PredictionPoint {
        PredictionPoint {
            observed,
            predicted,
        }
    }

    #[test]
    fn point_errors() {
        let p = pt(0.90, 0.95);
        assert!((p.signed_error() - 0.05).abs() < 1e-15);
        assert!((p.abs_error() - 0.05).abs() < 1e-15);
        let q = pt(0.90, 0.85);
        assert!((q.signed_error() + 0.05).abs() < 1e-15);
    }

    #[test]
    fn summary_best_worst_mean() {
        let pts = [pt(0.5, 0.51), pt(0.6, 0.55), pt(0.7, 0.70)];
        let s = ErrorSummary::from_points(&pts);
        assert!((s.best - 0.0).abs() < 1e-15);
        assert!((s.worst - 0.05).abs() < 1e-15);
        assert!((s.mean - 0.02).abs() < 1e-15);
        assert_eq!(s.count, 3);
    }

    #[test]
    fn bias_detects_systematic_direction() {
        // S1 underestimates percentiles, S16 overestimates (§V-B).
        let under = [pt(0.9, 0.88), pt(0.8, 0.77)];
        let s = ErrorSummary::from_points(&under);
        assert!(s.bias < 0.0);
        let over = [pt(0.9, 0.93), pt(0.8, 0.82)];
        assert!(ErrorSummary::from_points(&over).bias > 0.0);
    }

    #[test]
    fn relative_reduction() {
        let ours = ErrorSummary::from_points(&[pt(0.5, 0.52)]);
        let base = ErrorSummary::from_points(&[pt(0.5, 0.58)]);
        // 0.02 vs 0.08: 75% reduction.
        assert!((ours.relative_reduction_vs(&base) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn pooled_combines_series() {
        let a = [pt(0.5, 0.52)];
        let b = [pt(0.9, 0.80), pt(0.7, 0.70)];
        let s = pooled_summary(&[&a, &b]);
        assert_eq!(s.count, 3);
        assert!((s.mean - (0.02 + 0.10 + 0.0) / 3.0).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn empty_series_panics() {
        ErrorSummary::from_points(&[]);
    }
}
