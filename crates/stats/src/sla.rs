//! SLA meters: time-binned counts of requests meeting a latency bound.
//!
//! The paper's testbed "counts the number of requests that meet or violate
//! the SLA for each storage device ... for each minute" and evaluates the
//! percentile over 5-minute windows of a fixed arrival rate (§V-B). This
//! module reproduces that bookkeeping.

/// Counts met/violated requests per fixed-width time bin.
#[derive(Debug, Clone)]
pub struct SlaMeter {
    sla: f64,
    bin_width: f64,
    bins: Vec<(u64, u64)>, // (met, total)
}

impl SlaMeter {
    /// Creates a meter for latency bound `sla` with time bins of width
    /// `bin_width` (both in the same unit as recorded timestamps/latencies).
    ///
    /// # Panics
    /// Panics unless both arguments are finite and positive.
    pub fn new(sla: f64, bin_width: f64) -> Self {
        assert!(
            sla.is_finite() && sla > 0.0,
            "sla must be positive, got {sla}"
        );
        assert!(
            bin_width.is_finite() && bin_width > 0.0,
            "bin width must be positive, got {bin_width}"
        );
        SlaMeter {
            sla,
            bin_width,
            bins: Vec::new(),
        }
    }

    /// The latency bound.
    pub fn sla(&self) -> f64 {
        self.sla
    }

    /// Records a completed request: completion timestamp `at`, measured
    /// `latency`.
    ///
    /// # Panics
    /// Panics on negative or non-finite inputs.
    pub fn record(&mut self, at: f64, latency: f64) {
        assert!(
            at.is_finite() && at >= 0.0,
            "timestamp must be >= 0, got {at}"
        );
        assert!(
            latency.is_finite() && latency >= 0.0,
            "latency must be >= 0, got {latency}"
        );
        let idx = (at / self.bin_width) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, (0, 0));
        }
        let (met, total) = &mut self.bins[idx];
        if latency <= self.sla {
            *met += 1;
        }
        *total += 1;
    }

    /// Number of time bins touched.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Fraction meeting the SLA within bin `idx` (`None` for empty bins).
    pub fn bin_fraction(&self, idx: usize) -> Option<f64> {
        let (met, total) = *self.bins.get(idx)?;
        if total == 0 {
            None
        } else {
            Some(met as f64 / total as f64)
        }
    }

    /// Fraction meeting the SLA over the bin range `[from, to)`, weighting
    /// by request counts (`None` if no requests landed there).
    pub fn window_fraction(&self, from: usize, to: usize) -> Option<f64> {
        let mut met = 0u64;
        let mut total = 0u64;
        for (m, t) in self.bins.iter().take(to.min(self.bins.len())).skip(from) {
            met += m;
            total += t;
        }
        if total == 0 {
            None
        } else {
            Some(met as f64 / total as f64)
        }
    }

    /// Overall fraction meeting the SLA (`None` if nothing was recorded).
    pub fn overall_fraction(&self) -> Option<f64> {
        self.window_fraction(0, self.bins.len())
    }

    /// Total requests recorded.
    pub fn total(&self) -> u64 {
        self.bins.iter().map(|(_, t)| t).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_bins() {
        let mut m = SlaMeter::new(0.1, 60.0);
        m.record(10.0, 0.05); // bin 0, met
        m.record(30.0, 0.50); // bin 0, violated
        m.record(70.0, 0.01); // bin 1, met
        assert_eq!(m.bin_count(), 2);
        assert_eq!(m.bin_fraction(0), Some(0.5));
        assert_eq!(m.bin_fraction(1), Some(1.0));
        assert_eq!(m.total(), 3);
    }

    #[test]
    fn boundary_latency_meets_sla() {
        let mut m = SlaMeter::new(0.1, 1.0);
        m.record(0.0, 0.1);
        assert_eq!(m.bin_fraction(0), Some(1.0));
    }

    #[test]
    fn window_fraction_weights_by_count() {
        let mut m = SlaMeter::new(1.0, 1.0);
        // Bin 0: 3 requests all met; bin 1: 1 request violated.
        for _ in 0..3 {
            m.record(0.5, 0.5);
        }
        m.record(1.5, 2.0);
        assert_eq!(m.window_fraction(0, 2), Some(0.75));
        assert_eq!(m.overall_fraction(), Some(0.75));
    }

    #[test]
    fn empty_windows_are_none() {
        let m = SlaMeter::new(1.0, 1.0);
        assert_eq!(m.overall_fraction(), None);
        assert_eq!(m.bin_fraction(5), None);
        let mut m2 = SlaMeter::new(1.0, 1.0);
        m2.record(5.5, 0.1); // bins 0..5 exist but are empty
        assert_eq!(m2.bin_fraction(0), None);
        assert_eq!(m2.window_fraction(0, 3), None);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_latency() {
        SlaMeter::new(1.0, 1.0).record(0.0, -0.1);
    }
}
