//! Property-based tests on the distribution invariants the model relies on.

use cos_distr::traits::Lst;
use cos_distr::{Distribution, Empirical, Exponential, Gamma, LogNormal, Normal, Uniform, Weibull};
use cos_numeric::Complex64;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn check_basic<D: Distribution>(d: &D, xs: &[f64]) -> Result<(), TestCaseError> {
    for &x in xs {
        let c = d.cdf(x);
        prop_assert!((0.0..=1.0).contains(&c), "cdf({x}) = {c}");
        prop_assert!(d.pdf(x) >= 0.0);
    }
    for w in xs.windows(2) {
        prop_assert!(d.cdf(w[1]) >= d.cdf(w[0]) - 1e-12, "cdf not monotone");
    }
    prop_assert!(d.variance() >= 0.0);
    prop_assert!(d.second_moment() + 1e-12 >= d.mean() * d.mean());
    Ok(())
}

fn grid(max: f64) -> Vec<f64> {
    (0..50).map(|i| i as f64 * max / 49.0).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gamma_invariants(shape in 0.2f64..20.0, rate in 0.1f64..100.0) {
        let g = Gamma::new(shape, rate);
        check_basic(&g, &grid(5.0 * g.mean()))?;
        // LST at 0 is 1; LST magnitude ≤ 1 on the right half-plane.
        prop_assert!((g.lst(Complex64::ZERO) - Complex64::ONE).abs() < 1e-12);
        let s = Complex64::new(1.0, 3.0);
        prop_assert!(g.lst(s).abs() <= 1.0 + 1e-12);
    }

    #[test]
    fn exponential_invariants(rate in 0.01f64..1000.0) {
        let e = Exponential::new(rate);
        check_basic(&e, &grid(5.0 * e.mean()))?;
        prop_assert!((e.scv() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn lognormal_invariants(mu in -3.0f64..3.0, sigma in 0.05f64..2.0) {
        let d = LogNormal::new(mu, sigma);
        check_basic(&d, &grid(5.0 * d.mean()))?;
        prop_assert!((d.cdf(d.median()) - 0.5).abs() < 1e-10);
    }

    #[test]
    fn weibull_invariants(shape in 0.3f64..5.0, scale in 0.1f64..10.0) {
        let d = Weibull::new(shape, scale);
        check_basic(&d, &grid(5.0 * d.mean()))?;
    }

    #[test]
    fn uniform_invariants(a in 0.0f64..5.0, w in 0.1f64..5.0) {
        let d = Uniform::new(a, a + w);
        check_basic(&d, &grid(a + 2.0 * w))?;
        prop_assert!((d.lst(Complex64::from_real(1e-12)) - Complex64::ONE).abs() < 1e-9);
    }

    #[test]
    fn normal_lst_inverts_to_cdf(mu in 0.5f64..2.0, rel_sigma in 0.01f64..0.15) {
        let sigma = mu * rel_sigma;
        let n = Normal::new(mu, sigma);
        let cfg = cos_numeric::InversionConfig::default();
        for f in [0.8, 1.0, 1.2] {
            let t = mu * f;
            let got = cos_numeric::cdf_from_lst(&|s| n.lst(s), t, &cfg);
            prop_assert!((got - n.cdf(t)).abs() < 1e-3, "t={t}: {got} vs {}", n.cdf(t));
        }
    }

    #[test]
    fn sampling_mean_converges(shape in 0.5f64..8.0, rate in 1.0f64..100.0, seed in 0u64..1000) {
        let g = Gamma::new(shape, rate);
        let mut rng = SmallRng::seed_from_u64(seed);
        let n = 8000;
        let mean = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        // 8k samples: mean within ~6 standard errors.
        let se = (g.variance() / n as f64).sqrt();
        prop_assert!((mean - g.mean()).abs() < 6.0 * se + 1e-9, "mean {mean} vs {}", g.mean());
    }

    #[test]
    fn gamma_mle_recovers_on_synthetic(shape in 0.5f64..6.0, rate in 5.0f64..500.0, seed in 0u64..100) {
        let g = Gamma::new(shape, rate);
        let mut rng = SmallRng::seed_from_u64(seed);
        let sample = Empirical::new((0..6000).map(|_| g.sample(&mut rng)).collect());
        let fit = cos_distr::fit_gamma_mle(&sample).unwrap();
        prop_assert!((fit.shape() - shape).abs() / shape < 0.25, "shape {} vs {shape}", fit.shape());
        prop_assert!((fit.mean() - g.mean()).abs() / g.mean() < 0.1);
    }

    #[test]
    fn empirical_quantile_within_range(values in proptest::collection::vec(0.0f64..1e6, 1..200), p in 0.0f64..1.0) {
        let e = Empirical::new(values.clone());
        let q = e.quantile(p);
        prop_assert!(q >= e.min() - 1e-9 && q <= e.max() + 1e-9);
    }

    #[test]
    fn empirical_cdf_matches_quantile(values in proptest::collection::vec(0.0f64..100.0, 5..100)) {
        let e = Empirical::new(values);
        // With linearly interpolated (type-7) quantiles the step CDF can
        // undershoot by at most one sample's mass: F(Q(p)) >= p − 1/n.
        let slack = 1.0 / e.len() as f64 + 1e-9;
        for &p in &[0.1, 0.5, 0.9] {
            let q = e.quantile(p);
            prop_assert!(e.cdf(q + 1e-9) >= p - slack);
        }
    }
}
