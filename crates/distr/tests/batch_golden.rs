//! Golden tests: `Lst::lst_batch` must be bit-identical to the scalar
//! `Lst::lst` path for every family that implements the trait.
//!
//! Numerical inversion now routes every contour through `lst_batch`, while
//! moments, calibration diagnostics, and older call sites still use the
//! scalar path — any drift between the two would make memoized predictions
//! disagree with fresh ones.

use std::sync::Arc;

use cos_distr::{Degenerate, Exponential, Gamma, Lst, Mixture, Normal, Shifted, Uniform};
use cos_numeric::Complex64;

/// Euler-style contour (vertical line) plus some real-axis points, covering
/// the abscissae every inversion algorithm produces.
fn contour() -> Vec<Complex64> {
    let mut s = Vec::new();
    let x = 18.4 / (2.0 * 0.05);
    s.push(Complex64::from_real(x));
    for k in 1..=48 {
        s.push(Complex64::new(x, k as f64 * std::f64::consts::PI / 0.05));
    }
    for k in 1..=18 {
        s.push(Complex64::from_real(
            k as f64 * std::f64::consts::LN_2 / 0.03,
        ));
    }
    s
}

#[track_caller]
fn assert_batch_matches_scalar(name: &str, lst: &dyn Lst) {
    let s = contour();
    let mut batch = vec![Complex64::ZERO; s.len()];
    lst.lst_batch(&s, &mut batch);
    for (i, (&si, bi)) in s.iter().zip(batch.iter()).enumerate() {
        let want = lst.lst(si);
        assert_eq!(
            bi.re.to_bits(),
            want.re.to_bits(),
            "{name}: re drift at point {i} ({} vs {})",
            bi.re,
            want.re
        );
        assert_eq!(
            bi.im.to_bits(),
            want.im.to_bits(),
            "{name}: im drift at point {i} ({} vs {})",
            bi.im,
            want.im
        );
    }
}

#[test]
fn batch_bit_identical_for_every_family() {
    assert_batch_matches_scalar("exponential", &Exponential::new(2.5));
    assert_batch_matches_scalar("gamma", &Gamma::new(3.3, 410.0));
    assert_batch_matches_scalar("degenerate", &Degenerate::new(0.0007));
    assert_batch_matches_scalar("degenerate-zero", &Degenerate::new(0.0));
    assert_batch_matches_scalar("normal", &Normal::new(0.004, 0.0011));
    assert_batch_matches_scalar("uniform", &Uniform::new(0.001, 0.009));
    assert_batch_matches_scalar(
        "shifted",
        &Shifted::new(0.0004, Arc::new(Exponential::new(900.0))),
    );
}

#[test]
fn batch_bit_identical_for_nested_mixture() {
    // A cache-style mixture of a Gamma disk law and a zero-cost hit, nested
    // inside another mixture — the shape the backend model builds.
    let cache = Mixture::new(vec![
        (0.3, Arc::new(Gamma::new(3.0, 250.0)) as _),
        (0.7, Arc::new(Degenerate::new(0.0)) as _),
    ]);
    assert_batch_matches_scalar("cache-mixture", &cache);
    let nested = Mixture::new(vec![
        (0.6, Arc::new(cache) as _),
        (
            0.4,
            Arc::new(Shifted::new(0.001, Arc::new(Exponential::new(400.0)))) as _,
        ),
    ]);
    assert_batch_matches_scalar("nested-mixture", &nested);
}
