//! Gamma distribution.
//!
//! The paper fits four candidate distributions to measured disk service times
//! and finds "the Gamma distribution demonstrates the best result" (§IV-A,
//! Fig. 5); the analytic model then uses its closed-form LST
//! `L[B](s) = l^k (s + l)^{−k}`.

use crate::traits::{open_unit, standard_normal, Distribution, Lst};
use cos_numeric::special::{gamma_p, ln_gamma};
use cos_numeric::Complex64;
use rand::RngCore;

/// Gamma distribution with shape `k` and **rate** `l` (the paper's
/// parameterization: mean `k/l`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gamma {
    shape: f64,
    rate: f64,
}

impl Gamma {
    /// Creates a Gamma distribution from shape and rate.
    ///
    /// # Panics
    /// Panics unless both parameters are finite and positive.
    pub fn new(shape: f64, rate: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0,
            "Gamma requires shape > 0, got {shape}"
        );
        assert!(
            rate.is_finite() && rate > 0.0,
            "Gamma requires rate > 0, got {rate}"
        );
        Gamma { shape, rate }
    }

    /// Erlang convenience constructor: integer shape `k` stages at `rate`
    /// (the M/M/1/K sojourn of §III-B is a mixture of these).
    pub fn erlang(stages: u32, rate: f64) -> Self {
        assert!(stages >= 1, "Erlang requires at least one stage");
        Gamma::new(stages as f64, rate)
    }

    /// Creates a Gamma distribution from its mean and squared coefficient of
    /// variation (`scv = 1/k`): handy when calibrating from two moments.
    pub fn from_mean_scv(mean: f64, scv: f64) -> Self {
        assert!(mean > 0.0 && scv > 0.0, "mean and scv must be positive");
        let shape = 1.0 / scv;
        Gamma {
            shape,
            rate: shape / mean,
        }
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Rate parameter `l`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution for Gamma {
    fn mean(&self) -> f64 {
        self.shape / self.rate
    }
    fn variance(&self) -> f64 {
        self.shape / (self.rate * self.rate)
    }
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return match self.shape.partial_cmp(&1.0).unwrap() {
                std::cmp::Ordering::Less => f64::INFINITY,
                std::cmp::Ordering::Equal => self.rate,
                std::cmp::Ordering::Greater => 0.0,
            };
        }
        ((self.shape - 1.0) * x.ln() + self.shape * self.rate.ln()
            - self.rate * x
            - ln_gamma(self.shape))
        .exp()
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            gamma_p(self.shape, self.rate * x)
        }
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        // Marsaglia–Tsang squeeze method; boost for shape < 1.
        let (shape, boost) = if self.shape < 1.0 {
            (
                self.shape + 1.0,
                Some(open_unit(rng).powf(1.0 / self.shape)),
            )
        } else {
            (self.shape, None)
        };
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let raw = loop {
            let x = standard_normal(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = open_unit(rng);
            let x2 = x * x;
            if u < 1.0 - 0.0331 * x2 * x2 {
                break d * v;
            }
            if u.ln() < 0.5 * x2 + d * (1.0 - v + v.ln()) {
                break d * v;
            }
        };
        raw * boost.unwrap_or(1.0) / self.rate
    }
}

impl Lst for Gamma {
    fn lst(&self, s: Complex64) -> Complex64 {
        // l^k (s + l)^{-k} computed as (l/(l+s))^k on the principal branch.
        (Complex64::from_real(self.rate) / (s + self.rate)).powf(self.shape)
    }

    fn lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(s.len(), out.len(), "abscissa/output length mismatch");
        let rate = Complex64::from_real(self.rate);
        for (s, o) in s.iter().zip(out.iter_mut()) {
            *o = (rate / (*s + self.rate)).powf(self.shape);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn moments() {
        let g = Gamma::new(3.0, 2.0);
        assert_eq!(g.mean(), 1.5);
        assert_eq!(g.variance(), 0.75);
        assert!((g.scv() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn erlang_constructor() {
        let e = Gamma::erlang(3, 2.0);
        assert_eq!(e.shape(), 3.0);
        assert_eq!(e.mean(), 1.5);
    }

    #[test]
    fn from_mean_scv_roundtrip() {
        let g = Gamma::from_mean_scv(0.012, 0.4);
        assert!((g.mean() - 0.012).abs() < 1e-15);
        assert!((g.scv() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn shape_one_is_exponential() {
        let g = Gamma::new(1.0, 2.0);
        let e = crate::exponential::Exponential::new(2.0);
        for &x in &[0.1, 0.5, 1.0, 3.0] {
            assert!((g.pdf(x) - e.pdf(x)).abs() < 1e-12);
            assert!((g.cdf(x) - e.cdf(x)).abs() < 1e-12);
        }
        assert_eq!(g.pdf(0.0), 2.0);
    }

    #[test]
    fn pdf_integrates_to_one() {
        let g = Gamma::new(2.5, 1.3);
        let total = cos_numeric::quad::integrate_to_infinity(&|x| g.pdf(x), 0.0, 1e-10);
        assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn pdf_is_cdf_derivative() {
        let g = Gamma::new(4.2, 0.7);
        let h = 1e-6;
        for &x in &[0.5, 2.0, 6.0, 10.0] {
            let deriv = (g.cdf(x + h) - g.cdf(x - h)) / (2.0 * h);
            assert!((deriv - g.pdf(x)).abs() < 1e-5, "x={x}");
        }
    }

    #[test]
    fn sampling_matches_moments() {
        let g = Gamma::new(2.0, 5.0);
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| g.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 0.4).abs() < 0.005, "mean {mean}");
        assert!((var - 0.08).abs() < 0.005, "var {var}");
    }

    #[test]
    fn sampling_small_shape() {
        // shape < 1 exercises the boost path.
        let g = Gamma::new(0.5, 1.0);
        let mut rng = SmallRng::seed_from_u64(13);
        let n = 200_000;
        let mean = (0..n).map(|_| g.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn lst_matches_erlang_product() {
        // Gamma(k=3, l) LST equals the cube of the exponential LST.
        let g = Gamma::new(3.0, 2.0);
        let e = crate::exponential::Exponential::new(2.0);
        let s = Complex64::new(0.7, 1.9);
        let want = e.lst(s).powi(3);
        assert!((g.lst(s) - want).abs() < 1e-12);
    }

    #[test]
    fn lst_inversion_recovers_cdf() {
        let g = Gamma::new(2.3, 4.0);
        let cfg = cos_numeric::InversionConfig::default();
        for &t in &[0.2, 0.5, 1.0, 2.0] {
            let got = cos_numeric::cdf_from_lst(&|s| g.lst(s), t, &cfg);
            assert!((got - g.cdf(t)).abs() < 1e-6, "t={t}");
        }
    }

    #[test]
    #[should_panic]
    fn rejects_nonpositive_shape() {
        Gamma::new(0.0, 1.0);
    }
}
