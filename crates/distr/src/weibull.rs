//! Weibull distribution (no closed-form LST; workload-side only).
//!
//! Useful as an alternative object-size or think-time law when stress-testing
//! the model's sensitivity to the fitted service-time family.

use crate::traits::{open_unit, Distribution};
use cos_numeric::special::ln_gamma;
use rand::RngCore;

/// Weibull distribution with shape `k` and scale `λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Weibull {
    shape: f64,
    scale: f64,
}

impl Weibull {
    /// Creates a Weibull distribution.
    ///
    /// # Panics
    /// Panics unless both parameters are finite and positive.
    pub fn new(shape: f64, scale: f64) -> Self {
        assert!(
            shape.is_finite() && shape > 0.0,
            "Weibull requires shape > 0, got {shape}"
        );
        assert!(
            scale.is_finite() && scale > 0.0,
            "Weibull requires scale > 0, got {scale}"
        );
        Weibull { shape, scale }
    }

    /// Shape parameter `k`.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Scale parameter `λ`.
    pub fn scale(&self) -> f64 {
        self.scale
    }
}

impl Distribution for Weibull {
    fn mean(&self) -> f64 {
        self.scale * ln_gamma(1.0 + 1.0 / self.shape).exp()
    }
    fn variance(&self) -> f64 {
        let g2 = ln_gamma(1.0 + 2.0 / self.shape).exp();
        let g1 = ln_gamma(1.0 + 1.0 / self.shape).exp();
        self.scale * self.scale * (g2 - g1 * g1)
    }
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            return 0.0;
        }
        if x == 0.0 {
            return match self.shape.partial_cmp(&1.0).unwrap() {
                std::cmp::Ordering::Less => f64::INFINITY,
                std::cmp::Ordering::Equal => 1.0 / self.scale,
                std::cmp::Ordering::Greater => 0.0,
            };
        }
        let z = x / self.scale;
        self.shape / self.scale * z.powf(self.shape - 1.0) * (-z.powf(self.shape)).exp()
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-(x / self.scale).powf(self.shape)).exp_m1()
        }
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.scale * (-open_unit(rng).ln()).powf(1.0 / self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn shape_one_is_exponential() {
        let w = Weibull::new(1.0, 2.0);
        assert!((w.mean() - 2.0).abs() < 1e-12);
        assert!((w.cdf(2.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-12);
    }

    #[test]
    fn rayleigh_moments() {
        // shape 2 is Rayleigh: mean = λ √π/2.
        let w = Weibull::new(2.0, 1.0);
        assert!((w.mean() - (std::f64::consts::PI).sqrt() / 2.0).abs() < 1e-12);
    }

    #[test]
    fn pdf_is_cdf_derivative() {
        let w = Weibull::new(1.7, 0.8);
        let h = 1e-6;
        for &x in &[0.2, 0.8, 2.0] {
            let deriv = (w.cdf(x + h) - w.cdf(x - h)) / (2.0 * h);
            assert!((deriv - w.pdf(x)).abs() < 1e-5, "x={x}");
        }
    }

    #[test]
    fn sampling_matches_mean() {
        let w = Weibull::new(1.5, 3.0);
        let mut rng = SmallRng::seed_from_u64(31);
        let n = 200_000;
        let mean = (0..n).map(|_| w.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - w.mean()).abs() / w.mean() < 0.01);
    }
}
