//! Distribution traits.
//!
//! The analytic model manipulates service-time distributions through two
//! capabilities: ordinary distribution queries (moments, pdf/cdf, sampling —
//! used by the simulator substrate) and Laplace–Stieltjes transforms at
//! complex arguments (used by the Pollaczek–Khinchin machinery and numerical
//! inversion). They are separate traits because some workload distributions
//! (e.g. LogNormal object sizes) have no closed-form LST and never need one.

use cos_numeric::Complex64;
use rand::RngCore;
use std::fmt::Debug;
use std::sync::Arc;

/// A univariate distribution over `[0, ∞)` (service times, sizes, counts).
pub trait Distribution: Debug + Send + Sync {
    /// Mean of the distribution.
    fn mean(&self) -> f64;
    /// Variance of the distribution.
    fn variance(&self) -> f64;
    /// Probability density at `x` (Dirac atoms report `f64::INFINITY` at the
    /// atom and `0` elsewhere).
    fn pdf(&self, x: f64) -> f64;
    /// Cumulative distribution function at `x`.
    fn cdf(&self, x: f64) -> f64;
    /// Draws one sample.
    fn sample(&self, rng: &mut dyn RngCore) -> f64;
    /// Second raw moment `E[X²]`.
    fn second_moment(&self) -> f64 {
        let m = self.mean();
        self.variance() + m * m
    }
    /// Coefficient of variation squared, `Var/Mean²`.
    fn scv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.variance() / (m * m)
        }
    }
}

/// Laplace–Stieltjes transform `E[e^{−sX}]` evaluated at complex `s`.
pub trait Lst {
    /// Evaluates the LST at `s`.
    fn lst(&self, s: Complex64) -> Complex64;

    /// Evaluates the LST at every abscissa in `s`, writing into `out` (same
    /// length). Numerical inversion gathers all its contour points up front
    /// and evaluates through this method; implementations override it to
    /// hoist per-distribution constants and, for composite laws, shared
    /// sub-transform batches. Overrides must stay **bit-identical** to the
    /// scalar [`Lst::lst`] path — predictions are memoized and compared
    /// across the two.
    fn lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(s.len(), out.len(), "abscissa/output length mismatch");
        for (s, o) in s.iter().zip(out.iter_mut()) {
            *o = self.lst(*s);
        }
    }
}

/// A distribution usable as a queueing service time: full distribution
/// queries *and* a closed-form LST.
pub trait ServiceDistribution: Distribution + Lst {}
impl<T: Distribution + Lst + ?Sized> ServiceDistribution for T {}

/// Shared-ownership handle to a service distribution.
pub type DynService = Arc<dyn ServiceDistribution + Send + Sync>;

/// Draws a uniform variate in the open interval `(0, 1)`.
///
/// `rand`'s `gen::<f64>()` yields `[0, 1)`; several inverse-transform
/// samplers need to avoid an exact zero before taking a logarithm.
pub fn open_unit(rng: &mut dyn RngCore) -> f64 {
    use rand::Rng;
    let r = rng;
    loop {
        let u: f64 = r.gen();
        if u > 0.0 {
            return u;
        }
    }
}

/// Draws a uniform variate in `[0, 1)`.
pub fn unit(rng: &mut dyn RngCore) -> f64 {
    use rand::Rng;
    let r = rng;
    r.gen()
}

/// Draws a standard normal variate (polar Box–Muller, stateless).
pub fn standard_normal(rng: &mut dyn RngCore) -> f64 {
    loop {
        let u = 2.0 * open_unit(rng) - 1.0;
        let v = 2.0 * open_unit(rng) - 1.0;
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn open_unit_stays_open() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = open_unit(&mut rng);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }
}
