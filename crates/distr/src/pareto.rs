//! Pareto (power-law) distribution.
//!
//! Web object sizes are classically heavy-tailed; the Pareto family lets the
//! workload layer stress the model with traffic whose chunk-count
//! distribution has a much heavier tail than the default log-normal
//! catalog. No closed-form LST exists, so this is [`Distribution`]-only.

use crate::traits::{open_unit, Distribution};
use rand::RngCore;

/// Pareto distribution with scale `x_min > 0` and shape `alpha > 0`:
/// `P(X > x) = (x_min/x)^alpha` for `x ≥ x_min`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pareto {
    x_min: f64,
    alpha: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    /// Panics unless both parameters are finite and positive.
    pub fn new(x_min: f64, alpha: f64) -> Self {
        assert!(
            x_min.is_finite() && x_min > 0.0,
            "Pareto requires x_min > 0, got {x_min}"
        );
        assert!(
            alpha.is_finite() && alpha > 0.0,
            "Pareto requires alpha > 0, got {alpha}"
        );
        Pareto { x_min, alpha }
    }

    /// Creates a Pareto with a given mean (requires `alpha > 1`):
    /// `mean = alpha·x_min/(alpha − 1)`.
    ///
    /// # Panics
    /// Panics unless `alpha > 1` and `mean > 0`.
    pub fn with_mean(mean: f64, alpha: f64) -> Self {
        assert!(alpha > 1.0, "a finite mean requires alpha > 1, got {alpha}");
        assert!(mean.is_finite() && mean > 0.0, "mean must be positive");
        Pareto::new(mean * (alpha - 1.0) / alpha, alpha)
    }

    /// Scale parameter (minimum value).
    pub fn x_min(&self) -> f64 {
        self.x_min
    }

    /// Tail exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

impl Distribution for Pareto {
    fn mean(&self) -> f64 {
        if self.alpha <= 1.0 {
            f64::INFINITY
        } else {
            self.alpha * self.x_min / (self.alpha - 1.0)
        }
    }
    fn variance(&self) -> f64 {
        if self.alpha <= 2.0 {
            f64::INFINITY
        } else {
            let a = self.alpha;
            self.x_min * self.x_min * a / ((a - 1.0) * (a - 1.0) * (a - 2.0))
        }
    }
    fn pdf(&self, x: f64) -> f64 {
        if x < self.x_min {
            0.0
        } else {
            self.alpha * self.x_min.powf(self.alpha) / x.powf(self.alpha + 1.0)
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        if x < self.x_min {
            0.0
        } else {
            1.0 - (self.x_min / x).powf(self.alpha)
        }
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.x_min / open_unit(rng).powf(1.0 / self.alpha)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn moments() {
        let p = Pareto::new(1.0, 3.0);
        assert!((p.mean() - 1.5).abs() < 1e-12);
        assert!((p.variance() - 0.75).abs() < 1e-12);
        // Infinite-moment regimes.
        assert!(Pareto::new(1.0, 1.0).mean().is_infinite());
        assert!(Pareto::new(1.0, 1.5).variance().is_infinite());
    }

    #[test]
    fn with_mean_roundtrip() {
        let p = Pareto::with_mean(32_768.0, 2.5);
        assert!((p.mean() - 32_768.0).abs() < 1e-6);
    }

    #[test]
    fn cdf_pdf_consistency() {
        let p = Pareto::new(2.0, 2.5);
        assert_eq!(p.cdf(1.9), 0.0);
        assert_eq!(p.cdf(2.0), 0.0);
        let h = 1e-6;
        for &x in &[2.5, 4.0, 10.0] {
            let deriv = (p.cdf(x + h) - p.cdf(x - h)) / (2.0 * h);
            assert!((deriv - p.pdf(x)).abs() < 1e-5, "x={x}");
        }
    }

    #[test]
    fn sampling_respects_support_and_tail() {
        let p = Pareto::new(1.0, 2.0);
        let mut rng = SmallRng::seed_from_u64(11);
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| p.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x >= 1.0));
        // P(X > 10) = 0.01.
        let tail = samples.iter().filter(|&&x| x > 10.0).count() as f64 / n as f64;
        assert!((tail - 0.01).abs() < 0.002, "tail {tail}");
    }

    #[test]
    fn heavier_tail_than_lognormal_with_same_mean() {
        use crate::lognormal::LogNormal;
        let mean = 32_768.0;
        let pareto = Pareto::with_mean(mean, 1.8);
        let lognormal = LogNormal::from_mean_median(mean, 12_000.0);
        // Far tail (power law vs log-normal: the crossover sits a few
        // orders of magnitude out): Pareto mass dominates.
        let far = 500.0 * mean;
        assert!(1.0 - pareto.cdf(far) > 1.0 - lognormal.cdf(far));
    }

    #[test]
    #[should_panic]
    fn with_mean_rejects_alpha_one() {
        Pareto::with_mean(10.0, 1.0);
    }
}
