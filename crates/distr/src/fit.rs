//! Distribution fitting (§IV-A of the paper).
//!
//! The calibration pipeline benchmarks the storage device, records
//! per-operation latencies, and fits a parametric family whose LST exists in
//! closed form. The paper tests Exponential, Degenerate, Normal, and Gamma,
//! selects by fit quality, and reports that Gamma wins on its testbed
//! (Fig. 5). We reproduce that selection using the Kolmogorov–Smirnov
//! statistic as the quality score.

use crate::degenerate::Degenerate;
use crate::empirical::Empirical;
use crate::exponential::Exponential;
use crate::gamma::Gamma;
use crate::normal::Normal;
use crate::traits::Distribution;
use cos_numeric::roots::newton_positive;
use cos_numeric::special::{digamma, trigamma};

/// The four candidate families of §IV-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Family {
    /// Point mass at the sample mean.
    Degenerate,
    /// Exponential with rate `1/mean`.
    Exponential,
    /// Normal by moment matching.
    Normal,
    /// Gamma by maximum likelihood (method-of-moments fallback).
    Gamma,
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Family::Degenerate => "Degenerate",
            Family::Exponential => "Exponential",
            Family::Normal => "Normal",
            Family::Gamma => "Gamma",
        };
        f.write_str(name)
    }
}

/// A fitted parametric distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fitted {
    /// Fitted point mass.
    Degenerate(Degenerate),
    /// Fitted exponential.
    Exponential(Exponential),
    /// Fitted normal.
    Normal(Normal),
    /// Fitted gamma.
    Gamma(Gamma),
}

impl Fitted {
    /// The family of this fit.
    pub fn family(&self) -> Family {
        match self {
            Fitted::Degenerate(_) => Family::Degenerate,
            Fitted::Exponential(_) => Family::Exponential,
            Fitted::Normal(_) => Family::Normal,
            Fitted::Gamma(_) => Family::Gamma,
        }
    }

    /// CDF of the fitted distribution.
    pub fn cdf(&self, x: f64) -> f64 {
        match self {
            Fitted::Degenerate(d) => d.cdf(x),
            Fitted::Exponential(d) => d.cdf(x),
            Fitted::Normal(d) => d.cdf(x),
            Fitted::Gamma(d) => d.cdf(x),
        }
    }

    /// Mean of the fitted distribution.
    pub fn mean(&self) -> f64 {
        match self {
            Fitted::Degenerate(d) => d.mean(),
            Fitted::Exponential(d) => d.mean(),
            Fitted::Normal(d) => d.mean(),
            Fitted::Gamma(d) => d.mean(),
        }
    }
}

/// Errors from fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum FitError {
    /// Sample contains non-positive values where positivity is required.
    NonPositiveSample,
    /// Not enough spread/values to fit this family.
    DegenerateSample,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::NonPositiveSample => write!(f, "sample contains non-positive values"),
            FitError::DegenerateSample => {
                write!(f, "sample has insufficient spread for this family")
            }
        }
    }
}

impl std::error::Error for FitError {}

/// Fits a point mass at the sample mean.
pub fn fit_degenerate(sample: &Empirical) -> Degenerate {
    Degenerate::new(sample.mean().max(0.0))
}

/// Fits an exponential by matching the mean.
pub fn fit_exponential(sample: &Empirical) -> Result<Exponential, FitError> {
    let mean = sample.mean();
    if mean <= 0.0 {
        return Err(FitError::NonPositiveSample);
    }
    Ok(Exponential::with_mean(mean))
}

/// Fits a normal by moment matching.
pub fn fit_normal(sample: &Empirical) -> Result<Normal, FitError> {
    let var = sample.variance();
    if var <= 0.0 {
        return Err(FitError::DegenerateSample);
    }
    Ok(Normal::new(sample.mean(), var.sqrt()))
}

/// Fits a Gamma by method of moments.
pub fn fit_gamma_moments(sample: &Empirical) -> Result<Gamma, FitError> {
    let mean = sample.mean();
    let var = sample.variance();
    if mean <= 0.0 {
        return Err(FitError::NonPositiveSample);
    }
    if var <= 0.0 {
        return Err(FitError::DegenerateSample);
    }
    let shape = mean * mean / var;
    Ok(Gamma::new(shape, shape / mean))
}

/// Fits a Gamma by maximum likelihood.
///
/// Solves `ln k − ψ(k) = ln(mean) − mean(ln x)` by damped Newton from
/// Minka's closed-form initial guess, then sets `rate = k / mean`. Falls back
/// to method of moments if the sample contains non-positive values or Newton
/// stalls.
pub fn fit_gamma_mle(sample: &Empirical) -> Result<Gamma, FitError> {
    let mean = sample.mean();
    if mean <= 0.0 {
        return Err(FitError::NonPositiveSample);
    }
    if sample.min() <= 0.0 {
        // ln x undefined: fall back to moments.
        return fit_gamma_moments(sample);
    }
    let mean_ln = sample.mean_ln().ok_or(FitError::NonPositiveSample)?;
    let s = mean.ln() - mean_ln;
    if s <= 0.0 {
        // Jensen gap is zero (all samples equal): no MLE shape exists.
        return Err(FitError::DegenerateSample);
    }
    // Minka (2002) initial guess.
    let k0 = (3.0 - s + ((s - 3.0) * (s - 3.0) + 24.0 * s).sqrt()) / (12.0 * s);
    let f = |k: f64| k.ln() - digamma(k) - s;
    let df = |k: f64| 1.0 / k - trigamma(k);
    let shape = newton_positive(f, df, k0.max(1e-8), 1e-12, 100).unwrap_or(k0);
    Ok(Gamma::new(shape.max(1e-8), shape.max(1e-8) / mean))
}

/// A scored candidate fit.
#[derive(Debug, Clone)]
pub struct ScoredFit {
    /// The fitted distribution.
    pub fitted: Fitted,
    /// Kolmogorov–Smirnov distance to the empirical CDF (lower is better).
    pub ks: f64,
}

/// Full report of the model-selection pass: every candidate that could be
/// fitted, sorted by KS statistic ascending (best first).
#[derive(Debug, Clone)]
pub struct FitReport {
    /// Candidates, best first.
    pub candidates: Vec<ScoredFit>,
}

impl FitReport {
    /// The winning fit.
    pub fn best(&self) -> &ScoredFit {
        &self.candidates[0]
    }
}

/// Fits all four families of §IV-A and ranks them by KS statistic.
///
/// # Panics
/// Panics if no family could be fitted at all (requires at least a finite,
/// nonnegative-mean sample, which [`Empirical`] already guarantees).
pub fn fit_best(sample: &Empirical) -> FitReport {
    let mut candidates: Vec<ScoredFit> = Vec::with_capacity(4);
    let mut push = |fitted: Fitted| {
        let ks = sample.ks_statistic(|x| fitted.cdf(x));
        candidates.push(ScoredFit { fitted, ks });
    };
    push(Fitted::Degenerate(fit_degenerate(sample)));
    if let Ok(e) = fit_exponential(sample) {
        push(Fitted::Exponential(e));
    }
    if let Ok(n) = fit_normal(sample) {
        push(Fitted::Normal(n));
    }
    if let Ok(g) = fit_gamma_mle(sample) {
        push(Fitted::Gamma(g));
    }
    candidates.sort_by(|a, b| a.ks.partial_cmp(&b.ks).expect("finite ks"));
    assert!(
        !candidates.is_empty(),
        "at least the Degenerate fit always exists"
    );
    FitReport { candidates }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn gamma_sample(shape: f64, rate: f64, n: usize, seed: u64) -> Empirical {
        let g = Gamma::new(shape, rate);
        let mut rng = SmallRng::seed_from_u64(seed);
        Empirical::new((0..n).map(|_| g.sample(&mut rng)).collect())
    }

    #[test]
    fn gamma_mle_recovers_parameters() {
        let sample = gamma_sample(2.5, 200.0, 50_000, 7);
        let fit = fit_gamma_mle(&sample).unwrap();
        assert!(
            (fit.shape() - 2.5).abs() / 2.5 < 0.05,
            "shape {}",
            fit.shape()
        );
        assert!(
            (fit.rate() - 200.0).abs() / 200.0 < 0.05,
            "rate {}",
            fit.rate()
        );
    }

    #[test]
    fn gamma_mle_beats_or_matches_moments() {
        // MLE should produce a no-worse log-likelihood proxy (KS here) on
        // gamma data with a skewed shape.
        let sample = gamma_sample(0.7, 50.0, 20_000, 11);
        let mle = fit_gamma_mle(&sample).unwrap();
        let mom = fit_gamma_moments(&sample).unwrap();
        let ks_mle = sample.ks_statistic(|x| mle.cdf(x));
        let ks_mom = sample.ks_statistic(|x| mom.cdf(x));
        assert!(ks_mle <= ks_mom * 1.5, "mle {ks_mle} mom {ks_mom}");
    }

    #[test]
    fn gamma_wins_on_gamma_data() {
        // The Fig. 5 selection: on disk-like gamma latencies, the Gamma
        // family must beat Exponential, Normal, and Degenerate.
        let sample = gamma_sample(3.0, 250.0, 20_000, 13);
        let report = fit_best(&sample);
        assert_eq!(
            report.best().fitted.family(),
            Family::Gamma,
            "report: {report:?}"
        );
    }

    #[test]
    fn exponential_data_fits_well_with_gamma_shape_one() {
        let e = Exponential::new(100.0);
        let mut rng = SmallRng::seed_from_u64(17);
        let sample = Empirical::new((0..20_000).map(|_| e.sample(&mut rng)).collect());
        let g = fit_gamma_mle(&sample).unwrap();
        assert!((g.shape() - 1.0).abs() < 0.05, "shape {}", g.shape());
    }

    #[test]
    fn degenerate_wins_on_constant_data() {
        // Parse latencies on the paper's testbed were "almost constant".
        let sample = Empirical::new(vec![0.5; 1000]);
        let report = fit_best(&sample);
        assert_eq!(report.best().fitted.family(), Family::Degenerate);
        assert_eq!(report.best().fitted.mean(), 0.5);
    }

    #[test]
    fn near_constant_data_prefers_degenerate_over_exponential() {
        let mut rng = SmallRng::seed_from_u64(19);
        let n = Normal::new(1.0, 1e-4);
        let sample = Empirical::new((0..5000).map(|_| n.sample(&mut rng)).collect());
        let report = fit_best(&sample);
        // Exponential is a terrible fit for tightly concentrated data.
        let exp_ks = report
            .candidates
            .iter()
            .find(|c| c.fitted.family() == Family::Exponential)
            .unwrap()
            .ks;
        assert!(exp_ks > 0.3);
        assert_ne!(report.best().fitted.family(), Family::Exponential);
    }

    #[test]
    fn fit_errors_on_bad_samples() {
        let zeros = Empirical::new(vec![0.0, 0.0, 0.0]);
        assert_eq!(fit_exponential(&zeros), Err(FitError::NonPositiveSample));
        assert_eq!(fit_normal(&zeros), Err(FitError::DegenerateSample));
        let constant = Empirical::new(vec![2.0, 2.0]);
        assert_eq!(fit_gamma_mle(&constant), Err(FitError::DegenerateSample));
    }

    #[test]
    fn mle_falls_back_to_moments_with_zeros() {
        // A few zero latencies (cache hits sneaking into a disk benchmark)
        // must not crash the fit.
        let mut vals = vec![0.0, 0.0];
        let g = Gamma::new(2.0, 100.0);
        let mut rng = SmallRng::seed_from_u64(29);
        vals.extend((0..5000).map(|_| g.sample(&mut rng)));
        let sample = Empirical::new(vals);
        let fit = fit_gamma_mle(&sample).unwrap();
        assert!(fit.shape() > 0.0 && fit.rate() > 0.0);
    }

    #[test]
    fn report_is_sorted() {
        let sample = gamma_sample(2.0, 100.0, 5000, 31);
        let report = fit_best(&sample);
        for w in report.candidates.windows(2) {
            assert!(w[0].ks <= w[1].ks);
        }
    }
}
