//! Degenerate (deterministic) distribution.
//!
//! The paper finds request-parsing latency "almost constant (Degenerate
//! distribution)" on its testbed (§IV-A); memory-served operations are also
//! modeled as a unit atom at zero (the Dirac delta in the cache-miss mixture).

use crate::traits::{Distribution, Lst};
use cos_numeric::Complex64;
use rand::RngCore;

/// A point mass at `value ≥ 0`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Degenerate {
    value: f64,
}

impl Degenerate {
    /// Creates a point mass at `value`.
    ///
    /// # Panics
    /// Panics on negative or non-finite `value`.
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && value >= 0.0,
            "Degenerate requires a finite value >= 0, got {value}"
        );
        Degenerate { value }
    }

    /// The unit atom at zero (the Dirac delta `δ(t)` of the paper).
    pub fn zero() -> Self {
        Degenerate { value: 0.0 }
    }

    /// The location of the atom.
    pub fn value(&self) -> f64 {
        self.value
    }
}

impl Distribution for Degenerate {
    fn mean(&self) -> f64 {
        self.value
    }
    fn variance(&self) -> f64 {
        0.0
    }
    fn pdf(&self, x: f64) -> f64 {
        if x == self.value {
            f64::INFINITY
        } else {
            0.0
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        if x >= self.value {
            1.0
        } else {
            0.0
        }
    }
    fn sample(&self, _rng: &mut dyn RngCore) -> f64 {
        self.value
    }
}

impl Lst for Degenerate {
    fn lst(&self, s: Complex64) -> Complex64 {
        // E[e^{-sX}] = e^{-s d}; for d = 0 this is identically 1.
        if self.value == 0.0 {
            Complex64::ONE
        } else {
            (s * (-self.value)).exp()
        }
    }

    fn lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(s.len(), out.len(), "abscissa/output length mismatch");
        if self.value == 0.0 {
            out.fill(Complex64::ONE);
            return;
        }
        let neg = -self.value;
        for (s, o) in s.iter().zip(out.iter_mut()) {
            *o = (*s * neg).exp();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn moments() {
        let d = Degenerate::new(3.5);
        assert_eq!(d.mean(), 3.5);
        assert_eq!(d.variance(), 0.0);
        assert_eq!(d.second_moment(), 12.25);
        assert_eq!(d.scv(), 0.0);
    }

    #[test]
    fn cdf_is_step() {
        let d = Degenerate::new(1.0);
        assert_eq!(d.cdf(0.999), 0.0);
        assert_eq!(d.cdf(1.0), 1.0);
        assert_eq!(d.cdf(2.0), 1.0);
    }

    #[test]
    fn sampling_is_constant() {
        let d = Degenerate::new(0.25);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 0.25);
        }
    }

    #[test]
    fn lst_is_exponential_in_s() {
        let d = Degenerate::new(2.0);
        let s = Complex64::new(0.5, 1.0);
        let got = d.lst(s);
        let want = (s * (-2.0)).exp();
        assert!((got - want).abs() < 1e-15);
        // At s = 0 the LST of any distribution is 1.
        assert_eq!(d.lst(Complex64::ZERO), Complex64::ONE);
    }

    #[test]
    fn zero_atom_is_identity() {
        let delta = Degenerate::zero();
        let s = Complex64::new(3.0, -7.0);
        assert_eq!(delta.lst(s), Complex64::ONE);
        assert_eq!(delta.cdf(0.0), 1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_negative() {
        Degenerate::new(-1.0);
    }
}
