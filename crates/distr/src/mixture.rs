//! Finite mixtures of distributions.
//!
//! The paper's cache-aware operation latency is a two-point mixture
//! `op(t) = m · op_disk(t) + (1 − m) · δ(t)` (§III-B); the system-level CDF
//! (Eq. 3) is an arrival-rate-weighted mixture over storage devices. The
//! paper also explicitly allows mixtures as fitting families (§IV-A).

use crate::traits::{unit, Distribution, DynService, Lst};
use cos_numeric::Complex64;
use rand::RngCore;
use std::sync::Arc;

/// A finite mixture of service distributions with normalized weights.
#[derive(Debug, Clone)]
pub struct Mixture {
    components: Vec<(f64, DynService)>,
}

impl Mixture {
    /// Creates a mixture from `(weight, component)` pairs. Weights must be
    /// nonnegative with a positive sum; they are normalized internally.
    ///
    /// # Panics
    /// Panics on an empty component list, negative weights, or a zero total.
    pub fn new(components: Vec<(f64, DynService)>) -> Self {
        assert!(
            !components.is_empty(),
            "Mixture requires at least one component"
        );
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(
            components.iter().all(|(w, _)| *w >= 0.0) && total > 0.0,
            "Mixture weights must be nonnegative with positive sum"
        );
        let components = components
            .into_iter()
            .map(|(w, c)| (w / total, c))
            .collect();
        Mixture { components }
    }

    /// The paper's cache-miss form: disk-served with probability
    /// `miss_ratio`, memory-served (`δ(t)`, zero latency) otherwise.
    pub fn cache_miss(miss_ratio: f64, disk: DynService) -> Self {
        assert!(
            (0.0..=1.0).contains(&miss_ratio),
            "miss ratio must be in [0,1], got {miss_ratio}"
        );
        let delta: DynService = Arc::new(crate::degenerate::Degenerate::zero());
        Mixture::new(vec![(miss_ratio, disk), (1.0 - miss_ratio, delta)])
    }

    /// Normalized `(weight, component)` view.
    pub fn components(&self) -> &[(f64, DynService)] {
        &self.components
    }
}

impl Distribution for Mixture {
    fn mean(&self) -> f64 {
        self.components.iter().map(|(w, c)| w * c.mean()).sum()
    }
    fn variance(&self) -> f64 {
        // Var = E[X²] − E[X]², with E[X²] mixed componentwise.
        let m = self.mean();
        self.second_moment() - m * m
    }
    fn second_moment(&self) -> f64 {
        self.components
            .iter()
            .map(|(w, c)| w * c.second_moment())
            .sum()
    }
    fn pdf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, c)| w * c.pdf(x)).sum()
    }
    fn cdf(&self, x: f64) -> f64 {
        self.components.iter().map(|(w, c)| w * c.cdf(x)).sum()
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        let mut u = unit(rng);
        for (w, c) in &self.components {
            if u < *w {
                return c.sample(rng);
            }
            u -= w;
        }
        // Floating-point slack: fall through to the last component.
        self.components.last().expect("nonempty").1.sample(rng)
    }
}

impl Lst for Mixture {
    fn lst(&self, s: Complex64) -> Complex64 {
        self.components
            .iter()
            .map(|(w, c)| c.lst(s) * *w)
            .fold(Complex64::ZERO, |a, b| a + b)
    }

    fn lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(s.len(), out.len(), "abscissa/output length mismatch");
        // One batch per component, accumulated in component order — the
        // same per-point fold `((0 + l₀w₀) + l₁w₁) + …` as the scalar path.
        out.fill(Complex64::ZERO);
        let mut tmp = vec![Complex64::ZERO; s.len()];
        for (w, c) in &self.components {
            c.lst_batch(s, &mut tmp);
            for (o, t) in out.iter_mut().zip(tmp.iter()) {
                *o += *t * *w;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degenerate::Degenerate;
    use crate::exponential::Exponential;
    use crate::gamma::Gamma;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn svc<T: Distribution + Lst + 'static>(d: T) -> DynService {
        Arc::new(d)
    }

    #[test]
    fn weights_normalize() {
        let m = Mixture::new(vec![
            (2.0, svc(Degenerate::new(1.0))),
            (6.0, svc(Degenerate::new(2.0))),
        ]);
        assert!((m.components()[0].0 - 0.25).abs() < 1e-15);
        assert!((m.mean() - 1.75).abs() < 1e-15);
    }

    #[test]
    fn cache_miss_matches_paper_formula() {
        // index(t) = index_d(t) m + δ(t)(1 − m): mean scales by m, LST is
        // m·L_d(s) + (1−m).
        let disk = Gamma::new(2.0, 100.0); // 20 ms mean
        let m = 0.3;
        let mix = Mixture::cache_miss(m, svc(disk));
        assert!((mix.mean() - m * disk.mean()).abs() < 1e-15);
        let s = Complex64::new(1.0, 2.0);
        let want = disk.lst(s) * m + (1.0 - m);
        assert!((mix.lst(s) - want).abs() < 1e-14);
    }

    #[test]
    fn cache_miss_extremes() {
        let disk = svc(Exponential::new(10.0));
        let all_hit = Mixture::cache_miss(0.0, disk.clone());
        assert_eq!(all_hit.mean(), 0.0);
        assert_eq!(all_hit.cdf(0.0), 1.0);
        let all_miss = Mixture::cache_miss(1.0, disk);
        assert!((all_miss.mean() - 0.1).abs() < 1e-15);
    }

    #[test]
    fn variance_uses_mixed_second_moment() {
        // Two atoms at 0 and 2, equal weight: mean 1, var 1.
        let m = Mixture::new(vec![
            (1.0, svc(Degenerate::new(0.0))),
            (1.0, svc(Degenerate::new(2.0))),
        ]);
        assert!((m.mean() - 1.0).abs() < 1e-15);
        assert!((m.variance() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn sampling_respects_weights() {
        let m = Mixture::new(vec![
            (0.8, svc(Degenerate::new(1.0))),
            (0.2, svc(Degenerate::new(5.0))),
        ]);
        let mut rng = SmallRng::seed_from_u64(41);
        let n = 100_000;
        let ones = (0..n).filter(|_| m.sample(&mut rng) == 1.0).count();
        let frac = ones as f64 / n as f64;
        assert!((frac - 0.8).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn mixture_cdf_inverts_from_lst() {
        let m = Mixture::cache_miss(0.4, svc(Gamma::new(3.0, 50.0)));
        let cfg = cos_numeric::InversionConfig::default();
        for &t in &[0.02, 0.06, 0.15] {
            let got = cos_numeric::cdf_from_lst(&|s| m.lst(s), t, &cfg);
            assert!(
                (got - m.cdf(t)).abs() < 1e-4,
                "t={t}: got {got} want {}",
                m.cdf(t)
            );
        }
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        Mixture::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_weight() {
        Mixture::new(vec![
            (-0.5, svc(Degenerate::new(1.0))),
            (1.5, svc(Degenerate::new(2.0))),
        ]);
    }
}
