//! Empirical distribution over recorded samples.
//!
//! The calibration pipeline (§IV) records per-operation latencies and fits
//! parametric families against them; this type holds the recorded sample,
//! exposes the empirical CDF used by the Kolmogorov–Smirnov statistic, and
//! powers the "recorded" series in the Fig. 5 reproduction.

/// An immutable, sorted sample with empirical CDF and quantile queries.
#[derive(Debug, Clone)]
pub struct Empirical {
    sorted: Vec<f64>,
}

impl Empirical {
    /// Builds an empirical distribution from samples.
    ///
    /// # Panics
    /// Panics on an empty sample or any non-finite value.
    pub fn new(mut samples: Vec<f64>) -> Self {
        assert!(
            !samples.is_empty(),
            "Empirical requires at least one sample"
        );
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "samples must be finite"
        );
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Empirical { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false (construction rejects empty samples); mirrors `len`.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.len() as f64
    }

    /// Unbiased sample variance (0 for a single sample).
    pub fn variance(&self) -> f64 {
        if self.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        self.sorted.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (self.len() - 1) as f64
    }

    /// Mean of `ln x` over strictly positive samples (`None` if none exist).
    /// Needed by the Gamma MLE.
    pub fn mean_ln(&self) -> Option<f64> {
        let positives: Vec<f64> = self.sorted.iter().copied().filter(|&x| x > 0.0).collect();
        if positives.is_empty() {
            None
        } else {
            Some(positives.iter().map(|x| x.ln()).sum::<f64>() / positives.len() as f64)
        }
    }

    /// Empirical CDF: fraction of samples `<= x`.
    pub fn cdf(&self, x: f64) -> f64 {
        self.sorted.partition_point(|&v| v <= x) as f64 / self.len() as f64
    }

    /// Quantile with linear interpolation between order statistics.
    ///
    /// # Panics
    /// Panics unless `p` is in `[0, 1]`.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "quantile requires p in [0,1], got {p}"
        );
        let n = self.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = p * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("nonempty")
    }

    /// The sorted sample.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Kolmogorov–Smirnov statistic against a model CDF:
    /// `sup_x |F_n(x) − F(x)|`.
    ///
    /// Handles model distributions with atoms correctly by comparing the
    /// left limits `F_n(x⁻)` and `F(x⁻)` in addition to the right-continuous
    /// values at each distinct order statistic.
    pub fn ks_statistic<F: Fn(f64) -> f64>(&self, model_cdf: F) -> f64 {
        let n = self.len() as f64;
        let mut d = 0.0f64;
        let mut i = 0;
        while i < self.sorted.len() {
            let x = self.sorted[i];
            // Index one past the tie group for x.
            let j = self.sorted.partition_point(|&v| v <= x);
            let f_right = model_cdf(x);
            let f_left = model_cdf(x.next_down());
            d = d.max((j as f64 / n - f_right).abs());
            d = d.max((i as f64 / n - f_left).abs());
            i = j;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_statistics() {
        let e = Empirical::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.mean(), 2.0);
        assert_eq!(e.variance(), 1.0);
        assert_eq!(e.min(), 1.0);
        assert_eq!(e.max(), 3.0);
    }

    #[test]
    fn cdf_step_behaviour() {
        let e = Empirical::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.cdf(0.5), 0.0);
        assert_eq!(e.cdf(1.0), 0.25);
        assert_eq!(e.cdf(2.5), 0.5);
        assert_eq!(e.cdf(4.0), 1.0);
    }

    #[test]
    fn quantile_interpolates() {
        let e = Empirical::new(vec![0.0, 10.0]);
        assert_eq!(e.quantile(0.0), 0.0);
        assert_eq!(e.quantile(0.5), 5.0);
        assert_eq!(e.quantile(1.0), 10.0);
    }

    #[test]
    fn quantile_single_sample() {
        let e = Empirical::new(vec![7.0]);
        assert_eq!(e.quantile(0.3), 7.0);
    }

    #[test]
    fn mean_ln_ignores_zeros() {
        let e = Empirical::new(vec![0.0, 1.0, std::f64::consts::E]);
        let got = e.mean_ln().unwrap();
        assert!((got - 0.5).abs() < 1e-14);
        let zeros = Empirical::new(vec![0.0, 0.0]);
        assert!(zeros.mean_ln().is_none());
    }

    #[test]
    fn ks_statistic_perfect_fit_is_small() {
        // Empirical CDF vs itself-as-model: the KS statistic is 1/n at most
        // (the step mismatch), here evaluated against the true uniform CDF.
        let n = 1000;
        let samples: Vec<f64> = (0..n).map(|i| (i as f64 + 0.5) / n as f64).collect();
        let e = Empirical::new(samples);
        let d = e.ks_statistic(|x| x.clamp(0.0, 1.0));
        assert!(d <= 0.5 / n as f64 + 1e-12, "d = {d}");
    }

    #[test]
    fn ks_statistic_detects_bad_model() {
        let samples: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        let e = Empirical::new(samples);
        // Model claims everything is below 0.01.
        let d = e.ks_statistic(|x| if x >= 0.01 { 1.0 } else { 0.0 });
        assert!(d > 0.9);
    }

    #[test]
    #[should_panic]
    fn rejects_empty() {
        Empirical::new(vec![]);
    }

    #[test]
    #[should_panic]
    fn rejects_nan() {
        Empirical::new(vec![1.0, f64::NAN]);
    }
}
