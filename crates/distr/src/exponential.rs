//! Exponential distribution.
//!
//! Service times in the M/M/1/K disk approximation (§III-B) and the Poisson
//! inter-arrival times of the workload generator are exponential.

use crate::traits::{open_unit, Distribution, Lst};
use cos_numeric::Complex64;
use rand::RngCore;

/// Exponential distribution with rate `λ` (mean `1/λ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate.
    ///
    /// # Panics
    /// Panics unless `rate` is finite and positive.
    pub fn new(rate: f64) -> Self {
        assert!(
            rate.is_finite() && rate > 0.0,
            "Exponential requires rate > 0, got {rate}"
        );
        Exponential { rate }
    }

    /// Creates an exponential distribution with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        assert!(
            mean.is_finite() && mean > 0.0,
            "Exponential requires mean > 0, got {mean}"
        );
        Exponential { rate: 1.0 / mean }
    }

    /// The rate parameter `λ`.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Distribution for Exponential {
    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
    fn variance(&self) -> f64 {
        1.0 / (self.rate * self.rate)
    }
    fn pdf(&self, x: f64) -> f64 {
        if x < 0.0 {
            0.0
        } else {
            self.rate * (-self.rate * x).exp()
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            -(-self.rate * x).exp_m1()
        }
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        -open_unit(rng).ln() / self.rate
    }
}

impl Lst for Exponential {
    fn lst(&self, s: Complex64) -> Complex64 {
        Complex64::from_real(self.rate) / (s + self.rate)
    }

    fn lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(s.len(), out.len(), "abscissa/output length mismatch");
        let rate = Complex64::from_real(self.rate);
        for (s, o) in s.iter().zip(out.iter_mut()) {
            *o = rate / (*s + self.rate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn moments() {
        let e = Exponential::new(4.0);
        assert_eq!(e.mean(), 0.25);
        assert_eq!(e.variance(), 0.0625);
        assert!((e.scv() - 1.0).abs() < 1e-15);
        let m = Exponential::with_mean(0.25);
        assert_eq!(m.rate(), 4.0);
    }

    #[test]
    fn pdf_cdf_consistency() {
        let e = Exponential::new(2.0);
        assert_eq!(e.cdf(0.0), 0.0);
        assert_eq!(e.pdf(-1.0), 0.0);
        assert!((e.cdf(1.0) - (1.0 - (-2.0f64).exp())).abs() < 1e-15);
        // Numerical derivative of the CDF matches the pdf.
        let h = 1e-6;
        let deriv = (e.cdf(0.5 + h) - e.cdf(0.5 - h)) / (2.0 * h);
        assert!((deriv - e.pdf(0.5)).abs() < 1e-6);
    }

    #[test]
    fn memorylessness_of_samples() {
        // P(X > a + b | X > a) ≈ P(X > b)
        let e = Exponential::new(1.0);
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| e.sample(&mut rng)).collect();
        let past_a: Vec<f64> = samples.iter().copied().filter(|&x| x > 0.5).collect();
        let frac_cond = past_a.iter().filter(|&&x| x > 1.0).count() as f64 / past_a.len() as f64;
        let frac_uncond = samples.iter().filter(|&&x| x > 0.5).count() as f64 / n as f64;
        assert!((frac_cond - frac_uncond).abs() < 0.02);
    }

    #[test]
    fn sample_mean_converges() {
        let e = Exponential::new(5.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let mean = (0..n).map(|_| e.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.2).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn lst_at_real_points() {
        let e = Exponential::new(3.0);
        assert_eq!(e.lst(Complex64::ZERO), Complex64::ONE);
        let got = e.lst(Complex64::from_real(1.0));
        assert!((got.re - 0.75).abs() < 1e-15);
        assert_eq!(got.im, 0.0);
    }

    #[test]
    fn lst_derivative_gives_mean() {
        // −d/ds L(s) at 0 ≈ mean, via central difference.
        let e = Exponential::new(2.0);
        let h = 1e-6;
        let d = (e.lst(Complex64::from_real(h)) - e.lst(Complex64::from_real(-h))).re / (2.0 * h);
        assert!((-d - e.mean()).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_rate() {
        Exponential::new(0.0);
    }
}
