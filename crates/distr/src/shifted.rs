//! Shift wrapper: `Y = d + X`.
//!
//! Convenient for "constant setup plus random service" latencies, e.g.
//! request parsing followed by a disk operation.

use crate::traits::{Distribution, DynService, Lst};
use cos_numeric::Complex64;
use rand::RngCore;

/// A distribution shifted right by a nonnegative constant.
#[derive(Debug, Clone)]
pub struct Shifted {
    offset: f64,
    inner: DynService,
}

impl Shifted {
    /// Wraps `inner` with the shift `offset`.
    ///
    /// # Panics
    /// Panics if `offset` is negative or non-finite.
    pub fn new(offset: f64, inner: DynService) -> Self {
        assert!(
            offset.is_finite() && offset >= 0.0,
            "Shifted requires offset >= 0, got {offset}"
        );
        Shifted { offset, inner }
    }

    /// The shift amount.
    pub fn offset(&self) -> f64 {
        self.offset
    }
}

impl Distribution for Shifted {
    fn mean(&self) -> f64 {
        self.offset + self.inner.mean()
    }
    fn variance(&self) -> f64 {
        self.inner.variance()
    }
    fn pdf(&self, x: f64) -> f64 {
        self.inner.pdf(x - self.offset)
    }
    fn cdf(&self, x: f64) -> f64 {
        self.inner.cdf(x - self.offset)
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.offset + self.inner.sample(rng)
    }
}

impl Lst for Shifted {
    fn lst(&self, s: Complex64) -> Complex64 {
        (s * (-self.offset)).exp() * self.inner.lst(s)
    }

    fn lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(s.len(), out.len(), "abscissa/output length mismatch");
        self.inner.lst_batch(s, out);
        let neg = -self.offset;
        for (s, o) in s.iter().zip(out.iter_mut()) {
            *o = (*s * neg).exp() * *o;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exponential::Exponential;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn shifted_exponential_properties() {
        let s = Shifted::new(0.5, Arc::new(Exponential::new(2.0)));
        assert_eq!(s.mean(), 1.0);
        assert_eq!(s.variance(), 0.25);
        assert_eq!(s.cdf(0.4), 0.0);
        assert!((s.cdf(1.5) - (1.0 - (-2.0f64).exp())).abs() < 1e-14);
    }

    #[test]
    fn samples_at_least_offset() {
        let s = Shifted::new(0.25, Arc::new(Exponential::new(1.0)));
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(s.sample(&mut rng) >= 0.25);
        }
    }

    #[test]
    fn lst_matches_analytic() {
        let s = Shifted::new(0.3, Arc::new(Exponential::new(4.0)));
        let z = Complex64::new(1.0, -2.0);
        let want = (z * (-0.3)).exp() * (Complex64::from_real(4.0) / (z + 4.0));
        assert!((s.lst(z) - want).abs() < 1e-14);
    }
}
