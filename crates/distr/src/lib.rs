//! # cos-distr
//!
//! Probability distributions for the `cosmodel` reproduction of the ICPP'17
//! latency-percentile paper. Every service-time family carries a closed-form
//! Laplace–Stieltjes transform evaluated at complex arguments (the
//! [`Lst`] trait) so the queueing layer can run the
//! Pollaczek–Khinchin machinery, plus sampling so the simulator substrate can
//! draw from the *same* laws the model assumes.
//!
//! * [`degenerate`], [`exponential`], [`gamma`], [`normal`], [`uniform`] —
//!   the paper's four fitting candidates (§IV-A) plus Uniform;
//! * [`lognormal`], [`weibull`], [`pareto`] — workload-side laws (object
//!   sizes) without closed-form LSTs;
//! * [`mixture`] — cache-miss mixtures (`m·disk + (1−m)·δ`) and device
//!   mixtures (Eq. 3);
//! * [`shifted`] — constant offset wrapper;
//! * [`empirical`] — recorded samples, empirical CDF, KS statistic;
//! * [`fit`] — the §IV-A fitting/model-selection pass (Fig. 5).

#![warn(missing_docs)]

pub mod degenerate;
pub mod empirical;
pub mod exponential;
pub mod fit;
pub mod gamma;
pub mod lognormal;
pub mod mixture;
pub mod normal;
pub mod pareto;
pub mod shifted;
pub mod traits;
pub mod uniform;
pub mod weibull;

pub use degenerate::Degenerate;
pub use empirical::Empirical;
pub use exponential::Exponential;
pub use fit::{fit_best, fit_gamma_mle, Family, FitReport, Fitted};
pub use gamma::Gamma;
pub use lognormal::LogNormal;
pub use mixture::Mixture;
pub use normal::Normal;
pub use pareto::Pareto;
pub use shifted::Shifted;
pub use traits::{Distribution, DynService, Lst, ServiceDistribution};
pub use uniform::Uniform;
pub use weibull::Weibull;
