//! Normal distribution (one of the paper's four fitting candidates, §IV-A).
//!
//! Service times are nonnegative, so a Normal fit is only sensible when
//! `σ ≪ μ`; the constructor does not enforce this but [`crate::fit`] penalizes
//! bad fits via the KS statistic, mirroring why the paper's testbed rejected
//! it in favour of Gamma.

use crate::traits::{standard_normal, Distribution, Lst};
use cos_numeric::special::erfc;
use cos_numeric::Complex64;
use rand::RngCore;

/// Normal distribution with mean `μ` and standard deviation `σ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a Normal distribution.
    ///
    /// # Panics
    /// Panics unless `sigma` is finite and positive and `mu` is finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "Normal requires finite mu, got {mu}");
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "Normal requires sigma > 0, got {sigma}"
        );
        Normal { mu, sigma }
    }

    /// Mean parameter `μ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Standard deviation `σ`.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Distribution for Normal {
    fn mean(&self) -> f64 {
        self.mu
    }
    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }
    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * erfc(-z)
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.mu + self.sigma * standard_normal(rng)
    }
}

impl Lst for Normal {
    fn lst(&self, s: Complex64) -> Complex64 {
        // E[e^{-sX}] = exp(−μ s + σ² s² / 2).
        (s * s * (0.5 * self.sigma * self.sigma) - s * self.mu).exp()
    }

    fn lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(s.len(), out.len(), "abscissa/output length mismatch");
        let half_var = 0.5 * self.sigma * self.sigma;
        for (s, o) in s.iter().zip(out.iter_mut()) {
            *o = (*s * *s * half_var - *s * self.mu).exp();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn moments() {
        let n = Normal::new(5.0, 2.0);
        assert_eq!(n.mean(), 5.0);
        assert_eq!(n.variance(), 4.0);
    }

    #[test]
    fn cdf_symmetry() {
        let n = Normal::new(1.0, 0.5);
        assert!((n.cdf(1.0) - 0.5).abs() < 1e-14);
        for &d in &[0.1, 0.5, 1.0] {
            assert!((n.cdf(1.0 + d) + n.cdf(1.0 - d) - 1.0).abs() < 1e-13);
        }
    }

    #[test]
    fn standard_normal_cdf_values() {
        let n = Normal::new(0.0, 1.0);
        assert!((n.cdf(1.96) - 0.975_002_104_851_779_7).abs() < 1e-10);
        assert!((n.cdf(-1.0) - 0.158_655_253_931_457_05).abs() < 1e-10);
    }

    #[test]
    fn pdf_is_cdf_derivative() {
        let n = Normal::new(2.0, 0.7);
        let h = 1e-6;
        for &x in &[0.5, 2.0, 3.5] {
            let deriv = (n.cdf(x + h) - n.cdf(x - h)) / (2.0 * h);
            assert!((deriv - n.pdf(x)).abs() < 1e-6);
        }
    }

    #[test]
    fn sampling_moments() {
        let n = Normal::new(10.0, 3.0);
        let mut rng = SmallRng::seed_from_u64(17);
        let count = 200_000;
        let samples: Vec<f64> = (0..count).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / count as f64;
        assert!((mean - 10.0).abs() < 0.05);
        assert!((var - 9.0).abs() < 0.15);
    }

    #[test]
    fn lst_inversion_recovers_cdf() {
        // A tight normal (σ ≪ μ) as would model a near-constant latency.
        let n = Normal::new(1.0, 0.05);
        let cfg = cos_numeric::InversionConfig::default();
        for &t in &[0.9, 1.0, 1.1] {
            let got = cos_numeric::cdf_from_lst(&|s| n.lst(s), t, &cfg);
            assert!(
                (got - n.cdf(t)).abs() < 1e-4,
                "t={t}: got {got} want {}",
                n.cdf(t)
            );
        }
    }

    #[test]
    #[should_panic]
    fn rejects_zero_sigma() {
        Normal::new(0.0, 0.0);
    }
}
