//! Continuous uniform distribution.

use crate::traits::{unit, Distribution, Lst};
use cos_numeric::Complex64;
use rand::RngCore;

/// Uniform distribution on `[a, b)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    a: f64,
    b: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[a, b)`.
    ///
    /// # Panics
    /// Panics unless `a < b`, both finite, `a >= 0`.
    pub fn new(a: f64, b: f64) -> Self {
        assert!(
            a.is_finite() && b.is_finite() && a < b,
            "Uniform requires a < b, got [{a}, {b})"
        );
        assert!(a >= 0.0, "service-time Uniform requires a >= 0, got {a}");
        Uniform { a, b }
    }

    /// Lower bound.
    pub fn lower(&self) -> f64 {
        self.a
    }

    /// Upper bound.
    pub fn upper(&self) -> f64 {
        self.b
    }
}

impl Distribution for Uniform {
    fn mean(&self) -> f64 {
        0.5 * (self.a + self.b)
    }
    fn variance(&self) -> f64 {
        let w = self.b - self.a;
        w * w / 12.0
    }
    fn pdf(&self, x: f64) -> f64 {
        if x >= self.a && x < self.b {
            1.0 / (self.b - self.a)
        } else {
            0.0
        }
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= self.a {
            0.0
        } else if x >= self.b {
            1.0
        } else {
            (x - self.a) / (self.b - self.a)
        }
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        self.a + (self.b - self.a) * unit(rng)
    }
}

impl Lst for Uniform {
    fn lst(&self, s: Complex64) -> Complex64 {
        // (e^{-as} − e^{-bs}) / (s (b − a)), with the s → 0 limit handled by
        // a series to avoid catastrophic cancellation near the origin.
        let w = self.b - self.a;
        if s.abs() * w < 1e-8 {
            // e^{-as}(1 − s w/2 + (sw)²/6 − ...) ≈ exp to second order
            let mid = self.mean();
            return Complex64::ONE - s * mid + s * s * (self.second_moment() * 0.5);
        }
        ((s * (-self.a)).exp() - (s * (-self.b)).exp()) / (s * w)
    }
    // lst_batch: the default scalar loop is already optimal — both branches
    // of the closed form are cheap and share nothing across abscissae.
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn moments() {
        let u = Uniform::new(1.0, 3.0);
        assert_eq!(u.mean(), 2.0);
        assert!((u.variance() - 1.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn cdf_boundaries() {
        let u = Uniform::new(0.0, 2.0);
        assert_eq!(u.cdf(-1.0), 0.0);
        assert_eq!(u.cdf(0.0), 0.0);
        assert_eq!(u.cdf(1.0), 0.5);
        assert_eq!(u.cdf(2.0), 1.0);
        assert_eq!(u.cdf(5.0), 1.0);
    }

    #[test]
    fn samples_in_range() {
        let u = Uniform::new(0.5, 0.75);
        let mut rng = SmallRng::seed_from_u64(5);
        for _ in 0..10_000 {
            let x = u.sample(&mut rng);
            assert!((0.5..0.75).contains(&x));
        }
    }

    #[test]
    fn lst_at_zero_is_one() {
        let u = Uniform::new(1.0, 2.0);
        let near_zero = u.lst(Complex64::from_real(1e-12));
        assert!((near_zero - Complex64::ONE).abs() < 1e-10);
    }

    #[test]
    fn lst_matches_quadrature() {
        let u = Uniform::new(0.5, 1.5);
        let s = Complex64::from_real(2.0);
        let want =
            cos_numeric::quad::adaptive_simpson(&|x| (-2.0 * x).exp() * u.pdf(x), 0.5, 1.5, 1e-12);
        assert!((u.lst(s).re - want).abs() < 1e-9);
        assert_eq!(u.lst(s).im, 0.0);
    }

    #[test]
    fn lst_inversion_recovers_cdf() {
        let u = Uniform::new(1.0, 2.0);
        let cfg = cos_numeric::InversionConfig::default();
        for &t in &[1.2, 1.5, 1.8] {
            let got = cos_numeric::cdf_from_lst(&|s| u.lst(s), t, &cfg);
            assert!((got - u.cdf(t)).abs() < 1e-3, "t={t} got {got}");
        }
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_bounds() {
        Uniform::new(2.0, 1.0);
    }
}
