//! Log-normal distribution.
//!
//! Used by the workload layer for object sizes (web object sizes are
//! classically heavy-tailed; we match the paper's reported ~32 KB mean for
//! surviving Wikipedia media objects). No closed-form LST exists, so this
//! type implements only [`Distribution`].

use crate::traits::{standard_normal, Distribution};
use cos_numeric::special::erfc;
use rand::RngCore;

/// Log-normal distribution: `ln X ~ Normal(mu, sigma)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal from the parameters of the underlying normal.
    ///
    /// # Panics
    /// Panics unless `sigma > 0` and `mu` is finite.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite(), "LogNormal requires finite mu, got {mu}");
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "LogNormal requires sigma > 0, got {sigma}"
        );
        LogNormal { mu, sigma }
    }

    /// Creates a log-normal with the given mean and median:
    /// `median = e^mu`, `mean = e^{mu + sigma²/2}`.
    ///
    /// # Panics
    /// Panics unless `0 < median < mean`.
    pub fn from_mean_median(mean: f64, median: f64) -> Self {
        assert!(
            median > 0.0 && mean > median,
            "need 0 < median < mean, got mean={mean} median={median}"
        );
        let mu = median.ln();
        let sigma = (2.0 * (mean.ln() - mu)).sqrt();
        LogNormal { mu, sigma }
    }

    /// Location parameter of the underlying normal.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter of the underlying normal.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Median `e^mu`.
    pub fn median(&self) -> f64 {
        self.mu.exp()
    }
}

impl Distribution for LogNormal {
    fn mean(&self) -> f64 {
        (self.mu + 0.5 * self.sigma * self.sigma).exp()
    }
    fn variance(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (s2.exp() - 1.0) * (2.0 * self.mu + s2).exp()
    }
    fn pdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (x * self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        let z = (x.ln() - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * erfc(-z)
    }
    fn sample(&self, rng: &mut dyn RngCore) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn moments_closed_form() {
        let ln = LogNormal::new(0.0, 1.0);
        assert!((ln.mean() - (0.5f64).exp()).abs() < 1e-14);
        let want_var = (1.0f64.exp() - 1.0) * 1.0f64.exp();
        assert!((ln.variance() - want_var).abs() < 1e-12);
    }

    #[test]
    fn from_mean_median_roundtrip() {
        // Wikipedia-like sizes: mean 32 KB, median 8 KB.
        let ln = LogNormal::from_mean_median(32_768.0, 8_192.0);
        assert!((ln.mean() - 32_768.0).abs() < 1e-6);
        assert!((ln.median() - 8_192.0).abs() < 1e-6);
    }

    #[test]
    fn cdf_at_median_is_half() {
        let ln = LogNormal::new(2.0, 0.8);
        assert!((ln.cdf(ln.median()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pdf_is_cdf_derivative() {
        let ln = LogNormal::new(1.0, 0.5);
        let h = 1e-6;
        for &x in &[0.5, 2.0, 5.0] {
            let deriv = (ln.cdf(x + h) - ln.cdf(x - h)) / (2.0 * h);
            assert!((deriv - ln.pdf(x)).abs() < 1e-5, "x={x}");
        }
    }

    #[test]
    fn sampling_mean() {
        let ln = LogNormal::new(1.0, 0.6);
        let mut rng = SmallRng::seed_from_u64(23);
        let n = 400_000;
        let mean = (0..n).map(|_| ln.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean - ln.mean()).abs() / ln.mean() < 0.01,
            "mean {mean} want {}",
            ln.mean()
        );
    }

    #[test]
    fn nonnegative_support() {
        assert_eq!(LogNormal::new(0.0, 1.0).cdf(0.0), 0.0);
        assert_eq!(LogNormal::new(0.0, 1.0).pdf(-1.0), 0.0);
    }
}
