//! The service-time abstraction consumed by queueing formulas.
//!
//! Queueing results (Pollaczek–Khinchin, M/M/1/K sojourn) need only three
//! things from a service-time law: its LST at complex arguments and its first
//! two moments. This is deliberately weaker than
//! [`cos_distr::ServiceDistribution`] — composed laws like the union
//! operation have a closed-form LST and moments but no tractable pdf/cdf.

use cos_numeric::Complex64;
use std::sync::Arc;

/// Minimal service-time interface: LST plus first two moments.
pub trait ServiceTime: Send + Sync {
    /// Laplace–Stieltjes transform `E[e^{−sB}]` at complex `s`.
    fn lst(&self, s: Complex64) -> Complex64;
    /// Mean `E[B]`.
    fn mean(&self) -> f64;
    /// Second raw moment `E[B²]`.
    fn second_moment(&self) -> f64;
    /// Evaluates the LST at every abscissa in `s`, writing into `out` (same
    /// length). Inversion routes whole contours through this; composed laws
    /// override it to hoist work shared across the batch. Overrides must be
    /// bit-identical to the scalar [`ServiceTime::lst`] path.
    fn lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(s.len(), out.len(), "abscissa/output length mismatch");
        for (s, o) in s.iter().zip(out.iter_mut()) {
            *o = self.lst(*s);
        }
    }
}

/// Every full service distribution is usable as a queueing service time.
impl<T> ServiceTime for T
where
    T: cos_distr::ServiceDistribution + Send + Sync + ?Sized,
{
    fn lst(&self, s: Complex64) -> Complex64 {
        cos_distr::Lst::lst(self, s)
    }
    fn mean(&self) -> f64 {
        cos_distr::Distribution::mean(self)
    }
    fn second_moment(&self) -> f64 {
        cos_distr::Distribution::second_moment(self)
    }
    fn lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        cos_distr::Lst::lst_batch(self, s, out)
    }
}

/// Shared handle to a service time.
pub type DynServiceTime = Arc<dyn ServiceTime>;

/// Adapts a `cos_distr` service distribution into a [`DynServiceTime`].
pub fn from_distribution<T>(d: T) -> DynServiceTime
where
    T: cos_distr::ServiceDistribution + Send + Sync + 'static,
{
    Arc::new(d)
}

/// Adapts an already-boxed `cos_distr` distribution handle. (Unsized
/// cross-trait coercion isn't expressible directly, so this wraps the
/// handle in a zero-cost delegating adapter.)
pub fn from_dyn_service(d: cos_distr::DynService) -> DynServiceTime {
    struct Adapter(cos_distr::DynService);
    impl ServiceTime for Adapter {
        fn lst(&self, s: Complex64) -> Complex64 {
            cos_distr::Lst::lst(&*self.0, s)
        }
        fn mean(&self) -> f64 {
            cos_distr::Distribution::mean(&*self.0)
        }
        fn second_moment(&self) -> f64 {
            cos_distr::Distribution::second_moment(&*self.0)
        }
        fn lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
            cos_distr::Lst::lst_batch(&*self.0, s, out)
        }
    }
    Arc::new(Adapter(d))
}

/// A service time given by explicit closures/moments; used when a law is
/// only available in transform space (e.g. the M/M/1/K "disk service time"
/// of §III-B).
pub struct TransformServiceTime {
    lst: Box<dyn Fn(Complex64) -> Complex64 + Send + Sync>,
    mean: f64,
    second_moment: f64,
}

impl TransformServiceTime {
    /// Wraps an LST closure with its first two moments.
    pub fn new(
        lst: impl Fn(Complex64) -> Complex64 + Send + Sync + 'static,
        mean: f64,
        second_moment: f64,
    ) -> Self {
        assert!(
            mean >= 0.0 && second_moment >= 0.0,
            "moments must be nonnegative"
        );
        TransformServiceTime {
            lst: Box::new(lst),
            mean,
            second_moment,
        }
    }
}

impl std::fmt::Debug for TransformServiceTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransformServiceTime")
            .field("mean", &self.mean)
            .field("second_moment", &self.second_moment)
            .finish()
    }
}

impl ServiceTime for TransformServiceTime {
    fn lst(&self, s: Complex64) -> Complex64 {
        (self.lst)(s)
    }
    fn mean(&self) -> f64 {
        self.mean
    }
    fn second_moment(&self) -> f64 {
        self.second_moment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cos_distr::{Exponential, Gamma};

    #[test]
    fn distribution_adapts_to_service_time() {
        let svc = from_distribution(Exponential::new(2.0));
        assert_eq!(svc.mean(), 0.5);
        assert_eq!(svc.second_moment(), 0.5);
        let s = Complex64::from_real(1.0);
        assert!((svc.lst(s).re - 2.0 / 3.0).abs() < 1e-15);
    }

    #[test]
    fn transform_service_time_passthrough() {
        let g = Gamma::new(2.0, 4.0);
        let t = TransformServiceTime::new(
            move |s| cos_distr::Lst::lst(&g, s),
            cos_distr::Distribution::mean(&g),
            cos_distr::Distribution::second_moment(&g),
        );
        assert_eq!(t.mean(), 0.5);
        let s = Complex64::new(0.3, 0.4);
        assert!((t.lst(s) - cos_distr::Lst::lst(&g, s)).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn transform_rejects_negative_moments() {
        TransformServiceTime::new(|_| Complex64::ONE, -1.0, 1.0);
    }
}
