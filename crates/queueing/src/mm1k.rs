//! M/M/1/K queue — the paper's approximation for the shared disk (§III-B).
//!
//! With `N_be` processes per storage device, at most `K = N_be` operations
//! can be outstanding at the disk (each process blocks on its disk
//! operation). The paper models the disk as M/G/1/K and, following
//! J. M. Smith, approximates it with M/M/1/K so the sojourn-time LST has a
//! closed form. An *accepted* operation that finds `j` customers in the
//! system sojourns `Erlang(j+1, v)`, giving
//!
//! `L[S](s) = (v P₀ / (1 − P_K)) (1 − (λ/(v+s))^K) / (v − λ + s)`.

use cos_numeric::laplace::{cdf_from_lst, InversionConfig};
use cos_numeric::Complex64;

/// An M/M/1/K queue (capacity K includes the customer in service).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1k {
    arrival_rate: f64,
    service_rate: f64,
    capacity: usize,
}

impl Mm1k {
    /// Creates an M/M/1/K queue.
    ///
    /// Finite-buffer queues are stable at any utilization, so `λ ≥ v` is
    /// allowed (arrivals beyond capacity are simply blocked).
    ///
    /// # Panics
    /// Panics unless rates are finite/positive and `capacity ≥ 1`.
    pub fn new(arrival_rate: f64, service_rate: f64, capacity: usize) -> Self {
        assert!(
            arrival_rate.is_finite() && arrival_rate > 0.0,
            "arrival rate must be positive, got {arrival_rate}"
        );
        assert!(
            service_rate.is_finite() && service_rate > 0.0,
            "service rate must be positive, got {service_rate}"
        );
        assert!(capacity >= 1, "capacity must be at least 1");
        Mm1k {
            arrival_rate,
            service_rate,
            capacity,
        }
    }

    /// Arrival rate `λ`.
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    /// Service rate `v`.
    pub fn service_rate(&self) -> f64 {
        self.service_rate
    }

    /// System capacity `K`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offered load `u = λ/v`.
    pub fn offered_load(&self) -> f64 {
        self.arrival_rate / self.service_rate
    }

    /// Steady-state probabilities `P_0..P_K`.
    pub fn state_probabilities(&self) -> Vec<f64> {
        let u = self.offered_load();
        let k = self.capacity;
        if (u - 1.0).abs() < 1e-12 {
            return vec![1.0 / (k + 1) as f64; k + 1];
        }
        let norm = (1.0 - u) / (1.0 - u.powi(k as i32 + 1));
        (0..=k).map(|i| norm * u.powi(i as i32)).collect()
    }

    /// Blocking probability `P_K` (operations finding a full buffer).
    pub fn blocking_probability(&self) -> f64 {
        *self.state_probabilities().last().expect("K+1 states")
    }

    /// Mean number in system `N = Σ i P_i`.
    pub fn mean_number(&self) -> f64 {
        self.state_probabilities()
            .iter()
            .enumerate()
            .map(|(i, p)| i as f64 * p)
            .sum()
    }

    /// Effective (accepted) arrival rate `λ (1 − P_K)`.
    pub fn effective_arrival_rate(&self) -> f64 {
        self.arrival_rate * (1.0 - self.blocking_probability())
    }

    /// Mean sojourn time of accepted customers, `N / (λ (1 − P_K))`
    /// (Little's law on the accepted stream).
    pub fn mean_sojourn(&self) -> f64 {
        self.mean_number() / self.effective_arrival_rate()
    }

    /// Second raw moment of the sojourn time of accepted customers.
    ///
    /// A customer accepted in state `j` sojourns `Erlang(j+1, v)` with
    /// `E[T²] = (j+1)(j+2)/v²`.
    pub fn sojourn_second_moment(&self) -> f64 {
        let probs = self.state_probabilities();
        let pk = probs[self.capacity];
        let v2 = self.service_rate * self.service_rate;
        let mut acc = 0.0;
        for (j, &p) in probs.iter().take(self.capacity).enumerate() {
            let stages = (j + 1) as f64;
            acc += p / (1.0 - pk) * stages * (stages + 1.0) / v2;
        }
        acc
    }

    /// LST of the sojourn time of accepted customers.
    ///
    /// Computed as the explicit Erlang mixture, which is numerically robust
    /// for every offered load including `u = 1` where the closed form is
    /// 0/0.
    pub fn sojourn_lst(&self, s: Complex64) -> Complex64 {
        let probs = self.state_probabilities();
        let pk = probs[self.capacity];
        let x = Complex64::from_real(self.service_rate) / (s + self.service_rate);
        let mut acc = Complex64::ZERO;
        let mut x_pow = x; // x^{j+1}
        for &p in probs.iter().take(self.capacity) {
            acc += x_pow * (p / (1.0 - pk));
            x_pow *= x;
        }
        acc
    }

    /// Sojourn-time CDF at `t` via numerical inversion.
    pub fn sojourn_cdf(&self, t: f64, config: &InversionConfig) -> f64 {
        cdf_from_lst(&|s| self.sojourn_lst(s), t, config)
    }

    /// Batch [`Mm1k::sojourn_lst`]: the state probabilities and conditional
    /// acceptance weights `P_j/(1 − P_K)` are computed once for the whole
    /// contour instead of once per abscissa. The per-point Erlang-mixture
    /// recurrence is unchanged, so results are bit-identical to the scalar
    /// path.
    pub fn sojourn_lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(s.len(), out.len(), "abscissa/output length mismatch");
        let probs = self.state_probabilities();
        let pk = probs[self.capacity];
        let weights: Vec<f64> = probs
            .iter()
            .take(self.capacity)
            .map(|&p| p / (1.0 - pk))
            .collect();
        for (s, o) in s.iter().zip(out.iter_mut()) {
            let x = Complex64::from_real(self.service_rate) / (*s + self.service_rate);
            let mut acc = Complex64::ZERO;
            let mut x_pow = x; // x^{j+1}
            for &w in &weights {
                acc += x_pow * w;
                x_pow *= x;
            }
            *o = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cos_numeric::special::gamma_p;

    #[test]
    fn probabilities_sum_to_one() {
        for &(l, v, k) in &[
            (1.0, 2.0, 4usize),
            (5.0, 2.0, 8),
            (2.0, 2.0, 3),
            (0.1, 10.0, 1),
        ] {
            let q = Mm1k::new(l, v, k);
            let total: f64 = q.state_probabilities().iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "λ={l} v={v} K={k}");
        }
    }

    #[test]
    fn capacity_one_is_erlang_loss() {
        // M/M/1/1: P_1 = u/(1+u) (Erlang-B with one server).
        let q = Mm1k::new(3.0, 2.0, 1);
        let u: f64 = 1.5;
        assert!((q.blocking_probability() - u / (1.0 + u)).abs() < 1e-12);
        // Accepted customers sojourn exactly one service: mean 1/v.
        assert!((q.mean_sojourn() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn critical_load_uniform_states() {
        let q = Mm1k::new(2.0, 2.0, 4);
        let probs = q.state_probabilities();
        for p in probs {
            assert!((p - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn large_k_approaches_mm1() {
        // With ρ = 0.5 and K = 60, blocking is ~2^-60 and the mean number
        // approaches ρ/(1−ρ) = 1.
        let q = Mm1k::new(1.0, 2.0, 60);
        assert!(q.blocking_probability() < 1e-15);
        assert!((q.mean_number() - 1.0).abs() < 1e-9);
        assert!((q.mean_sojourn() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sojourn_lst_at_origin_is_one() {
        let q = Mm1k::new(4.0, 2.0, 6);
        let got = q.sojourn_lst(Complex64::from_real(1e-15));
        assert!((got - Complex64::ONE).abs() < 1e-10);
    }

    #[test]
    fn sojourn_mean_matches_lst_derivative() {
        let q = Mm1k::new(3.0, 2.0, 5);
        let h = 1e-6;
        let d = (q.sojourn_lst(Complex64::from_real(h)) - q.sojourn_lst(Complex64::from_real(-h)))
            .re
            / (2.0 * h);
        assert!(
            (-d - q.mean_sojourn()).abs() < 1e-5,
            "deriv {} mean {}",
            -d,
            q.mean_sojourn()
        );
    }

    #[test]
    fn sojourn_cdf_is_erlang_mixture() {
        let q = Mm1k::new(2.0, 4.0, 3);
        let probs = q.state_probabilities();
        let pk = probs[3];
        let cfg = InversionConfig::default();
        for &t in &[0.1, 0.3, 0.8, 2.0] {
            let want: f64 = (0..3)
                .map(|j| probs[j] / (1.0 - pk) * gamma_p((j + 1) as f64, 4.0 * t))
                .sum();
            let got = q.sojourn_cdf(t, &cfg);
            assert!((got - want).abs() < 1e-5, "t={t}: got {got} want {want}");
        }
    }

    #[test]
    fn overload_saturates_throughput() {
        // λ ≫ v: effective rate approaches v, mean number approaches K.
        let q = Mm1k::new(200.0, 2.0, 4);
        assert!((q.effective_arrival_rate() - 2.0) / 2.0 < 0.02);
        assert!(q.mean_number() > 3.9);
    }

    #[test]
    fn second_moment_consistent_with_variance_bound() {
        let q = Mm1k::new(3.0, 2.0, 4);
        let m = q.mean_sojourn();
        let m2 = q.sojourn_second_moment();
        assert!(m2 >= m * m, "E[T²] {m2} must dominate E[T]² {}", m * m);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_capacity() {
        Mm1k::new(1.0, 1.0, 0);
    }
}
