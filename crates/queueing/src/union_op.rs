//! The union operation (§III-B) — the paper's first contribution.
//!
//! The event-driven backend process interleaves operations of different
//! requests: parse, index lookup, metadata read, and chunked data reads
//! (continuation chunk reads of *other* requests re-enter the FCFS queue).
//! The paper packs one parse + one index lookup + one metadata read + one
//! data read + a Poisson(`p`)-distributed number of *extra* data reads into a
//! single "union operation", turning the operation queue into an M/G/1 queue
//! of i.i.d. union operations, where `p = (r_data − r)/r`.
//!
//! In transform space the Poisson mixture collapses:
//!
//! `L[B](s) = L[parse]·L[index]·L[meta]·L[data] · exp(p (L[data](s) − 1))`.

use crate::service::{DynServiceTime, ServiceTime};
use cos_numeric::Complex64;

/// The union operation service-time law.
pub struct UnionOperation {
    parse: DynServiceTime,
    index: DynServiceTime,
    meta: DynServiceTime,
    data: DynServiceTime,
    extra_reads: f64,
}

impl std::fmt::Debug for UnionOperation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UnionOperation")
            .field("parse_mean", &self.parse.mean())
            .field("index_mean", &self.index.mean())
            .field("meta_mean", &self.meta.mean())
            .field("data_mean", &self.data.mean())
            .field("extra_reads", &self.extra_reads)
            .finish()
    }
}

impl UnionOperation {
    /// Builds a union operation from the four (already cache-mixed)
    /// per-operation laws and the mean number of extra data reads
    /// `p = (r_data − r)/r`.
    ///
    /// # Panics
    /// Panics if `extra_reads` is negative or non-finite.
    pub fn new(
        parse: DynServiceTime,
        index: DynServiceTime,
        meta: DynServiceTime,
        data: DynServiceTime,
        extra_reads: f64,
    ) -> Self {
        assert!(
            extra_reads.is_finite() && extra_reads >= 0.0,
            "extra reads per union operation must be >= 0, got {extra_reads}"
        );
        UnionOperation {
            parse,
            index,
            meta,
            data,
            extra_reads,
        }
    }

    /// Mean extra data reads per union operation (`p`).
    pub fn extra_reads(&self) -> f64 {
        self.extra_reads
    }

    /// LST of the *response tail* of a request at the backend: one parse +
    /// index + meta + first data chunk, with **no** extra reads (the
    /// `parse ∗ index ∗ meta ∗ data` factor of Eq. 1).
    pub fn response_lst(&self, s: Complex64) -> Complex64 {
        self.parse.lst(s) * self.index.lst(s) * self.meta.lst(s) * self.data.lst(s)
    }

    /// Mean of the response tail (no extra reads).
    pub fn response_mean(&self) -> f64 {
        self.parse.mean() + self.index.mean() + self.meta.mean() + self.data.mean()
    }

    /// Fills `out` with the partial product `L_parse · L_index · L_meta`
    /// (left-associated, matching the scalar paths) using one batch per
    /// component.
    fn partial_product_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(s.len(), out.len(), "abscissa/output length mismatch");
        let mut tmp = vec![Complex64::ZERO; s.len()];
        self.parse.lst_batch(s, out);
        self.index.lst_batch(s, &mut tmp);
        for (o, t) in out.iter_mut().zip(tmp.iter()) {
            *o *= *t;
        }
        self.meta.lst_batch(s, &mut tmp);
        for (o, t) in out.iter_mut().zip(tmp.iter()) {
            *o *= *t;
        }
    }

    /// Batch [`UnionOperation::response_lst`].
    pub fn response_lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        self.partial_product_batch(s, out);
        let mut ld = vec![Complex64::ZERO; s.len()];
        self.data.lst_batch(s, &mut ld);
        for (o, d) in out.iter_mut().zip(ld.iter()) {
            *o *= *d;
        }
    }

    /// Evaluates both the response-tail LST and the full union-operation
    /// LST with one pass over the components. Both transforms appear in
    /// every device-response abscissa (Eq. 2), and they share the whole
    /// `parse · index · meta · data` product — only the Poisson extra-reads
    /// factor differs. Each output is bit-identical to its scalar
    /// counterpart ([`UnionOperation::response_lst`] /
    /// [`ServiceTime::lst`]).
    pub fn response_and_union_lst_batch(
        &self,
        s: &[Complex64],
        response: &mut [Complex64],
        union: &mut [Complex64],
    ) {
        assert_eq!(s.len(), union.len(), "abscissa/output length mismatch");
        self.partial_product_batch(s, response);
        let mut ld = vec![Complex64::ZERO; s.len()];
        self.data.lst_batch(s, &mut ld);
        for i in 0..s.len() {
            let d = ld[i];
            // response = ((parse·index)·meta)·data — the scalar grouping.
            response[i] *= d;
            // union = response · e^{p (L_data − 1)}; the scalar path groups
            // ((((parse·index)·meta)·data)·exp), which is exactly this.
            union[i] = response[i] * ((d - Complex64::ONE) * self.extra_reads).exp();
        }
    }
}

impl ServiceTime for UnionOperation {
    fn lst(&self, s: Complex64) -> Complex64 {
        // Σ_j Poisson(j; p) · L_parse L_index L_meta L_data^{j+1}
        //   = L_parse L_index L_meta L_data e^{p (L_data − 1)}.
        let ld = self.data.lst(s);
        self.parse.lst(s)
            * self.index.lst(s)
            * self.meta.lst(s)
            * ld
            * ((ld - Complex64::ONE) * self.extra_reads).exp()
    }

    fn lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        self.partial_product_batch(s, out);
        let mut ld = vec![Complex64::ZERO; s.len()];
        self.data.lst_batch(s, &mut ld);
        for (o, d) in out.iter_mut().zip(ld.iter()) {
            *o = *o * *d * ((*d - Complex64::ONE) * self.extra_reads).exp();
        }
    }

    fn mean(&self) -> f64 {
        // B̄ = parse̅ + index̅ + meta̅ + (1 + p)·data̅.
        self.parse.mean()
            + self.index.mean()
            + self.meta.mean()
            + (1.0 + self.extra_reads) * self.data.mean()
    }

    fn second_moment(&self) -> f64 {
        // B = C + S: C = parse + index + meta (independent),
        // S = Σ_{i=1}^{1+J} data_i with J ~ Poisson(p).
        // Var(S) = E[1+J]·Var(D) + Var(1+J)·E[D]²  (compound count variance)
        // with the Poisson-count extras contributing E[D²] per unit rate:
        // Var(S) = (1+p)Var(D) + p·E[D]², E[S] = (1+p)E[D].
        let var = |m2: f64, m: f64| m2 - m * m;
        let c_mean = self.parse.mean() + self.index.mean() + self.meta.mean();
        let c_var = var(self.parse.second_moment(), self.parse.mean())
            + var(self.index.second_moment(), self.index.mean())
            + var(self.meta.second_moment(), self.meta.mean());
        let d_mean = self.data.mean();
        let d_var = var(self.data.second_moment(), d_mean);
        let p = self.extra_reads;
        let s_mean = (1.0 + p) * d_mean;
        let s_var = (1.0 + p) * d_var + p * d_mean * d_mean;
        let total_mean = c_mean + s_mean;
        (c_var + s_var) + total_mean * total_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::from_distribution;
    use cos_distr::{Degenerate, Distribution as _, Exponential, Gamma, Mixture};
    use std::sync::Arc;

    fn deg(v: f64) -> DynServiceTime {
        from_distribution(Degenerate::new(v))
    }

    #[test]
    fn no_extra_reads_reduces_to_convolution() {
        let u = UnionOperation::new(deg(1.0), deg(2.0), deg(3.0), deg(4.0), 0.0);
        assert_eq!(u.mean(), 10.0);
        let s = Complex64::new(0.2, 0.5);
        // Convolution of atoms: e^{-10s}.
        let want = (s * (-10.0)).exp();
        assert!((ServiceTime::lst(&u, s) - want).abs() < 1e-12);
        assert_eq!(u.second_moment(), 100.0);
    }

    #[test]
    fn mean_matches_paper_formula() {
        // B̄ = parse̅ + index̅ + meta̅ + (1+p)·data̅ (paper, §III-B).
        let parse = deg(0.0001);
        let index = from_distribution(Gamma::new(2.0, 160.0)); // 12.5 ms
        let meta = from_distribution(Gamma::new(2.0, 250.0)); // 8 ms
        let data = from_distribution(Gamma::new(2.0, 140.0)); // ~14.3 ms
        let p = 0.7;
        let u = UnionOperation::new(parse.clone(), index.clone(), meta.clone(), data.clone(), p);
        let want = parse.mean() + index.mean() + meta.mean() + (1.0 + p) * data.mean();
        assert!((ServiceTime::mean(&u) - want).abs() < 1e-12);
    }

    #[test]
    fn lst_matches_explicit_poisson_sum() {
        // Check the exp() collapse against the paper's explicit series
        // Σ_j p^j e^{-p}/j! (parse ∗ index ∗ meta ∗ data^{j+1}).
        let parse = deg(0.001);
        let index = from_distribution(Exponential::new(100.0));
        let meta = from_distribution(Exponential::new(200.0));
        let data = from_distribution(Exponential::new(80.0));
        let p = 1.3;
        let u = UnionOperation::new(parse.clone(), index.clone(), meta.clone(), data.clone(), p);
        let s = Complex64::new(5.0, 40.0);
        let mut series = Complex64::ZERO;
        let mut pois = (-p).exp(); // p^0 e^{-p} / 0!
        for j in 0..80 {
            series += parse.lst(s) * index.lst(s) * meta.lst(s) * data.lst(s).powi(j + 1) * pois;
            pois *= p / (j as f64 + 1.0);
        }
        assert!((ServiceTime::lst(&u, s) - series).abs() < 1e-12);
    }

    #[test]
    fn second_moment_matches_monte_carlo() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let index = Gamma::new(2.0, 160.0);
        let meta = Gamma::new(1.5, 150.0);
        let data = Gamma::new(2.5, 180.0);
        let p = 0.9;
        let u = UnionOperation::new(
            deg(0.0005),
            from_distribution(index),
            from_distribution(meta),
            from_distribution(data),
            p,
        );
        let mut rng = SmallRng::seed_from_u64(71);
        let n = 300_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            // Poisson(p) by inversion (p is small).
            let mut j = 0u32;
            let mut acc = (-p).exp();
            let mut cum = acc;
            let cap: f64 = rng.gen();
            while cap > cum {
                j += 1;
                acc *= p / j as f64;
                cum += acc;
            }
            let mut b = 0.0005 + index.sample(&mut rng) + meta.sample(&mut rng);
            for _ in 0..=j {
                b += data.sample(&mut rng);
            }
            sum += b;
            sum2 += b * b;
        }
        let mc_mean = sum / n as f64;
        let mc_m2 = sum2 / n as f64;
        assert!((mc_mean - ServiceTime::mean(&u)).abs() / ServiceTime::mean(&u) < 0.01);
        assert!(
            (mc_m2 - u.second_moment()).abs() / u.second_moment() < 0.02,
            "mc {mc_m2} model {}",
            u.second_moment()
        );
    }

    #[test]
    fn cache_mixed_components_zero_out_at_full_hit() {
        // ODOPR-style: all index/meta hits (miss = 0) leave only parse+data.
        let disk = Arc::new(Gamma::new(2.0, 100.0));
        let index: DynServiceTime = Arc::new(Mixture::cache_miss(0.0, disk.clone()));
        let meta: DynServiceTime = Arc::new(Mixture::cache_miss(0.0, disk.clone()));
        let data: DynServiceTime = Arc::new(Mixture::cache_miss(1.0, disk.clone()));
        let u = UnionOperation::new(deg(0.001), index, meta, data, 0.0);
        let disk_mean = cos_distr::Distribution::mean(&*disk);
        assert!((ServiceTime::mean(&u) - (0.001 + disk_mean)).abs() < 1e-12);
    }

    #[test]
    fn response_lst_excludes_extra_reads() {
        let data = from_distribution(Exponential::new(50.0));
        let u = UnionOperation::new(deg(0.0), deg(0.0), deg(0.0), data.clone(), 2.0);
        let s = Complex64::from_real(10.0);
        // Response tail has exactly one data read.
        assert!((u.response_lst(s) - data.lst(s)).abs() < 1e-14);
        assert!(u.response_mean() < ServiceTime::mean(&u));
    }

    #[test]
    #[should_panic]
    fn rejects_negative_extra_reads() {
        UnionOperation::new(deg(0.0), deg(0.0), deg(0.0), deg(1.0), -0.1);
    }
}
