//! M/D/1 closed forms — deterministic service.
//!
//! Request parsing in the paper's testbed is "almost constant", so the
//! frontend queue is effectively M/D/1; these closed forms pin the generic
//! M/G/1 machinery from a second angle (the M/M/1 module pins the
//! high-variability end, this pins the zero-variability end).

/// An M/D/1 queue (`λ·b < 1`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Md1 {
    arrival_rate: f64,
    service_time: f64,
}

impl Md1 {
    /// Creates a stable M/D/1 queue.
    ///
    /// # Panics
    /// Panics unless rates are positive/finite and `ρ = λb < 1`.
    pub fn new(arrival_rate: f64, service_time: f64) -> Self {
        assert!(
            arrival_rate.is_finite() && arrival_rate > 0.0,
            "λ must be positive"
        );
        assert!(
            service_time.is_finite() && service_time > 0.0,
            "b must be positive"
        );
        assert!(arrival_rate * service_time < 1.0, "M/D/1 requires ρ < 1");
        Md1 {
            arrival_rate,
            service_time,
        }
    }

    /// Utilization `ρ = λ b`.
    pub fn utilization(&self) -> f64 {
        self.arrival_rate * self.service_time
    }

    /// Mean waiting time `ρ b / (2 (1 − ρ))` (half the M/M/1 value).
    pub fn mean_waiting(&self) -> f64 {
        let rho = self.utilization();
        rho * self.service_time / (2.0 * (1.0 - rho))
    }

    /// Mean sojourn time.
    pub fn mean_sojourn(&self) -> f64 {
        self.mean_waiting() + self.service_time
    }

    /// Exact waiting-time CDF (Erlang's classic alternating series):
    /// `P(W ≤ t) = (1 − ρ) Σ_{k=0}^{⌊t/b⌋} [λ(kb − t)]^k e^{−λ(kb−t)} / k!`.
    pub fn waiting_cdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 0.0;
        }
        let rho = self.utilization();
        let b = self.service_time;
        let lambda = self.arrival_rate;
        let kmax = (t / b).floor() as u64;
        let mut sum = 0.0;
        for k in 0..=kmax {
            let x = lambda * (k as f64 * b - t); // ≤ 0
                                                 // x^k e^{-x} / k! computed in logs for stability at large k.
            let term = if k == 0 {
                (-x).exp()
            } else {
                let ln_mag = (k as f64) * x.abs().ln() - x - cos_numeric::special::ln_factorial(k);
                let sign = if k % 2 == 0 { 1.0 } else { -1.0 };
                sign * ln_mag.exp()
            };
            sum += term;
        }
        ((1.0 - rho) * sum).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::from_distribution;
    use crate::Mg1;
    use cos_distr::Degenerate;
    use cos_numeric::InversionConfig;

    #[test]
    fn mean_is_half_of_mm1() {
        let q = Md1::new(1.0, 0.5);
        // M/M/1 with same ρ: W̄ = ρb/(1−ρ) = 0.5; M/D/1 halves it.
        assert!((q.mean_waiting() - 0.25).abs() < 1e-12);
        assert!((q.mean_sojourn() - 0.75).abs() < 1e-12);
        assert_eq!(q.utilization(), 0.5);
    }

    #[test]
    fn cdf_has_atom_and_monotone() {
        let q = Md1::new(1.2, 0.5);
        assert!(
            (q.waiting_cdf(0.0) - (1.0 - 0.6)).abs() < 1e-12,
            "atom = 1 − ρ"
        );
        let mut prev = 0.0;
        for i in 0..40 {
            let t = i as f64 * 0.1;
            let c = q.waiting_cdf(t);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-9, "t={t}");
            prev = c;
        }
        assert!(q.waiting_cdf(10.0) > 0.999);
    }

    #[test]
    fn matches_pk_transform_inversion() {
        // The generic M/G/1 machinery with a Degenerate service must agree
        // with Erlang's exact series.
        let lambda = 1.5;
        let b = 0.4;
        let exact = Md1::new(lambda, b);
        let generic = Mg1::new(lambda, from_distribution(Degenerate::new(b))).unwrap();
        let cfg = InversionConfig::default();
        for &t in &[0.1, 0.3, 0.6, 1.0, 2.0] {
            let want = exact.waiting_cdf(t);
            let got = generic.waiting_cdf(t, &cfg);
            assert!(
                (got - want).abs() < 5e-4,
                "t={t}: inversion {got} vs series {want}"
            );
        }
        assert!((generic.mean_waiting() - exact.mean_waiting()).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn rejects_saturation() {
        Md1::new(2.0, 0.5);
    }
}
