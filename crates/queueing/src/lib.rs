//! # cos-queueing
//!
//! Queueing-theory building blocks for the ICPP'17 latency-percentile model:
//!
//! * [`service`] — the minimal service-time interface (LST + two moments)
//!   that composed laws like the union operation can satisfy;
//! * [`mg1`] — M/G/1 via the Pollaczek–Khinchin transform (the backend
//!   request-processing queue and the frontend parse queue);
//! * [`mm1k`] — M/M/1/K (the paper's approximation of the shared disk when
//!   `N_be > 1`);
//! * [`mm1`] / [`md1`] — M/M/1 and M/D/1 closed forms for validation
//!   (high- and zero-variability ends of the service spectrum);
//! * [`union_op`] — the union operation (§III-B), packing parse / index
//!   lookup / metadata read / chunked data reads into one M/G/1-friendly
//!   service unit;
//! * [`fork_join`] — k-of-n order-statistics primitives for erasure-coded
//!   reads (Poisson-binomial combine + the split-merge hypoexponential).

#![warn(missing_docs)]

pub mod fork_join;
pub mod md1;
pub mod mg1;
pub mod mm1;
pub mod mm1k;
pub mod service;
pub mod union_op;

pub use fork_join::{k_of_n_tail, split_merge, KOfNExponential};
pub use md1::Md1;
pub use mg1::{Mg1, QueueError};
pub use mm1::Mm1;
pub use mm1k::Mm1k;
pub use service::{
    from_distribution, from_dyn_service, DynServiceTime, ServiceTime, TransformServiceTime,
};
pub use union_op::UnionOperation;
