//! M/M/1 closed forms, used to pin the generic M/G/1 machinery in tests and
//! in the inversion-algorithm ablation (A4): every quantity here has an
//! elementary formula, so any disagreement is a bug in the generic path.

/// An M/M/1 queue (`λ < μ`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mm1 {
    arrival_rate: f64,
    service_rate: f64,
}

impl Mm1 {
    /// Creates a stable M/M/1 queue.
    ///
    /// # Panics
    /// Panics unless `0 < λ < μ` and both are finite.
    pub fn new(arrival_rate: f64, service_rate: f64) -> Self {
        assert!(
            arrival_rate.is_finite() && arrival_rate > 0.0,
            "λ must be positive"
        );
        assert!(
            service_rate.is_finite() && service_rate > 0.0,
            "μ must be positive"
        );
        assert!(
            arrival_rate < service_rate,
            "M/M/1 requires λ < μ for stability"
        );
        Mm1 {
            arrival_rate,
            service_rate,
        }
    }

    /// Utilization `ρ = λ/μ`.
    pub fn utilization(&self) -> f64 {
        self.arrival_rate / self.service_rate
    }

    /// Mean number in system `ρ/(1−ρ)`.
    pub fn mean_number(&self) -> f64 {
        let rho = self.utilization();
        rho / (1.0 - rho)
    }

    /// Mean waiting time `ρ/(μ−λ)`.
    pub fn mean_waiting(&self) -> f64 {
        self.utilization() / (self.service_rate - self.arrival_rate)
    }

    /// Mean sojourn time `1/(μ−λ)`.
    pub fn mean_sojourn(&self) -> f64 {
        1.0 / (self.service_rate - self.arrival_rate)
    }

    /// Waiting-time CDF `1 − ρ e^{−(μ−λ)t}`.
    pub fn waiting_cdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            0.0
        } else {
            1.0 - self.utilization() * (-(self.service_rate - self.arrival_rate) * t).exp()
        }
    }

    /// Sojourn-time CDF `1 − e^{−(μ−λ)t}`.
    pub fn sojourn_cdf(&self, t: f64) -> f64 {
        if t <= 0.0 {
            0.0
        } else {
            1.0 - (-(self.service_rate - self.arrival_rate) * t).exp()
        }
    }

    /// `p`-quantile of the sojourn time.
    pub fn sojourn_quantile(&self, p: f64) -> f64 {
        assert!((0.0..1.0).contains(&p), "p must be in [0,1), got {p}");
        -(1.0 - p).ln() / (self.service_rate - self.arrival_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_textbook_values() {
        let q = Mm1::new(2.0, 4.0);
        assert_eq!(q.utilization(), 0.5);
        assert_eq!(q.mean_number(), 1.0);
        assert_eq!(q.mean_sojourn(), 0.5);
        assert_eq!(q.mean_waiting(), 0.25);
    }

    #[test]
    fn littles_law_consistency() {
        let q = Mm1::new(3.0, 5.0);
        assert!((q.mean_number() - q.arrival_rate * q.mean_sojourn()).abs() < 1e-12);
    }

    #[test]
    fn waiting_cdf_atom_at_zero() {
        let q = Mm1::new(1.0, 4.0);
        assert_eq!(q.waiting_cdf(0.0), 1.0 - 0.25);
        assert_eq!(q.waiting_cdf(-1.0), 0.0);
    }

    #[test]
    fn quantile_roundtrip() {
        let q = Mm1::new(2.0, 6.0);
        for &p in &[0.5, 0.9, 0.95, 0.99] {
            let t = q.sojourn_quantile(p);
            assert!((q.sojourn_cdf(t) - p).abs() < 1e-12);
        }
    }

    #[test]
    #[should_panic]
    fn rejects_unstable() {
        Mm1::new(5.0, 5.0);
    }
}
