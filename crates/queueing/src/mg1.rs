//! M/G/1 queue via the Pollaczek–Khinchin transform (§III-B of the paper).
//!
//! The backend request-processing queue, once operations are packed into
//! union operations, is an M/G/1 queue: Poisson arrivals at rate `r`,
//! generally distributed (union-operation) service times, one server (the
//! event-driven process), FCFS discipline. The waiting-time LST is
//!
//! `L[W](s) = (1 − ρ) s / (s − r (1 − L[B](s)))`
//!
//! which is the paper's `(1 − B̄ r) s / (r L[B](s) + s − r)` rearranged.

use crate::service::DynServiceTime;
use cos_numeric::laplace::{cdf_from_lst, InversionConfig};
use cos_numeric::Complex64;

/// Errors constructing queueing models.
#[derive(Debug, Clone, PartialEq)]
pub enum QueueError {
    /// Arrival rate must be positive and finite.
    InvalidArrivalRate(f64),
    /// Utilization `ρ = λ E[B]` is ≥ 1: no steady state exists.
    Unstable {
        /// The offending utilization.
        utilization: f64,
    },
}

impl std::fmt::Display for QueueError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueError::InvalidArrivalRate(r) => write!(f, "invalid arrival rate {r}"),
            QueueError::Unstable { utilization } => {
                write!(f, "queue is unstable (utilization {utilization} >= 1)")
            }
        }
    }
}

impl std::error::Error for QueueError {}

/// An M/G/1 queue.
///
/// The service law's first two moments (and hence the utilization) are
/// computed once at construction — composed laws like the cache-mixed
/// M/M/1/K sojourn pay a traversal per moment query, and the transform hot
/// path asks for `ρ` at every abscissa.
#[derive(Clone)]
pub struct Mg1 {
    arrival_rate: f64,
    service: DynServiceTime,
    service_mean: f64,
    service_second_moment: f64,
    utilization: f64,
}

impl std::fmt::Debug for Mg1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mg1")
            .field("arrival_rate", &self.arrival_rate)
            .field("service_mean", &self.service_mean)
            .field("utilization", &self.utilization)
            .finish()
    }
}

impl Mg1 {
    /// Creates a **stable** M/G/1 queue; rejects `ρ ≥ 1`.
    pub fn new(arrival_rate: f64, service: DynServiceTime) -> Result<Self, QueueError> {
        if !(arrival_rate.is_finite() && arrival_rate > 0.0) {
            return Err(QueueError::InvalidArrivalRate(arrival_rate));
        }
        let service_mean = service.mean();
        let service_second_moment = service.second_moment();
        let utilization = arrival_rate * service_mean;
        if utilization >= 1.0 {
            return Err(QueueError::Unstable { utilization });
        }
        Ok(Mg1 {
            arrival_rate,
            service,
            service_mean,
            service_second_moment,
            utilization,
        })
    }

    /// Arrival rate `λ`.
    pub fn arrival_rate(&self) -> f64 {
        self.arrival_rate
    }

    /// The service time law.
    pub fn service(&self) -> &DynServiceTime {
        &self.service
    }

    /// Utilization `ρ = λ E[B]`.
    pub fn utilization(&self) -> f64 {
        self.utilization
    }

    /// Mean waiting time (Pollaczek–Khinchin mean formula):
    /// `W̄ = λ E[B²] / (2 (1 − ρ))`.
    pub fn mean_waiting(&self) -> f64 {
        self.arrival_rate * self.service_second_moment / (2.0 * (1.0 - self.utilization))
    }

    /// Mean sojourn (response) time `W̄ + E[B]`.
    pub fn mean_sojourn(&self) -> f64 {
        self.mean_waiting() + self.service_mean
    }

    /// P–K waiting-time transform given an already-evaluated service LST
    /// value `lb = L_B(s)`. Lets callers that have the service transform in
    /// hand (fused composite batches) avoid re-evaluating it; must be fed
    /// exactly `self.service().lst(s)` for the result to equal
    /// [`Mg1::waiting_lst`].
    #[inline]
    pub fn waiting_lst_given_service(&self, s: Complex64, lb: Complex64) -> Complex64 {
        // (1 − ρ) s / (s − λ(1 − L_B(s))); the numerator and denominator both
        // vanish linearly as s → 0, giving the proper limit 1.
        let denom = s - self.arrival_rate * (Complex64::ONE - lb);
        if denom.abs() < 1e-300 {
            return Complex64::ONE;
        }
        s * (1.0 - self.utilization) / denom
    }

    /// LST of the waiting-time distribution (P–K transform).
    pub fn waiting_lst(&self, s: Complex64) -> Complex64 {
        self.waiting_lst_given_service(s, self.service.lst(s))
    }

    /// LST of the sojourn-time distribution `L[W](s) · L[B](s)`.
    pub fn sojourn_lst(&self, s: Complex64) -> Complex64 {
        self.waiting_lst(s) * self.service.lst(s)
    }

    /// Batch [`Mg1::waiting_lst`]: one service-LST batch, then the P–K
    /// transform per point. Bit-identical to the scalar path.
    pub fn waiting_lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        self.service.lst_batch(s, out);
        for (s, o) in s.iter().zip(out.iter_mut()) {
            *o = self.waiting_lst_given_service(*s, *o);
        }
    }

    /// Batch [`Mg1::sojourn_lst`]: evaluates the service LST **once** per
    /// abscissa (the scalar path evaluates it twice — once inside the
    /// waiting transform and once for the convolution factor) and reuses
    /// the value for both factors. Bit-identical because the service LST is
    /// deterministic in `s`.
    pub fn sojourn_lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        self.service.lst_batch(s, out);
        for (s, o) in s.iter().zip(out.iter_mut()) {
            let lb = *o;
            *o = self.waiting_lst_given_service(*s, lb) * lb;
        }
    }

    /// Waiting-time CDF at `t` via numerical inversion.
    pub fn waiting_cdf(&self, t: f64, config: &InversionConfig) -> f64 {
        cdf_from_lst(&|s| self.waiting_lst(s), t, config)
    }

    /// Sojourn-time CDF at `t` via numerical inversion.
    pub fn sojourn_cdf(&self, t: f64, config: &InversionConfig) -> f64 {
        cdf_from_lst(&|s| self.sojourn_lst(s), t, config)
    }

    /// Probability the server is idle when a Poisson arrival comes (PASTA):
    /// also the atom of the waiting-time law at 0.
    pub fn idle_probability(&self) -> f64 {
        1.0 - self.utilization()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::from_distribution;
    use cos_distr::{Degenerate, Exponential};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn mm1(lambda: f64, mu: f64) -> Mg1 {
        Mg1::new(lambda, from_distribution(Exponential::new(mu))).unwrap()
    }

    #[test]
    fn rejects_unstable() {
        let err = Mg1::new(3.0, from_distribution(Exponential::new(2.0))).unwrap_err();
        assert!(matches!(err, QueueError::Unstable { .. }));
        assert!(Mg1::new(f64::NAN, from_distribution(Exponential::new(2.0))).is_err());
    }

    #[test]
    fn mm1_mean_waiting_closed_form() {
        // M/M/1: W̄ = ρ/(μ − λ).
        let q = mm1(1.0, 2.0);
        let want = 0.5 / (2.0 - 1.0);
        assert!((q.mean_waiting() - want).abs() < 1e-12);
        assert!((q.mean_sojourn() - (want + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn md1_mean_waiting_closed_form() {
        // M/D/1: W̄ = ρ b / (2(1 − ρ)).
        let b = 0.4;
        let lambda = 1.5;
        let q = Mg1::new(lambda, from_distribution(Degenerate::new(b))).unwrap();
        let rho = lambda * b;
        let want = rho * b / (2.0 * (1.0 - rho));
        assert!((q.mean_waiting() - want).abs() < 1e-12);
    }

    #[test]
    fn mm1_waiting_cdf_closed_form() {
        // M/M/1 waiting CDF: W(t) = 1 − ρ e^{−(μ−λ)t}.
        let q = mm1(1.0, 2.0);
        let cfg = InversionConfig::default();
        for &t in &[0.1, 0.5, 1.0, 2.0, 5.0] {
            let got = q.waiting_cdf(t, &cfg);
            let want = 1.0 - 0.5 * (-(2.0 - 1.0) * t).exp();
            assert!((got - want).abs() < 1e-5, "t={t}: got {got} want {want}");
        }
    }

    #[test]
    fn mm1_sojourn_is_exponential() {
        // M/M/1 sojourn ~ Exp(μ − λ).
        let q = mm1(2.0, 5.0);
        let cfg = InversionConfig::default();
        for &t in &[0.05, 0.2, 0.5, 1.0] {
            let got = q.sojourn_cdf(t, &cfg);
            let want = 1.0 - (-(5.0 - 2.0) * t).exp();
            assert!((got - want).abs() < 1e-5, "t={t}: got {got} want {want}");
        }
    }

    #[test]
    fn waiting_lst_is_one_at_origin() {
        // Not too small: 1 − L_B(s) loses ~eps/|s·b| relative digits, so
        // s = 1e-8 balances "near origin" against cancellation.
        let q = mm1(1.0, 3.0);
        let near = q.waiting_lst(Complex64::from_real(1e-8));
        assert!((near - Complex64::ONE).abs() < 1e-6, "got {near}");
    }

    #[test]
    fn idle_probability_matches_atom() {
        // CDF of W just above 0 equals P(W = 0) = 1 − ρ.
        let q = mm1(1.0, 2.0);
        let cfg = InversionConfig::default();
        let got = q.waiting_cdf(1e-4, &cfg);
        assert!((got - q.idle_probability()).abs() < 0.01, "got {got}");
    }

    /// Lindley-recursion simulation of an M/G/1 queue: returns sampled
    /// waiting times.
    fn simulate_waiting<F: FnMut(&mut SmallRng) -> f64>(
        lambda: f64,
        mut service: F,
        n: usize,
        seed: u64,
    ) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut w = 0.0f64;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(w);
            let b = service(&mut rng);
            let a = -(1.0 - rng.gen::<f64>()).ln() / lambda;
            w = (w + b - a).max(0.0);
        }
        out
    }

    #[test]
    fn pk_transform_matches_simulation_gamma_service() {
        use cos_distr::{Distribution as _, Gamma};
        let lambda = 20.0;
        let g = Gamma::new(2.0, 80.0); // mean 25 ms → ρ = 0.5
        let q = Mg1::new(lambda, from_distribution(g)).unwrap();
        let waits = simulate_waiting(lambda, |rng| g.sample(rng), 400_000, 99);
        let cfg = InversionConfig::default();
        // Compare CDF at several quantile-ish points.
        for &t in &[0.01, 0.025, 0.05, 0.1] {
            let sim = waits.iter().filter(|&&w| w <= t).count() as f64 / waits.len() as f64;
            let model = q.waiting_cdf(t, &cfg);
            assert!(
                (sim - model).abs() < 0.01,
                "t={t}: sim {sim} vs model {model}"
            );
        }
        // Mean also agrees.
        let sim_mean = waits.iter().sum::<f64>() / waits.len() as f64;
        assert!((sim_mean - q.mean_waiting()).abs() / q.mean_waiting() < 0.05);
    }

    #[test]
    fn high_load_tail_is_heavier() {
        let lo = mm1(0.5, 2.0);
        let hi = mm1(1.8, 2.0);
        let cfg = InversionConfig::default();
        let t = 1.0;
        assert!(lo.waiting_cdf(t, &cfg) > hi.waiting_cdf(t, &cfg));
    }
}
