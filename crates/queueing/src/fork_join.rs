//! Fork-join k-of-n primitives for erasure-coded reads.
//!
//! An (n,k) coded read forks into `n` chunk sub-requests and completes when
//! the k-th finishes. Exact fork-join queueing has no closed form for
//! `n > 2`, so the coded-read model (see `cos-model::coded`) works with two
//! tractable pieces built here:
//!
//! * [`k_of_n_tail`] — the order-statistics combine: given each branch's
//!   marginal completion probability by time `t`, the probability that at
//!   least `k` branches have completed **under independence**, computed as
//!   a Poisson-binomial tail. This is the MDS-queue-style approximation:
//!   the dependence between branches is absorbed into the *marginals*
//!   (each branch's arrival rate already includes the redundant load), and
//!   the combine treats them as independent.
//! * [`KOfNExponential`] — the k-th order statistic of `n` i.i.d.
//!   exponentials as a service-time law (a hypoexponential with stage
//!   rates `nμ, (n−1)μ, …, (n−k+1)μ`), which turns the classic
//!   **split-merge** system — all `n` servers seized per job until the
//!   k-th completion — into an ordinary M/G/1 via [`split_merge`]. The
//!   split-merge system blocks strictly more than a real fork-join
//!   cluster, making its sojourn CDF a pessimistic anchor.

use crate::mg1::{Mg1, QueueError};
use crate::service::ServiceTime;
use cos_numeric::Complex64;
use std::sync::Arc;

/// Probability that at least `k` of the branches complete, given each
/// branch's marginal completion probability, assuming independence
/// (Poisson-binomial tail).
///
/// The DP runs over branches in slice order and accumulates the success
/// count distribution in `O(n²)`; both loops are deterministic, so the
/// result is bit-stable for a given input order. Probabilities are clamped
/// to `[0, 1]` (inversion noise can leave them a hair outside).
///
/// `k = 0` returns 1; `k > probs.len()` returns 0.
pub fn k_of_n_tail(probs: &[f64], k: usize) -> f64 {
    if k == 0 {
        return 1.0;
    }
    if k > probs.len() {
        return 0.0;
    }
    // count[j] = P[exactly j of the branches seen so far completed].
    let mut count = vec![0.0f64; probs.len() + 1];
    count[0] = 1.0;
    for (i, &p) in probs.iter().enumerate() {
        let p = p.clamp(0.0, 1.0);
        // Walk j downward so count[j - 1] is still the previous round.
        for j in (1..=i + 1).rev() {
            count[j] = count[j] * (1.0 - p) + count[j - 1] * p;
        }
        count[0] *= 1.0 - p;
    }
    let mut tail = 0.0;
    for &c in &count[k..] {
        tail += c;
    }
    tail.clamp(0.0, 1.0)
}

/// The k-th order statistic of `n` i.i.d. `Exp(rate)` variables as a
/// service-time law: a hypoexponential with stages `j·rate` for
/// `j = n, n−1, …, n−k+1` (the j-th stage is the gap while `j` branches
/// are still running).
///
/// `LST = Π_{j=n−k+1}^{n} j·rate / (s + j·rate)`,
/// `mean = (1/rate) Σ 1/j`, `var = (1/rate²) Σ 1/j²` over the same range.
#[derive(Debug, Clone, Copy)]
pub struct KOfNExponential {
    n: usize,
    k: usize,
    rate: f64,
    mean: f64,
    second_moment: f64,
}

impl KOfNExponential {
    /// Builds the k-of-n order-statistic law.
    ///
    /// # Panics
    /// Panics unless `1 ≤ k ≤ n` and `rate > 0` (finite).
    pub fn new(n: usize, k: usize, rate: f64) -> Self {
        assert!(k >= 1 && k <= n, "need 1 <= k <= n, got k={k}, n={n}");
        assert!(
            rate.is_finite() && rate > 0.0,
            "branch rate must be positive, got {rate}"
        );
        let mut mean = 0.0;
        let mut var = 0.0;
        for j in (n - k + 1)..=n {
            let stage = 1.0 / (j as f64 * rate);
            mean += stage;
            var += stage * stage;
        }
        KOfNExponential {
            n,
            k,
            rate,
            mean,
            second_moment: var + mean * mean,
        }
    }

    /// Stripe width `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Completions needed `k`.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl ServiceTime for KOfNExponential {
    fn lst(&self, s: Complex64) -> Complex64 {
        // Left-associated product over ascending stage index — the batch
        // path below replays exactly this order per abscissa.
        let mut acc = Complex64::ONE;
        for j in (self.n - self.k + 1)..=self.n {
            let jr = j as f64 * self.rate;
            acc *= Complex64::from_real(jr) / (s + jr);
        }
        acc
    }

    fn mean(&self) -> f64 {
        self.mean
    }

    fn second_moment(&self) -> f64 {
        self.second_moment
    }

    /// Stage-outer, point-inner accumulation: every output element sees the
    /// same left-associated multiplication sequence as the scalar fold, so
    /// the batch is bit-identical while touching each stage's constants
    /// once.
    fn lst_batch(&self, s: &[Complex64], out: &mut [Complex64]) {
        assert_eq!(s.len(), out.len(), "abscissa/output length mismatch");
        out.fill(Complex64::ONE);
        for j in (self.n - self.k + 1)..=self.n {
            let jr = j as f64 * self.rate;
            for (s, o) in s.iter().zip(out.iter_mut()) {
                *o *= Complex64::from_real(jr) / (*s + jr);
            }
        }
    }
}

/// The split-merge M/G/1 for an (n,k) coded read: logical reads arrive at
/// `arrival_rate`, each seizing all `n` branches until the k-th completes,
/// with per-branch service approximated as `Exp(1/branch_mean)`.
///
/// Because split-merge admits **no** overlap between consecutive jobs while
/// a real fork-join cluster pipelines freely, its waiting time dominates
/// the real system's — this queue anchors the pessimistic side of the
/// coded-read bounds. Fails with [`QueueError::Unstable`] when even the
/// blocking approximation has no steady state.
pub fn split_merge(
    arrival_rate: f64,
    branch_mean: f64,
    n: usize,
    k: usize,
) -> Result<Mg1, QueueError> {
    assert!(
        branch_mean.is_finite() && branch_mean > 0.0,
        "branch mean must be positive, got {branch_mean}"
    );
    let service = KOfNExponential::new(n, k, 1.0 / branch_mean);
    Mg1::new(arrival_rate, Arc::new(service))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::from_distribution;
    use crate::union_op::UnionOperation;
    use cos_distr::{Degenerate, Exponential};
    use cos_numeric::{cdf_from_lst, InversionConfig};

    #[test]
    fn tail_edge_cases() {
        let p = [0.3, 0.7, 0.5];
        assert_eq!(k_of_n_tail(&p, 0), 1.0);
        assert_eq!(k_of_n_tail(&p, 4), 0.0);
        assert_eq!(k_of_n_tail(&[], 0), 1.0);
        assert_eq!(k_of_n_tail(&[], 1), 0.0);
    }

    #[test]
    fn tail_k1_is_union_and_kn_is_max_order_statistic() {
        let p = [0.2, 0.55, 0.9, 0.4];
        // k = 1: P[min ≤ t] = 1 − Π(1 − p_i).
        let union: f64 = 1.0 - p.iter().map(|q| 1.0 - q).product::<f64>();
        assert!((k_of_n_tail(&p, 1) - union).abs() < 1e-14);
        // k = n: P[max ≤ t] = Π p_i.
        let max_os: f64 = p.iter().product();
        assert!((k_of_n_tail(&p, 4) - max_os).abs() < 1e-14);
    }

    #[test]
    fn tail_is_monotone_in_k_and_in_probs() {
        let p = [0.3, 0.6, 0.8, 0.45, 0.7];
        for k in 1..=p.len() {
            assert!(k_of_n_tail(&p, k) <= k_of_n_tail(&p, k - 1) + 1e-15);
        }
        let mut better = p;
        better[2] = 0.95;
        for k in 1..=p.len() {
            assert!(
                k_of_n_tail(&better, k) >= k_of_n_tail(&p, k) - 1e-15,
                "k={k}"
            );
        }
    }

    #[test]
    fn tail_matches_binomial_for_equal_probs() {
        // Equal marginals collapse to a plain binomial tail.
        let p: f64 = 0.6;
        let n = 6;
        let probs = vec![p; n];
        let binom = |k: usize| -> f64 {
            (k..=n)
                .map(|j| {
                    let choose = (1..=n).product::<usize>() as f64
                        / ((1..=j).product::<usize>() as f64
                            * (1..=(n - j)).product::<usize>() as f64);
                    choose * p.powi(j as i32) * (1.0 - p).powi((n - j) as i32)
                })
                .sum()
        };
        for k in 1..=n {
            assert!(
                (k_of_n_tail(&probs, k) - binom(k)).abs() < 1e-12,
                "k={k}: {} vs {}",
                k_of_n_tail(&probs, k),
                binom(k)
            );
        }
    }

    #[test]
    fn k1_reduces_to_minimum_exponential() {
        // k = 1 of n: first completion of n Exp(μ) branches is Exp(nμ).
        let law = KOfNExponential::new(5, 1, 2.0);
        assert!((law.mean() - 1.0 / 10.0).abs() < 1e-15);
        let s = Complex64::new(0.7, 1.3);
        let want = Complex64::from_real(10.0) / (s + 10.0);
        assert!((law.lst(s) - want).abs() < 1e-14);
    }

    #[test]
    fn kn_is_the_maximum_with_harmonic_mean() {
        // k = n: the max of n i.i.d. Exp(μ) has mean H_n/μ.
        let n = 7;
        let mu = 3.0;
        let law = KOfNExponential::new(n, n, mu);
        let harmonic: f64 = (1..=n).map(|j| 1.0 / j as f64).sum();
        assert!((law.mean() - harmonic / mu).abs() < 1e-12);
        // CDF of the max is (1 − e^{−μt})^n; check via inversion.
        let cfg = InversionConfig::default();
        for &t in &[0.2, 0.5, 1.0, 2.0] {
            let got = cdf_from_lst(&|s| law.lst(s), t, &cfg);
            let want = (1.0 - (-mu * t).exp()).powi(n as i32);
            assert!((got - want).abs() < 1e-5, "t={t}: got {got} want {want}");
        }
    }

    #[test]
    fn second_moment_matches_stage_variances() {
        let law = KOfNExponential::new(6, 4, 1.5);
        let mut mean = 0.0;
        let mut var = 0.0;
        for j in 3..=6 {
            mean += 1.0 / (j as f64 * 1.5);
            var += 1.0 / (j as f64 * 1.5).powi(2);
        }
        assert!((law.mean() - mean).abs() < 1e-15);
        assert!((law.second_moment() - (var + mean * mean)).abs() < 1e-15);
    }

    #[test]
    fn batch_lst_is_bit_identical_to_scalar() {
        // The cache/snapshot invariant: overridden batches must reproduce
        // the scalar path bit for bit (PR 2 golden pattern).
        for &(n, k) in &[(4usize, 2usize), (6, 4), (9, 6), (5, 1), (7, 7)] {
            let law = KOfNExponential::new(n, k, 37.5);
            let s: Vec<Complex64> = (0..64)
                .map(|i| Complex64::new(0.5 + i as f64 * 3.1, (i as f64 - 32.0) * 7.3))
                .collect();
            let mut batch = vec![Complex64::ZERO; s.len()];
            law.lst_batch(&s, &mut batch);
            for (i, &si) in s.iter().enumerate() {
                let scalar = law.lst(si);
                assert_eq!(
                    scalar.re.to_bits(),
                    batch[i].re.to_bits(),
                    "(n={n},k={k}) re differs at abscissa {i}"
                );
                assert_eq!(
                    scalar.im.to_bits(),
                    batch[i].im.to_bits(),
                    "(n={n},k={k}) im differs at abscissa {i}"
                );
            }
        }
    }

    #[test]
    fn k1_fork_join_agrees_with_union_op_path() {
        // Property (paper Eq. 6 cross-check): for exponential per-branch
        // sojourns with rates μ_i, the k=1-of-n fork-join CDF equals the
        // CDF of Exp(Σμ_i). Route the reference through the *union
        // operation* transform path — the code replicated GETs actually
        // use — and invert numerically, then compare with the analytic
        // marginals fed through `k_of_n_tail`.
        let rates = [12.0, 20.0, 35.0];
        let sum: f64 = rates.iter().sum();
        let zero = from_distribution(Degenerate::new(0.0));
        let u = UnionOperation::new(
            zero.clone(),
            zero.clone(),
            zero,
            from_distribution(Exponential::new(sum)),
            0.0,
        );
        let cfg = InversionConfig::default();
        for &t in &[0.005, 0.02, 0.05, 0.1, 0.3] {
            let via_union = cdf_from_lst(&|s| u.response_lst(s), t, &cfg);
            let marginals: Vec<f64> = rates.iter().map(|&m| 1.0 - (-m * t).exp()).collect();
            let via_fork_join = k_of_n_tail(&marginals, 1);
            assert!(
                (via_union - via_fork_join).abs() < 1e-5,
                "t={t}: union path {via_union} vs fork-join {via_fork_join}"
            );
        }
    }

    #[test]
    fn split_merge_is_a_stable_mg1_with_pk_moments() {
        let q = split_merge(10.0, 0.01, 6, 4).unwrap();
        assert!(q.utilization() < 1.0);
        let svc = KOfNExponential::new(6, 4, 100.0);
        let want = 10.0 * svc.second_moment() / (2.0 * (1.0 - q.utilization()));
        assert!((q.mean_waiting() - want).abs() < 1e-12);
        assert!((q.mean_sojourn() - (q.mean_waiting() + svc.mean())).abs() < 1e-15);
    }

    #[test]
    fn split_merge_rejects_overload() {
        // k = n = 8 at mean 0.1 each → service mean H_8 · 0.1 ≈ 0.27 s;
        // 10 req/s is ρ ≈ 2.7.
        assert!(matches!(
            split_merge(10.0, 0.1, 8, 8),
            Err(QueueError::Unstable { .. })
        ));
    }

    #[test]
    #[should_panic]
    fn rejects_k_above_n() {
        KOfNExponential::new(4, 5, 1.0);
    }
}
