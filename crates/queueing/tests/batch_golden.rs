//! Golden tests: every batch LST path in the queueing layer must be
//! bit-identical to its scalar counterpart.

use std::sync::Arc;

use cos_distr::{Degenerate, Exponential, Gamma, Mixture};
use cos_numeric::Complex64;
use cos_queueing::{from_distribution, Mg1, Mm1k, ServiceTime, UnionOperation};

fn contour() -> Vec<Complex64> {
    let mut s = Vec::new();
    let x = 18.4 / (2.0 * 0.05);
    s.push(Complex64::from_real(x));
    for k in 1..=48 {
        s.push(Complex64::new(x, k as f64 * std::f64::consts::PI / 0.05));
    }
    s
}

#[track_caller]
fn assert_bits_equal(name: &str, got: &[Complex64], want: &[Complex64]) {
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(
            (g.re.to_bits(), g.im.to_bits()),
            (w.re.to_bits(), w.im.to_bits()),
            "{name}: drift at point {i} ({g:?} vs {w:?})"
        );
    }
}

fn union() -> UnionOperation {
    let disk = Arc::new(Gamma::new(3.0, 250.0));
    UnionOperation::new(
        from_distribution(Degenerate::new(0.0005)),
        from_distribution(Mixture::cache_miss(0.3, disk.clone())),
        from_distribution(Mixture::cache_miss(0.25, disk.clone())),
        from_distribution(Mixture::cache_miss(0.4, disk)),
        0.35,
    )
}

#[test]
fn union_operation_batches_are_bit_identical() {
    let u = union();
    let s = contour();
    let mut lst = vec![Complex64::ZERO; s.len()];
    u.lst_batch(&s, &mut lst);
    let want_lst: Vec<Complex64> = s.iter().map(|&si| ServiceTime::lst(&u, si)).collect();
    assert_bits_equal("union lst", &lst, &want_lst);

    let mut resp = vec![Complex64::ZERO; s.len()];
    u.response_lst_batch(&s, &mut resp);
    let want_resp: Vec<Complex64> = s.iter().map(|&si| u.response_lst(si)).collect();
    assert_bits_equal("union response", &resp, &want_resp);

    // The fused pass must reproduce both at once.
    let mut resp2 = vec![Complex64::ZERO; s.len()];
    let mut lst2 = vec![Complex64::ZERO; s.len()];
    u.response_and_union_lst_batch(&s, &mut resp2, &mut lst2);
    assert_bits_equal("fused response", &resp2, &want_resp);
    assert_bits_equal("fused lst", &lst2, &want_lst);
}

#[test]
fn mg1_batches_are_bit_identical() {
    let q = Mg1::new(60.0, Arc::new(union())).unwrap();
    let s = contour();
    let mut wait = vec![Complex64::ZERO; s.len()];
    q.waiting_lst_batch(&s, &mut wait);
    let want_wait: Vec<Complex64> = s.iter().map(|&si| q.waiting_lst(si)).collect();
    assert_bits_equal("mg1 waiting", &wait, &want_wait);

    let mut soj = vec![Complex64::ZERO; s.len()];
    q.sojourn_lst_batch(&s, &mut soj);
    let want_soj: Vec<Complex64> = s.iter().map(|&si| q.sojourn_lst(si)).collect();
    assert_bits_equal("mg1 sojourn", &soj, &want_soj);
}

#[test]
fn mg1_batch_exact_for_simple_service_too() {
    let q = Mg1::new(1.0, from_distribution(Exponential::new(2.0))).unwrap();
    let s = contour();
    let mut soj = vec![Complex64::ZERO; s.len()];
    q.sojourn_lst_batch(&s, &mut soj);
    let want: Vec<Complex64> = s.iter().map(|&si| q.sojourn_lst(si)).collect();
    assert_bits_equal("mm1 sojourn", &soj, &want);
}

#[test]
fn mm1k_batch_is_bit_identical() {
    for &(l, v, k) in &[(1.0, 2.0, 4usize), (5.0, 2.0, 8), (2.0, 2.0, 3)] {
        let q = Mm1k::new(l, v, k);
        let s = contour();
        let mut out = vec![Complex64::ZERO; s.len()];
        q.sojourn_lst_batch(&s, &mut out);
        let want: Vec<Complex64> = s.iter().map(|&si| q.sojourn_lst(si)).collect();
        assert_bits_equal("mm1k sojourn", &out, &want);
    }
}
