//! Property-based tests for the queueing layer.

use cos_distr::{Degenerate, Exponential, Gamma};
use cos_numeric::Complex64;
use cos_queueing::{from_distribution, Mg1, Mm1, Mm1k, ServiceTime, UnionOperation};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mg1_with_exponential_service_matches_mm1(
        lambda in 0.1f64..5.0,
        mu_factor in 1.1f64..10.0,
    ) {
        let mu = lambda * mu_factor;
        let mg1 = Mg1::new(lambda, from_distribution(Exponential::new(mu))).unwrap();
        let mm1 = Mm1::new(lambda, mu);
        prop_assert!((mg1.mean_waiting() - mm1.mean_waiting()).abs() < 1e-10);
        prop_assert!((mg1.mean_sojourn() - mm1.mean_sojourn()).abs() < 1e-10);
        prop_assert!((mg1.utilization() - mm1.utilization()).abs() < 1e-12);
    }

    #[test]
    fn pk_mean_dominates_deterministic_service(
        lambda in 0.1f64..5.0,
        b in 0.01f64..0.15,
    ) {
        prop_assume!(lambda * b < 0.95);
        // Among all service laws with mean b, the deterministic one
        // minimizes E[B²], hence minimizes P-K waiting.
        let det = Mg1::new(lambda, from_distribution(Degenerate::new(b))).unwrap();
        let exp = Mg1::new(lambda, from_distribution(Exponential::with_mean(b))).unwrap();
        prop_assert!(det.mean_waiting() <= exp.mean_waiting() + 1e-12);
    }

    #[test]
    fn waiting_cdf_in_unit_interval_and_monotone(
        lambda in 0.5f64..4.0,
        shape in 0.5f64..5.0,
        mean in 0.02f64..0.2,
    ) {
        prop_assume!(lambda * mean < 0.9);
        let g = Gamma::new(shape, shape / mean);
        let q = Mg1::new(lambda, from_distribution(g)).unwrap();
        let cfg = cos_numeric::InversionConfig::default();
        let mut prev = 0.0;
        for i in 1..=8 {
            let t = i as f64 * 0.1;
            let c = q.waiting_cdf(t, &cfg);
            prop_assert!((0.0..=1.0).contains(&c));
            prop_assert!(c >= prev - 1e-6, "not monotone at t={t}");
            prev = c;
        }
    }

    #[test]
    fn mm1k_probabilities_sum_to_one(
        lambda in 0.1f64..50.0,
        mu in 0.1f64..50.0,
        k in 1usize..64,
    ) {
        let q = Mm1k::new(lambda, mu, k);
        let total: f64 = q.state_probabilities().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(q.blocking_probability() >= 0.0 && q.blocking_probability() <= 1.0);
        prop_assert!(q.mean_number() <= k as f64 + 1e-9);
    }

    #[test]
    fn mm1k_blocking_monotone_in_load(
        mu in 1.0f64..20.0,
        k in 1usize..32,
        l1 in 0.1f64..10.0,
        dl in 0.1f64..10.0,
    ) {
        let a = Mm1k::new(l1, mu, k);
        let b = Mm1k::new(l1 + dl, mu, k);
        prop_assert!(b.blocking_probability() >= a.blocking_probability() - 1e-12);
    }

    #[test]
    fn mm1k_sojourn_lst_bounded(
        lambda in 0.5f64..20.0,
        mu in 0.5f64..20.0,
        k in 1usize..32,
    ) {
        let q = Mm1k::new(lambda, mu, k);
        for im in [0.0, 5.0, 50.0] {
            let v = q.sojourn_lst(Complex64::new(1.0, im));
            prop_assert!(v.abs() <= 1.0 + 1e-9, "LST magnitude {} at im={im}", v.abs());
        }
        prop_assert!((q.sojourn_lst(Complex64::from_real(1e-12)) - Complex64::ONE).abs() < 1e-8);
    }

    #[test]
    fn union_operation_mean_formula(
        parse in 0.0f64..0.01,
        p in 0.0f64..3.0,
        im in 0.005f64..0.05,
        mm_ in 0.005f64..0.05,
        dm in 0.005f64..0.05,
    ) {
        let u = UnionOperation::new(
            from_distribution(Degenerate::new(parse)),
            from_distribution(Exponential::with_mean(im)),
            from_distribution(Exponential::with_mean(mm_)),
            from_distribution(Exponential::with_mean(dm)),
            p,
        );
        let want = parse + im + mm_ + (1.0 + p) * dm;
        prop_assert!((ServiceTime::mean(&u) - want).abs() < 1e-12);
        // Second moment dominates squared mean.
        prop_assert!(u.second_moment() + 1e-12 >= want * want);
        // LST at the origin is 1.
        prop_assert!((ServiceTime::lst(&u, Complex64::ZERO) - Complex64::ONE).abs() < 1e-12);
    }

    #[test]
    fn union_lst_magnitude_bounded(
        p in 0.0f64..2.0,
        s_re in 0.0f64..100.0,
        s_im in -500.0f64..500.0,
    ) {
        let u = UnionOperation::new(
            from_distribution(Degenerate::new(0.001)),
            from_distribution(Exponential::new(100.0)),
            from_distribution(Exponential::new(150.0)),
            from_distribution(Exponential::new(80.0)),
            p,
        );
        let v = ServiceTime::lst(&u, Complex64::new(s_re, s_im));
        prop_assert!(v.abs() <= 1.0 + 1e-9, "magnitude {}", v.abs());
    }
}
