//! Streaming parameter estimation — the sliding-window form of §IV-B.
//!
//! The offline pipeline estimates each 5-minute window's `SystemParams`
//! after the run; the [`OnlineCalibrator`] maintains the same estimators as
//! rolling windows over the telemetry stream and can re-fit a parameter set
//! at any event time:
//!
//! * per-device arrival and data-read rates from [`RateWindow`]s;
//! * per-class cache miss ratios from the latency-threshold estimator
//!   (`latency > threshold` ⇒ the operation visited the disk), as
//!   [`WindowedRatio`]s;
//! * the aggregate mean disk service time from a [`WindowedMean`] over the
//!   same over-threshold operations, decomposed into per-operation means by
//!   the proportionality rule `b_i/p_i = b_m/p_m = b_d/p_d` and applied by
//!   rescaling the benchmarked laws (holding the fitted Gamma shape, §IV-A).
//!
//! Devices with too little traffic in the window are left out of the fit
//! (matching the offline pipeline's skip), and a window with no disk
//! traffic falls back to the benchmarked base laws rather than failing.

use cos_model::{
    rescale_to_mean, try_decompose_disk_service, DeviceParams, FrontendParams, SystemParams,
    LATENCY_THRESHOLD,
};
use cos_queueing::DynServiceTime;
use cos_stats::{RateWindow, WindowedMean, WindowedRatio};

use crate::telemetry::TelemetryEvent;

/// Workload-independent calibration inputs (§IV-A): the benchmarked
/// service-time laws plus the deployment's process topology.
#[derive(Clone)]
pub struct CalibrationBase {
    /// Benchmarked disk law of index lookups.
    pub index_law: DynServiceTime,
    /// Benchmarked disk law of metadata reads.
    pub meta_law: DynServiceTime,
    /// Benchmarked disk law of data chunk reads.
    pub data_law: DynServiceTime,
    /// Backend request-parsing law.
    pub parse_be: DynServiceTime,
    /// Frontend request-parsing law.
    pub parse_fe: DynServiceTime,
    /// Number of storage devices the stream's `device` indices address.
    pub devices: usize,
    /// Backend processes per device (`N_be`).
    pub processes_per_device: usize,
    /// Frontend processes (`N_fe`).
    pub frontend_processes: usize,
}

/// Tuning knobs of the sliding-window estimators.
#[derive(Debug, Clone)]
pub struct CalibratorConfig {
    /// Sliding-window length in event-time seconds.
    pub window: f64,
    /// Time buckets per window (granularity of forgetting).
    pub buckets: usize,
    /// Latency threshold separating memory hits from disk visits (§IV-B).
    pub miss_threshold: f64,
    /// Minimum in-window requests for a device to enter the fit.
    pub min_device_requests: u64,
}

impl Default for CalibratorConfig {
    fn default() -> Self {
        CalibratorConfig {
            window: 30.0,
            buckets: 30,
            miss_threshold: LATENCY_THRESHOLD,
            min_device_requests: 20,
        }
    }
}

/// Why a re-fit could not produce parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// No device reached the minimum in-window request count.
    NoTraffic,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::NoTraffic => f.write_str("no device has enough in-window traffic to fit"),
        }
    }
}

impl std::error::Error for FitError {}

#[derive(Debug, Clone)]
struct DeviceWindows {
    arrivals: RateWindow,
    data_reads: RateWindow,
    /// Per-class threshold miss ratios, `[index, meta, data]`.
    miss: [WindowedRatio; 3],
    /// Mean latency of over-threshold (disk-visiting) operations.
    disk_service: WindowedMean,
}

impl DeviceWindows {
    fn new(cfg: &CalibratorConfig) -> Self {
        let ratio = || WindowedRatio::new(cfg.window, cfg.buckets);
        DeviceWindows {
            arrivals: RateWindow::new(cfg.window, cfg.buckets),
            data_reads: RateWindow::new(cfg.window, cfg.buckets),
            miss: [ratio(), ratio(), ratio()],
            disk_service: WindowedMean::new(cfg.window, cfg.buckets),
        }
    }
}

/// The streaming estimator bank plus the re-fit procedure.
pub struct OnlineCalibrator {
    base: CalibrationBase,
    config: CalibratorConfig,
    devices: Vec<DeviceWindows>,
    total_arrivals: RateWindow,
}

impl OnlineCalibrator {
    /// Creates a calibrator for `base.devices` devices.
    ///
    /// # Panics
    /// Panics if `base.devices == 0`.
    pub fn new(base: CalibrationBase, config: CalibratorConfig) -> Self {
        assert!(base.devices >= 1, "need at least one device");
        let devices = (0..base.devices)
            .map(|_| DeviceWindows::new(&config))
            .collect();
        OnlineCalibrator {
            total_arrivals: RateWindow::new(config.window, config.buckets),
            devices,
            base,
            config,
        }
    }

    /// The estimator configuration.
    pub fn config(&self) -> &CalibratorConfig {
        &self.config
    }

    /// The workload-independent calibration inputs.
    pub fn base(&self) -> &CalibrationBase {
        &self.base
    }

    /// Feeds one telemetry event into the window bank. Events addressing an
    /// unknown device index are dropped (a live bus may race a topology
    /// change).
    pub fn ingest(&mut self, event: &TelemetryEvent) {
        match *event {
            TelemetryEvent::Arrival { at, device } => {
                if let Some(w) = self.devices.get_mut(device) {
                    w.arrivals.record(at);
                    self.total_arrivals.record(at);
                }
            }
            TelemetryEvent::DataRead { at, device } => {
                if let Some(w) = self.devices.get_mut(device) {
                    w.data_reads.record(at);
                }
            }
            TelemetryEvent::Op {
                at,
                device,
                class,
                latency,
            } => {
                if let Some(w) = self.devices.get_mut(device) {
                    let missed = latency > self.config.miss_threshold;
                    w.miss[class.index()].record(at, missed);
                    if missed {
                        w.disk_service.record(at, latency);
                    }
                }
            }
            // Completions feed the drift monitor, not the parameter fit.
            TelemetryEvent::Completion { .. } => {}
        }
    }

    /// Requests currently inside device `idx`'s arrival window.
    pub fn device_request_count(&self, idx: usize, now: f64) -> u64 {
        self.devices.get(idx).map_or(0, |w| w.arrivals.count(now))
    }

    /// Fits a fresh [`SystemParams`] from the windows ending at `now`.
    ///
    /// Devices below the traffic floor are skipped; if every device is
    /// below it the fit fails with [`FitError::NoTraffic`]. Per-operation
    /// disk laws are the benchmarked base laws rescaled to the decomposed
    /// in-window means; when the window carries no usable disk traffic the
    /// base laws are used as-is.
    pub fn try_fit(&self, now: f64) -> Result<SystemParams, FitError> {
        let proportions = [
            self.base.index_law.mean(),
            self.base.meta_law.mean(),
            self.base.data_law.mean(),
        ];
        let mut devices = Vec::new();
        for w in &self.devices {
            if w.arrivals.count(now) < self.config.min_device_requests.max(1) {
                continue;
            }
            let r = match w.arrivals.rate(now) {
                Some(r) if r > 0.0 => r,
                _ => continue,
            };
            // Every request reads at least one chunk; clamp against window
            // jitter between the two independent estimators.
            let r_data = w.data_reads.rate(now).unwrap_or(r).max(r);
            let misses = [
                w.miss[0].ratio(now).unwrap_or(0.0),
                w.miss[1].ratio(now).unwrap_or(0.0),
                w.miss[2].ratio(now).unwrap_or(0.0),
            ];
            let laws = w
                .disk_service
                .mean(now)
                .and_then(|b| try_decompose_disk_service(b, proportions, misses, r, r_data).ok())
                .map(|[bi, bm, bd]| {
                    (
                        rescale_to_mean(&self.base.index_law, bi),
                        rescale_to_mean(&self.base.meta_law, bm),
                        rescale_to_mean(&self.base.data_law, bd),
                    )
                })
                .unwrap_or_else(|| {
                    (
                        self.base.index_law.clone(),
                        self.base.meta_law.clone(),
                        self.base.data_law.clone(),
                    )
                });
            devices.push(DeviceParams {
                arrival_rate: r,
                data_read_rate: r_data,
                miss_index: misses[0],
                miss_meta: misses[1],
                miss_data: misses[2],
                index_disk: laws.0,
                meta_disk: laws.1,
                data_disk: laws.2,
                parse_be: self.base.parse_be.clone(),
                processes: self.base.processes_per_device.max(1),
            });
        }
        if devices.is_empty() {
            return Err(FitError::NoTraffic);
        }
        let device_total: f64 = devices.iter().map(|d| d.arrival_rate).sum();
        // The frontend sees every request, including those routed to
        // below-floor devices; never report less than the fitted devices.
        let frontend_rate = self
            .total_arrivals
            .rate(now)
            .unwrap_or(device_total)
            .max(device_total);
        Ok(SystemParams {
            frontend: FrontendParams {
                arrival_rate: frontend_rate,
                processes: self.base.frontend_processes.max(1),
                parse_fe: self.base.parse_fe.clone(),
            },
            devices,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::OpClass;
    use cos_distr::{Degenerate, Gamma};
    use cos_queueing::from_distribution;

    pub(crate) fn test_base(devices: usize) -> CalibrationBase {
        CalibrationBase {
            index_law: from_distribution(Gamma::new(3.0, 250.0)),
            meta_law: from_distribution(Gamma::new(2.5, 312.5)),
            data_law: from_distribution(Gamma::new(3.5, 245.0)),
            parse_be: from_distribution(Degenerate::new(0.0005)),
            parse_fe: from_distribution(Degenerate::new(0.0003)),
            devices,
            processes_per_device: 1,
            frontend_processes: 3,
        }
    }

    fn feed_steady(cal: &mut OnlineCalibrator, rate_per_device: f64, duration: f64, miss: f64) {
        let devices = cal.base.devices;
        let dt = 1.0 / rate_per_device;
        let mut i = 0u64;
        let mut t = 0.0;
        while t < duration {
            for d in 0..devices {
                cal.ingest(&TelemetryEvent::Arrival { at: t, device: d });
                cal.ingest(&TelemetryEvent::DataRead { at: t, device: d });
                for class in OpClass::ALL {
                    // Deterministic interleaving: a `miss` fraction of ops
                    // goes to disk at 12 ms, the rest hit memory at 2 µs.
                    let missed = (i % 100) as f64 / 100.0 < miss;
                    let latency = if missed { 0.012 } else { 0.000_002 };
                    cal.ingest(&TelemetryEvent::Op {
                        at: t,
                        device: d,
                        class,
                        latency,
                    });
                    i += 1;
                }
            }
            t += dt;
        }
    }

    #[test]
    fn steady_stream_fits_expected_rates_and_misses() {
        let mut cal = OnlineCalibrator::new(test_base(2), CalibratorConfig::default());
        feed_steady(&mut cal, 50.0, 40.0, 0.30);
        let params = cal.try_fit(40.0).unwrap();
        assert_eq!(params.devices.len(), 2);
        params.validate();
        for d in &params.devices {
            assert!(
                (d.arrival_rate - 50.0).abs() < 5.0,
                "rate {}",
                d.arrival_rate
            );
            assert!((d.miss_index - 0.30).abs() < 0.05, "miss {}", d.miss_index);
            assert!(d.data_read_rate >= d.arrival_rate);
        }
        assert!((params.frontend.arrival_rate - 100.0).abs() < 10.0);
        // All disk visits took 12 ms, so the decomposed per-op means must
        // average back to ~12 ms under the union weights.
        let d = &params.devices[0];
        let w = [
            d.miss_index,
            d.miss_meta,
            d.miss_data * d.data_read_rate / d.arrival_rate,
        ];
        let agg =
            (w[0] * d.index_disk.mean() + w[1] * d.meta_disk.mean() + w[2] * d.data_disk.mean())
                / (w[0] + w[1] + w[2]);
        assert!((agg - 0.012).abs() < 0.002, "aggregate disk mean {agg}");
    }

    #[test]
    fn empty_stream_reports_no_traffic() {
        let cal = OnlineCalibrator::new(test_base(1), CalibratorConfig::default());
        assert!(matches!(cal.try_fit(10.0), Err(FitError::NoTraffic)));
    }

    #[test]
    fn quiet_device_is_skipped_not_fatal() {
        let mut cal = OnlineCalibrator::new(test_base(3), CalibratorConfig::default());
        // Only device 1 gets traffic.
        for i in 0..2000 {
            let t = i as f64 * 0.02;
            cal.ingest(&TelemetryEvent::Arrival { at: t, device: 1 });
            cal.ingest(&TelemetryEvent::DataRead { at: t, device: 1 });
        }
        let params = cal.try_fit(40.0).unwrap();
        assert_eq!(params.devices.len(), 1);
        // No Op events at all: base laws and zero miss ratios.
        assert_eq!(params.devices[0].miss_data, 0.0);
    }

    #[test]
    fn all_hit_window_falls_back_to_base_laws() {
        let mut cal = OnlineCalibrator::new(test_base(1), CalibratorConfig::default());
        let base_mean = cal.base.data_law.mean();
        for i in 0..3000 {
            let t = i as f64 * 0.01;
            cal.ingest(&TelemetryEvent::Arrival { at: t, device: 0 });
            cal.ingest(&TelemetryEvent::DataRead { at: t, device: 0 });
            cal.ingest(&TelemetryEvent::Op {
                at: t,
                device: 0,
                class: OpClass::Data,
                latency: 0.000_002,
            });
        }
        let params = cal.try_fit(30.0).unwrap();
        assert_eq!(params.devices[0].miss_data, 0.0);
        assert!((params.devices[0].data_disk.mean() - base_mean).abs() < 1e-12);
    }

    #[test]
    fn workload_shift_is_forgotten_within_a_window() {
        let cfg = CalibratorConfig {
            window: 10.0,
            buckets: 20,
            ..CalibratorConfig::default()
        };
        let mut cal = OnlineCalibrator::new(test_base(1), cfg);
        // 100 req/s for 30 s, then 20 req/s for 30 s.
        for i in 0..3000 {
            cal.ingest(&TelemetryEvent::Arrival {
                at: i as f64 * 0.01,
                device: 0,
            });
        }
        for i in 0..600 {
            cal.ingest(&TelemetryEvent::Arrival {
                at: 30.0 + i as f64 * 0.05,
                device: 0,
            });
        }
        let late = cal.try_fit(60.0).unwrap();
        assert!(
            (late.devices[0].arrival_rate - 20.0).abs() < 4.0,
            "rate {} should reflect the post-shift regime",
            late.devices[0].arrival_rate
        );
    }

    #[test]
    fn unknown_device_indices_are_dropped() {
        let mut cal = OnlineCalibrator::new(test_base(1), CalibratorConfig::default());
        cal.ingest(&TelemetryEvent::Arrival { at: 0.0, device: 7 });
        assert_eq!(cal.device_request_count(0, 1.0), 0);
        assert!(matches!(cal.try_fit(1.0), Err(FitError::NoTraffic)));
    }
}
