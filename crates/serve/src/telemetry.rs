//! The service's telemetry input format.
//!
//! `cos-serve` deliberately does **not** depend on the simulator: a live
//! deployment would feed it from a metrics bus, a replayed trace, or the
//! simulator via a thin adapter (see `cos-bench`'s `serve_demo`). The four
//! event kinds carry exactly the §IV-B online-metric inputs:
//!
//! * [`TelemetryEvent::Arrival`] — per-device arrival rates `r`;
//! * [`TelemetryEvent::DataRead`] — per-device data-read rates `r_data`;
//! * [`TelemetryEvent::Op`] — backend operation latencies, feeding the
//!   latency-threshold miss-ratio estimator and the mean disk service time;
//! * [`TelemetryEvent::Completion`] — end-to-end response latencies,
//!   feeding observed SLA attainment (drift detection).
//!
//! All timestamps are event time in seconds, monotone up to the bounded
//! reordering the sliding windows tolerate.

/// The three backend operation classes of the union operation (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Index lookup.
    Index,
    /// Metadata read.
    Meta,
    /// Data chunk read.
    Data,
}

impl OpClass {
    /// All classes, in the `[index, meta, data]` order the estimation API
    /// uses.
    pub const ALL: [OpClass; 3] = [OpClass::Index, OpClass::Meta, OpClass::Data];

    /// Position in `[index, meta, data]` arrays.
    pub fn index(self) -> usize {
        match self {
            OpClass::Index => 0,
            OpClass::Meta => 1,
            OpClass::Data => 2,
        }
    }
}

/// One telemetry record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TelemetryEvent {
    /// A request arrived and was routed to `device`.
    Arrival {
        /// Arrival time (seconds).
        at: f64,
        /// Target device index.
        device: usize,
    },
    /// A data chunk read was issued on `device` (first chunk or
    /// continuation), attributed to the owning request's arrival time.
    DataRead {
        /// Attribution time (seconds).
        at: f64,
        /// Device issuing the read.
        device: usize,
    },
    /// One backend operation's observed latency (memory hit or disk
    /// service).
    Op {
        /// Attribution time (seconds).
        at: f64,
        /// Device that served the operation.
        device: usize,
        /// Operation class.
        class: OpClass,
        /// Observed latency (seconds).
        latency: f64,
    },
    /// A request completed with end-to-end `latency`.
    Completion {
        /// Arrival time at the frontend (seconds).
        arrival: f64,
        /// End-to-end response latency (seconds).
        latency: f64,
        /// Serving device.
        device: usize,
    },
}

impl TelemetryEvent {
    /// The event-time ordering key: completion time for
    /// [`TelemetryEvent::Completion`], attribution time otherwise.
    pub fn time(&self) -> f64 {
        match *self {
            TelemetryEvent::Arrival { at, .. }
            | TelemetryEvent::DataRead { at, .. }
            | TelemetryEvent::Op { at, .. } => at,
            TelemetryEvent::Completion {
                arrival, latency, ..
            } => arrival + latency,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_indices_cover_all() {
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn completion_time_is_arrival_plus_latency() {
        let ev = TelemetryEvent::Completion {
            arrival: 2.0,
            latency: 0.5,
            device: 1,
        };
        assert_eq!(ev.time(), 2.5);
        assert_eq!(TelemetryEvent::Arrival { at: 3.0, device: 0 }.time(), 3.0);
    }
}
