//! The serve tier's instrument bundle.
//!
//! All instruments are registered idempotently against the registry carried
//! in [`ServeConfig::obs`](crate::ServeConfig::obs), so a gate and a service
//! sharing one [`Registry`] expose a single merged `/metrics` document.

use cos_obs::{Counter, Hist, Registry};

/// Handles to every instrument the service records into. Cloning shares
/// the underlying counters (each handle is an `Arc` internally).
#[derive(Debug, Clone)]
pub struct ServeObs {
    /// Wall-clock duration of each re-fit attempt (successful or not).
    pub refit: Hist,
    /// Total re-fit attempts (failures are tracked separately by
    /// [`EngineHealth::failed_refits`](crate::EngineHealth)).
    pub refits_total: Counter,
    /// Latency of queries answered from the inversion memo.
    pub query_hit: Hist,
    /// Latency of queries that had to run a fresh inversion.
    pub query_miss: Hist,
    /// Queue delay between a telemetry event being sent to the service
    /// thread and the moment it is ingested (command-channel lag).
    pub ingest_lag: Hist,
    /// Total telemetry events ingested.
    pub ingest_events_total: Counter,
    /// Delay between a sweep point being submitted to the worker pool and
    /// a worker picking it up.
    pub sweep_queue_wait: Hist,
    /// Execution time of each sweep point on a worker (queue wait
    /// excluded).
    pub sweep_task: Hist,
}

impl ServeObs {
    /// Registers (or re-resolves) the serve instruments on `registry`.
    pub fn register(registry: &Registry) -> ServeObs {
        ServeObs {
            refit: registry.histogram(
                "cos_serve_refit_seconds",
                "Wall-clock duration of calibration re-fit attempts",
            ),
            refits_total: registry.counter(
                "cos_serve_refits_total",
                "Total re-fit attempts (successful or failed)",
            ),
            query_hit: registry.histogram_with_label(
                "cos_serve_query_seconds",
                "cache",
                "hit",
                "Prediction query latency by inversion-memo outcome",
            ),
            query_miss: registry.histogram_with_label(
                "cos_serve_query_seconds",
                "cache",
                "miss",
                "Prediction query latency by inversion-memo outcome",
            ),
            ingest_lag: registry.histogram(
                "cos_serve_ingest_lag_seconds",
                "Command-channel delay between sending and ingesting a telemetry event",
            ),
            ingest_events_total: registry.counter(
                "cos_serve_ingest_events_total",
                "Total telemetry events ingested",
            ),
            sweep_queue_wait: registry.histogram(
                "cos_sweep_queue_wait_seconds",
                "Delay between sweep-point submission and worker pickup",
            ),
            sweep_task: registry.histogram(
                "cos_sweep_task_seconds",
                "Per-point sweep evaluation time on a worker",
            ),
        }
    }
}
