//! The service itself: telemetry in, predictions out — for a whole fleet.
//!
//! [`SlaService`] is the synchronous state machine. The fleet dimension is
//! first-class: telemetry arrives tagged with a [`TenantId`]
//! ([`SlaService::ingest_for`]), and each tenant gets an independent shard —
//! its own sliding-window calibrator, drift monitor, and memoized engine
//! keyed under its own slot of the shared [`InversionCache`] (so tenants
//! never share or evict each other's quantized results). Re-fits are
//! **batched**: one sweep fans every dirty tenant's fit over the `cos-par`
//! pool ([`SlaService::refit_now`]), then a single serial pass installs the
//! epochs and publishes one **delta** through the snapshot path — only
//! changed tenants' states are republished (see the
//! [`snapshot`](crate::snapshot) module docs for the protocol).
//!
//! [`SlaService::spawn`] wraps the service in a dedicated thread behind a
//! single command channel (`std::sync::mpsc` has no `select`, so every
//! interaction — telemetry, queries, control — is one `enum` message; FIFO
//! ordering doubles as the flush barrier). The returned [`ServiceHandle`]
//! is the client side; [`TelemetrySender`] is a cheap cloneable
//! tenant-scoped ingest-only endpoint to hand to a telemetry source.
//!
//! Queries are [`Query`] values (`service.attainment(&Query::tenant(t)
//! .sla(0.05))`); the positional methods of the spawned client surface are
//! kept as deprecated shims that delegate to the `Query` path,
//! bit-identically.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use cos_model::{ModelVariant, SlaGoal, SystemModel, SystemParams};
use cos_obs::Registry;

use crate::cache::{InversionCache, QueryKey, QueryKind};
use crate::calibrate::{CalibrationBase, CalibratorConfig, OnlineCalibrator};
use crate::drift::{DriftConfig, DriftMonitor, DriftReport};
use crate::engine::{snap, EngineHealth, Prediction, PredictionEngine, SLA_QUANTUM};
use crate::error::ServeError;
use crate::obs::ServeObs;
use crate::query::Query;
use crate::snapshot::{PublishStats, SnapshotReader, SnapshotShared, SnapshotState};
use crate::telemetry::TelemetryEvent;
use crate::tenant::TenantId;
use crate::worker::{RatePoint, SweepHandle, SweepPool};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// SLA bounds (seconds) tracked for drift detection and dashboards.
    pub slas: Vec<f64>,
    /// Model variant used for every prediction.
    pub variant: ModelVariant,
    /// Sliding-window estimator knobs.
    pub calibrator: CalibratorConfig,
    /// Drift detection knobs.
    pub drift: DriftConfig,
    /// Event-time seconds between automatic re-fits.
    pub refit_interval: f64,
    /// Worker threads of the what-if sweep pool.
    pub sweep_workers: usize,
    /// Worker threads a batched fleet re-fit fans out over (defaults to
    /// the machine's available parallelism). Fit results are
    /// order-preserving and per-tenant independent, so the answer bits
    /// never depend on this knob.
    pub refit_workers: usize,
    /// Instrument registry the service records into (share one registry
    /// between the service and a gate to get a single `/metrics` view).
    pub obs: Registry,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            slas: vec![0.010, 0.050, 0.100],
            variant: ModelVariant::Full,
            calibrator: CalibratorConfig::default(),
            drift: DriftConfig::default(),
            refit_interval: 5.0,
            sweep_workers: 2,
            refit_workers: cos_par::default_workers(),
            obs: Registry::new(),
        }
    }
}

impl ServeConfig {
    /// Starts a validating builder seeded with the defaults.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::default(),
        }
    }
}

/// A [`ServeConfig`] value the builder refused to produce, with the field
/// and the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidConfig {
    /// The offending field, as named on [`ServeConfig`].
    pub field: &'static str,
    /// Why the value is nonsensical.
    pub reason: String,
}

impl std::fmt::Display for InvalidConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid ServeConfig.{}: {}", self.field, self.reason)
    }
}

impl std::error::Error for InvalidConfig {}

/// Builder for [`ServeConfig`] that rejects nonsensical values at
/// [`build`](ServeConfigBuilder::build) time: a non-positive SLA or refit
/// interval would silently disable re-fitting; a zero-bucket window would
/// divide by zero deep inside the calibrator.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// SLA bounds in seconds (each must be finite and positive).
    pub fn slas(mut self, slas: Vec<f64>) -> Self {
        self.config.slas = slas;
        self
    }

    /// Model variant used for every prediction.
    pub fn variant(mut self, variant: ModelVariant) -> Self {
        self.config.variant = variant;
        self
    }

    /// Sliding-window estimator knobs (window > 0, buckets ≥ 1).
    pub fn calibrator(mut self, calibrator: CalibratorConfig) -> Self {
        self.config.calibrator = calibrator;
        self
    }

    /// Drift detection knobs (window > 0, buckets ≥ 1).
    pub fn drift(mut self, drift: DriftConfig) -> Self {
        self.config.drift = drift;
        self
    }

    /// Event-time seconds between automatic re-fits (finite, > 0).
    pub fn refit_interval(mut self, seconds: f64) -> Self {
        self.config.refit_interval = seconds;
        self
    }

    /// Worker threads of the what-if sweep pool (≥ 1).
    pub fn sweep_workers(mut self, workers: usize) -> Self {
        self.config.sweep_workers = workers;
        self
    }

    /// Worker threads of a batched fleet re-fit (≥ 1).
    pub fn refit_workers(mut self, workers: usize) -> Self {
        self.config.refit_workers = workers;
        self
    }

    /// Instrument registry the service records into.
    pub fn obs(mut self, registry: Registry) -> Self {
        self.config.obs = registry;
        self
    }

    /// Validates and produces the config.
    pub fn build(self) -> Result<ServeConfig, InvalidConfig> {
        let err = |field: &'static str, reason: String| Err(InvalidConfig { field, reason });
        let c = &self.config;
        if c.slas.is_empty() {
            return err("slas", "at least one SLA bound is required".into());
        }
        if let Some(bad) = c.slas.iter().find(|s| !s.is_finite() || **s <= 0.0) {
            return err(
                "slas",
                format!("SLA bound {bad} is not finite and positive"),
            );
        }
        if !c.refit_interval.is_finite() || c.refit_interval <= 0.0 {
            return err(
                "refit_interval",
                format!("{} must be finite and positive", c.refit_interval),
            );
        }
        if c.sweep_workers == 0 {
            return err("sweep_workers", "must be at least 1".into());
        }
        if c.refit_workers == 0 {
            return err("refit_workers", "must be at least 1".into());
        }
        if !c.calibrator.window.is_finite() || c.calibrator.window <= 0.0 {
            return err(
                "calibrator.window",
                format!("{} must be finite and positive", c.calibrator.window),
            );
        }
        if c.calibrator.buckets == 0 {
            return err("calibrator.buckets", "must be at least 1".into());
        }
        if !c.drift.window.is_finite() || c.drift.window <= 0.0 {
            return err(
                "drift.window",
                format!("{} must be finite and positive", c.drift.window),
            );
        }
        if c.drift.buckets == 0 {
            return err("drift.buckets", "must be at least 1".into());
        }
        Ok(self.config)
    }
}

/// A point-in-time health summary.
#[derive(Debug, Clone)]
pub struct ServiceStatus {
    /// Latest event time seen on the stream.
    pub event_time: f64,
    /// Installed calibration epoch (`None` while warming up).
    pub epoch: Option<u64>,
    /// Event time of the installed epoch's fit.
    pub fitted_at: Option<f64>,
    /// Whether the epoch is stale (the most recent re-fit failed).
    pub stale: bool,
    /// Why the most recent failed re-fit failed (`None` after a success).
    pub last_fit_error: Option<String>,
    /// Merged engine counters: inversion-memo hits/misses and failed
    /// re-fits, snapshotted together so `/metrics` needs one round-trip.
    pub engine: EngineHealth,
    /// Per-SLA drift verdicts (observed vs predicted attainment).
    pub drift: Vec<DriftReport>,
}

impl ServiceStatus {
    /// Whether any tracked SLA has drifted (observed vs predicted gap over
    /// tolerance with enough samples).
    pub fn any_drifted(&self) -> bool {
        self.drift.iter().any(|d| d.drifted)
    }
}

/// One tenant's independent estimator state: calibrator window, drift
/// monitor, and memoized engine keyed under the tenant's cache slot.
struct TenantShard {
    id: TenantId,
    slot: u32,
    calibrator: OnlineCalibrator,
    drift: DriftMonitor,
    engine: PredictionEngine,
    last_fit_error: Option<String>,
    last_fit_unstable: bool,
    /// Drift verdicts captured at this shard's last re-fit attempt — the
    /// published state reuses them instead of re-evaluating against a
    /// moved clock, which is what makes [`build_state`] a pure function
    /// of the shard (and delta publication provably lossless).
    last_drift: Vec<DriftReport>,
    /// Whether the shard has ingested telemetry since its last re-fit.
    dirty: bool,
    events_total: u64,
}

/// The published [`SnapshotState`] is a pure function of the shard: same
/// shard state in, same bytes out — rebuilding an unchanged shard's state
/// reproduces exactly what is already published, which is the invariant
/// the delta protocol rests on.
fn build_state(shard: &TenantShard) -> SnapshotState {
    SnapshotState {
        snapshot: shard.engine.snapshot().cloned(),
        last_fit_error: shard.last_fit_error.clone(),
        failed_refits: shard.engine.failed_refits(),
        unstable_fit: shard.last_fit_unstable,
        drift: shard.last_drift.clone(),
    }
}

/// Outcome of one tenant's parallel fit attempt: fitted parameters, the
/// validated model, and per-SLA attainment predictions — or the failure
/// message plus whether it was an instability.
type FitOutcome = Result<(SystemParams, Arc<SystemModel>, Vec<Option<f64>>), (String, bool)>;

/// The synchronous prediction service.
pub struct SlaService {
    config: ServeConfig,
    base: CalibrationBase,
    cache: Arc<InversionCache>,
    shards: Vec<TenantShard>,
    index: HashMap<TenantId, u32>,
    pool: SweepPool,
    obs: ServeObs,
    shared: Arc<SnapshotShared>,
    now: f64,
    last_refit: f64,
    last_publish: PublishStats,
}

impl SlaService {
    /// Creates a service over `base`'s topology. The reserved `default`
    /// tenant exists from the start (slot 0); further tenants materialize
    /// on their first [`ingest_for`](SlaService::ingest_for).
    pub fn new(base: CalibrationBase, config: ServeConfig) -> Self {
        let obs = ServeObs::register(&config.obs);
        let cache = Arc::new(InversionCache::default());
        let drift = DriftMonitor::new(config.slas.clone(), config.drift.clone());
        let last_drift = drift.report(0.0, &vec![None; config.slas.len()]);
        let shared = Arc::new(SnapshotShared::new(
            config.variant,
            Arc::clone(&cache),
            obs.clone(),
            SnapshotState {
                snapshot: None,
                last_fit_error: None,
                failed_refits: 0,
                unstable_fit: false,
                drift: last_drift.clone(),
            },
        ));
        let default_shard = TenantShard {
            id: TenantId::default_tenant(),
            slot: 0,
            calibrator: OnlineCalibrator::new(base.clone(), config.calibrator.clone()),
            drift,
            engine: PredictionEngine::with_cache_for(config.variant, Arc::clone(&cache), 0),
            last_fit_error: None,
            last_fit_unstable: false,
            last_drift,
            dirty: false,
            events_total: 0,
        };
        SlaService {
            base,
            cache,
            shards: vec![default_shard],
            index: HashMap::from([(TenantId::default_tenant(), 0)]),
            pool: SweepPool::with_timing(
                config.sweep_workers,
                Some(obs.sweep_queue_wait.clone()),
                Some(obs.sweep_task.clone()),
            ),
            obs,
            shared,
            now: 0.0,
            last_refit: 0.0,
            last_publish: PublishStats::default(),
            config,
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Latest event time seen on the stream.
    pub fn event_time(&self) -> f64 {
        self.now
    }

    /// Number of tenants the fleet has materialized (≥ 1: the `default`
    /// tenant always exists).
    pub fn tenants(&self) -> usize {
        self.shards.len()
    }

    /// Every materialized tenant's id, in slot order.
    pub fn tenant_ids(&self) -> impl Iterator<Item = &TenantId> {
        self.shards.iter().map(|s| &s.id)
    }

    /// Accounting of the most recent snapshot publication (delta vs full
    /// bytes).
    pub fn last_publish_stats(&self) -> PublishStats {
        self.last_publish
    }

    fn slot_of(&self, tenant: &TenantId) -> Result<u32, ServeError> {
        self.index
            .get(tenant)
            .copied()
            .ok_or_else(|| ServeError::UnknownTenant {
                tenant: tenant.to_string(),
            })
    }

    /// The tenant's slot, materializing a fresh shard (and registering it
    /// with the snapshot path) on first sight.
    fn slot_or_create(&mut self, tenant: &TenantId) -> u32 {
        if let Some(&slot) = self.index.get(tenant) {
            return slot;
        }
        let slot = self.shards.len() as u32;
        let drift = DriftMonitor::new(self.config.slas.clone(), self.config.drift.clone());
        let shard = TenantShard {
            id: tenant.clone(),
            slot,
            calibrator: OnlineCalibrator::new(self.base.clone(), self.config.calibrator.clone()),
            last_drift: drift.report(0.0, &vec![None; self.config.slas.len()]),
            drift,
            engine: PredictionEngine::with_cache_for(
                self.config.variant,
                Arc::clone(&self.cache),
                slot,
            ),
            last_fit_error: None,
            last_fit_unstable: false,
            dirty: false,
            events_total: 0,
        };
        let registered = self
            .shared
            .register_tenant(tenant.clone(), Arc::new(build_state(&shard)));
        debug_assert_eq!(registered, slot);
        self.index.insert(tenant.clone(), slot);
        self.shards.push(shard);
        slot
    }

    /// Feeds one telemetry event for the `default` tenant, re-fitting
    /// automatically once per [`ServeConfig::refit_interval`] of event
    /// time.
    pub fn ingest(&mut self, event: TelemetryEvent) {
        self.ingest_slot(0, event);
    }

    /// Feeds one telemetry event for `tenant` (materializing its shard on
    /// first sight), re-fitting automatically once per
    /// [`ServeConfig::refit_interval`] of event time — a fleet-wide
    /// cadence: one batched sweep re-fits every tenant that saw traffic.
    pub fn ingest_for(&mut self, tenant: &TenantId, event: TelemetryEvent) {
        let slot = self.slot_or_create(tenant);
        self.ingest_slot(slot, event);
    }

    fn ingest_slot(&mut self, slot: u32, event: TelemetryEvent) {
        self.obs.ingest_events_total.inc();
        let t = event.time();
        self.now = self.now.max(t);
        self.shared.set_event_time(self.now);
        let shard = &mut self.shards[slot as usize];
        if let TelemetryEvent::Completion { latency, .. } = event {
            shard.drift.record(t, latency);
        }
        shard.calibrator.ingest(&event);
        shard.dirty = true;
        shard.events_total += 1;
        if self.now - self.last_refit >= self.config.refit_interval {
            self.refit_now();
        }
    }

    /// Forces a batched re-fit at the current event time, covering the
    /// `default` tenant plus every tenant that ingested telemetry since
    /// its last re-fit. Fits fan out over [`ServeConfig::refit_workers`]
    /// threads; one delta publish follows. Returns `true` if a new epoch
    /// was installed for the `default` tenant; on failure the previous
    /// epoch (if any) keeps serving, flagged stale.
    pub fn refit_now(&mut self) -> bool {
        let mut slots: Vec<u32> = vec![0];
        slots.extend(
            self.shards
                .iter()
                .filter(|s| s.dirty && s.slot != 0)
                .map(|s| s.slot),
        );
        self.refit_slots(&slots, self.config.refit_workers)
    }

    /// Forces a re-fit of **every** tenant (dirty or not) over `workers`
    /// threads — the full-fleet sweep the benches time. Returns the number
    /// of tenants refitted.
    pub fn refit_fleet(&mut self, workers: usize) -> usize {
        let slots: Vec<u32> = (0..self.shards.len() as u32).collect();
        self.refit_slots(&slots, workers.max(1));
        slots.len()
    }

    /// The batched re-fit: phase 1 fans the pure fit + model build + per-
    /// SLA predictions over the `cos-par` pool (one parallel sweep, not
    /// O(tenants) sequential solves — `try_fit` is `&self`, so shards are
    /// read concurrently); phase 2 serially installs epochs, pre-warms the
    /// cache, and publishes one delta.
    fn refit_slots(&mut self, slots: &[u32], workers: usize) -> bool {
        self.obs.refits_total.inc();
        let _refit_span = self.obs.refit.start_span();
        self.last_refit = self.now;
        let now = self.now;
        let variant = self.config.variant;
        let slas = self.config.slas.clone();

        // Phase 1 — parallel, read-only over the shards.
        let jobs: Vec<(u32, &OnlineCalibrator)> = slots
            .iter()
            .map(|&s| (s, &self.shards[s as usize].calibrator))
            .collect();
        let outcomes: Vec<(u32, FitOutcome)> =
            cos_par::par_map(workers, &jobs, |_, &(slot, cal)| {
                let outcome = match cal.try_fit(now) {
                    Err(e) => Err((e.to_string(), false)),
                    Ok(params) => match SystemModel::new(&params, variant) {
                        Ok(model) => {
                            // Predictions at the snapped SLA — the same value
                            // the cache's evaluation path would produce, so
                            // pre-warming with them is bit-lossless.
                            let preds: Vec<Option<f64>> = slas
                                .iter()
                                .map(|&sla| {
                                    Some(model.fraction_meeting_sla(snap(sla, SLA_QUANTUM).1))
                                })
                                .collect();
                            Ok((params, Arc::new(model), preds))
                        }
                        // Every ModelError is an instability (ρ ≥ 1 in some
                        // queue): the live load exceeds what the last good
                        // epoch can describe.
                        Err(e) => Err((e.to_string(), true)),
                    },
                };
                (slot, outcome)
            });

        // Phase 2 — serial: install epochs (validated-before-install, so
        // an unstable fit never evicts a usable epoch), pre-warm, rebuild
        // changed states, publish one delta.
        let mut installed_default = false;
        let mut changes: Vec<(u32, Arc<SnapshotState>, u64)> = Vec::with_capacity(outcomes.len());
        for (slot, outcome) in outcomes {
            let idx = slot as usize;
            match outcome {
                Ok((params, model, preds)) => {
                    let shard = &mut self.shards[idx];
                    let epoch = shard.engine.install(Arc::new(params), now, Some(model));
                    shard.last_fit_error = None;
                    shard.last_fit_unstable = false;
                    shard.last_drift = shard.drift.report(now, &preds);
                    for (&sla, pred) in slas.iter().zip(&preds) {
                        if let Some(v) = pred {
                            self.cache.prewarm_result(
                                QueryKey {
                                    tenant: slot,
                                    epoch,
                                    rate_q: None,
                                    kind: QueryKind::fraction(sla),
                                },
                                Ok(*v),
                            );
                        }
                    }
                    if slot == 0 {
                        installed_default = true;
                    }
                }
                Err((message, unstable)) => {
                    let shard = &mut self.shards[idx];
                    shard.last_fit_error = Some(message);
                    shard.last_fit_unstable = unstable;
                    shard.engine.mark_stale();
                    let preds: Vec<Option<f64>> = slas
                        .iter()
                        .map(|&sla| shard.engine.fraction_meeting_sla(sla).ok().map(|p| p.value))
                        .collect();
                    shard.last_drift = shard.drift.report(now, &preds);
                }
            }
            let shard = &mut self.shards[idx];
            shard.dirty = false;
            changes.push((slot, Arc::new(build_state(shard)), shard.events_total));
        }
        // Publish on every attempt — success or failure — so snapshot
        // readers observe staleness and fit errors as promptly as the
        // channel path does.
        self.last_publish = self.shared.publish_delta(&changes);
        installed_default
    }

    /// Rebuilds and republishes **every** tenant's state from shard state
    /// alone — no re-fit. Because the internal `build_state` is pure, the result is
    /// bit-identical to the currently published fleet; the property tests
    /// use this to prove delta publication lossless.
    pub fn republish_full(&mut self) -> PublishStats {
        let changes: Vec<(u32, Arc<SnapshotState>, u64)> = self
            .shards
            .iter()
            .map(|s| (s.slot, Arc::new(build_state(s)), s.events_total))
            .collect();
        self.last_publish = self.shared.publish_delta(&changes);
        self.last_publish
    }

    /// A lock-free query endpoint over this service's published fleet.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader::new(Arc::clone(&self.shared))
    }

    /// Predicted fraction of requests meeting the query's SLA (plain,
    /// what-if rate, or erasure-coded), for the query's tenant.
    pub fn attainment(&self, query: &Query) -> Result<Prediction, ServeError> {
        let (rate_q, kind) = query.attainment_question()?;
        let slot = self.slot_of(query.tenant_id())?;
        timed_query(&self.obs, &self.shards[slot as usize].engine, |e| {
            e.answer(rate_q, kind)
        })
    }

    /// Predicted response-latency percentile for the query's tenant.
    pub fn latency_percentile(&self, query: &Query) -> Result<Prediction, ServeError> {
        let (rate_q, kind) = query.percentile_question()?;
        let slot = self.slot_of(query.tenant_id())?;
        timed_query(&self.obs, &self.shards[slot as usize].engine, |e| {
            e.answer(rate_q, kind)
        })
    }

    /// Overload-control headroom (largest admissible rate) for the
    /// query's tenant.
    pub fn admissible_rate(&self, query: &Query) -> Result<Prediction, ServeError> {
        let (rate_q, kind) = query.headroom_question()?;
        let slot = self.slot_of(query.tenant_id())?;
        timed_query(&self.obs, &self.shards[slot as usize].engine, |e| {
            e.answer(rate_q, kind)
        })
    }

    /// Bottleneck ranking for the query's tenant, worst device first.
    pub fn device_ranking(&self, query: &Query) -> Result<Vec<(usize, f64)>, ServeError> {
        let sla = query.ranking_sla()?;
        let slot = self.slot_of(query.tenant_id())?;
        timed_query(&self.obs, &self.shards[slot as usize].engine, |e| {
            e.bottlenecks(sla)
        })
    }

    /// Predicted fraction of requests meeting `sla` at the calibrated
    /// operating point (`default` tenant).
    pub fn predict(&self, sla: f64) -> Result<Prediction, ServeError> {
        timed_query(&self.obs, &self.shards[0].engine, |e| {
            e.fraction_meeting_sla(sla)
        })
    }

    /// What-if: fraction meeting `sla` at a hypothetical total rate
    /// (`default` tenant).
    pub fn predict_at_rate(&self, rate: f64, sla: f64) -> Result<Prediction, ServeError> {
        timed_query(&self.obs, &self.shards[0].engine, |e| {
            e.fraction_at_rate(rate, sla)
        })
    }

    /// Predicted response-latency percentile (e.g. `p = 0.95`), `default`
    /// tenant.
    pub fn percentile(&self, p: f64) -> Result<Prediction, ServeError> {
        timed_query(&self.obs, &self.shards[0].engine, |e| {
            e.latency_percentile(p)
        })
    }

    /// Overload-control headroom up to `upper` req/s (`default` tenant).
    pub fn headroom(&self, goal: SlaGoal, upper: f64) -> Result<Prediction, ServeError> {
        timed_query(&self.obs, &self.shards[0].engine, |e| {
            e.headroom(goal, upper)
        })
    }

    /// Fraction of erasure-coded `(launched, needed)` reads meeting `sla`
    /// (`default` tenant).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= needed <= launched` — network callers are
    /// validated at the gate.
    pub fn coded_fraction(
        &self,
        launched: u16,
        needed: u16,
        sla: f64,
    ) -> Result<Prediction, ServeError> {
        timed_query(&self.obs, &self.shards[0].engine, |e| {
            e.coded_fraction(launched, needed, sla)
        })
    }

    /// Latency percentile of erasure-coded `(launched, needed)` reads
    /// (`default` tenant).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= needed <= launched` — network callers are
    /// validated at the gate.
    pub fn coded_percentile(
        &self,
        launched: u16,
        needed: u16,
        p: f64,
    ) -> Result<Prediction, ServeError> {
        timed_query(&self.obs, &self.shards[0].engine, |e| {
            e.coded_percentile(launched, needed, p)
        })
    }

    /// Bottleneck ranking, worst device first (`default` tenant).
    pub fn bottlenecks(&self, sla: f64) -> Result<Vec<(usize, f64)>, ServeError> {
        timed_query(&self.obs, &self.shards[0].engine, |e| e.bottlenecks(sla))
    }

    /// Submits a batch what-if sweep of the `default` tenant to the worker
    /// pool (non-blocking).
    pub fn sweep(&self, rates: &[f64], slas: Vec<f64>) -> Result<SweepHandle, ServeError> {
        let snap = self.shards[0]
            .engine
            .snapshot()
            .ok_or(ServeError::NotCalibrated)?;
        Ok(self
            .pool
            .submit(snap.params.clone(), self.config.variant, rates, slas))
    }

    /// Direct access to the `default` tenant's memoized engine (e.g. for
    /// cache statistics — the cache is shared fleet-wide).
    pub fn engine(&self) -> &PredictionEngine {
        &self.shards[0].engine
    }

    fn status_slot(&self, slot: u32) -> ServiceStatus {
        let shard = &self.shards[slot as usize];
        let predictions: Vec<Option<f64>> = self
            .config
            .slas
            .iter()
            .map(|&sla| shard.engine.fraction_meeting_sla(sla).ok().map(|p| p.value))
            .collect();
        let snap = shard.engine.snapshot();
        ServiceStatus {
            event_time: self.now,
            epoch: snap.map(|s| s.epoch),
            fitted_at: snap.map(|s| s.fitted_at),
            stale: snap.map(|s| s.stale).unwrap_or(false),
            last_fit_error: shard.last_fit_error.clone(),
            engine: shard.engine.health(),
            drift: shard.drift.report(self.now, &predictions),
        }
    }

    /// Health summary of the `default` tenant: epoch, staleness, cache
    /// counters, drift verdicts.
    pub fn status(&self) -> ServiceStatus {
        self.status_slot(0)
    }

    /// [`status`](SlaService::status) for an arbitrary tenant.
    pub fn status_for(&self, tenant: &TenantId) -> Result<ServiceStatus, ServeError> {
        Ok(self.status_slot(self.slot_of(tenant)?))
    }

    /// Moves the service onto its own thread behind a command channel.
    pub fn spawn(self) -> ServiceHandle {
        let (tx, rx) = channel();
        let reader = self.reader();
        let join = std::thread::Builder::new()
            .name("cos-serve".into())
            .spawn(move || run_service(self, rx))
            .expect("spawn service thread");
        ServiceHandle {
            client: ServiceClient { tx, reader },
            join: Some(join),
        }
    }
}

/// Times one engine query and records its latency into the cache-hit or
/// cache-miss histogram, classified by whether the shared cache's miss
/// counter advanced (i.e. a fresh inversion ran) during the call.
fn timed_query<T>(
    obs: &ServeObs,
    engine: &PredictionEngine,
    query: impl FnOnce(&PredictionEngine) -> T,
) -> T {
    let misses_before = engine.stats().misses;
    let start = Instant::now();
    let out = query(engine);
    let elapsed = start.elapsed();
    if engine.stats().misses > misses_before {
        obs.query_miss.record_duration(elapsed);
    } else {
        obs.query_hit.record_duration(elapsed);
    }
    out
}

enum Command {
    Ingest(TenantId, TelemetryEvent, Option<Instant>),
    Refit(Sender<bool>),
    Attainment(Query, Sender<Result<Prediction, ServeError>>),
    Percentile(Query, Sender<Result<Prediction, ServeError>>),
    Headroom(Query, Sender<Result<Prediction, ServeError>>),
    Ranking(Query, Sender<Result<Vec<(usize, f64)>, ServeError>>),
    Sweep {
        rates: Vec<f64>,
        slas: Vec<f64>,
        reply: Sender<Result<Vec<RatePoint>, ServeError>>,
    },
    Status(TenantId, Sender<Result<ServiceStatus, ServeError>>),
    Flush(Sender<()>),
    Shutdown,
}

fn run_service(mut service: SlaService, rx: Receiver<Command>) -> SlaService {
    while let Ok(command) = rx.recv() {
        match command {
            Command::Ingest(tenant, ev, sent_at) => {
                if let Some(at) = sent_at {
                    service.obs.ingest_lag.record_duration(at.elapsed());
                }
                service.ingest_for(&tenant, ev);
            }
            Command::Refit(reply) => {
                let _ = reply.send(service.refit_now());
            }
            Command::Attainment(query, reply) => {
                let _ = reply.send(service.attainment(&query));
            }
            Command::Percentile(query, reply) => {
                let _ = reply.send(service.latency_percentile(&query));
            }
            Command::Headroom(query, reply) => {
                let _ = reply.send(service.admissible_rate(&query));
            }
            Command::Ranking(query, reply) => {
                let _ = reply.send(service.device_ranking(&query));
            }
            Command::Sweep { rates, slas, reply } => {
                // Submit, then collect off-thread work while staying
                // responsive is not possible without select; the pool does
                // the evaluation, this thread only blocks on collection.
                let _ = reply.send(service.sweep(&rates, slas).map(SweepHandle::wait));
            }
            Command::Status(tenant, reply) => {
                let _ = reply.send(service.status_for(&tenant));
            }
            Command::Flush(reply) => {
                let _ = reply.send(());
            }
            Command::Shutdown => break,
        }
    }
    // Snapshot readers outlive the thread; flip them to `Disconnected` so
    // they agree with the now-dead command channel.
    service.shared.close();
    service
}

/// Tenant-scoped ingest-only endpoint for telemetry producers. Sends never
/// fail: once the service is gone, records are dropped (a dead consumer
/// must not crash the producer).
#[derive(Clone)]
pub struct TelemetrySender {
    tx: Sender<Command>,
    tenant: TenantId,
}

impl TelemetrySender {
    /// Feeds one event to the service, tagged with this sender's tenant.
    pub fn send(&self, event: TelemetryEvent) {
        let _ = self.tx.send(Command::Ingest(
            self.tenant.clone(),
            event,
            Some(Instant::now()),
        ));
    }

    /// The tenant this sender's events are attributed to.
    pub fn tenant(&self) -> &TenantId {
        &self.tenant
    }
}

/// Cloneable query endpoint to a spawned [`SlaService`]: everything a
/// concurrent consumer (e.g. one `cos-gate` connection per thread) needs —
/// ingest, queries, status — without ownership of the service thread.
/// Cloning shares the one command channel; the service stays single-
/// threaded and FIFO-ordered per sender. Once the owning [`ServiceHandle`]
/// shuts the service down, every call returns
/// [`ServeError::Disconnected`].
#[derive(Clone)]
pub struct ServiceClient {
    tx: Sender<Command>,
    reader: SnapshotReader,
}

impl ServiceClient {
    fn ask<T>(&self, build: impl FnOnce(Sender<T>) -> Command) -> Result<T, ServeError> {
        let (reply, rx) = channel();
        self.tx
            .send(build(reply))
            .map_err(|_| ServeError::Disconnected)?;
        rx.recv().map_err(|_| ServeError::Disconnected)
    }

    /// The lock-free snapshot endpoint: evaluates queries on the calling
    /// thread against the worker's published fleet, bit-identical to the
    /// channel methods below. Prefer it for read-heavy consumers.
    pub fn reader(&self) -> SnapshotReader {
        self.reader.clone()
    }

    /// A cloneable ingest-only endpoint for the `default` tenant.
    pub fn telemetry_sender(&self) -> TelemetrySender {
        self.telemetry_sender_for(TenantId::default_tenant())
    }

    /// A cloneable ingest-only endpoint attributing events to `tenant`.
    pub fn telemetry_sender_for(&self, tenant: TenantId) -> TelemetrySender {
        TelemetrySender {
            tx: self.tx.clone(),
            tenant,
        }
    }

    /// Feeds one telemetry event for the `default` tenant (non-blocking).
    pub fn ingest(&self, event: TelemetryEvent) -> Result<(), ServeError> {
        self.ingest_for(&TenantId::default_tenant(), event)
    }

    /// Feeds one telemetry event for `tenant` (non-blocking). The tenant's
    /// shard materializes on first sight.
    pub fn ingest_for(&self, tenant: &TenantId, event: TelemetryEvent) -> Result<(), ServeError> {
        self.tx
            .send(Command::Ingest(tenant.clone(), event, Some(Instant::now())))
            .map_err(|_| ServeError::Disconnected)
    }

    /// Waits until every previously sent event has been processed.
    pub fn flush(&self) -> Result<(), ServeError> {
        self.ask(Command::Flush)
    }

    /// Forces a batched re-fit; `Ok(true)` if a new epoch was installed
    /// for the `default` tenant.
    pub fn refit_now(&self) -> Result<bool, ServeError> {
        self.ask(Command::Refit)
    }

    /// Predicted fraction of requests meeting the query's SLA (plain,
    /// what-if rate, or erasure-coded), for the query's tenant.
    pub fn attainment(&self, query: Query) -> Result<Prediction, ServeError> {
        self.ask(|reply| Command::Attainment(query, reply))?
    }

    /// Predicted response-latency percentile for the query's tenant.
    pub fn latency_percentile(&self, query: Query) -> Result<Prediction, ServeError> {
        self.ask(|reply| Command::Percentile(query, reply))?
    }

    /// Overload-control headroom (largest admissible rate) for the
    /// query's tenant.
    pub fn admissible_rate(&self, query: Query) -> Result<Prediction, ServeError> {
        self.ask(|reply| Command::Headroom(query, reply))?
    }

    /// Bottleneck ranking for the query's tenant, worst device first.
    pub fn device_ranking(&self, query: Query) -> Result<Vec<(usize, f64)>, ServeError> {
        self.ask(|reply| Command::Ranking(query, reply))?
    }

    /// Batch what-if sweep of the `default` tenant, evaluated on the
    /// worker pool.
    pub fn sweep(&self, rates: Vec<f64>, slas: Vec<f64>) -> Result<Vec<RatePoint>, ServeError> {
        self.ask(|reply| Command::Sweep { rates, slas, reply })?
    }

    /// Health summary of the `default` tenant.
    pub fn status(&self) -> Result<ServiceStatus, ServeError> {
        self.ask(|reply| Command::Status(TenantId::default_tenant(), reply))?
    }

    /// Health summary of an arbitrary tenant.
    pub fn status_for(&self, tenant: &TenantId) -> Result<ServiceStatus, ServeError> {
        self.ask(|reply| Command::Status(tenant.clone(), reply))?
    }

    /// Snapshot-path [`attainment`](ServiceClient::attainment): evaluated
    /// on the calling thread, no channel round-trip, bit-identical answer.
    pub fn read_attainment(&self, query: &Query) -> Result<Prediction, ServeError> {
        self.reader.attainment(query)
    }

    /// Snapshot-path
    /// [`latency_percentile`](ServiceClient::latency_percentile).
    pub fn read_latency_percentile(&self, query: &Query) -> Result<Prediction, ServeError> {
        self.reader.latency_percentile(query)
    }

    /// Snapshot-path [`admissible_rate`](ServiceClient::admissible_rate).
    pub fn read_admissible_rate(&self, query: &Query) -> Result<Prediction, ServeError> {
        self.reader.admissible_rate(query)
    }

    /// Snapshot-path [`device_ranking`](ServiceClient::device_ranking).
    pub fn read_device_ranking(&self, query: &Query) -> Result<Vec<(usize, f64)>, ServeError> {
        self.reader.device_ranking(query)
    }

    /// Snapshot-path [`status`](ServiceClient::status): assembled from
    /// the published state without a service-thread round-trip. Drift
    /// verdicts are as of the last re-fit attempt.
    pub fn read_status(&self) -> Result<ServiceStatus, ServeError> {
        self.reader.status()
    }

    /// Snapshot-path [`status_for`](ServiceClient::status_for).
    pub fn read_status_for(&self, tenant: &TenantId) -> Result<ServiceStatus, ServeError> {
        self.reader.status_for(tenant)
    }

    /// Predicted fraction meeting `sla` at the calibrated operating point.
    #[deprecated(note = "use attainment(Query::new().sla(sla))")]
    pub fn predict(&self, sla: f64) -> Result<Prediction, ServeError> {
        self.attainment(Query::new().sla(sla))
    }

    /// What-if: fraction meeting `sla` at a hypothetical total rate.
    #[deprecated(note = "use attainment(Query::new().sla(sla).rate(rate))")]
    pub fn predict_at_rate(&self, rate: f64, sla: f64) -> Result<Prediction, ServeError> {
        self.attainment(Query::new().sla(sla).rate(rate))
    }

    /// Predicted response-latency percentile.
    #[deprecated(note = "use latency_percentile(Query::new().p(p))")]
    pub fn percentile(&self, p: f64) -> Result<Prediction, ServeError> {
        self.latency_percentile(Query::new().p(p))
    }

    /// Overload-control headroom up to `upper` req/s.
    #[deprecated(note = "use admissible_rate(Query::new().sla(..).target(..).upper(upper))")]
    pub fn headroom(&self, goal: SlaGoal, upper: f64) -> Result<Prediction, ServeError> {
        self.admissible_rate(
            Query::new()
                .sla(goal.sla)
                .target(goal.target_fraction)
                .upper(upper),
        )
    }

    /// Fraction of erasure-coded `(launched, needed)` reads meeting `sla`.
    #[deprecated(note = "use attainment(Query::new().sla(sla).n_k(launched, needed))")]
    pub fn coded_fraction(
        &self,
        launched: u16,
        needed: u16,
        sla: f64,
    ) -> Result<Prediction, ServeError> {
        self.attainment(Query::new().sla(sla).n_k(launched, needed))
    }

    /// Latency percentile of erasure-coded `(launched, needed)` reads.
    #[deprecated(note = "use latency_percentile(Query::new().p(p).n_k(launched, needed))")]
    pub fn coded_percentile(
        &self,
        launched: u16,
        needed: u16,
        p: f64,
    ) -> Result<Prediction, ServeError> {
        self.latency_percentile(Query::new().p(p).n_k(launched, needed))
    }

    /// Bottleneck ranking, worst device first.
    #[deprecated(note = "use device_ranking(Query::new().sla(sla))")]
    pub fn bottlenecks(&self, sla: f64) -> Result<Vec<(usize, f64)>, ServeError> {
        self.device_ranking(Query::new().sla(sla))
    }

    /// Snapshot-path predict.
    #[deprecated(note = "use read_attainment(&Query::new().sla(sla))")]
    pub fn read_predict(&self, sla: f64) -> Result<Prediction, ServeError> {
        self.reader.attainment(&Query::new().sla(sla))
    }

    /// Snapshot-path predict-at-rate.
    #[deprecated(note = "use read_attainment(&Query::new().sla(sla).rate(rate))")]
    pub fn read_predict_at_rate(&self, rate: f64, sla: f64) -> Result<Prediction, ServeError> {
        self.reader.attainment(&Query::new().sla(sla).rate(rate))
    }

    /// Snapshot-path percentile.
    #[deprecated(note = "use read_latency_percentile(&Query::new().p(p))")]
    pub fn read_percentile(&self, p: f64) -> Result<Prediction, ServeError> {
        self.reader.latency_percentile(&Query::new().p(p))
    }

    /// Snapshot-path headroom.
    #[deprecated(note = "use read_admissible_rate(&Query::new().sla(..).target(..).upper(upper))")]
    pub fn read_headroom(&self, goal: SlaGoal, upper: f64) -> Result<Prediction, ServeError> {
        self.reader.admissible_rate(
            &Query::new()
                .sla(goal.sla)
                .target(goal.target_fraction)
                .upper(upper),
        )
    }

    /// Snapshot-path coded fraction.
    #[deprecated(note = "use read_attainment(&Query::new().sla(sla).n_k(launched, needed))")]
    pub fn read_coded_fraction(
        &self,
        launched: u16,
        needed: u16,
        sla: f64,
    ) -> Result<Prediction, ServeError> {
        self.reader
            .attainment(&Query::new().sla(sla).n_k(launched, needed))
    }

    /// Snapshot-path coded percentile.
    #[deprecated(note = "use read_latency_percentile(&Query::new().p(p).n_k(launched, needed))")]
    pub fn read_coded_percentile(
        &self,
        launched: u16,
        needed: u16,
        p: f64,
    ) -> Result<Prediction, ServeError> {
        self.reader
            .latency_percentile(&Query::new().p(p).n_k(launched, needed))
    }

    /// Snapshot-path bottleneck ranking.
    #[deprecated(note = "use read_device_ranking(&Query::new().sla(sla))")]
    pub fn read_bottlenecks(&self, sla: f64) -> Result<Vec<(usize, f64)>, ServeError> {
        self.reader.device_ranking(&Query::new().sla(sla))
    }
}

/// Owning handle to a spawned [`SlaService`]: a [`ServiceClient`] plus the
/// join handle. Dropping it shuts the service down.
pub struct ServiceHandle {
    client: ServiceClient,
    join: Option<JoinHandle<SlaService>>,
}

impl ServiceHandle {
    /// A cloneable query endpoint sharing this handle's command channel.
    pub fn client(&self) -> ServiceClient {
        self.client.clone()
    }

    /// A cloneable ingest-only endpoint for the `default` tenant.
    pub fn telemetry_sender(&self) -> TelemetrySender {
        self.client.telemetry_sender()
    }

    /// A cloneable ingest-only endpoint attributing events to `tenant`.
    pub fn telemetry_sender_for(&self, tenant: TenantId) -> TelemetrySender {
        self.client.telemetry_sender_for(tenant)
    }

    /// The lock-free snapshot endpoint (see [`ServiceClient::reader`]).
    pub fn reader(&self) -> SnapshotReader {
        self.client.reader()
    }

    /// Feeds one telemetry event for the `default` tenant (non-blocking).
    pub fn ingest(&self, event: TelemetryEvent) -> Result<(), ServeError> {
        self.client.ingest(event)
    }

    /// Feeds one telemetry event for `tenant` (non-blocking).
    pub fn ingest_for(&self, tenant: &TenantId, event: TelemetryEvent) -> Result<(), ServeError> {
        self.client.ingest_for(tenant, event)
    }

    /// Waits until every previously sent event has been processed.
    pub fn flush(&self) -> Result<(), ServeError> {
        self.client.flush()
    }

    /// Forces a batched re-fit; `Ok(true)` if a new epoch was installed
    /// for the `default` tenant.
    pub fn refit_now(&self) -> Result<bool, ServeError> {
        self.client.refit_now()
    }

    /// Predicted fraction of requests meeting the query's SLA, for the
    /// query's tenant.
    pub fn attainment(&self, query: Query) -> Result<Prediction, ServeError> {
        self.client.attainment(query)
    }

    /// Predicted response-latency percentile for the query's tenant.
    pub fn latency_percentile(&self, query: Query) -> Result<Prediction, ServeError> {
        self.client.latency_percentile(query)
    }

    /// Overload-control headroom for the query's tenant.
    pub fn admissible_rate(&self, query: Query) -> Result<Prediction, ServeError> {
        self.client.admissible_rate(query)
    }

    /// Bottleneck ranking for the query's tenant, worst device first.
    pub fn device_ranking(&self, query: Query) -> Result<Vec<(usize, f64)>, ServeError> {
        self.client.device_ranking(query)
    }

    /// Batch what-if sweep of the `default` tenant.
    pub fn sweep(&self, rates: Vec<f64>, slas: Vec<f64>) -> Result<Vec<RatePoint>, ServeError> {
        self.client.sweep(rates, slas)
    }

    /// Health summary of the `default` tenant.
    pub fn status(&self) -> Result<ServiceStatus, ServeError> {
        self.client.status()
    }

    /// Health summary of an arbitrary tenant.
    pub fn status_for(&self, tenant: &TenantId) -> Result<ServiceStatus, ServeError> {
        self.client.status_for(tenant)
    }

    /// Predicted fraction meeting `sla` at the calibrated operating point.
    #[deprecated(note = "use attainment(Query::new().sla(sla))")]
    pub fn predict(&self, sla: f64) -> Result<Prediction, ServeError> {
        self.client.attainment(Query::new().sla(sla))
    }

    /// What-if: fraction meeting `sla` at a hypothetical total rate.
    #[deprecated(note = "use attainment(Query::new().sla(sla).rate(rate))")]
    pub fn predict_at_rate(&self, rate: f64, sla: f64) -> Result<Prediction, ServeError> {
        self.client.attainment(Query::new().sla(sla).rate(rate))
    }

    /// Predicted response-latency percentile.
    #[deprecated(note = "use latency_percentile(Query::new().p(p))")]
    pub fn percentile(&self, p: f64) -> Result<Prediction, ServeError> {
        self.client.latency_percentile(Query::new().p(p))
    }

    /// Overload-control headroom up to `upper` req/s.
    #[deprecated(note = "use admissible_rate(Query::new().sla(..).target(..).upper(upper))")]
    pub fn headroom(&self, goal: SlaGoal, upper: f64) -> Result<Prediction, ServeError> {
        self.client.admissible_rate(
            Query::new()
                .sla(goal.sla)
                .target(goal.target_fraction)
                .upper(upper),
        )
    }

    /// Fraction of erasure-coded `(launched, needed)` reads meeting `sla`.
    #[deprecated(note = "use attainment(Query::new().sla(sla).n_k(launched, needed))")]
    pub fn coded_fraction(
        &self,
        launched: u16,
        needed: u16,
        sla: f64,
    ) -> Result<Prediction, ServeError> {
        self.client
            .attainment(Query::new().sla(sla).n_k(launched, needed))
    }

    /// Latency percentile of erasure-coded `(launched, needed)` reads.
    #[deprecated(note = "use latency_percentile(Query::new().p(p).n_k(launched, needed))")]
    pub fn coded_percentile(
        &self,
        launched: u16,
        needed: u16,
        p: f64,
    ) -> Result<Prediction, ServeError> {
        self.client
            .latency_percentile(Query::new().p(p).n_k(launched, needed))
    }

    /// Bottleneck ranking, worst device first.
    #[deprecated(note = "use device_ranking(Query::new().sla(sla))")]
    pub fn bottlenecks(&self, sla: f64) -> Result<Vec<(usize, f64)>, ServeError> {
        self.client.device_ranking(Query::new().sla(sla))
    }

    /// Stops the service and returns its final state. Outstanding
    /// [`ServiceClient`]s observe [`ServeError::Disconnected`] afterwards.
    pub fn shutdown(mut self) -> Result<SlaService, ServeError> {
        self.client
            .tx
            .send(Command::Shutdown)
            .map_err(|_| ServeError::Disconnected)?;
        self.join
            .take()
            .ok_or(ServeError::Disconnected)?
            .join()
            .map_err(|_| ServeError::Disconnected)
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        let _ = self.client.tx.send(Command::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::OpClass;
    use cos_distr::{Degenerate, Gamma};
    use cos_queueing::from_distribution;

    fn base() -> CalibrationBase {
        CalibrationBase {
            index_law: from_distribution(Gamma::new(3.0, 250.0)),
            meta_law: from_distribution(Gamma::new(2.5, 312.5)),
            data_law: from_distribution(Gamma::new(3.5, 245.0)),
            parse_be: from_distribution(Degenerate::new(0.0005)),
            parse_fe: from_distribution(Degenerate::new(0.0003)),
            devices: 2,
            processes_per_device: 1,
            frontend_processes: 3,
        }
    }

    /// A deterministic steady stream at `rate` req/s per device with ~30%
    /// disk misses and bimodal completion latencies.
    fn events(rate: f64, duration: f64, devices: usize) -> Vec<TelemetryEvent> {
        let dt = 1.0 / rate;
        let mut out = Vec::new();
        let mut i = 0u64;
        let mut t = 0.0;
        while t < duration {
            for d in 0..devices {
                out.push(TelemetryEvent::Arrival { at: t, device: d });
                out.push(TelemetryEvent::DataRead { at: t, device: d });
                for class in OpClass::ALL {
                    let missed = i % 10 < 3;
                    let latency = if missed { 0.010 } else { 0.000_002 };
                    out.push(TelemetryEvent::Op {
                        at: t,
                        device: d,
                        class,
                        latency,
                    });
                    i += 1;
                }
                let slow = i % 10 < 3;
                out.push(TelemetryEvent::Completion {
                    arrival: t,
                    latency: if slow { 0.030 } else { 0.004 },
                    device: d,
                });
            }
            t += dt;
        }
        out
    }

    #[test]
    fn service_calibrates_from_the_stream_and_answers() {
        let mut service = SlaService::new(base(), ServeConfig::default());
        assert_eq!(service.predict(0.05), Err(ServeError::NotCalibrated));
        for ev in events(40.0, 20.0, 2) {
            service.ingest(ev);
        }
        let p = service.predict(0.05).unwrap();
        assert!(p.value > 0.0 && p.value <= 1.0);
        assert!(!p.stale);
        let status = service.status();
        assert!(status.epoch.is_some());
        assert_eq!(status.drift.len(), 3);
        // ~30% of completions at 30 ms: observed attainment of the 10 ms
        // SLA is ~0.7.
        let obs = status.drift[0].observed.unwrap();
        assert!((obs - 0.7).abs() < 0.05, "observed {obs}");
    }

    #[test]
    fn quiet_stream_degrades_to_stale_not_error() {
        let mut service = SlaService::new(base(), ServeConfig::default());
        for ev in events(40.0, 20.0, 2) {
            service.ingest(ev);
        }
        let fresh = service.predict(0.05).unwrap();
        // One lone event far in the future: the windows have emptied, the
        // forced re-fit fails, and the old epoch serves with the flag set.
        service.ingest(TelemetryEvent::Arrival {
            at: 500.0,
            device: 0,
        });
        assert!(!service.refit_now());
        let stale = service.predict(0.05).unwrap();
        assert!(stale.stale);
        assert_eq!(stale.epoch, fresh.epoch);
        let status = service.status();
        assert!(status.stale);
        assert!(status.last_fit_error.is_some());
    }

    #[test]
    fn sweep_and_headroom_run_against_the_live_epoch() {
        let mut service = SlaService::new(base(), ServeConfig::default());
        for ev in events(40.0, 20.0, 2) {
            service.ingest(ev);
        }
        let points = service
            .sweep(&[40.0, 80.0, 160.0], vec![0.05])
            .unwrap()
            .wait();
        assert_eq!(points.len(), 3);
        assert!(points[0].fractions.is_some());
        let goal = SlaGoal::new(0.100, 0.90);
        let head = service.headroom(goal, 2000.0);
        if let Ok(h) = head {
            assert!(h.value > 0.0);
        }
    }

    #[test]
    fn spawned_service_round_trips_over_the_channel() {
        let service = SlaService::new(base(), ServeConfig::default());
        let handle = service.spawn();
        let sender = handle.telemetry_sender();
        let feeder = std::thread::spawn(move || {
            for ev in events(40.0, 20.0, 2) {
                sender.send(ev);
            }
        });
        feeder.join().unwrap();
        handle.flush().unwrap();
        handle.refit_now().unwrap();
        let p = handle.attainment(Query::new().sla(0.05)).unwrap();
        assert!(p.value > 0.0);
        let again = handle.attainment(Query::new().sla(0.05)).unwrap();
        assert_eq!(p.value.to_bits(), again.value.to_bits());
        let status = handle.status().unwrap();
        assert!(status.engine.cache.hits >= 1);
        let points = handle.sweep(vec![40.0, 80.0], vec![0.05, 0.10]).unwrap();
        assert_eq!(points.len(), 2);
        let final_state = handle.shutdown().unwrap();
        assert!(final_state.event_time() >= 19.0);
    }

    #[test]
    fn cloned_clients_share_the_service_and_outlive_queries() {
        let handle = SlaService::new(base(), ServeConfig::default()).spawn();
        let client = handle.client();
        for ev in events(40.0, 20.0, 2) {
            client.ingest(ev).unwrap();
        }
        client.flush().unwrap();
        let answers: Vec<u64> = (0..4)
            .map(|_| {
                let c = client.clone();
                std::thread::spawn(move || {
                    c.attainment(Query::new().sla(0.05))
                        .unwrap()
                        .value
                        .to_bits()
                })
            })
            .map(|j| j.join().unwrap())
            .collect();
        assert!(answers.windows(2).all(|w| w[0] == w[1]));
        let ranked = client.device_ranking(Query::new().sla(0.05)).unwrap();
        assert_eq!(ranked.len(), 2, "one entry per device");
        assert!(ranked[0].1 <= ranked[1].1, "worst device first");
        drop(handle);
        assert_eq!(
            client.attainment(Query::new().sla(0.05)),
            Err(ServeError::Disconnected)
        );
        assert!(matches!(client.status(), Err(ServeError::Disconnected)));
    }

    #[test]
    fn instruments_record_refits_queries_sweeps_and_ingest() {
        let config = ServeConfig::default();
        let registry = config.obs.clone();
        let mut service = SlaService::new(base(), config);
        let events: Vec<_> = events(40.0, 20.0, 2);
        let n_events = events.len() as u64;
        for ev in events {
            service.ingest(ev);
        }
        service.refit_now();
        let first = service.predict(0.05).unwrap();
        let again = service.predict(0.05).unwrap();
        assert_eq!(first.value.to_bits(), again.value.to_bits());
        service.sweep(&[40.0, 80.0], vec![0.05]).unwrap().wait();

        assert!(registry.merged_histogram("cos_serve_refit_seconds").count() >= 1);
        let miss = registry.merged_histogram("cos_serve_query_seconds");
        assert!(miss.count() >= 2, "both queries timed");
        assert_eq!(
            registry
                .merged_histogram("cos_sweep_queue_wait_seconds")
                .count(),
            2
        );
        let text = registry.render();
        assert!(text.contains("cos_serve_ingest_events_total"));
        assert!(text.contains(&format!("cos_serve_ingest_events_total {n_events}")));
        assert!(text.contains("cos_serve_query_seconds_bucket{cache=\"hit\",le="));
        assert!(text.contains("cos_serve_query_seconds_bucket{cache=\"miss\",le="));
    }

    #[test]
    fn spawned_service_records_ingest_lag() {
        let config = ServeConfig::default();
        let registry = config.obs.clone();
        let handle = SlaService::new(base(), config).spawn();
        for ev in events(40.0, 5.0, 2) {
            handle.ingest(ev).unwrap();
        }
        handle.flush().unwrap();
        let lag = registry.merged_histogram("cos_serve_ingest_lag_seconds");
        assert!(lag.count() > 0, "channel lag recorded per event");
        drop(handle);
    }

    #[test]
    fn builder_accepts_defaults_and_rejects_nonsense() {
        let built = ServeConfig::builder().build().unwrap();
        assert_eq!(built.slas, ServeConfig::default().slas);
        assert!(built.refit_workers >= 1);

        let tweaked = ServeConfig::builder()
            .slas(vec![0.020])
            .refit_interval(1.0)
            .sweep_workers(4)
            .refit_workers(3)
            .build()
            .unwrap();
        assert_eq!(tweaked.slas, vec![0.020]);
        assert_eq!(tweaked.sweep_workers, 4);
        assert_eq!(tweaked.refit_workers, 3);

        let cases: &[(ServeConfigBuilder, &str)] = &[
            (ServeConfig::builder().slas(vec![]), "slas"),
            (ServeConfig::builder().slas(vec![0.05, -0.01]), "slas"),
            (ServeConfig::builder().slas(vec![f64::NAN]), "slas"),
            (ServeConfig::builder().refit_interval(0.0), "refit_interval"),
            (
                ServeConfig::builder().refit_interval(f64::INFINITY),
                "refit_interval",
            ),
            (ServeConfig::builder().sweep_workers(0), "sweep_workers"),
            (ServeConfig::builder().refit_workers(0), "refit_workers"),
            (
                ServeConfig::builder().calibrator(CalibratorConfig {
                    window: 0.0,
                    ..CalibratorConfig::default()
                }),
                "calibrator.window",
            ),
            (
                ServeConfig::builder().calibrator(CalibratorConfig {
                    buckets: 0,
                    ..CalibratorConfig::default()
                }),
                "calibrator.buckets",
            ),
            (
                ServeConfig::builder().drift(DriftConfig {
                    window: -1.0,
                    ..DriftConfig::default()
                }),
                "drift.window",
            ),
            (
                ServeConfig::builder().drift(DriftConfig {
                    buckets: 0,
                    ..DriftConfig::default()
                }),
                "drift.buckets",
            ),
        ];
        for (builder, field) in cases {
            let e = builder.clone().build().unwrap_err();
            assert_eq!(e.field, *field);
            assert!(e.to_string().contains("ServeConfig."), "{e}");
        }
    }

    #[test]
    fn coded_queries_agree_across_channel_and_snapshot_paths() {
        let handle = SlaService::new(base(), ServeConfig::default()).spawn();
        let client = handle.client();
        for ev in events(40.0, 20.0, 2) {
            client.ingest(ev).unwrap();
        }
        client.flush().unwrap();
        client.refit_now().unwrap();

        let frac = client.attainment(Query::new().sla(0.05).n_k(4, 2)).unwrap();
        assert!(frac.value > 0.0 && frac.value <= 1.0);
        let via_reader = client
            .read_attainment(&Query::new().sla(0.05).n_k(4, 2))
            .unwrap();
        assert_eq!(frac.value.to_bits(), via_reader.value.to_bits());

        let p99 = client
            .latency_percentile(Query::new().p(0.99).n_k(4, 2))
            .unwrap();
        assert!(p99.value > 0.0);
        let p99_reader = client
            .read_latency_percentile(&Query::new().p(0.99).n_k(4, 2))
            .unwrap();
        assert_eq!(p99.value.to_bits(), p99_reader.value.to_bits());

        // Needing more of the launched chunks (a max-like join) can only
        // slow the read down: p99 of a 4-of-4 join dominates 2-of-4.
        let p99_44 = client
            .latency_percentile(Query::new().p(0.99).n_k(4, 4))
            .unwrap();
        assert!(p99_44.value >= p99.value);
        drop(handle);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_are_bit_identical_to_the_query_path() {
        let handle = SlaService::new(base(), ServeConfig::default()).spawn();
        let client = handle.client();
        for ev in events(40.0, 20.0, 2) {
            client.ingest(ev).unwrap();
        }
        client.flush().unwrap();
        client.refit_now().unwrap();

        let bits = |p: Prediction| p.value.to_bits();
        assert_eq!(
            bits(client.predict(0.05).unwrap()),
            bits(client.attainment(Query::new().sla(0.05)).unwrap())
        );
        assert_eq!(
            bits(client.predict_at_rate(150.0, 0.05).unwrap()),
            bits(
                client
                    .attainment(Query::new().sla(0.05).rate(150.0))
                    .unwrap()
            )
        );
        assert_eq!(
            bits(client.percentile(0.95).unwrap()),
            bits(client.latency_percentile(Query::new().p(0.95)).unwrap())
        );
        assert_eq!(
            bits(client.coded_fraction(4, 2, 0.05).unwrap()),
            bits(client.attainment(Query::new().sla(0.05).n_k(4, 2)).unwrap())
        );
        let goal = SlaGoal::new(0.100, 0.90);
        let legacy = client.headroom(goal, 2000.0);
        let new = client.admissible_rate(Query::new().sla(0.100).target(0.90).upper(2000.0));
        assert_eq!(legacy.map(bits), new.map(bits));
        assert_eq!(
            client.bottlenecks(0.05).unwrap(),
            client.device_ranking(Query::new().sla(0.05)).unwrap()
        );
        // Snapshot-path shims.
        assert_eq!(
            bits(client.read_predict(0.05).unwrap()),
            bits(client.read_attainment(&Query::new().sla(0.05)).unwrap())
        );
        assert_eq!(
            bits(client.read_percentile(0.95).unwrap()),
            bits(
                client
                    .read_latency_percentile(&Query::new().p(0.95))
                    .unwrap()
            )
        );
        drop(handle);
    }

    #[test]
    fn tenants_are_sharded_and_auto_vivified() {
        let mut service = SlaService::new(base(), ServeConfig::default());
        let blue = TenantId::new("blue").unwrap();
        let green = TenantId::new("green").unwrap();
        // Distinct per-tenant load: blue light, green heavy.
        let blue_events = events(20.0, 20.0, 2);
        let green_events = events(120.0, 20.0, 2);
        for (b, g) in blue_events.into_iter().zip(green_events) {
            service.ingest_for(&blue, b);
            service.ingest_for(&green, g);
        }
        service.refit_now();
        assert_eq!(service.tenants(), 3, "default + blue + green");

        let pb = service
            .attainment(&Query::tenant(blue.clone()).sla(0.05))
            .unwrap();
        let pg = service
            .attainment(&Query::tenant(green.clone()).sla(0.05))
            .unwrap();
        assert!(
            pb.value > pg.value,
            "lighter tenant meets more SLAs: blue {} vs green {}",
            pb.value,
            pg.value
        );

        // Unknown tenant is a typed refusal; default tenant saw no traffic
        // so it is merely uncalibrated.
        let ghost = TenantId::new("ghost").unwrap();
        assert!(matches!(
            service.attainment(&Query::tenant(ghost.clone()).sla(0.05)),
            Err(ServeError::UnknownTenant { .. })
        ));
        assert!(matches!(
            service.status_for(&ghost),
            Err(ServeError::UnknownTenant { .. })
        ));
        assert_eq!(
            service.attainment(&Query::new().sla(0.05)),
            Err(ServeError::NotCalibrated)
        );

        // The reader agrees bit-for-bit per tenant.
        let reader = service.reader();
        let rb = reader.attainment(&Query::tenant(blue).sla(0.05)).unwrap();
        assert_eq!(pb.value.to_bits(), rb.value.to_bits());
        assert!(matches!(
            reader.attainment(&Query::tenant(ghost).sla(0.05)),
            Err(ServeError::UnknownTenant { .. })
        ));
    }

    #[test]
    fn delta_publish_republishes_only_changed_tenants() {
        let mut service = SlaService::new(base(), ServeConfig::default());
        let blue = TenantId::new("blue").unwrap();
        let green = TenantId::new("green").unwrap();
        for ev in events(40.0, 3.0, 2) {
            // Below the refit cadence: no publish yet.
            service.ingest_for(&blue, ev);
            service.ingest_for(&green, ev);
        }
        service.refit_now();
        let reader = service.reader();
        let gen_blue = reader.generation_for(&blue).unwrap();
        let gen_green = reader.generation_for(&green).unwrap();
        let before = reader.fleet().unwrap();

        // Only blue sees new traffic; the next sweep republishes default
        // (always) + blue, leaving green's entry untouched.
        for ev in events(40.0, 3.0, 2) {
            service.ingest_for(&blue, ev);
        }
        service.refit_now();
        let stats = service.last_publish_stats();
        assert_eq!(stats.tenants, 3);
        assert_eq!(stats.republished, 2, "default + blue only");
        assert!(stats.delta_bytes < stats.full_bytes);

        let after = reader.fleet().unwrap();
        assert_eq!(reader.generation_for(&blue).unwrap(), gen_blue + 1);
        assert_eq!(reader.generation_for(&green).unwrap(), gen_green);
        assert!(
            Arc::ptr_eq(
                &before.get(&green).unwrap().state,
                &after.get(&green).unwrap().state
            ),
            "unchanged tenant keeps the exact same published allocation"
        );
    }

    #[test]
    fn full_republish_is_bit_identical_to_the_delta_state() {
        let mut service = SlaService::new(base(), ServeConfig::default());
        let blue = TenantId::new("blue").unwrap();
        for ev in events(40.0, 8.0, 2) {
            service.ingest_for(&blue, ev);
            service.ingest(ev);
        }
        service.refit_now();
        let reader = service.reader();
        let delta_fleet = reader.fleet().unwrap();
        let stats = service.republish_full();
        assert_eq!(stats.republished, stats.tenants);
        let full_fleet = reader.fleet().unwrap();
        for (d, f) in delta_fleet.entries().iter().zip(full_fleet.entries()) {
            assert_eq!(d.tenant, f.tenant);
            let (ds, fs) = (&d.state, &f.state);
            assert_eq!(
                ds.snapshot.as_ref().map(|s| s.epoch),
                fs.snapshot.as_ref().map(|s| s.epoch)
            );
            assert_eq!(ds.last_fit_error, fs.last_fit_error);
            assert_eq!(ds.failed_refits, fs.failed_refits);
            assert_eq!(ds.unstable_fit, fs.unstable_fit);
            assert_eq!(ds.drift.len(), fs.drift.len());
            for (a, b) in ds.drift.iter().zip(&fs.drift) {
                assert_eq!(a.sla.to_bits(), b.sla.to_bits());
                assert_eq!(a.observed.map(f64::to_bits), b.observed.map(f64::to_bits));
                assert_eq!(a.predicted.map(f64::to_bits), b.predicted.map(f64::to_bits));
                assert_eq!(a.drifted, b.drifted);
            }
        }
    }

    #[test]
    fn tenant_scoped_telemetry_senders_route_to_their_shard() {
        let handle = SlaService::new(base(), ServeConfig::default()).spawn();
        let blue = TenantId::new("blue").unwrap();
        let sender = handle.telemetry_sender_for(blue.clone());
        assert_eq!(sender.tenant(), &blue);
        for ev in events(40.0, 20.0, 2) {
            sender.send(ev);
        }
        handle.flush().unwrap();
        handle.refit_now().unwrap();
        let p = handle
            .attainment(Query::tenant(blue.clone()).sla(0.05))
            .unwrap();
        assert!(p.value > 0.0);
        let status = handle.status_for(&blue).unwrap();
        assert!(status.epoch.is_some());
        // The default tenant saw nothing.
        assert_eq!(
            handle.attainment(Query::new().sla(0.05)),
            Err(ServeError::NotCalibrated)
        );
        drop(handle);
    }

    #[test]
    fn dropped_handle_shuts_the_thread_down() {
        let handle = SlaService::new(base(), ServeConfig::default()).spawn();
        let sender = handle.telemetry_sender();
        drop(handle);
        // The ingest endpoint must not panic after shutdown.
        sender.send(TelemetryEvent::Arrival { at: 0.0, device: 0 });
    }
}
