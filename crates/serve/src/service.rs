//! The service itself: telemetry in, predictions out.
//!
//! [`SlaService`] is the synchronous state machine — ingest advances event
//! time, re-fits on a fixed event-time cadence, and queries go through the
//! memoized engine. [`SlaService::spawn`] wraps it in a dedicated thread
//! behind a single command channel (`std::sync::mpsc` has no `select`, so
//! every interaction — telemetry, queries, control — is one `enum`
//! message; FIFO ordering doubles as the flush barrier). The returned
//! [`ServiceHandle`] is the client side; [`TelemetrySender`] is a cheap
//! cloneable ingest-only endpoint to hand to a telemetry source.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use cos_model::{ModelVariant, SlaGoal, SystemModel};
use cos_obs::Registry;

use crate::cache::InversionCache;
use crate::calibrate::{CalibrationBase, CalibratorConfig, OnlineCalibrator};
use crate::drift::{DriftConfig, DriftMonitor, DriftReport};
use crate::engine::{EngineHealth, Prediction, PredictionEngine};
use crate::error::ServeError;
use crate::obs::ServeObs;
use crate::snapshot::{SnapshotReader, SnapshotShared, SnapshotState};
use crate::telemetry::TelemetryEvent;
use crate::worker::{RatePoint, SweepHandle, SweepPool};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// SLA bounds (seconds) tracked for drift detection and dashboards.
    pub slas: Vec<f64>,
    /// Model variant used for every prediction.
    pub variant: ModelVariant,
    /// Sliding-window estimator knobs.
    pub calibrator: CalibratorConfig,
    /// Drift detection knobs.
    pub drift: DriftConfig,
    /// Event-time seconds between automatic re-fits.
    pub refit_interval: f64,
    /// Worker threads of the what-if sweep pool.
    pub sweep_workers: usize,
    /// Instrument registry the service records into (share one registry
    /// between the service and a gate to get a single `/metrics` view).
    pub obs: Registry,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            slas: vec![0.010, 0.050, 0.100],
            variant: ModelVariant::Full,
            calibrator: CalibratorConfig::default(),
            drift: DriftConfig::default(),
            refit_interval: 5.0,
            sweep_workers: 2,
            obs: Registry::new(),
        }
    }
}

impl ServeConfig {
    /// Starts a validating builder seeded with the defaults.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::default(),
        }
    }
}

/// A [`ServeConfig`] value the builder refused to produce, with the field
/// and the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidConfig {
    /// The offending field, as named on [`ServeConfig`].
    pub field: &'static str,
    /// Why the value is nonsensical.
    pub reason: String,
}

impl std::fmt::Display for InvalidConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid ServeConfig.{}: {}", self.field, self.reason)
    }
}

impl std::error::Error for InvalidConfig {}

/// Builder for [`ServeConfig`] that rejects nonsensical values at
/// [`build`](ServeConfigBuilder::build) time: a non-positive SLA or refit
/// interval would silently disable re-fitting; a zero-bucket window would
/// divide by zero deep inside the calibrator.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// SLA bounds in seconds (each must be finite and positive).
    pub fn slas(mut self, slas: Vec<f64>) -> Self {
        self.config.slas = slas;
        self
    }

    /// Model variant used for every prediction.
    pub fn variant(mut self, variant: ModelVariant) -> Self {
        self.config.variant = variant;
        self
    }

    /// Sliding-window estimator knobs (window > 0, buckets ≥ 1).
    pub fn calibrator(mut self, calibrator: CalibratorConfig) -> Self {
        self.config.calibrator = calibrator;
        self
    }

    /// Drift detection knobs (window > 0, buckets ≥ 1).
    pub fn drift(mut self, drift: DriftConfig) -> Self {
        self.config.drift = drift;
        self
    }

    /// Event-time seconds between automatic re-fits (finite, > 0).
    pub fn refit_interval(mut self, seconds: f64) -> Self {
        self.config.refit_interval = seconds;
        self
    }

    /// Worker threads of the what-if sweep pool (≥ 1).
    pub fn sweep_workers(mut self, workers: usize) -> Self {
        self.config.sweep_workers = workers;
        self
    }

    /// Instrument registry the service records into.
    pub fn obs(mut self, registry: Registry) -> Self {
        self.config.obs = registry;
        self
    }

    /// Validates and produces the config.
    pub fn build(self) -> Result<ServeConfig, InvalidConfig> {
        let err = |field: &'static str, reason: String| Err(InvalidConfig { field, reason });
        let c = &self.config;
        if c.slas.is_empty() {
            return err("slas", "at least one SLA bound is required".into());
        }
        if let Some(bad) = c.slas.iter().find(|s| !s.is_finite() || **s <= 0.0) {
            return err(
                "slas",
                format!("SLA bound {bad} is not finite and positive"),
            );
        }
        if !c.refit_interval.is_finite() || c.refit_interval <= 0.0 {
            return err(
                "refit_interval",
                format!("{} must be finite and positive", c.refit_interval),
            );
        }
        if c.sweep_workers == 0 {
            return err("sweep_workers", "must be at least 1".into());
        }
        if !c.calibrator.window.is_finite() || c.calibrator.window <= 0.0 {
            return err(
                "calibrator.window",
                format!("{} must be finite and positive", c.calibrator.window),
            );
        }
        if c.calibrator.buckets == 0 {
            return err("calibrator.buckets", "must be at least 1".into());
        }
        if !c.drift.window.is_finite() || c.drift.window <= 0.0 {
            return err(
                "drift.window",
                format!("{} must be finite and positive", c.drift.window),
            );
        }
        if c.drift.buckets == 0 {
            return err("drift.buckets", "must be at least 1".into());
        }
        Ok(self.config)
    }
}

/// A point-in-time health summary.
#[derive(Debug, Clone)]
pub struct ServiceStatus {
    /// Latest event time seen on the stream.
    pub event_time: f64,
    /// Installed calibration epoch (`None` while warming up).
    pub epoch: Option<u64>,
    /// Event time of the installed epoch's fit.
    pub fitted_at: Option<f64>,
    /// Whether the epoch is stale (the most recent re-fit failed).
    pub stale: bool,
    /// Why the most recent failed re-fit failed (`None` after a success).
    pub last_fit_error: Option<String>,
    /// Merged engine counters: inversion-memo hits/misses and failed
    /// re-fits, snapshotted together so `/metrics` needs one round-trip.
    pub engine: EngineHealth,
    /// Per-SLA drift verdicts (observed vs predicted attainment).
    pub drift: Vec<DriftReport>,
}

impl ServiceStatus {
    /// Whether any tracked SLA has drifted (observed vs predicted gap over
    /// tolerance with enough samples).
    pub fn any_drifted(&self) -> bool {
        self.drift.iter().any(|d| d.drifted)
    }
}

/// The synchronous prediction service.
pub struct SlaService {
    config: ServeConfig,
    calibrator: OnlineCalibrator,
    drift: DriftMonitor,
    engine: PredictionEngine,
    pool: SweepPool,
    obs: ServeObs,
    shared: Arc<SnapshotShared>,
    now: f64,
    last_refit: f64,
    last_fit_error: Option<String>,
    last_fit_unstable: bool,
}

impl SlaService {
    /// Creates a service over `base`'s topology.
    pub fn new(base: CalibrationBase, config: ServeConfig) -> Self {
        let obs = ServeObs::register(&config.obs);
        let cache = Arc::new(InversionCache::default());
        let drift = DriftMonitor::new(config.slas.clone(), config.drift.clone());
        let shared = Arc::new(SnapshotShared::new(
            config.variant,
            Arc::clone(&cache),
            obs.clone(),
            SnapshotState {
                snapshot: None,
                last_fit_error: None,
                failed_refits: 0,
                unstable_fit: false,
                drift: drift.report(0.0, &vec![None; config.slas.len()]),
            },
        ));
        SlaService {
            calibrator: OnlineCalibrator::new(base, config.calibrator.clone()),
            drift,
            engine: PredictionEngine::with_cache(config.variant, cache),
            pool: SweepPool::with_timing(
                config.sweep_workers,
                Some(obs.sweep_queue_wait.clone()),
                Some(obs.sweep_task.clone()),
            ),
            obs,
            shared,
            now: 0.0,
            last_refit: 0.0,
            last_fit_error: None,
            last_fit_unstable: false,
            config,
        }
    }

    /// The service configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Latest event time seen on the stream.
    pub fn event_time(&self) -> f64 {
        self.now
    }

    /// Feeds one telemetry event, re-fitting automatically once per
    /// [`ServeConfig::refit_interval`] of event time.
    pub fn ingest(&mut self, event: TelemetryEvent) {
        self.obs.ingest_events_total.inc();
        let t = event.time();
        self.now = self.now.max(t);
        self.shared.set_event_time(self.now);
        if let TelemetryEvent::Completion { latency, .. } = event {
            self.drift.record(t, latency);
        }
        self.calibrator.ingest(&event);
        if self.now - self.last_refit >= self.config.refit_interval {
            self.refit_now();
        }
    }

    /// Forces a re-fit at the current event time. Returns `true` if a new
    /// epoch was installed; on failure the previous epoch (if any) keeps
    /// serving, flagged stale.
    pub fn refit_now(&mut self) -> bool {
        self.obs.refits_total.inc();
        let installed = {
            let _refit_span = self.obs.refit.start_span();
            self.last_refit = self.now;
            let fitted = match self.calibrator.try_fit(self.now) {
                Ok(params) => Some(params),
                Err(e) => {
                    self.last_fit_error = Some(e.to_string());
                    self.last_fit_unstable = false;
                    self.engine.mark_stale();
                    None
                }
            };
            // Validate stability *before* installing: an unstable fit (a
            // load spike pushing ρ ≥ 1 through the window) must not evict
            // a usable epoch. The successfully built model pre-warms the
            // engine.
            match fitted {
                None => false,
                Some(fitted) => match SystemModel::new(&fitted, self.config.variant) {
                    Ok(model) => {
                        self.engine
                            .install(Arc::new(fitted), self.now, Some(Arc::new(model)));
                        self.last_fit_error = None;
                        self.last_fit_unstable = false;
                        true
                    }
                    Err(e) => {
                        // Every ModelError is an instability (ρ ≥ 1 in some
                        // queue): the live load exceeds what the last good
                        // epoch can describe.
                        self.last_fit_error = Some(e.to_string());
                        self.last_fit_unstable = true;
                        self.engine.mark_stale();
                        false
                    }
                },
            }
        };
        // Publish on every attempt — success or failure — so snapshot
        // readers observe staleness and fit errors as promptly as the
        // channel path does.
        self.publish_state();
        installed
    }

    /// Pushes the engine's current epoch, fit-failure state, and fresh
    /// drift verdicts to the lock-free readers. The per-SLA predictions
    /// computed for the drift report double as a cache pre-warm: the
    /// dashboard's hottest keys are resident before the first reader asks.
    fn publish_state(&mut self) {
        let predictions: Vec<Option<f64>> = self
            .config
            .slas
            .iter()
            .map(|&sla| self.engine.fraction_meeting_sla(sla).ok().map(|p| p.value))
            .collect();
        self.shared.publish(SnapshotState {
            snapshot: self.engine.snapshot().cloned(),
            last_fit_error: self.last_fit_error.clone(),
            failed_refits: self.engine.failed_refits(),
            unstable_fit: self.last_fit_unstable,
            drift: self.drift.report(self.now, &predictions),
        });
    }

    /// A lock-free query endpoint over this service's published epochs.
    pub fn reader(&self) -> SnapshotReader {
        SnapshotReader::new(Arc::clone(&self.shared))
    }

    /// Predicted fraction of requests meeting `sla` at the calibrated
    /// operating point.
    pub fn predict(&mut self, sla: f64) -> Result<Prediction, ServeError> {
        timed_query(&self.obs, &mut self.engine, |e| e.fraction_meeting_sla(sla))
    }

    /// What-if: fraction meeting `sla` at a hypothetical total rate.
    pub fn predict_at_rate(&mut self, rate: f64, sla: f64) -> Result<Prediction, ServeError> {
        timed_query(&self.obs, &mut self.engine, |e| {
            e.fraction_at_rate(rate, sla)
        })
    }

    /// Predicted response-latency percentile (e.g. `p = 0.95`).
    pub fn percentile(&mut self, p: f64) -> Result<Prediction, ServeError> {
        timed_query(&self.obs, &mut self.engine, |e| e.latency_percentile(p))
    }

    /// Overload-control headroom up to `upper` req/s.
    pub fn headroom(&mut self, goal: SlaGoal, upper: f64) -> Result<Prediction, ServeError> {
        timed_query(&self.obs, &mut self.engine, |e| e.headroom(goal, upper))
    }

    /// Fraction of erasure-coded `(launched, needed)` reads meeting `sla`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= needed <= launched` — network callers are
    /// validated at the gate.
    pub fn coded_fraction(
        &mut self,
        launched: u16,
        needed: u16,
        sla: f64,
    ) -> Result<Prediction, ServeError> {
        timed_query(&self.obs, &mut self.engine, |e| {
            e.coded_fraction(launched, needed, sla)
        })
    }

    /// Latency percentile of erasure-coded `(launched, needed)` reads.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= needed <= launched` — network callers are
    /// validated at the gate.
    pub fn coded_percentile(
        &mut self,
        launched: u16,
        needed: u16,
        p: f64,
    ) -> Result<Prediction, ServeError> {
        timed_query(&self.obs, &mut self.engine, |e| {
            e.coded_percentile(launched, needed, p)
        })
    }

    /// Bottleneck ranking, worst device first.
    pub fn bottlenecks(&mut self, sla: f64) -> Result<Vec<(usize, f64)>, ServeError> {
        timed_query(&self.obs, &mut self.engine, |e| e.bottlenecks(sla))
    }

    /// Submits a batch what-if sweep to the worker pool (non-blocking).
    pub fn sweep(&self, rates: &[f64], slas: Vec<f64>) -> Result<SweepHandle, ServeError> {
        let snap = self.engine.snapshot().ok_or(ServeError::NotCalibrated)?;
        Ok(self
            .pool
            .submit(snap.params.clone(), self.config.variant, rates, slas))
    }

    /// Direct access to the memoized engine (e.g. for cache statistics).
    pub fn engine(&self) -> &PredictionEngine {
        &self.engine
    }

    /// Health summary: epoch, staleness, cache counters, drift verdicts.
    pub fn status(&mut self) -> ServiceStatus {
        let slas = self.config.slas.clone();
        let predictions: Vec<Option<f64>> = slas
            .iter()
            .map(|&sla| self.engine.fraction_meeting_sla(sla).ok().map(|p| p.value))
            .collect();
        let snap = self.engine.snapshot();
        ServiceStatus {
            event_time: self.now,
            epoch: snap.map(|s| s.epoch),
            fitted_at: snap.map(|s| s.fitted_at),
            stale: snap.map(|s| s.stale).unwrap_or(false),
            last_fit_error: self.last_fit_error.clone(),
            engine: self.engine.health(),
            drift: self.drift.report(self.now, &predictions),
        }
    }

    /// Moves the service onto its own thread behind a command channel.
    pub fn spawn(self) -> ServiceHandle {
        let (tx, rx) = channel();
        let reader = self.reader();
        let join = std::thread::Builder::new()
            .name("cos-serve".into())
            .spawn(move || run_service(self, rx))
            .expect("spawn service thread");
        ServiceHandle {
            client: ServiceClient { tx, reader },
            join: Some(join),
        }
    }
}

/// Times one engine query and records its latency into the cache-hit or
/// cache-miss histogram, classified by whether the engine's miss counter
/// advanced (i.e. a fresh inversion ran) during the call.
fn timed_query<T>(
    obs: &ServeObs,
    engine: &mut PredictionEngine,
    query: impl FnOnce(&mut PredictionEngine) -> T,
) -> T {
    let misses_before = engine.stats().misses;
    let start = Instant::now();
    let out = query(engine);
    let elapsed = start.elapsed();
    if engine.stats().misses > misses_before {
        obs.query_miss.record_duration(elapsed);
    } else {
        obs.query_hit.record_duration(elapsed);
    }
    out
}

enum Command {
    Ingest(TelemetryEvent, Option<Instant>),
    Refit(Sender<bool>),
    Predict {
        sla: f64,
        reply: Sender<Result<Prediction, ServeError>>,
    },
    PredictAtRate {
        rate: f64,
        sla: f64,
        reply: Sender<Result<Prediction, ServeError>>,
    },
    Percentile {
        p: f64,
        reply: Sender<Result<Prediction, ServeError>>,
    },
    Headroom {
        goal: SlaGoal,
        upper: f64,
        reply: Sender<Result<Prediction, ServeError>>,
    },
    CodedFraction {
        launched: u16,
        needed: u16,
        sla: f64,
        reply: Sender<Result<Prediction, ServeError>>,
    },
    CodedPercentile {
        launched: u16,
        needed: u16,
        p: f64,
        reply: Sender<Result<Prediction, ServeError>>,
    },
    Bottlenecks {
        sla: f64,
        reply: Sender<Result<Vec<(usize, f64)>, ServeError>>,
    },
    Sweep {
        rates: Vec<f64>,
        slas: Vec<f64>,
        reply: Sender<Result<Vec<RatePoint>, ServeError>>,
    },
    Status(Sender<ServiceStatus>),
    Flush(Sender<()>),
    Shutdown,
}

fn run_service(mut service: SlaService, rx: Receiver<Command>) -> SlaService {
    while let Ok(command) = rx.recv() {
        match command {
            Command::Ingest(ev, sent_at) => {
                if let Some(at) = sent_at {
                    service.obs.ingest_lag.record_duration(at.elapsed());
                }
                service.ingest(ev);
            }
            Command::Refit(reply) => {
                let _ = reply.send(service.refit_now());
            }
            Command::Predict { sla, reply } => {
                let _ = reply.send(service.predict(sla));
            }
            Command::PredictAtRate { rate, sla, reply } => {
                let _ = reply.send(service.predict_at_rate(rate, sla));
            }
            Command::Percentile { p, reply } => {
                let _ = reply.send(service.percentile(p));
            }
            Command::Headroom { goal, upper, reply } => {
                let _ = reply.send(service.headroom(goal, upper));
            }
            Command::CodedFraction {
                launched,
                needed,
                sla,
                reply,
            } => {
                let _ = reply.send(service.coded_fraction(launched, needed, sla));
            }
            Command::CodedPercentile {
                launched,
                needed,
                p,
                reply,
            } => {
                let _ = reply.send(service.coded_percentile(launched, needed, p));
            }
            Command::Bottlenecks { sla, reply } => {
                let _ = reply.send(service.bottlenecks(sla));
            }
            Command::Sweep { rates, slas, reply } => {
                // Submit, then collect off-thread work while staying
                // responsive is not possible without select; the pool does
                // the evaluation, this thread only blocks on collection.
                let _ = reply.send(service.sweep(&rates, slas).map(SweepHandle::wait));
            }
            Command::Status(reply) => {
                let _ = reply.send(service.status());
            }
            Command::Flush(reply) => {
                let _ = reply.send(());
            }
            Command::Shutdown => break,
        }
    }
    // Snapshot readers outlive the thread; flip them to `Disconnected` so
    // they agree with the now-dead command channel.
    service.shared.close();
    service
}

/// Ingest-only endpoint for telemetry producers. Sends never fail: once the
/// service is gone, records are dropped (a dead consumer must not crash the
/// producer).
#[derive(Clone)]
pub struct TelemetrySender(Sender<Command>);

impl TelemetrySender {
    /// Feeds one event to the service.
    pub fn send(&self, event: TelemetryEvent) {
        let _ = self.0.send(Command::Ingest(event, Some(Instant::now())));
    }
}

/// Cloneable query endpoint to a spawned [`SlaService`]: everything a
/// concurrent consumer (e.g. one `cos-gate` connection per thread) needs —
/// ingest, queries, status — without ownership of the service thread.
/// Cloning shares the one command channel; the service stays single-
/// threaded and FIFO-ordered per sender. Once the owning [`ServiceHandle`]
/// shuts the service down, every call returns
/// [`ServeError::Disconnected`].
#[derive(Clone)]
pub struct ServiceClient {
    tx: Sender<Command>,
    reader: SnapshotReader,
}

impl ServiceClient {
    fn ask<T>(&self, build: impl FnOnce(Sender<T>) -> Command) -> Result<T, ServeError> {
        let (reply, rx) = channel();
        self.tx
            .send(build(reply))
            .map_err(|_| ServeError::Disconnected)?;
        rx.recv().map_err(|_| ServeError::Disconnected)
    }

    /// The lock-free snapshot endpoint: evaluates queries on the calling
    /// thread against the worker's published epoch, bit-identical to the
    /// channel methods below. Prefer it for read-heavy consumers.
    pub fn reader(&self) -> SnapshotReader {
        self.reader.clone()
    }

    /// A cloneable ingest-only endpoint.
    pub fn telemetry_sender(&self) -> TelemetrySender {
        TelemetrySender(self.tx.clone())
    }

    /// Feeds one telemetry event (non-blocking).
    pub fn ingest(&self, event: TelemetryEvent) -> Result<(), ServeError> {
        self.tx
            .send(Command::Ingest(event, Some(Instant::now())))
            .map_err(|_| ServeError::Disconnected)
    }

    /// Waits until every previously sent event has been processed.
    pub fn flush(&self) -> Result<(), ServeError> {
        self.ask(Command::Flush)
    }

    /// Forces a re-fit; `Ok(true)` if a new epoch was installed.
    pub fn refit_now(&self) -> Result<bool, ServeError> {
        self.ask(Command::Refit)
    }

    /// Predicted fraction meeting `sla` at the calibrated operating point.
    pub fn predict(&self, sla: f64) -> Result<Prediction, ServeError> {
        self.ask(|reply| Command::Predict { sla, reply })?
    }

    /// What-if: fraction meeting `sla` at a hypothetical total rate.
    pub fn predict_at_rate(&self, rate: f64, sla: f64) -> Result<Prediction, ServeError> {
        self.ask(|reply| Command::PredictAtRate { rate, sla, reply })?
    }

    /// Predicted response-latency percentile.
    pub fn percentile(&self, p: f64) -> Result<Prediction, ServeError> {
        self.ask(|reply| Command::Percentile { p, reply })?
    }

    /// Overload-control headroom up to `upper` req/s.
    pub fn headroom(&self, goal: SlaGoal, upper: f64) -> Result<Prediction, ServeError> {
        self.ask(|reply| Command::Headroom { goal, upper, reply })?
    }

    /// Fraction of erasure-coded `(launched, needed)` reads meeting `sla`.
    ///
    /// # Panics
    ///
    /// The service thread panics unless `1 <= needed <= launched` —
    /// network callers are validated at the gate.
    pub fn coded_fraction(
        &self,
        launched: u16,
        needed: u16,
        sla: f64,
    ) -> Result<Prediction, ServeError> {
        self.ask(|reply| Command::CodedFraction {
            launched,
            needed,
            sla,
            reply,
        })?
    }

    /// Latency percentile of erasure-coded `(launched, needed)` reads.
    ///
    /// # Panics
    ///
    /// The service thread panics unless `1 <= needed <= launched` —
    /// network callers are validated at the gate.
    pub fn coded_percentile(
        &self,
        launched: u16,
        needed: u16,
        p: f64,
    ) -> Result<Prediction, ServeError> {
        self.ask(|reply| Command::CodedPercentile {
            launched,
            needed,
            p,
            reply,
        })?
    }

    /// Bottleneck ranking, worst device first.
    pub fn bottlenecks(&self, sla: f64) -> Result<Vec<(usize, f64)>, ServeError> {
        self.ask(|reply| Command::Bottlenecks { sla, reply })?
    }

    /// Batch what-if sweep, evaluated on the worker pool.
    pub fn sweep(&self, rates: Vec<f64>, slas: Vec<f64>) -> Result<Vec<RatePoint>, ServeError> {
        self.ask(|reply| Command::Sweep { rates, slas, reply })?
    }

    /// Health summary.
    pub fn status(&self) -> Result<ServiceStatus, ServeError> {
        self.ask(Command::Status)
    }

    /// Snapshot-path [`predict`](ServiceClient::predict): evaluated on
    /// the calling thread, no channel round-trip, bit-identical answer.
    pub fn read_predict(&self, sla: f64) -> Result<Prediction, ServeError> {
        self.reader.predict(sla)
    }

    /// Snapshot-path [`predict_at_rate`](ServiceClient::predict_at_rate).
    pub fn read_predict_at_rate(&self, rate: f64, sla: f64) -> Result<Prediction, ServeError> {
        self.reader.predict_at_rate(rate, sla)
    }

    /// Snapshot-path [`percentile`](ServiceClient::percentile).
    pub fn read_percentile(&self, p: f64) -> Result<Prediction, ServeError> {
        self.reader.percentile(p)
    }

    /// Snapshot-path [`headroom`](ServiceClient::headroom).
    pub fn read_headroom(&self, goal: SlaGoal, upper: f64) -> Result<Prediction, ServeError> {
        self.reader.headroom(goal, upper)
    }

    /// Snapshot-path [`coded_fraction`](ServiceClient::coded_fraction).
    pub fn read_coded_fraction(
        &self,
        launched: u16,
        needed: u16,
        sla: f64,
    ) -> Result<Prediction, ServeError> {
        self.reader.coded_fraction(launched, needed, sla)
    }

    /// Snapshot-path [`coded_percentile`](ServiceClient::coded_percentile).
    pub fn read_coded_percentile(
        &self,
        launched: u16,
        needed: u16,
        p: f64,
    ) -> Result<Prediction, ServeError> {
        self.reader.coded_percentile(launched, needed, p)
    }

    /// Snapshot-path [`bottlenecks`](ServiceClient::bottlenecks).
    pub fn read_bottlenecks(&self, sla: f64) -> Result<Vec<(usize, f64)>, ServeError> {
        self.reader.bottlenecks(sla)
    }

    /// Snapshot-path [`status`](ServiceClient::status): assembled from
    /// the published state without a service-thread round-trip. Drift
    /// verdicts are as of the last re-fit attempt.
    pub fn read_status(&self) -> Result<ServiceStatus, ServeError> {
        self.reader.status()
    }
}

/// Owning handle to a spawned [`SlaService`]: a [`ServiceClient`] plus the
/// join handle. Dropping it shuts the service down.
pub struct ServiceHandle {
    client: ServiceClient,
    join: Option<JoinHandle<SlaService>>,
}

impl ServiceHandle {
    /// A cloneable query endpoint sharing this handle's command channel.
    pub fn client(&self) -> ServiceClient {
        self.client.clone()
    }

    /// A cloneable ingest-only endpoint.
    pub fn telemetry_sender(&self) -> TelemetrySender {
        self.client.telemetry_sender()
    }

    /// The lock-free snapshot endpoint (see [`ServiceClient::reader`]).
    pub fn reader(&self) -> SnapshotReader {
        self.client.reader()
    }

    /// Feeds one telemetry event (non-blocking).
    pub fn ingest(&self, event: TelemetryEvent) -> Result<(), ServeError> {
        self.client.ingest(event)
    }

    /// Waits until every previously sent event has been processed.
    pub fn flush(&self) -> Result<(), ServeError> {
        self.client.flush()
    }

    /// Forces a re-fit; `Ok(true)` if a new epoch was installed.
    pub fn refit_now(&self) -> Result<bool, ServeError> {
        self.client.refit_now()
    }

    /// Predicted fraction meeting `sla` at the calibrated operating point.
    pub fn predict(&self, sla: f64) -> Result<Prediction, ServeError> {
        self.client.predict(sla)
    }

    /// What-if: fraction meeting `sla` at a hypothetical total rate.
    pub fn predict_at_rate(&self, rate: f64, sla: f64) -> Result<Prediction, ServeError> {
        self.client.predict_at_rate(rate, sla)
    }

    /// Predicted response-latency percentile.
    pub fn percentile(&self, p: f64) -> Result<Prediction, ServeError> {
        self.client.percentile(p)
    }

    /// Overload-control headroom up to `upper` req/s.
    pub fn headroom(&self, goal: SlaGoal, upper: f64) -> Result<Prediction, ServeError> {
        self.client.headroom(goal, upper)
    }

    /// Fraction of erasure-coded `(launched, needed)` reads meeting `sla`.
    pub fn coded_fraction(
        &self,
        launched: u16,
        needed: u16,
        sla: f64,
    ) -> Result<Prediction, ServeError> {
        self.client.coded_fraction(launched, needed, sla)
    }

    /// Latency percentile of erasure-coded `(launched, needed)` reads.
    pub fn coded_percentile(
        &self,
        launched: u16,
        needed: u16,
        p: f64,
    ) -> Result<Prediction, ServeError> {
        self.client.coded_percentile(launched, needed, p)
    }

    /// Bottleneck ranking, worst device first.
    pub fn bottlenecks(&self, sla: f64) -> Result<Vec<(usize, f64)>, ServeError> {
        self.client.bottlenecks(sla)
    }

    /// Batch what-if sweep, evaluated on the worker pool.
    pub fn sweep(&self, rates: Vec<f64>, slas: Vec<f64>) -> Result<Vec<RatePoint>, ServeError> {
        self.client.sweep(rates, slas)
    }

    /// Health summary.
    pub fn status(&self) -> Result<ServiceStatus, ServeError> {
        self.client.status()
    }

    /// Stops the service and returns its final state. Outstanding
    /// [`ServiceClient`]s observe [`ServeError::Disconnected`] afterwards.
    pub fn shutdown(mut self) -> Result<SlaService, ServeError> {
        self.client
            .tx
            .send(Command::Shutdown)
            .map_err(|_| ServeError::Disconnected)?;
        self.join
            .take()
            .ok_or(ServeError::Disconnected)?
            .join()
            .map_err(|_| ServeError::Disconnected)
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        let _ = self.client.tx.send(Command::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::OpClass;
    use cos_distr::{Degenerate, Gamma};
    use cos_queueing::from_distribution;

    fn base() -> CalibrationBase {
        CalibrationBase {
            index_law: from_distribution(Gamma::new(3.0, 250.0)),
            meta_law: from_distribution(Gamma::new(2.5, 312.5)),
            data_law: from_distribution(Gamma::new(3.5, 245.0)),
            parse_be: from_distribution(Degenerate::new(0.0005)),
            parse_fe: from_distribution(Degenerate::new(0.0003)),
            devices: 2,
            processes_per_device: 1,
            frontend_processes: 3,
        }
    }

    /// A deterministic steady stream at `rate` req/s per device with ~30%
    /// disk misses and bimodal completion latencies.
    fn events(rate: f64, duration: f64, devices: usize) -> Vec<TelemetryEvent> {
        let dt = 1.0 / rate;
        let mut out = Vec::new();
        let mut i = 0u64;
        let mut t = 0.0;
        while t < duration {
            for d in 0..devices {
                out.push(TelemetryEvent::Arrival { at: t, device: d });
                out.push(TelemetryEvent::DataRead { at: t, device: d });
                for class in OpClass::ALL {
                    let missed = i % 10 < 3;
                    let latency = if missed { 0.010 } else { 0.000_002 };
                    out.push(TelemetryEvent::Op {
                        at: t,
                        device: d,
                        class,
                        latency,
                    });
                    i += 1;
                }
                let slow = i % 10 < 3;
                out.push(TelemetryEvent::Completion {
                    arrival: t,
                    latency: if slow { 0.030 } else { 0.004 },
                    device: d,
                });
            }
            t += dt;
        }
        out
    }

    #[test]
    fn service_calibrates_from_the_stream_and_answers() {
        let mut service = SlaService::new(base(), ServeConfig::default());
        assert_eq!(service.predict(0.05), Err(ServeError::NotCalibrated));
        for ev in events(40.0, 20.0, 2) {
            service.ingest(ev);
        }
        let p = service.predict(0.05).unwrap();
        assert!(p.value > 0.0 && p.value <= 1.0);
        assert!(!p.stale);
        let status = service.status();
        assert!(status.epoch.is_some());
        assert_eq!(status.drift.len(), 3);
        // ~30% of completions at 30 ms: observed attainment of the 10 ms
        // SLA is ~0.7.
        let obs = status.drift[0].observed.unwrap();
        assert!((obs - 0.7).abs() < 0.05, "observed {obs}");
    }

    #[test]
    fn quiet_stream_degrades_to_stale_not_error() {
        let mut service = SlaService::new(base(), ServeConfig::default());
        for ev in events(40.0, 20.0, 2) {
            service.ingest(ev);
        }
        let fresh = service.predict(0.05).unwrap();
        // One lone event far in the future: the windows have emptied, the
        // forced re-fit fails, and the old epoch serves with the flag set.
        service.ingest(TelemetryEvent::Arrival {
            at: 500.0,
            device: 0,
        });
        assert!(!service.refit_now());
        let stale = service.predict(0.05).unwrap();
        assert!(stale.stale);
        assert_eq!(stale.epoch, fresh.epoch);
        let status = service.status();
        assert!(status.stale);
        assert!(status.last_fit_error.is_some());
    }

    #[test]
    fn sweep_and_headroom_run_against_the_live_epoch() {
        let mut service = SlaService::new(base(), ServeConfig::default());
        for ev in events(40.0, 20.0, 2) {
            service.ingest(ev);
        }
        let points = service
            .sweep(&[40.0, 80.0, 160.0], vec![0.05])
            .unwrap()
            .wait();
        assert_eq!(points.len(), 3);
        assert!(points[0].fractions.is_some());
        let goal = SlaGoal::new(0.100, 0.90);
        let head = service.headroom(goal, 2000.0);
        if let Ok(h) = head {
            assert!(h.value > 0.0);
        }
    }

    #[test]
    fn spawned_service_round_trips_over_the_channel() {
        let service = SlaService::new(base(), ServeConfig::default());
        let handle = service.spawn();
        let sender = handle.telemetry_sender();
        let feeder = std::thread::spawn(move || {
            for ev in events(40.0, 20.0, 2) {
                sender.send(ev);
            }
        });
        feeder.join().unwrap();
        handle.flush().unwrap();
        handle.refit_now().unwrap();
        let p = handle.predict(0.05).unwrap();
        assert!(p.value > 0.0);
        let again = handle.predict(0.05).unwrap();
        assert_eq!(p.value.to_bits(), again.value.to_bits());
        let status = handle.status().unwrap();
        assert!(status.engine.cache.hits >= 1);
        let points = handle.sweep(vec![40.0, 80.0], vec![0.05, 0.10]).unwrap();
        assert_eq!(points.len(), 2);
        let final_state = handle.shutdown().unwrap();
        assert!(final_state.event_time() >= 19.0);
    }

    #[test]
    fn cloned_clients_share_the_service_and_outlive_queries() {
        let handle = SlaService::new(base(), ServeConfig::default()).spawn();
        let client = handle.client();
        for ev in events(40.0, 20.0, 2) {
            client.ingest(ev).unwrap();
        }
        client.flush().unwrap();
        let answers: Vec<u64> = (0..4)
            .map(|_| {
                let c = client.clone();
                std::thread::spawn(move || c.predict(0.05).unwrap().value.to_bits())
            })
            .map(|j| j.join().unwrap())
            .collect();
        assert!(answers.windows(2).all(|w| w[0] == w[1]));
        let ranked = client.bottlenecks(0.05).unwrap();
        assert_eq!(ranked.len(), 2, "one entry per device");
        assert!(ranked[0].1 <= ranked[1].1, "worst device first");
        drop(handle);
        assert_eq!(client.predict(0.05), Err(ServeError::Disconnected));
        assert!(matches!(client.status(), Err(ServeError::Disconnected)));
    }

    #[test]
    fn instruments_record_refits_queries_sweeps_and_ingest() {
        let config = ServeConfig::default();
        let registry = config.obs.clone();
        let mut service = SlaService::new(base(), config);
        let events: Vec<_> = events(40.0, 20.0, 2);
        let n_events = events.len() as u64;
        for ev in events {
            service.ingest(ev);
        }
        service.refit_now();
        let first = service.predict(0.05).unwrap();
        let again = service.predict(0.05).unwrap();
        assert_eq!(first.value.to_bits(), again.value.to_bits());
        service.sweep(&[40.0, 80.0], vec![0.05]).unwrap().wait();

        assert!(registry.merged_histogram("cos_serve_refit_seconds").count() >= 1);
        let miss = registry.merged_histogram("cos_serve_query_seconds");
        assert!(miss.count() >= 2, "both queries timed");
        assert_eq!(
            registry
                .merged_histogram("cos_sweep_queue_wait_seconds")
                .count(),
            2
        );
        let text = registry.render();
        assert!(text.contains("cos_serve_ingest_events_total"));
        assert!(text.contains(&format!("cos_serve_ingest_events_total {n_events}")));
        assert!(text.contains("cos_serve_query_seconds_bucket{cache=\"hit\",le="));
        assert!(text.contains("cos_serve_query_seconds_bucket{cache=\"miss\",le="));
    }

    #[test]
    fn spawned_service_records_ingest_lag() {
        let config = ServeConfig::default();
        let registry = config.obs.clone();
        let handle = SlaService::new(base(), config).spawn();
        for ev in events(40.0, 5.0, 2) {
            handle.ingest(ev).unwrap();
        }
        handle.flush().unwrap();
        let lag = registry.merged_histogram("cos_serve_ingest_lag_seconds");
        assert!(lag.count() > 0, "channel lag recorded per event");
        drop(handle);
    }

    #[test]
    fn builder_accepts_defaults_and_rejects_nonsense() {
        let built = ServeConfig::builder().build().unwrap();
        assert_eq!(built.slas, ServeConfig::default().slas);

        let tweaked = ServeConfig::builder()
            .slas(vec![0.020])
            .refit_interval(1.0)
            .sweep_workers(4)
            .build()
            .unwrap();
        assert_eq!(tweaked.slas, vec![0.020]);
        assert_eq!(tweaked.sweep_workers, 4);

        let cases: &[(ServeConfigBuilder, &str)] = &[
            (ServeConfig::builder().slas(vec![]), "slas"),
            (ServeConfig::builder().slas(vec![0.05, -0.01]), "slas"),
            (ServeConfig::builder().slas(vec![f64::NAN]), "slas"),
            (ServeConfig::builder().refit_interval(0.0), "refit_interval"),
            (
                ServeConfig::builder().refit_interval(f64::INFINITY),
                "refit_interval",
            ),
            (ServeConfig::builder().sweep_workers(0), "sweep_workers"),
            (
                ServeConfig::builder().calibrator(CalibratorConfig {
                    window: 0.0,
                    ..CalibratorConfig::default()
                }),
                "calibrator.window",
            ),
            (
                ServeConfig::builder().calibrator(CalibratorConfig {
                    buckets: 0,
                    ..CalibratorConfig::default()
                }),
                "calibrator.buckets",
            ),
            (
                ServeConfig::builder().drift(DriftConfig {
                    window: -1.0,
                    ..DriftConfig::default()
                }),
                "drift.window",
            ),
            (
                ServeConfig::builder().drift(DriftConfig {
                    buckets: 0,
                    ..DriftConfig::default()
                }),
                "drift.buckets",
            ),
        ];
        for (builder, field) in cases {
            let e = builder.clone().build().unwrap_err();
            assert_eq!(e.field, *field);
            assert!(e.to_string().contains("ServeConfig."), "{e}");
        }
    }

    #[test]
    fn coded_queries_agree_across_channel_and_snapshot_paths() {
        let handle = SlaService::new(base(), ServeConfig::default()).spawn();
        let client = handle.client();
        for ev in events(40.0, 20.0, 2) {
            client.ingest(ev).unwrap();
        }
        client.flush().unwrap();
        client.refit_now().unwrap();

        let frac = client.coded_fraction(4, 2, 0.05).unwrap();
        assert!(frac.value > 0.0 && frac.value <= 1.0);
        let via_reader = client.read_coded_fraction(4, 2, 0.05).unwrap();
        assert_eq!(frac.value.to_bits(), via_reader.value.to_bits());

        let p99 = client.coded_percentile(4, 2, 0.99).unwrap();
        assert!(p99.value > 0.0);
        let p99_reader = client.read_coded_percentile(4, 2, 0.99).unwrap();
        assert_eq!(p99.value.to_bits(), p99_reader.value.to_bits());

        // Needing more of the launched chunks (a max-like join) can only
        // slow the read down: p99 of a 4-of-4 join dominates 2-of-4.
        let p99_44 = client.coded_percentile(4, 4, 0.99).unwrap();
        assert!(p99_44.value >= p99.value);
        drop(handle);
    }

    #[test]
    fn dropped_handle_shuts_the_thread_down() {
        let handle = SlaService::new(base(), ServeConfig::default()).spawn();
        let sender = handle.telemetry_sender();
        drop(handle);
        // The ingest endpoint must not panic after shutdown.
        sender.send(TelemetryEvent::Arrival { at: 0.0, device: 0 });
    }
}
