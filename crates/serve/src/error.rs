//! Typed errors of the prediction service.

use cos_model::ModelError;

/// Why a query could not be answered.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No calibration epoch has been fitted yet (the service is still
    /// warming up on the telemetry stream).
    NotCalibrated,
    /// The queried operating point has no steady state (some queue has
    /// utilization ρ ≥ 1) — the model cannot predict percentiles there.
    Unstable {
        /// Which tier saturated and at what utilization.
        cause: ModelError,
    },
    /// The requested percentile lies outside the range the inversion can
    /// bracket (e.g. `p` at or beyond the response CDF's numeric plateau).
    PercentileOutOfRange {
        /// The requested percentile in `(0, 1)`.
        p: f64,
    },
    /// No admissible rate exists for the requested SLA goal: it fails even
    /// as the arrival rate approaches zero.
    GoalUnreachable,
    /// The service thread has shut down (its command channel is closed).
    Disconnected,
    /// The query names a tenant the service has never seen telemetry for.
    /// Network frontends map this to 404.
    UnknownTenant {
        /// The unknown tenant id.
        tenant: String,
    },
    /// A [`Query`](crate::Query) is missing a required field or carries a
    /// nonsensical value for the endpoint it was handed to. Network
    /// frontends map this to 422.
    BadQuery {
        /// What is malformed.
        reason: &'static str,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NotCalibrated => {
                f.write_str("no calibration epoch fitted yet (still warming up)")
            }
            ServeError::Unstable { cause } => write!(f, "operating point unstable: {cause}"),
            ServeError::PercentileOutOfRange { p } => {
                write!(f, "percentile {p} outside the invertible range")
            }
            ServeError::GoalUnreachable => {
                f.write_str("SLA goal unreachable at any admissible rate")
            }
            ServeError::Disconnected => f.write_str("prediction service has shut down"),
            ServeError::UnknownTenant { tenant } => write!(f, "unknown tenant `{tenant}`"),
            ServeError::BadQuery { reason } => write!(f, "malformed query: {reason}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Unstable { cause } => Some(cause),
            _ => None,
        }
    }
}

impl From<ModelError> for ServeError {
    fn from(cause: ModelError) -> Self {
        ServeError::Unstable { cause }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ServeError::from(ModelError::UnstableBackend { utilization: 1.2 });
        assert!(e.to_string().contains("unstable"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ServeError::NotCalibrated).is_none());
    }
}
