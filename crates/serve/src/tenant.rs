//! Tenant identity: the fleet dimension of the query surface.
//!
//! A [`TenantId`] names one tenant's SLA universe — its own telemetry
//! stream, sliding-window estimators, calibration epochs, drift monitor,
//! and quantized-inversion results. The reserved id `default` (slot 0)
//! always exists and is what every legacy, tenant-unaware entry point
//! maps to, which is how the pre-fleet API keeps answering byte-for-byte
//! identically.
//!
//! Ids are restricted to `[a-z0-9_-]{1,64}`: they appear verbatim in URL
//! path segments (`/v1/tenants/{tenant}/...`) and as Prometheus label
//! values, so the grammar is the intersection of what both carriers can
//! hold without escaping.

use std::sync::Arc;

/// The reserved tenant every tenant-unaware call is scoped to.
pub const DEFAULT_TENANT: &str = "default";

/// An opaque, validated tenant identifier. Cheap to clone (a shared
/// string), hashable, and totally ordered so it can key maps and sort
/// stably in metrics output.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(Arc<str>);

impl TenantId {
    /// Validates and interns a tenant id: 1–64 characters drawn from
    /// `[a-z0-9_-]`.
    pub fn new(id: &str) -> Result<TenantId, InvalidTenant> {
        if id.is_empty() {
            return Err(InvalidTenant {
                id: id.to_string(),
                reason: "must not be empty",
            });
        }
        if id.len() > 64 {
            return Err(InvalidTenant {
                id: id.to_string(),
                reason: "must be at most 64 characters",
            });
        }
        if let Some(bad) = id
            .chars()
            .find(|c| !(c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '_' || *c == '-'))
        {
            return Err(InvalidTenant {
                id: id.to_string(),
                reason: match bad {
                    'A'..='Z' => "must be lowercase",
                    _ => "may only contain [a-z0-9_-]",
                },
            });
        }
        Ok(TenantId(Arc::from(id)))
    }

    /// The reserved `default` tenant (always present, slot 0).
    pub fn default_tenant() -> TenantId {
        TenantId(Arc::from(DEFAULT_TENANT))
    }

    /// Whether this is the reserved `default` tenant.
    pub fn is_default(&self) -> bool {
        &*self.0 == DEFAULT_TENANT
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl Default for TenantId {
    fn default() -> Self {
        TenantId::default_tenant()
    }
}

impl std::fmt::Display for TenantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl AsRef<str> for TenantId {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

/// A string [`TenantId::new`] refused, with the reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidTenant {
    /// The offending input (possibly truncated for display).
    pub id: String,
    /// Why it was refused.
    pub reason: &'static str,
}

impl std::fmt::Display for InvalidTenant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Bound the echoed input: the id may come straight off the wire.
        let shown: String = self.id.chars().take(80).collect();
        write!(f, "invalid tenant id `{shown}`: {}", self.reason)
    }
}

impl std::error::Error for InvalidTenant {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_the_grammar_and_interns() {
        for ok in ["default", "t-01", "a", "tenant_42", &"x".repeat(64)] {
            let t = TenantId::new(ok).unwrap();
            assert_eq!(t.as_str(), ok);
            assert_eq!(t.to_string(), ok);
        }
        let a = TenantId::new("alpha").unwrap();
        let b = a.clone();
        assert_eq!(a, b);
        assert!(TenantId::default_tenant().is_default());
        assert!(!a.is_default());
        assert_eq!(TenantId::default(), TenantId::default_tenant());
    }

    #[test]
    fn rejects_out_of_grammar_ids() {
        for (bad, needle) in [
            ("", "empty"),
            (&"x".repeat(65) as &str, "64"),
            ("Tenant", "lowercase"),
            ("a b", "[a-z0-9_-]"),
            ("a/b", "[a-z0-9_-]"),
            ("naïve", "[a-z0-9_-]"),
            ("a.b", "[a-z0-9_-]"),
        ] {
            let e = TenantId::new(bad).unwrap_err();
            assert!(e.to_string().contains(needle), "{bad:?}: {e}");
        }
    }

    #[test]
    fn orders_and_hashes() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(TenantId::new("a").unwrap(), 1);
        m.insert(TenantId::new("b").unwrap(), 2);
        assert_eq!(m[&TenantId::new("a").unwrap()], 1);
        assert!(TenantId::new("a").unwrap() < TenantId::new("b").unwrap());
    }
}
