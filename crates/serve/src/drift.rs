//! Model-drift detection: live observed SLA attainment vs predictions.
//!
//! The calibrator can only fit what the windows saw; if the workload's
//! *shape* changes in a way the model family cannot express (e.g. the disk
//! law's tail fattens while its mean holds), predictions will diverge from
//! reality even with fresh parameters. The monitor tracks the observed
//! fraction of completions meeting each SLA over a sliding window and
//! compares it with the model's memoized prediction; a sustained gap above
//! the tolerance flags the SLA as drifted, the signal to re-benchmark the
//! device laws (§IV-A) rather than just re-fit the online metrics.

use cos_stats::WindowedRatio;

/// Drift detection knobs.
#[derive(Debug, Clone)]
pub struct DriftConfig {
    /// Sliding-window length in event-time seconds.
    pub window: f64,
    /// Time buckets per window.
    pub buckets: usize,
    /// Absolute attainment gap (in fraction points) tolerated before
    /// flagging.
    pub tolerance: f64,
    /// Minimum in-window completions before a verdict is issued.
    pub min_samples: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            window: 30.0,
            buckets: 30,
            tolerance: 0.05,
            min_samples: 50,
        }
    }
}

/// One SLA's drift verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftReport {
    /// The SLA bound (seconds).
    pub sla: f64,
    /// Observed in-window fraction meeting the SLA (`None` with no
    /// completions).
    pub observed: Option<f64>,
    /// The model's predicted fraction (`None` if the model could not
    /// answer).
    pub predicted: Option<f64>,
    /// Completions inside the window.
    pub samples: u64,
    /// Whether the gap exceeds the tolerance with enough samples.
    pub drifted: bool,
}

/// Sliding-window observed-attainment tracker for a fixed SLA list.
pub struct DriftMonitor {
    slas: Vec<f64>,
    windows: Vec<WindowedRatio>,
    config: DriftConfig,
}

impl DriftMonitor {
    /// Creates a monitor for `slas`.
    pub fn new(slas: Vec<f64>, config: DriftConfig) -> Self {
        let windows = slas
            .iter()
            .map(|_| WindowedRatio::new(config.window, config.buckets))
            .collect();
        DriftMonitor {
            slas,
            windows,
            config,
        }
    }

    /// The monitored SLA bounds.
    pub fn slas(&self) -> &[f64] {
        &self.slas
    }

    /// Records one completed request's end-to-end latency.
    pub fn record(&mut self, t: f64, latency: f64) {
        for (sla, w) in self.slas.iter().zip(&mut self.windows) {
            w.record(t, latency <= *sla);
        }
    }

    /// Observed attainment of SLA `idx` in the window ending at `now`.
    pub fn observed(&self, idx: usize, now: f64) -> Option<f64> {
        self.windows.get(idx).and_then(|w| w.ratio(now))
    }

    /// Compares observations with `predictions` (one entry per SLA, in
    /// order; `None` where the model had no answer) and returns one report
    /// per SLA.
    pub fn report(&self, now: f64, predictions: &[Option<f64>]) -> Vec<DriftReport> {
        self.slas
            .iter()
            .zip(&self.windows)
            .enumerate()
            .map(|(i, (&sla, w))| {
                let observed = w.ratio(now);
                let predicted = predictions.get(i).copied().flatten();
                let samples = w.count(now);
                let drifted = match (observed, predicted) {
                    (Some(o), Some(p)) => {
                        samples >= self.config.min_samples && (o - p).abs() > self.config.tolerance
                    }
                    _ => false,
                };
                DriftReport {
                    sla,
                    observed,
                    predicted,
                    samples,
                    drifted,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor() -> DriftMonitor {
        DriftMonitor::new(vec![0.010, 0.050], DriftConfig::default())
    }

    #[test]
    fn agreement_is_not_drift() {
        let mut m = monitor();
        for i in 0..1000 {
            // 80% fast (5 ms), 20% slow (80 ms): attainment 0.8 / 0.8.
            let latency = if i % 5 == 0 { 0.080 } else { 0.005 };
            m.record(i as f64 * 0.01, latency);
        }
        let reports = m.report(10.0, &[Some(0.80), Some(0.80)]);
        assert!(reports.iter().all(|r| !r.drifted), "{reports:?}");
        assert!((reports[0].observed.unwrap() - 0.80).abs() < 0.02);
    }

    #[test]
    fn sustained_gap_flags_drift() {
        let mut m = monitor();
        for i in 0..1000 {
            m.record(i as f64 * 0.01, 0.030); // everything lands between the SLAs
        }
        let reports = m.report(10.0, &[Some(0.60), Some(0.95)]);
        assert!(
            reports[0].drifted,
            "observed 0.0 vs predicted 0.60: {:?}",
            reports[0]
        );
        assert!(
            reports[1].drifted,
            "observed 1.0 vs predicted 0.95: {:?}",
            reports[1]
        );
    }

    #[test]
    fn few_samples_or_missing_prediction_withhold_verdict() {
        let mut m = monitor();
        for i in 0..10 {
            m.record(i as f64, 0.030);
        }
        let reports = m.report(10.0, &[Some(0.90), None]);
        assert!(!reports[0].drifted, "only 10 samples: {:?}", reports[0]);
        assert!(!reports[1].drifted);
        assert_eq!(reports[1].predicted, None);
        // Empty window: no observation at all.
        let empty = monitor().report(5.0, &[Some(0.9), Some(0.9)]);
        assert!(empty.iter().all(|r| r.observed.is_none() && !r.drifted));
    }
}
