//! The sharded concurrent inversion cache shared by the worker-thread
//! engine and the lock-free snapshot read path.
//!
//! One bounded cache implementation serves both paths, which is what makes
//! the snapshot path **bit-identical by construction**: every query —
//! whether it arrives over the service's command channel or is evaluated
//! in place on a gate connection thread — collapses to the same quantized
//! [`QueryKey`] and runs the same [`QueryKind`] evaluation code on the
//! same snapped inputs, so two paths can never disagree on a value's bits.
//!
//! Structure:
//!
//! * **Shards** — results and built models live in `N` mutex-guarded
//!   shards selected by the key's hash, so concurrent readers on distinct
//!   keys rarely contend on the same lock, and no lock is ever held while
//!   an inversion runs.
//! * **Tenant-scoped keys and epochs** — every [`QueryKey`] carries the
//!   owning tenant's slot, and each shard tracks the newest epoch **per
//!   tenant**: tenants calibrate independently, so tenant A installing
//!   epoch 9 must not discard tenant B's still-valid epoch-3 answers, and
//!   two tenants can never share (or collide on) a memoized result.
//! * **Epoch-generational eviction** — a key from a newer epoch of its
//!   tenant drops that tenant's entries from the shard (the old epoch's
//!   answers are unreachable anyway); a key from an *older* epoch — a
//!   reader still holding yesterday's snapshot mid-request — is answered
//!   uncached rather than poisoning the new epoch's entries.
//! * **Bounded capacity** — a shard at capacity first drops the inserting
//!   tenant's own entries, and only clears wholesale if that was not
//!   enough (so one tenant's key sweep cannot evict the whole fleet's hot
//!   set; with a single tenant this degenerates to the old full clear).
//!   This bounds the old engine memo, which grew without limit within an
//!   epoch.
//! * **Single-flight coalescing** — the first thread to miss a key
//!   registers an in-flight marker and computes outside the shard lock;
//!   concurrent requests for the same key block on the flight's condvar
//!   and receive the leader's bits. A leader that panics marks the flight
//!   abandoned (via a drop guard), waking the followers to retry instead
//!   of deadlocking them.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use cos_model::{
    max_admissible_rate, CodedReadModel, CodingSpec, ModelVariant, SlaGoal, SystemModel,
};

use crate::engine::{snap, CacheStats, EpochSnapshot, FRACTION_QUANTUM, RATE_QUANTUM, SLA_QUANTUM};
use crate::error::ServeError;

/// The quantized question of a memoized query: which scalar is being asked
/// for, with every real-valued input snapped to its quantum so queries in
/// the same cell share one inversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryKind {
    /// Fraction of requests meeting a quantized SLA.
    Fraction {
        /// SLA bound in [`SLA_QUANTUM`] steps.
        sla_q: i64,
    },
    /// Response-latency percentile at a quantized `p`.
    Percentile {
        /// Percentile in [`FRACTION_QUANTUM`] steps.
        p_q: i64,
    },
    /// Largest admissible rate for a quantized goal.
    Headroom {
        /// SLA bound in [`SLA_QUANTUM`] steps.
        sla_q: i64,
        /// Target fraction in [`FRACTION_QUANTUM`] steps.
        frac_q: i64,
        /// Search upper bound in [`RATE_QUANTUM`] steps.
        upper_q: i64,
    },
    /// One device's fraction meeting a quantized SLA.
    DeviceFraction {
        /// Device index.
        device: usize,
        /// SLA bound in [`SLA_QUANTUM`] steps.
        sla_q: i64,
    },
    /// Mean response time.
    MeanResponse,
    /// Fraction of (launched, needed) erasure-coded reads meeting a
    /// quantized SLA (fork-join k-of-n over the epoch's fitted marginals).
    CodedFraction {
        /// Sub-requests launched per read (`n` eager, `k` without spares).
        launched: u16,
        /// Completions needed (`k`).
        needed: u16,
        /// SLA bound in [`SLA_QUANTUM`] steps.
        sla_q: i64,
    },
    /// Latency percentile of (launched, needed) erasure-coded reads.
    CodedPercentile {
        /// Sub-requests launched per read.
        launched: u16,
        /// Completions needed.
        needed: u16,
        /// Percentile in [`FRACTION_QUANTUM`] steps.
        p_q: i64,
    },
}

impl QueryKind {
    /// Fraction-meeting-SLA query at `sla` seconds.
    pub fn fraction(sla: f64) -> QueryKind {
        QueryKind::Fraction {
            sla_q: snap(sla, SLA_QUANTUM).0,
        }
    }

    /// Latency-percentile query at `p` (e.g. `0.95`).
    pub fn percentile(p: f64) -> QueryKind {
        QueryKind::Percentile {
            p_q: snap(p, FRACTION_QUANTUM).0,
        }
    }

    /// Headroom query for `goal` searched up to `upper` req/s.
    pub fn headroom(goal: SlaGoal, upper: f64) -> QueryKind {
        QueryKind::Headroom {
            sla_q: snap(goal.sla, SLA_QUANTUM).0,
            frac_q: snap(goal.target_fraction, FRACTION_QUANTUM).0,
            upper_q: snap(upper, RATE_QUANTUM).0,
        }
    }

    /// Per-device fraction-meeting-SLA query.
    pub fn device_fraction(device: usize, sla: f64) -> QueryKind {
        QueryKind::DeviceFraction {
            device,
            sla_q: snap(sla, SLA_QUANTUM).0,
        }
    }

    /// Coded-read fraction-meeting-SLA query for a (launched, needed)
    /// fan-out. Callers validate `1 ≤ needed ≤ launched` (the gate returns
    /// 400 otherwise); [`cos_model::CodingSpec`] re-asserts it.
    pub fn coded_fraction(launched: u16, needed: u16, sla: f64) -> QueryKind {
        QueryKind::CodedFraction {
            launched,
            needed,
            sla_q: snap(sla, SLA_QUANTUM).0,
        }
    }

    /// Coded-read latency-percentile query at `p`.
    pub fn coded_percentile(launched: u16, needed: u16, p: f64) -> QueryKind {
        QueryKind::CodedPercentile {
            launched,
            needed,
            p_q: snap(p, FRACTION_QUANTUM).0,
        }
    }
}

/// Quantizes a what-if rate (req/s) to its [`RATE_QUANTUM`] cell.
pub fn quantize_rate(rate: f64) -> i64 {
    snap(rate, RATE_QUANTUM).0
}

/// Builds the coded-read model for an epoch's parameters at an optional
/// what-if rate. Unlike [`InversionCache::model_for`] the build itself is
/// not cached — constructing a [`CodedReadModel`] runs no inversions, and
/// the expensive part (the query answer) memoizes at the result layer.
fn coded_model(
    snapshot: &EpochSnapshot,
    rate_q: Option<i64>,
    launched: u16,
    needed: u16,
) -> Result<CodedReadModel, ServeError> {
    let spec = CodingSpec::new(launched as usize, needed as usize);
    let built = match rate_q {
        None => CodedReadModel::new(&snapshot.params, spec),
        Some(q) => CodedReadModel::new(
            &snapshot.params.scaled_to_rate(q as f64 * RATE_QUANTUM),
            spec,
        ),
    };
    Ok(built?)
}

/// The full memo key: tenant, epoch, optional what-if rate cell, and the
/// question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryKey {
    /// Slot of the tenant whose calibration the answer belongs to
    /// (0 = the reserved `default` tenant).
    pub tenant: u32,
    /// Calibration epoch (of that tenant) the answer is valid for.
    pub epoch: u64,
    /// What-if rate in [`RATE_QUANTUM`] steps; `None` for the calibrated
    /// operating point.
    pub rate_q: Option<i64>,
    /// The quantized question.
    pub kind: QueryKind,
}

/// State of one in-flight computation.
enum FlightState {
    /// The leader is still computing.
    Pending,
    /// The leader finished; every waiter receives these bits.
    Done(Result<f64, ServeError>),
    /// The leader panicked mid-compute; waiters must retry.
    Abandoned,
}

struct Flight {
    state: Mutex<FlightState>,
    ready: Condvar,
}

impl Flight {
    fn new() -> Flight {
        Flight {
            state: Mutex::new(FlightState::Pending),
            ready: Condvar::new(),
        }
    }

    fn resolve(&self, state: FlightState) {
        *lock(&self.state) = state;
        self.ready.notify_all();
    }
}

struct ResultShard {
    /// Newest epoch seen per tenant slot.
    epochs: HashMap<u32, u64>,
    entries: HashMap<QueryKey, Result<f64, ServeError>>,
    inflight: HashMap<QueryKey, Arc<Flight>>,
}

struct ModelShard {
    /// Newest epoch seen per tenant slot.
    epochs: HashMap<u32, u64>,
    entries: HashMap<(u32, u64, Option<i64>), Arc<SystemModel>>,
}

/// Capacity-bound eviction: drop the inserting tenant's own entries
/// first, and only clear the shard wholesale if that was not enough.
/// A single-tenant cache degenerates to the old full clear.
fn evict_for(
    entries: &mut HashMap<QueryKey, Result<f64, ServeError>>,
    tenant: u32,
    capacity: usize,
) {
    entries.retain(|k, _| k.tenant != tenant);
    if entries.len() >= capacity {
        entries.clear();
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panicking job never holds a shard lock (computation runs outside
    // it), so poisoning only means some *other* thread panicked while
    // touching plain map state — the data is still structurally sound.
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The sharded, bounded, single-flight memo of inversion results and built
/// models. See the module docs for the design; one instance is shared by
/// the [`PredictionEngine`](crate::PredictionEngine) (worker path) and
/// every [`SnapshotReader`](crate::SnapshotReader) (lock-free read path).
pub struct InversionCache {
    shards: Vec<Mutex<ResultShard>>,
    model_shards: Vec<Mutex<ModelShard>>,
    results_per_shard: usize,
    models_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
}

impl Default for InversionCache {
    /// 8 shards × 512 results (4096 total — the old engine memo's bound)
    /// and 8 × 64 built models.
    fn default() -> Self {
        InversionCache::new(8, 512, 64)
    }
}

impl InversionCache {
    /// Creates a cache with `shards` mutex shards holding at most
    /// `results_per_shard` memoized answers and `models_per_shard` built
    /// models each (every bound is clamped to at least 1).
    pub fn new(shards: usize, results_per_shard: usize, models_per_shard: usize) -> Self {
        let shards = shards.max(1);
        InversionCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(ResultShard {
                        epochs: HashMap::new(),
                        entries: HashMap::new(),
                        inflight: HashMap::new(),
                    })
                })
                .collect(),
            model_shards: (0..shards)
                .map(|_| {
                    Mutex::new(ModelShard {
                        epochs: HashMap::new(),
                        entries: HashMap::new(),
                    })
                })
                .collect(),
            results_per_shard: results_per_shard.max(1),
            models_per_shard: models_per_shard.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard_index<K: Hash>(&self, key: &K) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Eagerly drops every entry of `tenant` older than `epoch` (called at
    /// install time so the old epoch's memory is released immediately
    /// rather than on first touch). Other tenants' entries are untouched —
    /// tenants calibrate on independent epoch counters.
    pub fn advance_epoch(&self, tenant: u32, epoch: u64) {
        for shard in &self.shards {
            let mut s = lock(shard);
            if s.epochs.get(&tenant).copied().unwrap_or(0) < epoch {
                s.epochs.insert(tenant, epoch);
                s.entries.retain(|k, _| k.tenant != tenant);
            }
        }
        for shard in &self.model_shards {
            let mut s = lock(shard);
            if s.epochs.get(&tenant).copied().unwrap_or(0) < epoch {
                s.epochs.insert(tenant, epoch);
                s.entries.retain(|k, _| k.0 != tenant);
            }
        }
    }

    /// Installs an already-built model for `tenant`'s `epoch` at the
    /// native rate (the model validated during the fit pre-warms the
    /// cache).
    pub fn prewarm_model(&self, tenant: u32, epoch: u64, model: Arc<SystemModel>) {
        self.advance_epoch(tenant, epoch);
        let mkey = (tenant, epoch, None);
        let mut s = lock(&self.model_shards[self.shard_index(&mkey)]);
        if s.epochs.get(&tenant).copied().unwrap_or(0) == epoch {
            s.entries.insert(mkey, model);
        }
    }

    /// Installs an already-computed result for `key` (counted as a miss —
    /// the inversion ran, just not through [`get_or_compute`]). The
    /// batched refit path uses this to publish each tenant's per-SLA
    /// attainment predictions, so the dashboard's hottest keys are
    /// resident before the first reader asks — exactly as the serial
    /// publish used to guarantee by querying the engine.
    ///
    /// [`get_or_compute`]: InversionCache::get_or_compute
    pub fn prewarm_result(&self, key: QueryKey, result: Result<f64, ServeError>) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        let idx = self.shard_index(&key);
        let mut shard = lock(&self.shards[idx]);
        let current = shard.epochs.get(&key.tenant).copied().unwrap_or(0);
        if key.epoch > current {
            shard.epochs.insert(key.tenant, key.epoch);
            shard.entries.retain(|k, _| k.tenant != key.tenant);
        } else if key.epoch < current {
            return; // an older epoch's answer must not enter the memo
        }
        if shard.entries.len() >= self.results_per_shard {
            evict_for(&mut shard.entries, key.tenant, self.results_per_shard);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        shard.entries.insert(key, result);
    }

    /// Hit/miss counters (single-flight waiters count as hits — they did
    /// not run an inversion).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Resets the hit/miss/coalesced/eviction counters (e.g. between
    /// benchmark phases).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.coalesced.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }

    /// Queries that blocked on another thread's identical in-flight
    /// computation and received its bits (a subset of the hits).
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Wholesale shard clears forced by the capacity bound (epoch
    /// invalidations are not counted).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Memoized results currently resident across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).entries.len()).sum()
    }

    /// Whether no results are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Built models currently resident across all shards.
    pub fn model_count(&self) -> usize {
        self.model_shards
            .iter()
            .map(|s| lock(s).entries.len())
            .sum()
    }

    /// Answers `kind` for `tenant` against `snapshot` under `variant`,
    /// memoized on the quantized key. Returns the outcome and whether
    /// *this call* ran the computation (`true` = miss; cached answers and
    /// coalesced waiters are hits).
    ///
    /// This is the single evaluation funnel for every query path — the
    /// inputs are reconstructed from the quantized key, so any two callers
    /// that collapse to the same key run (or reuse) the exact same
    /// floating-point expressions.
    pub fn answer(
        &self,
        tenant: u32,
        snapshot: &EpochSnapshot,
        variant: ModelVariant,
        rate_q: Option<i64>,
        kind: QueryKind,
    ) -> (Result<f64, ServeError>, bool) {
        let key = QueryKey {
            tenant,
            epoch: snapshot.epoch,
            rate_q,
            kind,
        };
        self.get_or_compute(key, || {
            self.evaluate(tenant, snapshot, variant, rate_q, kind)
        })
    }

    /// The uncached evaluation of `kind` at the key's snapped inputs.
    fn evaluate(
        &self,
        tenant: u32,
        snapshot: &EpochSnapshot,
        variant: ModelVariant,
        rate_q: Option<i64>,
        kind: QueryKind,
    ) -> Result<f64, ServeError> {
        if let QueryKind::Headroom {
            sla_q,
            frac_q,
            upper_q,
        } = kind
        {
            // Headroom searches over rates itself; it needs the raw
            // parameters, not a built model.
            let sla_s = sla_q as f64 * SLA_QUANTUM;
            let frac_s = frac_q as f64 * FRACTION_QUANTUM;
            let upper_s = upper_q as f64 * RATE_QUANTUM;
            let goal_s = SlaGoal::new(sla_s, frac_s.min(1.0 - FRACTION_QUANTUM));
            return max_admissible_rate(&snapshot.params, variant, goal_s, upper_s)
                .ok_or(ServeError::GoalUnreachable);
        }
        // Coded queries build their own multi-variant model from the raw
        // parameters (like headroom); results are memoized at this cache's
        // result layer, which is what keeps both read paths bit-identical.
        match kind {
            QueryKind::CodedFraction {
                launched,
                needed,
                sla_q,
            } => {
                let m = coded_model(snapshot, rate_q, launched, needed)?;
                return Ok(m.fraction_meeting_sla(sla_q as f64 * SLA_QUANTUM));
            }
            QueryKind::CodedPercentile {
                launched,
                needed,
                p_q,
            } => {
                let m = coded_model(snapshot, rate_q, launched, needed)?;
                let p_s = p_q as f64 * FRACTION_QUANTUM;
                return m
                    .latency_percentile(p_s)
                    .ok_or(ServeError::PercentileOutOfRange { p: p_s });
            }
            _ => {}
        }
        let m = self.model_for(tenant, snapshot, variant, rate_q)?;
        match kind {
            QueryKind::Fraction { sla_q } => Ok(m.fraction_meeting_sla(sla_q as f64 * SLA_QUANTUM)),
            QueryKind::Percentile { p_q } => {
                let p_s = p_q as f64 * FRACTION_QUANTUM;
                m.latency_percentile(p_s)
                    .ok_or(ServeError::PercentileOutOfRange { p: p_s })
            }
            QueryKind::DeviceFraction { device, sla_q } => {
                if device >= m.devices().len() {
                    return Err(ServeError::NotCalibrated);
                }
                Ok(m.device_fraction_meeting(device, sla_q as f64 * SLA_QUANTUM))
            }
            QueryKind::MeanResponse => Ok(m.mean_response()),
            QueryKind::Headroom { .. }
            | QueryKind::CodedFraction { .. }
            | QueryKind::CodedPercentile { .. } => {
                unreachable!("handled above")
            }
        }
    }

    /// The (possibly rate-scaled) model of a tenant's epoch, building and
    /// caching it on first use. The build runs outside the shard lock, so
    /// two threads may briefly build the same model concurrently — the
    /// builds are bit-identical, so last-write-wins is harmless and
    /// cheaper than serializing all model construction behind one flight.
    pub fn model_for(
        &self,
        tenant: u32,
        snapshot: &EpochSnapshot,
        variant: ModelVariant,
        rate_q: Option<i64>,
    ) -> Result<Arc<SystemModel>, ServeError> {
        let mkey = (tenant, snapshot.epoch, rate_q);
        let idx = self.shard_index(&mkey);
        {
            let mut s = lock(&self.model_shards[idx]);
            if s.epochs.get(&tenant).copied().unwrap_or(0) < snapshot.epoch {
                s.epochs.insert(tenant, snapshot.epoch);
                s.entries.retain(|k, _| k.0 != tenant);
            }
            if let Some(m) = s.entries.get(&mkey) {
                return Ok(m.clone());
            }
        }
        let built = match rate_q {
            None => SystemModel::new(&snapshot.params, variant),
            Some(q) => SystemModel::new(
                &snapshot.params.scaled_to_rate(q as f64 * RATE_QUANTUM),
                variant,
            ),
        };
        let model = Arc::new(built?);
        let mut s = lock(&self.model_shards[idx]);
        if s.epochs.get(&tenant).copied().unwrap_or(0) == snapshot.epoch {
            if s.entries.len() >= self.models_per_shard {
                s.entries.retain(|k, _| k.0 != tenant);
                if s.entries.len() >= self.models_per_shard {
                    s.entries.clear();
                }
            }
            s.entries.insert(mkey, model.clone());
        }
        Ok(model)
    }

    /// The single-flight memo core: returns the cached result for `key`,
    /// or elects this call the leader to run `compute` (outside the shard
    /// lock) while identical concurrent calls wait for its bits. The
    /// second return value is `true` iff this call ran `compute`.
    pub fn get_or_compute(
        &self,
        key: QueryKey,
        compute: impl FnOnce() -> Result<f64, ServeError>,
    ) -> (Result<f64, ServeError>, bool) {
        enum Role {
            Ready(Result<f64, ServeError>),
            Wait(Arc<Flight>),
            Lead(Arc<Flight>),
            Bypass,
        }
        let idx = self.shard_index(&key);
        let mut compute = Some(compute);
        loop {
            let role = {
                let mut shard = lock(&self.shards[idx]);
                let current = shard.epochs.get(&key.tenant).copied().unwrap_or(0);
                if key.epoch > current {
                    shard.epochs.insert(key.tenant, key.epoch);
                    shard.entries.retain(|k, _| k.tenant != key.tenant);
                }
                if key.epoch < current {
                    Role::Bypass
                } else if let Some(hit) = shard.entries.get(&key) {
                    Role::Ready(hit.clone())
                } else if let Some(flight) = shard.inflight.get(&key) {
                    Role::Wait(flight.clone())
                } else {
                    let flight = Arc::new(Flight::new());
                    shard.inflight.insert(key, flight.clone());
                    Role::Lead(flight)
                }
            };
            match role {
                Role::Ready(r) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return (r, false);
                }
                Role::Bypass => {
                    // The cache has moved past this key's epoch (a reader
                    // still holding an old snapshot mid-request): answer
                    // uncached rather than poison the new epoch's entries.
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let f = compute.take().expect("compute consumed only once");
                    return (f(), true);
                }
                Role::Lead(flight) => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let guard = FlightGuard {
                        cache: self,
                        key,
                        shard: idx,
                        flight: &flight,
                        completed: false,
                    };
                    let f = compute.take().expect("compute consumed only once");
                    let result = f();
                    guard.complete(result.clone());
                    return (result, true);
                }
                Role::Wait(flight) => {
                    let mut state = lock(&flight.state);
                    let retry = loop {
                        match &*state {
                            FlightState::Pending => {
                                state = flight.ready.wait(state).unwrap_or_else(|e| e.into_inner());
                            }
                            FlightState::Done(r) => {
                                self.hits.fetch_add(1, Ordering::Relaxed);
                                self.coalesced.fetch_add(1, Ordering::Relaxed);
                                return (r.clone(), false);
                            }
                            FlightState::Abandoned => break true,
                        }
                    };
                    if retry {
                        continue; // leader panicked: re-enter from the top
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for InversionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InversionCache")
            .field("shards", &self.shards.len())
            .field("results_per_shard", &self.results_per_shard)
            .field("models_per_shard", &self.models_per_shard)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Unregisters a leader's flight on every exit path. On the normal path
/// [`complete`](FlightGuard::complete) stores the result and wakes the
/// waiters; if the computation panics, `Drop` marks the flight abandoned
/// so waiters retry instead of blocking forever.
struct FlightGuard<'a> {
    cache: &'a InversionCache,
    key: QueryKey,
    shard: usize,
    flight: &'a Arc<Flight>,
    completed: bool,
}

impl FlightGuard<'_> {
    fn complete(mut self, result: Result<f64, ServeError>) {
        self.completed = true;
        let mut shard = lock(&self.cache.shards[self.shard]);
        shard.inflight.remove(&self.key);
        if shard.epochs.get(&self.key.tenant).copied().unwrap_or(0) == self.key.epoch {
            if shard.entries.len() >= self.cache.results_per_shard {
                evict_for(
                    &mut shard.entries,
                    self.key.tenant,
                    self.cache.results_per_shard,
                );
                self.cache.evictions.fetch_add(1, Ordering::Relaxed);
            }
            shard.entries.insert(self.key, result.clone());
        }
        drop(shard);
        self.flight.resolve(FlightState::Done(result));
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        let mut shard = lock(&self.cache.shards[self.shard]);
        shard.inflight.remove(&self.key);
        drop(shard);
        self.flight.resolve(FlightState::Abandoned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;
    use std::time::Duration;

    fn key(epoch: u64, sla_q: i64) -> QueryKey {
        tenant_key(0, epoch, sla_q)
    }

    fn tenant_key(tenant: u32, epoch: u64, sla_q: i64) -> QueryKey {
        QueryKey {
            tenant,
            epoch,
            rate_q: None,
            kind: QueryKind::Fraction { sla_q },
        }
    }

    #[test]
    fn miss_then_hit_and_counters() {
        let cache = InversionCache::default();
        let (r, miss) = cache.get_or_compute(key(1, 500), || Ok(0.75));
        assert_eq!(r, Ok(0.75));
        assert!(miss);
        let (r, miss) = cache.get_or_compute(key(1, 500), || panic!("must not recompute"));
        assert_eq!(r, Ok(0.75));
        assert!(!miss);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn errors_are_memoized_too() {
        let cache = InversionCache::default();
        let (r, _) = cache.get_or_compute(key(1, 500), || Err(ServeError::GoalUnreachable));
        assert_eq!(r, Err(ServeError::GoalUnreachable));
        let (r, miss) = cache.get_or_compute(key(1, 500), || panic!("memoized failure"));
        assert_eq!(r, Err(ServeError::GoalUnreachable));
        assert!(!miss);
    }

    #[test]
    fn newer_epoch_clears_older_epoch_bypasses() {
        let cache = InversionCache::default();
        cache.get_or_compute(key(1, 500), || Ok(1.0)).0.unwrap();
        assert_eq!(cache.len(), 1);
        // Epoch 2 installs (advancing every shard), then caches an answer.
        cache.advance_epoch(0, 2);
        let (r, miss) = cache.get_or_compute(key(2, 500), || Ok(2.0));
        assert_eq!(r, Ok(2.0));
        assert!(miss);
        // A stale reader still on epoch 1 computes uncached.
        let calls = AtomicUsize::new(0);
        for _ in 0..2 {
            let (r, miss) = cache.get_or_compute(key(1, 500), || {
                calls.fetch_add(1, Ordering::SeqCst);
                Ok(1.0)
            });
            assert_eq!(r, Ok(1.0));
            assert!(miss, "old-epoch reads never cache");
        }
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        // And the new epoch's entry survived.
        let (r, miss) = cache.get_or_compute(key(2, 500), || panic!("cached"));
        assert_eq!(r, Ok(2.0));
        assert!(!miss);
    }

    #[test]
    fn advance_epoch_eagerly_empties_everything() {
        let cache = InversionCache::default();
        for i in 0..20 {
            cache.get_or_compute(key(1, i), || Ok(i as f64)).0.unwrap();
        }
        assert_eq!(cache.len(), 20);
        cache.advance_epoch(0, 2);
        assert_eq!(cache.len(), 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn tenants_have_independent_epochs_and_results() {
        let cache = InversionCache::default();
        // Tenant 0 at epoch 5, tenant 1 at epoch 2, same quantized question.
        cache
            .get_or_compute(tenant_key(0, 5, 500), || Ok(0.1))
            .0
            .unwrap();
        cache
            .get_or_compute(tenant_key(1, 2, 500), || Ok(0.9))
            .0
            .unwrap();
        // Same kind, different tenant: distinct answers, no sharing.
        let (r0, miss0) = cache.get_or_compute(tenant_key(0, 5, 500), || panic!("cached"));
        let (r1, miss1) = cache.get_or_compute(tenant_key(1, 2, 500), || panic!("cached"));
        assert_eq!((r0, miss0), (Ok(0.1), false));
        assert_eq!((r1, miss1), (Ok(0.9), false));
        // Tenant 0 advancing does not touch tenant 1's entries.
        cache.advance_epoch(0, 6);
        let (r1, miss1) = cache.get_or_compute(tenant_key(1, 2, 500), || panic!("survived"));
        assert_eq!((r1, miss1), (Ok(0.9), false));
        let (_, miss0) = cache.get_or_compute(tenant_key(0, 6, 500), || Ok(0.2));
        assert!(miss0, "tenant 0's old epoch was dropped");
    }

    #[test]
    fn capacity_eviction_spares_other_tenants() {
        // One shard so every key contends on the same capacity bound.
        let cache = InversionCache::new(1, 8, 4);
        cache
            .get_or_compute(tenant_key(1, 1, 999), || Ok(42.0))
            .0
            .unwrap();
        // Tenant 0 sweeps far past capacity.
        for i in 0..100 {
            cache
                .get_or_compute(tenant_key(0, 1, i), || Ok(0.0))
                .0
                .unwrap();
        }
        assert!(cache.evictions() > 0);
        // Tenant 1's lone entry was never the eviction victim.
        let (r, miss) = cache.get_or_compute(tenant_key(1, 1, 999), || panic!("evicted"));
        assert_eq!((r, miss), (Ok(42.0), false));
    }

    #[test]
    fn prewarm_result_is_a_hit_for_the_first_reader() {
        let cache = InversionCache::default();
        cache.prewarm_result(key(3, 500), Ok(0.75));
        let (r, miss) = cache.get_or_compute(key(3, 500), || panic!("prewarmed"));
        assert_eq!((r, miss), (Ok(0.75), false));
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        // A stale prewarm (older than the tenant's current epoch) is a no-op.
        cache.advance_epoch(0, 4);
        cache.prewarm_result(key(3, 400), Ok(0.5));
        let (_, miss) = cache.get_or_compute(key(3, 400), || Ok(0.0));
        assert!(miss, "old-epoch prewarm must not be served");
    }

    #[test]
    fn capacity_bound_holds_under_high_cardinality() {
        let cache = InversionCache::new(4, 8, 4);
        for i in 0..10_000 {
            cache.get_or_compute(key(1, i), || Ok(0.0)).0.unwrap();
        }
        assert!(
            cache.len() <= 4 * 8,
            "resident {} exceeds the bound",
            cache.len()
        );
        assert!(cache.evictions() > 0, "capacity clears happened");
    }

    #[test]
    fn single_flight_coalesces_identical_concurrent_misses() {
        let cache = Arc::new(InversionCache::default());
        let calls = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(4));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let calls = Arc::clone(&calls);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    let (r, _) = cache.get_or_compute(key(1, 42), || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        // Hold the flight open long enough for the others
                        // to pile onto it.
                        std::thread::sleep(Duration::from_millis(50));
                        Ok(0.123_456_789)
                    });
                    r.unwrap().to_bits()
                })
            })
            .collect();
        let bits: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(bits.windows(2).all(|w| w[0] == w[1]), "same bits to all");
        assert_eq!(
            calls.load(Ordering::SeqCst),
            1,
            "exactly one computation ran"
        );
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.misses, 4);
        assert_eq!(cache.coalesced(), stats.hits);
    }

    #[test]
    fn abandoned_leader_wakes_waiters_to_retry() {
        let cache = Arc::new(InversionCache::default());
        let barrier = Arc::new(Barrier::new(2));
        // Leader: registers the flight, signals, then panics mid-compute.
        let leader = {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let _ = cache.get_or_compute(key(1, 7), || {
                    barrier.wait();
                    std::thread::sleep(Duration::from_millis(30));
                    panic!("leader dies mid-flight");
                });
            })
        };
        // Follower: arrives while the flight is pending, must end up with
        // a real answer (retrying, possibly leading itself) — not a hang.
        let follower = {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                let (r, _) = cache.get_or_compute(key(1, 7), || Ok(9.5));
                r.unwrap()
            })
        };
        assert!(leader.join().is_err(), "leader panicked as scripted");
        assert_eq!(follower.join().unwrap(), 9.5);
        // The key is not wedged for later callers either.
        let (r, _) = cache.get_or_compute(key(1, 7), || Ok(9.5));
        assert_eq!(r, Ok(9.5));
    }
}
