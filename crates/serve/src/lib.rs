//! # cos-serve
//!
//! An **online SLA-prediction service** over the analytic model: the
//! operational form of the paper's vision (§I) — a system that watches its
//! own telemetry and continuously answers "what fraction of requests will
//! meet this SLA, now and at hypothetical loads?".
//!
//! The pipeline, stream to answer:
//!
//! * [`telemetry`] — the input event format (arrivals, data reads,
//!   operation latencies, completions), deliberately independent of the
//!   simulator so any source can feed it;
//! * [`calibrate`] — sliding-window online estimators (§IV-B): arrival and
//!   data-read rates, latency-threshold miss ratios, proportional disk
//!   service decomposition — re-fitting [`cos_model::SystemParams`] on a
//!   fixed event-time cadence;
//! * [`engine`] — the memoized inversion engine: percentile / attainment /
//!   headroom / bottleneck queries cached on the quantized
//!   `(epoch, rate, SLA)` key, so a polling dashboard costs one inversion
//!   per distinct question per epoch;
//! * [`worker`] — a `std::thread` pool fanning batch what-if sweeps across
//!   rates;
//! * [`drift`] — observed-vs-predicted attainment monitoring, the signal
//!   that the fitted distribution family itself has gone bad;
//! * [`obs`] — the service's instrument bundle ([`ServeObs`]): refit
//!   duration, cache-hit/miss query latency, ingest lag, and sweep-pool
//!   timings, recorded into a shared [`cos_obs::Registry`];
//! * [`tenant`] / [`query`] — the fleet dimension: [`TenantId`]-scoped
//!   estimator shards and the builder-style [`Query`] every read endpoint
//!   takes;
//! * [`snapshot`] — the lock-free read path and the fleet's **delta
//!   publication** protocol (only changed tenants republish);
//! * [`service`] — the assembled [`SlaService`] state machine and its
//!   spawned, channel-driven form;
//! * [`error`] — typed failure modes (warming up, unstable ρ ≥ 1,
//!   unreachable goals, unknown tenants, malformed queries, shutdown).
//!
//! Degradation is graceful by construction: a failed or unstable re-fit
//! never evicts the last good epoch — answers keep flowing, flagged
//! [`Prediction::stale`], until calibration recovers.

#![warn(missing_docs)]

pub mod cache;
pub mod calibrate;
pub mod drift;
pub mod engine;
pub mod error;
pub mod obs;
pub mod query;
pub mod service;
pub mod snapshot;
pub mod telemetry;
pub mod tenant;
pub mod worker;

pub use cache::{quantize_rate, InversionCache, QueryKey, QueryKind};
pub use calibrate::{CalibrationBase, CalibratorConfig, FitError, OnlineCalibrator};
pub use drift::{DriftConfig, DriftMonitor, DriftReport};
pub use engine::{
    CacheStats, EngineHealth, EpochSnapshot, Prediction, PredictionEngine, FRACTION_QUANTUM,
    RATE_QUANTUM, SLA_QUANTUM,
};
pub use error::ServeError;
pub use obs::ServeObs;
pub use query::{Query, DEFAULT_HEADROOM_UPPER};
pub use service::{
    InvalidConfig, ServeConfig, ServeConfigBuilder, ServiceClient, ServiceHandle, ServiceStatus,
    SlaService, TelemetrySender,
};
pub use snapshot::{FleetState, PublishStats, SnapshotReader, SnapshotState, TenantEntry};
pub use telemetry::{OpClass, TelemetryEvent};
pub use tenant::{InvalidTenant, TenantId, DEFAULT_TENANT};
pub use worker::{RatePoint, SweepHandle, SweepPool};
