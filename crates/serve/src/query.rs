//! The builder-style query surface.
//!
//! Every read endpoint used to grow positional arguments (`sla`, `rate`,
//! `n`, `k`, `upper`, …) in lock-step across [`ServiceClient`],
//! [`SnapshotReader`], and [`ServiceHandle`]. A [`Query`] packs all of
//! them — plus the fleet dimension, a [`TenantId`] — into one value:
//!
//! ```
//! use cos_serve::{Query, TenantId};
//! let t = TenantId::new("analytics").unwrap();
//! let q = Query::tenant(t).sla(0.050).n_k(4, 2);
//! # let _ = q;
//! ```
//!
//! Resolution to the cache's quantized [`QueryKind`] lives here, in one
//! place, so the worker path and the lock-free snapshot path cannot drift:
//! both call the same `*_question` helper and therefore produce the same
//! [`QueryKey`](crate::QueryKey) bits as the legacy positional methods
//! they replace.
//!
//! [`ServiceClient`]: crate::ServiceClient
//! [`SnapshotReader`]: crate::SnapshotReader
//! [`ServiceHandle`]: crate::ServiceHandle

use cos_model::SlaGoal;

use crate::cache::{quantize_rate, QueryKind};
use crate::error::ServeError;
use crate::tenant::TenantId;

/// Default headroom search ceiling (req/s) when [`Query::upper`] is unset.
pub const DEFAULT_HEADROOM_UPPER: f64 = 10_000.0;

/// One prediction question, built fluently. Which fields are required
/// depends on the endpoint the query is handed to:
///
/// * attainment — `sla` (plus optional `rate` or `n_k`);
/// * percentile — `p` (plus optional `n_k`);
/// * headroom — `sla` and `target` (plus optional `upper`);
/// * bottleneck ranking — `sla`.
///
/// A missing required field is a typed [`ServeError::BadQuery`], not a
/// panic, so network frontends can map it to a 4xx.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    tenant: TenantId,
    sla: Option<f64>,
    p: Option<f64>,
    rate: Option<f64>,
    coding: Option<(u16, u16)>,
    target: Option<f64>,
    upper: Option<f64>,
}

impl Query {
    /// A query against the reserved `default` tenant.
    pub fn new() -> Query {
        Query::tenant(TenantId::default_tenant())
    }

    /// A query against `tenant`.
    pub fn tenant(tenant: TenantId) -> Query {
        Query {
            tenant,
            sla: None,
            p: None,
            rate: None,
            coding: None,
            target: None,
            upper: None,
        }
    }

    /// SLA latency bound in seconds.
    pub fn sla(mut self, sla: f64) -> Query {
        self.sla = Some(sla);
        self
    }

    /// Percentile in `(0, 1)`, e.g. `0.95`.
    pub fn p(mut self, p: f64) -> Query {
        self.p = Some(p);
        self
    }

    /// What-if total arrival rate (req/s) the system is rescaled to.
    pub fn rate(mut self, rate: f64) -> Query {
        self.rate = Some(rate);
        self
    }

    /// Erasure-coding fan-out: `n` sub-requests launched, `k` needed.
    pub fn n_k(mut self, n: u16, k: u16) -> Query {
        self.coding = Some((n, k));
        self
    }

    /// Headroom target fraction in `(0, 1)`.
    pub fn target(mut self, target: f64) -> Query {
        self.target = Some(target);
        self
    }

    /// Headroom search ceiling in req/s (defaults to
    /// [`DEFAULT_HEADROOM_UPPER`]).
    pub fn upper(mut self, upper: f64) -> Query {
        self.upper = Some(upper);
        self
    }

    /// The tenant this query is scoped to.
    pub fn tenant_id(&self) -> &TenantId {
        &self.tenant
    }

    fn bad(reason: &'static str) -> ServeError {
        ServeError::BadQuery { reason }
    }

    fn require(field: Option<f64>, reason: &'static str) -> Result<f64, ServeError> {
        match field {
            Some(v) if v.is_finite() => Ok(v),
            Some(_) => Err(Query::bad(reason)),
            None => Err(Query::bad(reason)),
        }
    }

    fn coding_checked(&self) -> Result<Option<(u16, u16)>, ServeError> {
        match self.coding {
            Some((n, k)) if k >= 1 && k <= n => Ok(Some((n, k))),
            Some(_) => Err(Query::bad("coding requires 1 <= k <= n")),
            None => Ok(None),
        }
    }

    /// Resolves this query as an attainment (fraction-meeting-SLA)
    /// question: the quantized what-if rate cell and the [`QueryKind`].
    pub(crate) fn attainment_question(&self) -> Result<(Option<i64>, QueryKind), ServeError> {
        let sla = Query::require(self.sla, "attainment requires a finite `sla`")?;
        if sla <= 0.0 {
            return Err(Query::bad("`sla` must be positive"));
        }
        let rate_q = self.rate.map(quantize_rate);
        let kind = match self.coding_checked()? {
            Some((n, k)) => QueryKind::coded_fraction(n, k, sla),
            None => QueryKind::fraction(sla),
        };
        Ok((rate_q, kind))
    }

    /// Resolves this query as a latency-percentile question.
    pub(crate) fn percentile_question(&self) -> Result<(Option<i64>, QueryKind), ServeError> {
        let p = Query::require(self.p, "percentile requires a finite `p`")?;
        if !(0.0..1.0).contains(&p) || p <= 0.0 {
            return Err(Query::bad("`p` must lie in (0, 1)"));
        }
        let rate_q = self.rate.map(quantize_rate);
        let kind = match self.coding_checked()? {
            Some((n, k)) => QueryKind::coded_percentile(n, k, p),
            None => QueryKind::percentile(p),
        };
        Ok((rate_q, kind))
    }

    /// Resolves this query as a headroom (max admissible rate) question.
    pub(crate) fn headroom_question(&self) -> Result<(Option<i64>, QueryKind), ServeError> {
        let sla = Query::require(self.sla, "headroom requires a finite `sla`")?;
        if sla <= 0.0 {
            return Err(Query::bad("`sla` must be positive"));
        }
        let target = Query::require(self.target, "headroom requires a finite `target`")?;
        if !(target > 0.0 && target < 1.0) {
            return Err(Query::bad("`target` must lie in (0, 1)"));
        }
        let upper = self.upper.unwrap_or(DEFAULT_HEADROOM_UPPER);
        if !(upper.is_finite() && upper > 0.0) {
            return Err(Query::bad("`upper` must be finite and positive"));
        }
        if self.coding.is_some() {
            return Err(Query::bad("headroom does not support `n`/`k` coding"));
        }
        Ok((None, QueryKind::headroom(SlaGoal::new(sla, target), upper)))
    }

    /// Resolves this query as a bottleneck-ranking question, returning the
    /// SLA bound the per-device fractions are evaluated at.
    pub(crate) fn ranking_sla(&self) -> Result<f64, ServeError> {
        let sla = Query::require(self.sla, "ranking requires a finite `sla`")?;
        if sla <= 0.0 {
            return Err(Query::bad("`sla` must be positive"));
        }
        if self.coding.is_some() {
            return Err(Query::bad("ranking does not support `n`/`k` coding"));
        }
        Ok(sla)
    }
}

impl Default for Query {
    fn default() -> Self {
        Query::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_resolves_like_the_positional_paths() {
        // Plain attainment.
        let (rq, kind) = Query::new().sla(0.05).attainment_question().unwrap();
        assert_eq!(rq, None);
        assert_eq!(kind, QueryKind::fraction(0.05));
        // What-if rate.
        let (rq, kind) = Query::new()
            .sla(0.05)
            .rate(150.0)
            .attainment_question()
            .unwrap();
        assert_eq!(rq, Some(quantize_rate(150.0)));
        assert_eq!(kind, QueryKind::fraction(0.05));
        // Coded attainment.
        let (rq, kind) = Query::new()
            .sla(0.05)
            .n_k(4, 2)
            .attainment_question()
            .unwrap();
        assert_eq!(rq, None);
        assert_eq!(kind, QueryKind::coded_fraction(4, 2, 0.05));
        // Percentiles, plain and coded.
        let (_, kind) = Query::new().p(0.95).percentile_question().unwrap();
        assert_eq!(kind, QueryKind::percentile(0.95));
        let (_, kind) = Query::new()
            .p(0.99)
            .n_k(6, 4)
            .percentile_question()
            .unwrap();
        assert_eq!(kind, QueryKind::coded_percentile(6, 4, 0.99));
        // Headroom with and without an explicit ceiling.
        let (rq, kind) = Query::new()
            .sla(0.1)
            .target(0.9)
            .headroom_question()
            .unwrap();
        assert_eq!(rq, None);
        assert_eq!(
            kind,
            QueryKind::headroom(SlaGoal::new(0.1, 0.9), DEFAULT_HEADROOM_UPPER)
        );
        let (_, kind) = Query::new()
            .sla(0.1)
            .target(0.9)
            .upper(500.0)
            .headroom_question()
            .unwrap();
        assert_eq!(kind, QueryKind::headroom(SlaGoal::new(0.1, 0.9), 500.0));
        // Ranking.
        assert_eq!(Query::new().sla(0.05).ranking_sla().unwrap(), 0.05);
    }

    #[test]
    fn missing_or_nonsense_fields_are_typed_refusals() {
        let bad = |r: Result<(Option<i64>, QueryKind), ServeError>| {
            assert!(matches!(r, Err(ServeError::BadQuery { .. })), "{r:?}")
        };
        bad(Query::new().attainment_question());
        bad(Query::new().sla(-1.0).attainment_question());
        bad(Query::new().sla(f64::NAN).attainment_question());
        bad(Query::new().sla(0.05).n_k(2, 4).attainment_question());
        bad(Query::new().percentile_question());
        bad(Query::new().p(1.5).percentile_question());
        bad(Query::new().sla(0.05).headroom_question());
        bad(Query::new().sla(0.05).target(1.5).headroom_question());
        bad(Query::new()
            .sla(0.05)
            .target(0.9)
            .upper(-5.0)
            .headroom_question());
        bad(Query::new()
            .sla(0.05)
            .target(0.9)
            .n_k(4, 2)
            .headroom_question());
        assert!(Query::new().ranking_sla().is_err());
        assert!(Query::new().sla(0.05).n_k(4, 2).ranking_sla().is_err());
    }

    #[test]
    fn tenant_scoping_is_carried() {
        let t = TenantId::new("blue").unwrap();
        let q = Query::tenant(t.clone()).sla(0.05);
        assert_eq!(q.tenant_id(), &t);
        assert!(Query::new().tenant_id().is_default());
        assert_eq!(Query::default(), Query::new());
    }
}
