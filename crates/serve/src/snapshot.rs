//! The lock-free snapshot read path.
//!
//! The worker thread owns the *write* path — telemetry ingest and
//! calibration re-fits — and after every re-fit attempt publishes an
//! immutable [`SnapshotState`] through an atomic `Arc` swap
//! ([`cos_par::ArcCell`]). Any number of [`SnapshotReader`]s — one per
//! gate connection thread, typically — load the current state with one
//! atomic operation and evaluate predictions **in place on the calling
//! thread**, with zero channel round-trips and zero contention with the
//! worker.
//!
//! Consistency and memory ordering:
//!
//! * A published state is immutable; readers clone the `Arc`, never the
//!   data. A reader therefore observes either the old epoch or the new
//!   one in full — never a torn mix — because `ArcCell::set` stores the
//!   new pointer with `Release` ordering and `ArcCell::get` loads it with
//!   `Acquire`, so everything written while building the state
//!   *happens-before* any read through the swapped pointer.
//! * Answers are **bit-identical** to the worker path by construction:
//!   both paths funnel through the shared
//!   [`InversionCache`], which reconstructs every
//!   input from the quantized key and runs one evaluation code path.
//! * The live event clock is a plain `AtomicU64` holding the `f64` bits
//!   of the newest event time (`Relaxed` — it is an independent
//!   monotone scalar, not a synchronization edge).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cos_model::{ModelVariant, SlaGoal};
use cos_par::ArcCell;

use crate::cache::{quantize_rate, InversionCache, QueryKind};
use crate::drift::DriftReport;
use crate::engine::{EngineHealth, EpochSnapshot, Prediction};
use crate::error::ServeError;
use crate::obs::ServeObs;
use crate::service::ServiceStatus;

/// Everything the worker publishes atomically after each re-fit attempt:
/// the installed epoch (if any), the most recent fit failure, and the
/// drift verdicts as of the publication instant.
#[derive(Debug, Clone)]
pub struct SnapshotState {
    /// The installed calibration epoch (`None` while warming up).
    pub snapshot: Option<EpochSnapshot>,
    /// Why the most recent failed re-fit failed (`None` after a success).
    pub last_fit_error: Option<String>,
    /// Re-fits that have failed since startup.
    pub failed_refits: u64,
    /// Whether the most recent re-fit failed because the *fitted operating
    /// point itself* was unstable (some queue at ρ ≥ 1) — as opposed to a
    /// data problem like an empty window. An admission controller must
    /// treat this as an overload signal even though the installed (stale)
    /// epoch still answers with healthy-looking predictions.
    pub unstable_fit: bool,
    /// Per-SLA drift verdicts (observed vs predicted attainment) as of
    /// the most recent publication.
    pub drift: Vec<DriftReport>,
}

/// The write side of the publication protocol, owned by the service.
/// Readers hold it behind an `Arc` via [`SnapshotReader`].
pub(crate) struct SnapshotShared {
    cell: ArcCell<SnapshotState>,
    /// Set when the service thread exits; readers then answer
    /// [`ServeError::Disconnected`], matching the channel path.
    closed: AtomicBool,
    /// `f64` bits of the newest event time, updated on every ingest.
    event_time: AtomicU64,
    cache: Arc<InversionCache>,
    variant: ModelVariant,
    obs: ServeObs,
}

impl SnapshotShared {
    pub(crate) fn new(
        variant: ModelVariant,
        cache: Arc<InversionCache>,
        obs: ServeObs,
        initial: SnapshotState,
    ) -> SnapshotShared {
        SnapshotShared {
            cell: ArcCell::new(Arc::new(initial)),
            closed: AtomicBool::new(false),
            event_time: AtomicU64::new(0f64.to_bits()),
            cache,
            variant,
            obs,
        }
    }

    /// Atomically replaces the published state (the refit-time publish).
    pub(crate) fn publish(&self, state: SnapshotState) {
        self.cell.set(Arc::new(state));
    }

    /// Advances the live event clock (every ingest).
    pub(crate) fn set_event_time(&self, t: f64) {
        self.event_time.store(t.to_bits(), Ordering::Relaxed);
    }

    /// Marks the service gone; every subsequent read answers
    /// [`ServeError::Disconnected`].
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }
}

/// A lock-free query endpoint evaluating predictions **on the calling
/// thread** against the worker's most recently published epoch.
///
/// Obtained from [`ServiceClient::reader`](crate::ServiceClient::reader)
/// (or [`ServiceHandle::reader`](crate::ServiceHandle::reader)); cloning
/// is cheap (one `Arc`). Every method is a pure read: one atomic load of
/// the published state, then evaluation through the shared, sharded
/// [`InversionCache`] — so answers are
/// bit-identical to the worker path and concurrent readers scale without
/// serializing on the service thread.
#[derive(Clone)]
pub struct SnapshotReader {
    shared: Arc<SnapshotShared>,
}

impl SnapshotReader {
    pub(crate) fn new(shared: Arc<SnapshotShared>) -> SnapshotReader {
        SnapshotReader { shared }
    }

    /// One consistent view: the published state plus its epoch, or the
    /// typed refusal (`Disconnected` after shutdown, `NotCalibrated`
    /// while warming up).
    fn current(&self) -> Result<(Arc<SnapshotState>, EpochSnapshot), ServeError> {
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(ServeError::Disconnected);
        }
        let state = self.shared.cell.get();
        let snap = state.snapshot.clone().ok_or(ServeError::NotCalibrated)?;
        Ok((state, snap))
    }

    fn answer(&self, rate_q: Option<i64>, kind: QueryKind) -> Result<Prediction, ServeError> {
        let (_state, snap) = self.current()?;
        let start = Instant::now();
        let (outcome, miss) = self
            .shared
            .cache
            .answer(&snap, self.shared.variant, rate_q, kind);
        self.record(start, miss);
        outcome.map(|value| Prediction {
            value,
            epoch: snap.epoch,
            stale: snap.stale,
        })
    }

    fn record(&self, start: Instant, miss: bool) {
        let elapsed = start.elapsed();
        if miss {
            self.shared.obs.query_miss.record_duration(elapsed);
        } else {
            self.shared.obs.query_hit.record_duration(elapsed);
        }
    }

    /// Predicted fraction of requests meeting `sla` at the calibrated
    /// operating point.
    pub fn predict(&self, sla: f64) -> Result<Prediction, ServeError> {
        self.answer(None, QueryKind::fraction(sla))
    }

    /// What-if: fraction meeting `sla` at a hypothetical total rate.
    pub fn predict_at_rate(&self, rate: f64, sla: f64) -> Result<Prediction, ServeError> {
        self.answer(Some(quantize_rate(rate)), QueryKind::fraction(sla))
    }

    /// Predicted response-latency percentile (e.g. `p = 0.95`).
    pub fn percentile(&self, p: f64) -> Result<Prediction, ServeError> {
        self.answer(None, QueryKind::percentile(p))
    }

    /// Overload-control headroom up to `upper` req/s.
    pub fn headroom(&self, goal: SlaGoal, upper: f64) -> Result<Prediction, ServeError> {
        self.answer(None, QueryKind::headroom(goal, upper))
    }

    /// Fraction of erasure-coded `(launched, needed)` reads meeting `sla`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= needed <= launched` — network callers are
    /// validated at the gate.
    pub fn coded_fraction(
        &self,
        launched: u16,
        needed: u16,
        sla: f64,
    ) -> Result<Prediction, ServeError> {
        self.answer(None, QueryKind::coded_fraction(launched, needed, sla))
    }

    /// Latency percentile of erasure-coded `(launched, needed)` reads.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= needed <= launched` — network callers are
    /// validated at the gate.
    pub fn coded_percentile(
        &self,
        launched: u16,
        needed: u16,
        p: f64,
    ) -> Result<Prediction, ServeError> {
        self.answer(None, QueryKind::coded_percentile(launched, needed, p))
    }

    /// Bottleneck ranking, worst device first. All per-device queries are
    /// answered against the *same* epoch view, so the ranking is
    /// internally consistent even if a re-fit lands mid-call.
    pub fn bottlenecks(&self, sla: f64) -> Result<Vec<(usize, f64)>, ServeError> {
        let (_state, snap) = self.current()?;
        let start = Instant::now();
        let n = snap.params.devices.len();
        let mut any_miss = false;
        let mut out = Vec::with_capacity(n);
        for device in 0..n {
            let (r, miss) = self.shared.cache.answer(
                &snap,
                self.shared.variant,
                None,
                QueryKind::device_fraction(device, sla),
            );
            any_miss |= miss;
            out.push((device, r?));
        }
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fractions"));
        self.record(start, any_miss);
        Ok(out)
    }

    /// Health summary assembled without touching the service thread: the
    /// published epoch / fit-failure / drift state, the live event clock,
    /// and the shared cache's counters. The drift verdicts are as of the
    /// most recent publication (the worker refreshes them at every re-fit
    /// attempt), not recomputed per call.
    pub fn status(&self) -> Result<ServiceStatus, ServeError> {
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(ServeError::Disconnected);
        }
        let state = self.shared.cell.get();
        let snap = state.snapshot.as_ref();
        Ok(ServiceStatus {
            event_time: self.event_time(),
            epoch: snap.map(|s| s.epoch),
            fitted_at: snap.map(|s| s.fitted_at),
            stale: snap.map(|s| s.stale).unwrap_or(false),
            last_fit_error: state.last_fit_error.clone(),
            engine: EngineHealth {
                cache: self.shared.cache.stats(),
                failed_refits: state.failed_refits,
            },
            drift: state.drift.clone(),
        })
    }

    /// The raw published state: installed epoch (with its fitted
    /// [`cos_model::SystemParams`]), fit-failure flags, and drift verdicts
    /// in one immutable view. This is the endpoint control loops poll: one
    /// atomic load, no allocation, and every field is from the same
    /// publication instant.
    pub fn state(&self) -> Result<Arc<SnapshotState>, ServeError> {
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(ServeError::Disconnected);
        }
        Ok(self.shared.cell.get())
    }

    /// The newest event time seen by the worker (bit-exact with the
    /// worker's own clock — the bits travel through one atomic).
    pub fn event_time(&self) -> f64 {
        f64::from_bits(self.shared.event_time.load(Ordering::Relaxed))
    }

    /// Number of publications so far — a cheap change detector for
    /// pollers (monotone; bumps on every re-fit attempt).
    pub fn generation(&self) -> u64 {
        self.shared.cell.generation()
    }

    /// Whether the owning service has shut down.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for SnapshotReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotReader")
            .field("generation", &self.generation())
            .field("closed", &self.is_closed())
            .finish()
    }
}
