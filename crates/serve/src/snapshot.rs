//! The lock-free snapshot read path and the fleet's delta publication
//! protocol.
//!
//! The worker thread owns the *write* path — telemetry ingest and
//! calibration re-fits — and after every re-fit attempt publishes an
//! immutable [`FleetState`] (one [`SnapshotState`] per tenant) through an
//! atomic `Arc` swap ([`cos_par::ArcCell`]). Any number of
//! [`SnapshotReader`]s — one per gate connection thread, typically — load
//! the current state with one atomic operation and evaluate predictions
//! **in place on the calling thread**, with zero channel round-trips and
//! zero contention with the worker.
//!
//! ## Delta publication
//!
//! A fleet-sized refit rarely changes every tenant: most windows are
//! quiet, and only the tenants that saw traffic since the last sweep get
//! a new fit. Republishing the whole fleet per refit would make publish
//! cost O(fleet) in *rebuilt states*; instead the worker publishes
//! **deltas**: it clones the entry vector (per-entry header copies — the
//! `Arc`s inside are shared, not deep-copied), replaces only the changed
//! tenants' `Arc<SnapshotState>`s, bumps those entries' generation
//! counters, and swaps the new vector in. Unchanged tenants' states are
//! the *same allocation* before and after (`Arc::ptr_eq` holds across the
//! swap).
//!
//! A delta-applied state is **provably identical to a full republish**
//! because each entry's `SnapshotState` is a pure function of its tenant
//! shard's state at that shard's last refit (the drift verdicts computed
//! then are stored and reused, not recomputed against a moved clock):
//! rebuilding an unchanged tenant's state would produce the same bytes
//! that are already published. `SlaService::republish_full` exercises
//! exactly this in the property tests.
//!
//! ## Consistency and memory ordering
//!
//! * A published fleet state is immutable; readers clone the `Arc`, never
//!   the data. A reader therefore observes either the old fleet or the
//!   new one in full — never a torn mix — because `ArcCell::set` stores
//!   the new pointer with `Release` ordering and `ArcCell::get` loads it
//!   with `Acquire`, so everything written while building the delta
//!   (including the bumped per-entry generations) *happens-before* any
//!   read through the swapped pointer. There is exactly one writer (the
//!   service thread), so read-modify-write on the cell needs no CAS loop.
//! * Answers are **bit-identical** to the worker path by construction:
//!   both paths funnel through the shared
//!   [`InversionCache`], which reconstructs every
//!   input from the quantized tenant-scoped key and runs one evaluation
//!   code path.
//! * The live event clock is a plain `AtomicU64` holding the `f64` bits
//!   of the newest event time (`Relaxed` — it is an independent
//!   monotone scalar, not a synchronization edge).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use cos_model::{ModelVariant, SlaGoal};
use cos_par::ArcCell;

use crate::cache::{quantize_rate, InversionCache, QueryKind};
use crate::drift::DriftReport;
use crate::engine::{EngineHealth, EpochSnapshot, Prediction};
use crate::error::ServeError;
use crate::obs::ServeObs;
use crate::query::Query;
use crate::service::ServiceStatus;
use crate::tenant::TenantId;

/// Everything the worker publishes for one tenant after a re-fit attempt:
/// the installed epoch (if any), the most recent fit failure, and the
/// drift verdicts as of that tenant's last refit.
#[derive(Debug, Clone)]
pub struct SnapshotState {
    /// The installed calibration epoch (`None` while warming up).
    pub snapshot: Option<EpochSnapshot>,
    /// Why the most recent failed re-fit failed (`None` after a success).
    pub last_fit_error: Option<String>,
    /// Re-fits that have failed since startup.
    pub failed_refits: u64,
    /// Whether the most recent re-fit failed because the *fitted operating
    /// point itself* was unstable (some queue at ρ ≥ 1) — as opposed to a
    /// data problem like an empty window. An admission controller must
    /// treat this as an overload signal even though the installed (stale)
    /// epoch still answers with healthy-looking predictions.
    pub unstable_fit: bool,
    /// Per-SLA drift verdicts (observed vs predicted attainment) as of
    /// the most recent publication.
    pub drift: Vec<DriftReport>,
}

/// One tenant's slot in the published [`FleetState`].
#[derive(Debug, Clone)]
pub struct TenantEntry {
    /// The tenant this entry belongs to.
    pub tenant: TenantId,
    /// The tenant's stable slot (0 = the reserved `default` tenant) —
    /// also the tenant dimension of the shared cache's keys.
    pub slot: u32,
    /// The tenant's published state (shared, immutable).
    pub state: Arc<SnapshotState>,
    /// Times this entry's state has been republished — a per-tenant
    /// change detector: unchanged tenants keep their generation (and the
    /// exact same `Arc`) across a delta publish.
    pub generation: u64,
    /// Telemetry events ingested for this tenant so far (drives the
    /// top-K-by-traffic fold on `/metrics`).
    pub events_total: u64,
}

/// The immutable, atomically swapped map of every tenant's published
/// state. Slot 0 is always the reserved `default` tenant.
#[derive(Debug, Clone)]
pub struct FleetState {
    entries: Vec<TenantEntry>,
    index: HashMap<TenantId, u32>,
}

impl FleetState {
    fn new(default_state: Arc<SnapshotState>) -> FleetState {
        let tenant = TenantId::default_tenant();
        FleetState {
            index: HashMap::from([(tenant.clone(), 0)]),
            entries: vec![TenantEntry {
                tenant,
                slot: 0,
                state: default_state,
                generation: 0,
                events_total: 0,
            }],
        }
    }

    /// The entry of `tenant`, if the fleet has seen it.
    pub fn get(&self, tenant: &TenantId) -> Option<&TenantEntry> {
        self.index
            .get(tenant)
            .map(|&slot| &self.entries[slot as usize])
    }

    /// Every tenant's entry, in slot order.
    pub fn entries(&self) -> &[TenantEntry] {
        &self.entries
    }

    /// The reserved `default` tenant's entry (always present).
    pub fn default_entry(&self) -> &TenantEntry {
        &self.entries[0]
    }

    /// Number of tenants in the fleet.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Never true — the `default` tenant always exists. Present for the
    /// conventional `len`/`is_empty` pairing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Accounting of one delta publish: how much was republished versus what
/// a full republish of the fleet would have rebuilt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PublishStats {
    /// Entries whose state was replaced by this publish.
    pub republished: usize,
    /// Total entries in the fleet at publish time.
    pub tenants: usize,
    /// Approximate bytes the delta ships: an entry header plus a rebuilt
    /// state for the *changed* tenants only (unchanged entries keep their
    /// published `Arc` and cost nothing to re-publish).
    pub delta_bytes: usize,
    /// Approximate bytes a full republish would materialize: the entry
    /// headers plus a rebuilt state for *every* tenant.
    pub full_bytes: usize,
}

impl PublishStats {
    /// `delta_bytes / full_bytes` (1.0 when the fleet is empty or the
    /// publish was full).
    pub fn delta_ratio(&self) -> f64 {
        if self.full_bytes == 0 {
            1.0
        } else {
            self.delta_bytes as f64 / self.full_bytes as f64
        }
    }
}

/// Approximate heap+inline footprint of one published state. The fitted
/// parameters behind `snapshot.params` are **shared** (`Arc`), not copied,
/// by either a delta or a full republish, so they are deliberately not
/// counted — this measures what a publish actually materializes.
fn state_bytes(state: &SnapshotState) -> usize {
    std::mem::size_of::<SnapshotState>()
        + state.drift.len() * std::mem::size_of::<DriftReport>()
        + state.last_fit_error.as_ref().map_or(0, |s| s.len())
}

/// The write side of the publication protocol, owned by the service.
/// Readers hold it behind an `Arc` via [`SnapshotReader`].
pub(crate) struct SnapshotShared {
    cell: ArcCell<FleetState>,
    /// Set when the service thread exits; readers then answer
    /// [`ServeError::Disconnected`], matching the channel path.
    closed: AtomicBool,
    /// `f64` bits of the newest event time, updated on every ingest.
    event_time: AtomicU64,
    cache: Arc<InversionCache>,
    variant: ModelVariant,
    obs: ServeObs,
}

impl SnapshotShared {
    pub(crate) fn new(
        variant: ModelVariant,
        cache: Arc<InversionCache>,
        obs: ServeObs,
        initial: SnapshotState,
    ) -> SnapshotShared {
        SnapshotShared {
            cell: ArcCell::new(Arc::new(FleetState::new(Arc::new(initial)))),
            closed: AtomicBool::new(false),
            event_time: AtomicU64::new(0f64.to_bits()),
            cache,
            variant,
            obs,
        }
    }

    /// Adds a tenant to the fleet (single writer: the service thread), in
    /// its warming-up state. Returns the assigned slot.
    pub(crate) fn register_tenant(&self, tenant: TenantId, initial: Arc<SnapshotState>) -> u32 {
        let current = self.cell.get();
        let mut entries = current.entries.clone();
        let mut index = current.index.clone();
        let slot = entries.len() as u32;
        index.insert(tenant.clone(), slot);
        entries.push(TenantEntry {
            tenant,
            slot,
            state: initial,
            generation: 0,
            events_total: 0,
        });
        self.cell.set(Arc::new(FleetState { entries, index }));
        slot
    }

    /// Atomically publishes a delta: only the given `(slot, state,
    /// events_total)` entries are replaced (with their generations
    /// bumped); every other tenant keeps its exact current `Arc`. Safe
    /// without a CAS loop because the service thread is the only writer.
    pub(crate) fn publish_delta(&self, changes: &[(u32, Arc<SnapshotState>, u64)]) -> PublishStats {
        let current = self.cell.get();
        let mut entries = current.entries.clone();
        let mut delta_bytes = changes.len() * std::mem::size_of::<TenantEntry>();
        for (slot, state, events_total) in changes {
            let entry = &mut entries[*slot as usize];
            entry.state = Arc::clone(state);
            entry.generation += 1;
            entry.events_total = *events_total;
            delta_bytes += state_bytes(state);
        }
        let full_bytes = entries.len() * std::mem::size_of::<TenantEntry>()
            + entries.iter().map(|e| state_bytes(&e.state)).sum::<usize>();
        let stats = PublishStats {
            republished: changes.len(),
            tenants: entries.len(),
            delta_bytes,
            full_bytes,
        };
        self.cell.set(Arc::new(FleetState {
            entries,
            index: current.index.clone(),
        }));
        stats
    }

    /// Advances the live event clock (every ingest).
    pub(crate) fn set_event_time(&self, t: f64) {
        self.event_time.store(t.to_bits(), Ordering::Relaxed);
    }

    /// Marks the service gone; every subsequent read answers
    /// [`ServeError::Disconnected`].
    pub(crate) fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }
}

/// A lock-free query endpoint evaluating predictions **on the calling
/// thread** against the worker's most recently published fleet state.
///
/// Obtained from [`ServiceClient::reader`](crate::ServiceClient::reader)
/// (or [`ServiceHandle::reader`](crate::ServiceHandle::reader)); cloning
/// is cheap (one `Arc`). Every method is a pure read: one atomic load of
/// the published state, then evaluation through the shared, sharded
/// [`InversionCache`] — so answers are
/// bit-identical to the worker path and concurrent readers scale without
/// serializing on the service thread.
///
/// Tenant-unaware convenience methods (and the deprecated positional
/// shims) are scoped to the reserved `default` tenant; [`Query`]-taking
/// methods reach any tenant.
#[derive(Clone)]
pub struct SnapshotReader {
    shared: Arc<SnapshotShared>,
}

impl SnapshotReader {
    pub(crate) fn new(shared: Arc<SnapshotShared>) -> SnapshotReader {
        SnapshotReader { shared }
    }

    fn fleet_checked(&self) -> Result<Arc<FleetState>, ServeError> {
        if self.shared.closed.load(Ordering::Acquire) {
            return Err(ServeError::Disconnected);
        }
        Ok(self.shared.cell.get())
    }

    /// One consistent view of a tenant: its published state, installed
    /// epoch, and cache slot — or the typed refusal (`Disconnected` after
    /// shutdown, `UnknownTenant` for a tenant the fleet has never seen,
    /// `NotCalibrated` while warming up).
    fn current_for(
        &self,
        tenant: &TenantId,
    ) -> Result<(Arc<SnapshotState>, EpochSnapshot, u32), ServeError> {
        let fleet = self.fleet_checked()?;
        let entry = fleet.get(tenant).ok_or_else(|| ServeError::UnknownTenant {
            tenant: tenant.to_string(),
        })?;
        let snap = entry
            .state
            .snapshot
            .clone()
            .ok_or(ServeError::NotCalibrated)?;
        Ok((Arc::clone(&entry.state), snap, entry.slot))
    }

    /// The `default` tenant's view (slot 0 always exists).
    fn current(&self) -> Result<(Arc<SnapshotState>, EpochSnapshot), ServeError> {
        let fleet = self.fleet_checked()?;
        let entry = fleet.default_entry();
        let snap = entry
            .state
            .snapshot
            .clone()
            .ok_or(ServeError::NotCalibrated)?;
        Ok((Arc::clone(&entry.state), snap))
    }

    fn answer_slot(
        &self,
        slot: u32,
        snap: &EpochSnapshot,
        rate_q: Option<i64>,
        kind: QueryKind,
    ) -> Result<Prediction, ServeError> {
        let start = Instant::now();
        let (outcome, miss) =
            self.shared
                .cache
                .answer(slot, snap, self.shared.variant, rate_q, kind);
        self.record(start, miss);
        outcome.map(|value| Prediction {
            value,
            epoch: snap.epoch,
            stale: snap.stale,
        })
    }

    fn answer(&self, rate_q: Option<i64>, kind: QueryKind) -> Result<Prediction, ServeError> {
        let (_state, snap) = self.current()?;
        self.answer_slot(0, &snap, rate_q, kind)
    }

    fn record(&self, start: Instant, miss: bool) {
        let elapsed = start.elapsed();
        if miss {
            self.shared.obs.query_miss.record_duration(elapsed);
        } else {
            self.shared.obs.query_hit.record_duration(elapsed);
        }
    }

    /// Predicted fraction of requests meeting the query's SLA (plain,
    /// what-if rate, or erasure-coded, depending on the query's fields),
    /// for the query's tenant.
    pub fn attainment(&self, query: &Query) -> Result<Prediction, ServeError> {
        let (rate_q, kind) = query.attainment_question()?;
        let (_state, snap, slot) = self.current_for(query.tenant_id())?;
        self.answer_slot(slot, &snap, rate_q, kind)
    }

    /// Predicted response-latency percentile for the query's tenant.
    pub fn latency_percentile(&self, query: &Query) -> Result<Prediction, ServeError> {
        let (rate_q, kind) = query.percentile_question()?;
        let (_state, snap, slot) = self.current_for(query.tenant_id())?;
        self.answer_slot(slot, &snap, rate_q, kind)
    }

    /// Overload-control headroom (largest admissible rate) for the
    /// query's tenant.
    pub fn admissible_rate(&self, query: &Query) -> Result<Prediction, ServeError> {
        let (rate_q, kind) = query.headroom_question()?;
        let (_state, snap, slot) = self.current_for(query.tenant_id())?;
        self.answer_slot(slot, &snap, rate_q, kind)
    }

    /// Bottleneck ranking for the query's tenant, worst device first. All
    /// per-device queries are answered against the *same* epoch view, so
    /// the ranking is internally consistent even if a re-fit lands
    /// mid-call.
    pub fn device_ranking(&self, query: &Query) -> Result<Vec<(usize, f64)>, ServeError> {
        let sla = query.ranking_sla()?;
        let (_state, snap, slot) = self.current_for(query.tenant_id())?;
        let start = Instant::now();
        let n = snap.params.devices.len();
        let mut any_miss = false;
        let mut out = Vec::with_capacity(n);
        for device in 0..n {
            let (r, miss) = self.shared.cache.answer(
                slot,
                &snap,
                self.shared.variant,
                None,
                QueryKind::device_fraction(device, sla),
            );
            any_miss |= miss;
            out.push((device, r?));
        }
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fractions"));
        self.record(start, any_miss);
        Ok(out)
    }

    /// Predicted fraction of requests meeting `sla` at the calibrated
    /// operating point (`default` tenant).
    #[deprecated(note = "use attainment(&Query::new().sla(sla))")]
    pub fn predict(&self, sla: f64) -> Result<Prediction, ServeError> {
        self.answer(None, QueryKind::fraction(sla))
    }

    /// What-if: fraction meeting `sla` at a hypothetical total rate
    /// (`default` tenant).
    #[deprecated(note = "use attainment(&Query::new().sla(sla).rate(rate))")]
    pub fn predict_at_rate(&self, rate: f64, sla: f64) -> Result<Prediction, ServeError> {
        self.answer(Some(quantize_rate(rate)), QueryKind::fraction(sla))
    }

    /// Predicted response-latency percentile (e.g. `p = 0.95`), `default`
    /// tenant.
    #[deprecated(note = "use latency_percentile(&Query::new().p(p))")]
    pub fn percentile(&self, p: f64) -> Result<Prediction, ServeError> {
        self.answer(None, QueryKind::percentile(p))
    }

    /// Overload-control headroom up to `upper` req/s (`default` tenant).
    #[deprecated(note = "use admissible_rate(&Query::new().sla(..).target(..).upper(upper))")]
    pub fn headroom(&self, goal: SlaGoal, upper: f64) -> Result<Prediction, ServeError> {
        self.answer(None, QueryKind::headroom(goal, upper))
    }

    /// Fraction of erasure-coded `(launched, needed)` reads meeting `sla`
    /// (`default` tenant).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= needed <= launched` — network callers are
    /// validated at the gate.
    #[deprecated(note = "use attainment(&Query::new().sla(sla).n_k(n, k))")]
    pub fn coded_fraction(
        &self,
        launched: u16,
        needed: u16,
        sla: f64,
    ) -> Result<Prediction, ServeError> {
        self.answer(None, QueryKind::coded_fraction(launched, needed, sla))
    }

    /// Latency percentile of erasure-coded `(launched, needed)` reads
    /// (`default` tenant).
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= needed <= launched` — network callers are
    /// validated at the gate.
    #[deprecated(note = "use latency_percentile(&Query::new().p(p).n_k(n, k))")]
    pub fn coded_percentile(
        &self,
        launched: u16,
        needed: u16,
        p: f64,
    ) -> Result<Prediction, ServeError> {
        self.answer(None, QueryKind::coded_percentile(launched, needed, p))
    }

    /// Bottleneck ranking, worst device first (`default` tenant).
    #[deprecated(note = "use device_ranking(&Query::new().sla(sla))")]
    pub fn bottlenecks(&self, sla: f64) -> Result<Vec<(usize, f64)>, ServeError> {
        self.device_ranking(&Query::new().sla(sla))
    }

    fn status_of_entry(&self, entry: &TenantEntry) -> ServiceStatus {
        let state = &entry.state;
        let snap = state.snapshot.as_ref();
        ServiceStatus {
            event_time: self.event_time(),
            epoch: snap.map(|s| s.epoch),
            fitted_at: snap.map(|s| s.fitted_at),
            stale: snap.map(|s| s.stale).unwrap_or(false),
            last_fit_error: state.last_fit_error.clone(),
            engine: EngineHealth {
                cache: self.shared.cache.stats(),
                failed_refits: state.failed_refits,
            },
            drift: state.drift.clone(),
        }
    }

    /// Health summary assembled without touching the service thread: the
    /// published epoch / fit-failure / drift state, the live event clock,
    /// and the shared cache's counters. The drift verdicts are as of the
    /// most recent publication (the worker refreshes them at every re-fit
    /// attempt), not recomputed per call. Scoped to the `default` tenant.
    pub fn status(&self) -> Result<ServiceStatus, ServeError> {
        let fleet = self.fleet_checked()?;
        Ok(self.status_of_entry(fleet.default_entry()))
    }

    /// [`status`](SnapshotReader::status) for an arbitrary tenant.
    pub fn status_for(&self, tenant: &TenantId) -> Result<ServiceStatus, ServeError> {
        let fleet = self.fleet_checked()?;
        let entry = fleet.get(tenant).ok_or_else(|| ServeError::UnknownTenant {
            tenant: tenant.to_string(),
        })?;
        Ok(self.status_of_entry(entry))
    }

    /// The `default` tenant's raw published state: installed epoch (with
    /// its fitted [`cos_model::SystemParams`]), fit-failure flags, and
    /// drift verdicts in one immutable view. This is the endpoint control
    /// loops poll: one atomic load, no allocation, and every field is
    /// from the same publication instant.
    pub fn state(&self) -> Result<Arc<SnapshotState>, ServeError> {
        Ok(Arc::clone(&self.fleet_checked()?.default_entry().state))
    }

    /// [`state`](SnapshotReader::state) for an arbitrary tenant.
    pub fn state_for(&self, tenant: &TenantId) -> Result<Arc<SnapshotState>, ServeError> {
        let fleet = self.fleet_checked()?;
        let entry = fleet.get(tenant).ok_or_else(|| ServeError::UnknownTenant {
            tenant: tenant.to_string(),
        })?;
        Ok(Arc::clone(&entry.state))
    }

    /// The whole published fleet in one immutable view (for metrics
    /// renders and fleet dashboards).
    pub fn fleet(&self) -> Result<Arc<FleetState>, ServeError> {
        self.fleet_checked()
    }

    /// The newest event time seen by the worker (bit-exact with the
    /// worker's own clock — the bits travel through one atomic).
    pub fn event_time(&self) -> f64 {
        f64::from_bits(self.shared.event_time.load(Ordering::Relaxed))
    }

    /// Number of fleet publications so far — a cheap change detector for
    /// pollers (monotone; bumps on every re-fit attempt and tenant
    /// registration, fleet-wide).
    pub fn generation(&self) -> u64 {
        self.shared.cell.generation()
    }

    /// Times `tenant`'s own entry has been republished — the per-tenant
    /// change detector (unchanged tenants keep their generation across a
    /// delta publish).
    pub fn generation_for(&self, tenant: &TenantId) -> Result<u64, ServeError> {
        let fleet = self.fleet_checked()?;
        let entry = fleet.get(tenant).ok_or_else(|| ServeError::UnknownTenant {
            tenant: tenant.to_string(),
        })?;
        Ok(entry.generation)
    }

    /// Whether the owning service has shut down.
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(Ordering::Acquire)
    }
}

impl std::fmt::Debug for SnapshotReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotReader")
            .field("generation", &self.generation())
            .field("closed", &self.is_closed())
            .finish()
    }
}
