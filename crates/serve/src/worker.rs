//! A background worker pool for batch what-if sweeps.
//!
//! Planning queries ("what does attainment look like from 50 to 500 req/s?")
//! evaluate the model at many hypothetical rates; each point is independent,
//! so the pool fans one [`SystemModel`](cos_model::SystemModel) build + inversion batch per rate out
//! to `std::thread` workers over plain channels (no external runtime). The
//! shared-parameter handoff is just an `Arc<SystemParams>` — service-time
//! laws are `Arc<dyn ServiceTime + Send + Sync>`, so a snapshot crosses
//! threads without copying the fitted distributions.
//!
//! Results stream back over a per-sweep reply channel; [`SweepHandle::wait`]
//! collects and orders them. Unstable rates come back as
//! [`RatePoint::fractions`] `= None` rather than failing the sweep — a
//! sweep that straddles the saturation knee is the common case, not an
//! error.

use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Instant;

use cos_model::{model_at_rate, ModelVariant, SystemParams};
use cos_obs::Hist;
use cos_par::ParPool;

/// One evaluated sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct RatePoint {
    /// Total arrival rate of the hypothetical operating point (req/s).
    pub rate: f64,
    /// Fraction meeting each queried SLA, in query order; `None` if the
    /// point has no steady state (ρ ≥ 1).
    pub fractions: Option<Vec<f64>>,
}

struct WorkItem {
    params: Arc<SystemParams>,
    variant: ModelVariant,
    rate: f64,
    slas: Arc<Vec<f64>>,
    reply: Sender<RatePoint>,
    /// Submission stamp + the histogram the queue delay is recorded into
    /// (when the pool was built with timing).
    enqueued: Option<(Instant, Hist)>,
}

fn evaluate(item: WorkItem) {
    if let Some((at, wait)) = &item.enqueued {
        wait.record_duration(at.elapsed());
    }
    let fractions = model_at_rate(&item.params, item.variant, item.rate)
        .ok()
        .map(|m| {
            item.slas
                .iter()
                .map(|&sla| m.fraction_meeting_sla(sla))
                .collect()
        });
    // A dropped handle just discards the remaining points.
    let _ = item.reply.send(RatePoint {
        rate: item.rate,
        fractions,
    });
}

/// A fixed pool of sweep workers sharing one work queue, backed by the
/// shared [`cos_par::ParPool`] (the queue/worker plumbing previously lived
/// here; it is now the workspace-wide primitive also driving the planning
/// and benchmark sweeps).
pub struct SweepPool {
    pool: ParPool,
    queue_wait: Option<Hist>,
}

impl SweepPool {
    /// Spawns `workers` threads (at least one), untimed.
    pub fn new(workers: usize) -> Self {
        SweepPool::with_timing(workers, None, None)
    }

    /// Spawns `workers` threads recording each point's queue wait into
    /// `queue_wait` and its evaluation time into `task` (either may be
    /// `None` to disable that side).
    pub fn with_timing(workers: usize, queue_wait: Option<Hist>, task: Option<Hist>) -> Self {
        let timers: Vec<Hist> = task.into_iter().collect();
        SweepPool {
            pool: ParPool::with_timers(workers, &timers),
            queue_wait,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.pool.workers()
    }

    /// Submits one sweep: every rate in `rates` evaluated against every SLA
    /// in `slas` on a snapshot of `params`. Returns immediately; collect
    /// with [`SweepHandle::wait`].
    pub fn submit(
        &self,
        params: Arc<SystemParams>,
        variant: ModelVariant,
        rates: &[f64],
        slas: Vec<f64>,
    ) -> SweepHandle {
        let (reply, rx) = channel();
        let slas = Arc::new(slas);
        for &rate in rates {
            let item = WorkItem {
                params: params.clone(),
                variant,
                rate,
                slas: slas.clone(),
                reply: reply.clone(),
                enqueued: self
                    .queue_wait
                    .as_ref()
                    .map(|h| (Instant::now(), h.clone())),
            };
            assert!(
                self.pool.execute(move || evaluate(item)),
                "workers alive until drop"
            );
        }
        SweepHandle {
            rx,
            expected: rates.len(),
        }
    }
}

/// Pending results of one submitted sweep.
pub struct SweepHandle {
    rx: Receiver<RatePoint>,
    expected: usize,
}

impl SweepHandle {
    /// Number of points the sweep will produce.
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// Blocks until every point has been evaluated and returns them sorted
    /// by rate.
    pub fn wait(self) -> Vec<RatePoint> {
        let mut out: Vec<RatePoint> = self.rx.iter().take(self.expected).collect();
        out.sort_by(|a, b| a.rate.partial_cmp(&b.rate).expect("finite rates"));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::tests::sample_params;
    use cos_model::SystemModel;

    #[test]
    fn sweep_matches_sequential_evaluation() {
        let params = Arc::new(sample_params(100.0, 4));
        let pool = SweepPool::new(3);
        let rates = [50.0, 100.0, 150.0, 200.0, 250.0];
        let slas = vec![0.05, 0.10];
        let points = pool
            .submit(params.clone(), ModelVariant::Full, &rates, slas.clone())
            .wait();
        assert_eq!(points.len(), rates.len());
        for (point, &rate) in points.iter().zip(&rates) {
            assert_eq!(point.rate, rate);
            let reference = SystemModel::new(&params.scaled_to_rate(rate), ModelVariant::Full)
                .ok()
                .map(|m| {
                    slas.iter()
                        .map(|&s| m.fraction_meeting_sla(s))
                        .collect::<Vec<_>>()
                });
            assert_eq!(point.fractions, reference, "rate {rate}");
        }
        // Attainment is non-increasing in load wherever both points are
        // stable.
        for pair in points.windows(2) {
            if let (Some(a), Some(b)) = (&pair[0].fractions, &pair[1].fractions) {
                assert!(b[0] <= a[0] + 1e-9);
            }
        }
    }

    #[test]
    fn saturated_rates_come_back_as_none() {
        let params = Arc::new(sample_params(100.0, 4));
        let pool = SweepPool::new(2);
        let points = pool
            .submit(
                params,
                ModelVariant::Full,
                &[100.0, 1_000_000.0],
                vec![0.05],
            )
            .wait();
        assert!(points[0].fractions.is_some());
        assert_eq!(points[1].fractions, None, "ρ ≥ 1 must not fail the sweep");
    }

    #[test]
    fn sweep_is_bit_identical_for_every_worker_count() {
        // Each point is evaluated single-threaded by exactly one worker and
        // ordering is restored by rate, so the pool size must never show up
        // in the numbers.
        let params = Arc::new(sample_params(100.0, 4));
        let rates = [60.0, 110.0, 160.0, 210.0, 260.0, 310.0];
        let slas = vec![0.01, 0.05, 0.10];
        let reference = SweepPool::new(1)
            .submit(params.clone(), ModelVariant::Full, &rates, slas.clone())
            .wait();
        for workers in [2, 4, 7] {
            let got = SweepPool::new(workers)
                .submit(params.clone(), ModelVariant::Full, &rates, slas.clone())
                .wait();
            assert_eq!(got.len(), reference.len());
            for (a, b) in reference.iter().zip(got.iter()) {
                assert_eq!(a.rate.to_bits(), b.rate.to_bits(), "workers={workers}");
                match (&a.fractions, &b.fractions) {
                    (Some(fa), Some(fb)) => {
                        for (x, y) in fa.iter().zip(fb.iter()) {
                            assert_eq!(
                                x.to_bits(),
                                y.to_bits(),
                                "workers={workers} rate={}",
                                a.rate
                            );
                        }
                    }
                    (None, None) => {}
                    other => panic!("workers={workers}: stability mismatch {other:?}"),
                }
            }
        }
    }

    #[test]
    fn pool_survives_multiple_sweeps_and_dropped_handles() {
        let params = Arc::new(sample_params(100.0, 2));
        let pool = SweepPool::new(2);
        let h1 = pool.submit(
            params.clone(),
            ModelVariant::Full,
            &[80.0, 120.0],
            vec![0.05],
        );
        drop(h1); // abandoned sweep must not wedge the workers
        let h2 = pool.submit(params, ModelVariant::Full, &[90.0], vec![0.05]);
        assert_eq!(h2.wait().len(), 1);
    }
}
