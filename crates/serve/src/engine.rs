//! The memoized prediction engine.
//!
//! Answering a percentile query costs a handful of numeric Laplace
//! inversions (Euler summation over ~50 complex LST evaluations per CDF
//! point, more for percentile bisection). A dashboard polling the same
//! SLAs every second would redo identical transforms indefinitely, so the
//! engine memoizes **inversion results** keyed on the calibration epoch and
//! the quantized query: `(epoch, rate, SLA)` → fraction, `(epoch, p)` →
//! percentile, and so on. Quantization is applied to the *computation
//! inputs*, not just the key — two queries that collapse to the same key
//! are answered from the same inversion, bit-identical to an uncached
//! evaluation at the snapped point.
//!
//! Built [`SystemModel`]s (the expensive LST assembly) are cached per
//! `(epoch, rate)` alongside the scalar results, so a what-if query at a
//! new SLA on an already-seen rate only pays the final inversion.
//!
//! The memo itself lives in a shared, sharded
//! [`InversionCache`]: the engine (worker
//! path) and every [`SnapshotReader`](crate::SnapshotReader) (lock-free
//! read path) funnel through the same bounded cache and the same quantized
//! evaluation code, which is what keeps the two paths bit-identical.
//!
//! Epoch handling degrades gracefully: when a re-fit fails (no traffic, or
//! the fitted point is unstable), the engine keeps serving the last good
//! epoch with [`Prediction::stale`] set, and queries at unstable operating
//! points return the typed [`ServeError::Unstable`] — which is memoized
//! too, so a flapping dashboard does not re-derive the failure.

use std::sync::Arc;

use cos_model::{ModelVariant, SlaGoal, SystemModel, SystemParams};

use crate::cache::{quantize_rate, InversionCache, QueryKind};
use crate::error::ServeError;

/// Rate quantization step (req/s) for what-if queries.
pub const RATE_QUANTUM: f64 = 0.1;
/// SLA quantization step (seconds): 0.1 ms.
pub const SLA_QUANTUM: f64 = 1e-4;
/// Percentile / fraction quantization step.
pub const FRACTION_QUANTUM: f64 = 1e-4;

pub(crate) fn snap(x: f64, quantum: f64) -> (i64, f64) {
    let q = (x / quantum).round().max(1.0) as i64;
    (q, q as f64 * quantum)
}

/// One installed calibration epoch.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    /// Monotone epoch number (1 = first successful fit).
    pub epoch: u64,
    /// The fitted parameters.
    pub params: Arc<SystemParams>,
    /// Event time of the fit.
    pub fitted_at: f64,
    /// Whether at least one re-fit has failed since this epoch was
    /// installed (the snapshot is being served past its refresh due date).
    pub stale: bool,
}

/// Hit/miss counters of the result memo.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from the memo.
    pub hits: u64,
    /// Queries that ran an inversion (or model build).
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of queries answered from the memo (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Cache counters and fit-failure count in one snapshot, so observability
/// endpoints (`/metrics`) read a consistent pair without two locked
/// round-trips to the service thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineHealth {
    /// Inversion-memo hit/miss counters.
    pub cache: CacheStats,
    /// Re-fits that have failed since startup.
    pub failed_refits: u64,
}

impl EngineHealth {
    /// Fraction of queries answered from the memo (0 when none yet).
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }
}

/// A memoized answer, tagged with the epoch that produced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// The predicted value (fraction, seconds, or req/s depending on the
    /// query).
    pub value: f64,
    /// Calibration epoch the answer is based on.
    pub epoch: u64,
    /// Whether the epoch is stale (a newer re-fit failed).
    pub stale: bool,
}

/// The memoizing query engine. See the module docs for the caching scheme.
pub struct PredictionEngine {
    variant: ModelVariant,
    snapshot: Option<EpochSnapshot>,
    next_epoch: u64,
    cache: Arc<InversionCache>,
    failed_refits: u64,
    /// Tenant slot this engine's results are keyed under in the shared
    /// cache (0 = the reserved `default` tenant).
    tenant: u32,
}

impl PredictionEngine {
    /// Creates an engine answering queries under `variant`, with its own
    /// private [`InversionCache`].
    pub fn new(variant: ModelVariant) -> Self {
        PredictionEngine::with_cache(variant, Arc::new(InversionCache::default()))
    }

    /// Creates an engine recording into a shared `cache` — the form the
    /// service uses so snapshot readers and the worker thread share one
    /// bounded memo. Results are keyed under tenant slot 0.
    pub fn with_cache(variant: ModelVariant, cache: Arc<InversionCache>) -> Self {
        PredictionEngine::with_cache_for(variant, cache, 0)
    }

    /// Creates an engine for one tenant shard of a fleet: results are
    /// keyed under `tenant` in the shared cache, so tenants never share
    /// or evict each other's memoized answers.
    pub fn with_cache_for(variant: ModelVariant, cache: Arc<InversionCache>, tenant: u32) -> Self {
        PredictionEngine {
            variant,
            snapshot: None,
            next_epoch: 1,
            cache,
            failed_refits: 0,
            tenant,
        }
    }

    /// The model variant this engine evaluates.
    pub fn variant(&self) -> ModelVariant {
        self.variant
    }

    /// The tenant slot this engine's answers are keyed under.
    pub fn tenant(&self) -> u32 {
        self.tenant
    }

    /// The shared result/model memo.
    pub fn cache(&self) -> &Arc<InversionCache> {
        &self.cache
    }

    /// Installs a new calibration epoch, invalidating all cached results of
    /// previous epochs, and returns its epoch number. Pass the validated
    /// model built during the fit as `model` to pre-warm the native-rate
    /// model slot.
    pub fn install(
        &mut self,
        params: Arc<SystemParams>,
        fitted_at: f64,
        model: Option<Arc<SystemModel>>,
    ) -> u64 {
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        self.snapshot = Some(EpochSnapshot {
            epoch,
            params,
            fitted_at,
            stale: false,
        });
        self.cache.advance_epoch(self.tenant, epoch);
        if let Some(m) = model {
            self.cache.prewarm_model(self.tenant, epoch, m);
        }
        epoch
    }

    /// Marks the current epoch stale: a re-fit failed, so answers keep
    /// flowing from the last good parameters but carry the staleness flag.
    pub fn mark_stale(&mut self) {
        self.failed_refits += 1;
        if let Some(s) = &mut self.snapshot {
            s.stale = true;
        }
    }

    /// The installed epoch, if any.
    pub fn snapshot(&self) -> Option<&EpochSnapshot> {
        self.snapshot.as_ref()
    }

    /// Cache hit/miss counters (shared with every snapshot reader when the
    /// engine was built [`with_cache`](PredictionEngine::with_cache)).
    pub fn stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Resets the hit/miss counters (e.g. between benchmark phases).
    pub fn reset_stats(&self) {
        self.cache.reset_stats();
    }

    /// Re-fits that have failed since startup.
    pub fn failed_refits(&self) -> u64 {
        self.failed_refits
    }

    /// Cache counters and failure count as one merged snapshot.
    pub fn health(&self) -> EngineHealth {
        EngineHealth {
            cache: self.cache.stats(),
            failed_refits: self.failed_refits,
        }
    }

    fn current(&self) -> Result<EpochSnapshot, ServeError> {
        self.snapshot.clone().ok_or(ServeError::NotCalibrated)
    }

    pub(crate) fn answer(
        &self,
        rate_q: Option<i64>,
        kind: QueryKind,
    ) -> Result<Prediction, ServeError> {
        let snap_ = self.current()?;
        let (outcome, _miss) = self
            .cache
            .answer(self.tenant, &snap_, self.variant, rate_q, kind);
        outcome.map(|value| Prediction {
            value,
            epoch: snap_.epoch,
            stale: snap_.stale,
        })
    }

    /// Predicted fraction of requests meeting `sla` at the calibrated rate.
    pub fn fraction_meeting_sla(&self, sla: f64) -> Result<Prediction, ServeError> {
        self.answer(None, QueryKind::fraction(sla))
    }

    /// What-if: fraction meeting `sla` with the system rescaled to
    /// `total_rate` req/s.
    pub fn fraction_at_rate(&self, total_rate: f64, sla: f64) -> Result<Prediction, ServeError> {
        self.answer(Some(quantize_rate(total_rate)), QueryKind::fraction(sla))
    }

    /// Predicted response-latency percentile (seconds) at the calibrated
    /// rate, e.g. `p = 0.95`.
    pub fn latency_percentile(&self, p: f64) -> Result<Prediction, ServeError> {
        self.answer(None, QueryKind::percentile(p))
    }

    /// Predicted mean response time (seconds) at the calibrated rate.
    pub fn mean_response(&self) -> Result<Prediction, ServeError> {
        self.answer(None, QueryKind::MeanResponse)
    }

    /// Predicted fraction of (launched, needed) erasure-coded reads meeting
    /// `sla` at the calibrated rate (fork-join k-of-n over the epoch's
    /// fitted per-device marginals).
    ///
    /// # Panics
    /// Panics unless `1 ≤ needed ≤ launched` — network callers are
    /// validated at the gate.
    pub fn coded_fraction(
        &self,
        launched: u16,
        needed: u16,
        sla: f64,
    ) -> Result<Prediction, ServeError> {
        self.answer(None, QueryKind::coded_fraction(launched, needed, sla))
    }

    /// Predicted latency percentile of (launched, needed) erasure-coded
    /// reads at the calibrated rate.
    ///
    /// # Panics
    /// Panics unless `1 ≤ needed ≤ launched` — network callers are
    /// validated at the gate.
    pub fn coded_percentile(
        &self,
        launched: u16,
        needed: u16,
        p: f64,
    ) -> Result<Prediction, ServeError> {
        self.answer(None, QueryKind::coded_percentile(launched, needed, p))
    }

    /// One device's predicted fraction meeting `sla`.
    pub fn device_fraction(&self, device: usize, sla: f64) -> Result<Prediction, ServeError> {
        self.answer(None, QueryKind::device_fraction(device, sla))
    }

    /// Overload-control headroom: the largest total arrival rate (req/s) at
    /// which `goal` still holds, searched up to `upper`.
    pub fn headroom(&self, goal: SlaGoal, upper: f64) -> Result<Prediction, ServeError> {
        self.answer(None, QueryKind::headroom(goal, upper))
    }

    /// Bottleneck ranking: devices ordered by predicted fraction meeting
    /// `sla`, worst first. Assembled from memoized per-device queries.
    pub fn bottlenecks(&self, sla: f64) -> Result<Vec<(usize, f64)>, ServeError> {
        let n = self.current()?.params.devices.len();
        let mut out = Vec::with_capacity(n);
        for device in 0..n {
            out.push((device, self.device_fraction(device, sla)?.value));
        }
        out.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fractions"));
        Ok(out)
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use cos_distr::{Degenerate, Gamma};
    use cos_model::{DeviceParams, FrontendParams};
    use cos_queueing::from_distribution;

    pub(crate) fn sample_params(rate: f64, devices: usize) -> SystemParams {
        let per = rate / devices as f64;
        SystemParams {
            frontend: FrontendParams {
                arrival_rate: rate,
                processes: 3,
                parse_fe: from_distribution(Degenerate::new(0.0003)),
            },
            devices: (0..devices)
                .map(|_| DeviceParams {
                    arrival_rate: per,
                    data_read_rate: per * 1.1,
                    miss_index: 0.3,
                    miss_meta: 0.25,
                    miss_data: 0.4,
                    index_disk: from_distribution(Gamma::new(3.0, 250.0)),
                    meta_disk: from_distribution(Gamma::new(2.5, 312.5)),
                    data_disk: from_distribution(Gamma::new(3.5, 245.0)),
                    parse_be: from_distribution(Degenerate::new(0.0005)),
                    processes: 1,
                })
                .collect(),
        }
    }

    fn engine_with(rate: f64) -> PredictionEngine {
        let mut e = PredictionEngine::new(ModelVariant::Full);
        e.install(Arc::new(sample_params(rate, 4)), 0.0, None);
        e
    }

    #[test]
    fn uncalibrated_engine_refuses() {
        let e = PredictionEngine::new(ModelVariant::Full);
        assert_eq!(e.fraction_meeting_sla(0.05), Err(ServeError::NotCalibrated));
    }

    #[test]
    fn repeat_queries_hit_and_are_bit_identical() {
        let e = engine_with(100.0);
        let first = e.fraction_meeting_sla(0.05).unwrap();
        let again = e.fraction_meeting_sla(0.05).unwrap();
        assert_eq!(first.value.to_bits(), again.value.to_bits());
        assert_eq!(e.stats(), CacheStats { hits: 1, misses: 1 });
        // Uncached reference at the snapped SLA.
        let m = SystemModel::new(&sample_params(100.0, 4), ModelVariant::Full).unwrap();
        assert_eq!(
            first.value.to_bits(),
            m.fraction_meeting_sla(0.05).to_bits()
        );
    }

    #[test]
    fn queries_within_a_quantum_share_the_inversion() {
        let e = engine_with(100.0);
        let a = e.fraction_meeting_sla(0.0500).unwrap();
        let b = e.fraction_meeting_sla(0.050_004).unwrap(); // same 0.1 ms cell
        assert_eq!(a.value.to_bits(), b.value.to_bits());
        assert_eq!(e.stats().hits, 1);
    }

    #[test]
    fn what_if_rates_reuse_built_models_across_slas() {
        let e = engine_with(100.0);
        e.fraction_at_rate(150.0, 0.05).unwrap();
        e.fraction_at_rate(150.0, 0.10).unwrap(); // same model, new inversion
        assert_eq!(e.cache().model_count(), 1);
        assert_eq!(e.stats(), CacheStats { hits: 0, misses: 2 });
        let again = e.fraction_at_rate(150.0, 0.05).unwrap();
        assert!(again.value > 0.0);
        assert_eq!(e.stats().hits, 1);
    }

    #[test]
    fn new_epoch_invalidates_old_answers() {
        let mut e = engine_with(100.0);
        let slow = e.fraction_meeting_sla(0.05).unwrap();
        e.install(Arc::new(sample_params(40.0, 4)), 10.0, None);
        let fast = e.fraction_meeting_sla(0.05).unwrap();
        assert_eq!(fast.epoch, 2);
        assert!(fast.value > slow.value, "lighter load must meet more SLAs");
        assert_eq!(
            e.stats().hits,
            0,
            "epoch change must not serve stale answers"
        );
    }

    #[test]
    fn unstable_what_if_is_typed_and_memoized() {
        let e = engine_with(100.0);
        let err = e.fraction_at_rate(100_000.0, 0.05).unwrap_err();
        assert!(matches!(err, ServeError::Unstable { .. }));
        let again = e.fraction_at_rate(100_000.0, 0.05).unwrap_err();
        assert_eq!(err, again);
        assert_eq!(e.stats().hits, 1, "the failure itself must be memoized");
    }

    #[test]
    fn staleness_flag_propagates() {
        let mut e = engine_with(100.0);
        assert!(!e.fraction_meeting_sla(0.05).unwrap().stale);
        e.mark_stale();
        assert!(e.fraction_meeting_sla(0.05).unwrap().stale);
        assert_eq!(e.failed_refits(), 1);
    }

    #[test]
    fn health_merges_cache_and_failure_counters() {
        let mut e = engine_with(100.0);
        e.fraction_meeting_sla(0.05).unwrap();
        e.fraction_meeting_sla(0.05).unwrap();
        e.mark_stale();
        let health = e.health();
        assert_eq!(health.cache, e.stats());
        assert_eq!(health.failed_refits, e.failed_refits());
        assert_eq!(health, e.health(), "snapshot is a pure read");
        assert!((health.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_and_mean_are_consistent() {
        let e = engine_with(100.0);
        let p50 = e.latency_percentile(0.50).unwrap().value;
        let p95 = e.latency_percentile(0.95).unwrap().value;
        assert!(p50 < p95, "p50 {p50} vs p95 {p95}");
        let mean = e.mean_response().unwrap().value;
        assert!(mean > 0.0 && mean.is_finite());
    }

    #[test]
    fn headroom_brackets_the_goal() {
        let e = engine_with(100.0);
        let goal = SlaGoal::new(0.100, 0.90);
        let head = e.headroom(goal, 1000.0).unwrap().value;
        assert!(
            head > 100.0,
            "calibrated point meets the goal, headroom {head}"
        );
        let at_head = e.fraction_at_rate(head * 0.98, 0.100).unwrap().value;
        assert!(
            at_head >= 0.90 - 0.01,
            "fraction {at_head} just below headroom"
        );
        // Second ask is a hit.
        let s0 = e.stats();
        e.headroom(goal, 1000.0).unwrap();
        assert_eq!(e.stats().hits, s0.hits + 1);
    }

    #[test]
    fn bottleneck_ranking_matches_planning() {
        let mut params = sample_params(120.0, 4);
        params.devices[2].miss_index = 0.6;
        params.devices[2].miss_data = 0.7;
        let mut e = PredictionEngine::new(ModelVariant::Full);
        e.install(Arc::new(params.clone()), 0.0, None);
        let ranked = e.bottlenecks(0.05).unwrap();
        assert_eq!(ranked[0].0, 2, "hot device must rank worst: {ranked:?}");
        let reference = cos_model::rank_bottlenecks(
            &SystemModel::new(&params, ModelVariant::Full).unwrap(),
            0.05,
        );
        assert_eq!(ranked, reference);
        // Re-ranking is all hits.
        let s0 = e.stats();
        e.bottlenecks(0.05).unwrap();
        assert_eq!(e.stats().misses, s0.misses);
    }
}
