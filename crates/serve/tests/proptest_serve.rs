//! Property-based tests of the memoized prediction engine: caching must be
//! invisible — a cache hit returns a value bit-identical to an uncached
//! evaluation at the quantized query point, across random operating points.

use std::sync::Arc;

use cos_distr::{Degenerate, Gamma};
use cos_model::{DeviceParams, FrontendParams, ModelVariant, SystemModel, SystemParams};
use cos_queueing::from_distribution;
use cos_serve::{PredictionEngine, RATE_QUANTUM, SLA_QUANTUM};
use proptest::prelude::*;

fn params(rate: f64, devices: usize, miss: f64) -> SystemParams {
    let per = rate / devices as f64;
    SystemParams {
        frontend: FrontendParams {
            arrival_rate: rate,
            processes: 3,
            parse_fe: from_distribution(Degenerate::new(0.0003)),
        },
        devices: (0..devices)
            .map(|_| DeviceParams {
                arrival_rate: per,
                data_read_rate: per * 1.1,
                miss_index: miss,
                miss_meta: miss * 0.8,
                miss_data: (miss * 1.3).min(1.0),
                index_disk: from_distribution(Gamma::new(3.0, 250.0)),
                meta_disk: from_distribution(Gamma::new(2.5, 312.5)),
                data_disk: from_distribution(Gamma::new(3.5, 245.0)),
                parse_be: from_distribution(Degenerate::new(0.0005)),
                processes: 1,
            })
            .collect(),
    }
}

fn snap(x: f64, quantum: f64) -> f64 {
    (x / quantum).round().max(1.0) * quantum
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Cached answers are bit-identical to a fresh, cache-free model
    /// evaluated at the snapped query point.
    #[test]
    fn cache_hits_are_bit_identical_to_uncached(
        rate in 30.0f64..150.0,
        sla in 0.005f64..0.200,
        devices in 1usize..4,
        miss in 0.1f64..0.6,
    ) {
        let p = params(rate, devices, miss);
        let mut engine = PredictionEngine::new(ModelVariant::Full);
        engine.install(Arc::new(p.clone()), 0.0, None);

        let miss_answer = engine.fraction_meeting_sla(sla);
        let hit_answer = engine.fraction_meeting_sla(sla);
        prop_assert_eq!(engine.stats().hits, 1);

        match SystemModel::new(&p, ModelVariant::Full) {
            Ok(m) => {
                let uncached = m.fraction_meeting_sla(snap(sla, SLA_QUANTUM));
                prop_assert_eq!(miss_answer.unwrap().value.to_bits(), uncached.to_bits());
                prop_assert_eq!(hit_answer.unwrap().value.to_bits(), uncached.to_bits());
            }
            Err(_) => {
                // A randomly saturated operating point: the typed error
                // must be served identically from miss and hit.
                prop_assert_eq!(miss_answer, hit_answer);
                prop_assert!(miss_answer.is_err());
            }
        }
    }

    /// Same for what-if queries at a rescaled rate: the cached value equals
    /// an uncached evaluation on parameters scaled to the snapped rate.
    #[test]
    fn what_if_cache_matches_uncached_scaled_model(
        rate in 50.0f64..120.0,
        what_if in 20.0f64..200.0,
        sla in 0.010f64..0.150,
    ) {
        let p = params(rate, 2, 0.3);
        let mut engine = PredictionEngine::new(ModelVariant::Full);
        engine.install(Arc::new(p.clone()), 0.0, None);

        let first = engine.fraction_at_rate(what_if, sla);
        let second = engine.fraction_at_rate(what_if, sla);
        prop_assert_eq!(engine.stats().hits, 1);

        let scaled = p.scaled_to_rate(snap(what_if, RATE_QUANTUM));
        match SystemModel::new(&scaled, ModelVariant::Full) {
            Ok(m) => {
                let uncached = m.fraction_meeting_sla(snap(sla, SLA_QUANTUM));
                prop_assert_eq!(first.unwrap().value.to_bits(), uncached.to_bits());
                prop_assert_eq!(second.unwrap().value.to_bits(), uncached.to_bits());
            }
            Err(_) => {
                prop_assert!(first.is_err() && second.is_err(),
                    "unstable what-if must be a typed error from cache and miss alike");
            }
        }
    }

    /// Queries inside one quantization cell share one answer; the hit rate
    /// over any repeated query mix therefore exceeds the 80% target.
    #[test]
    fn repeated_query_mix_exceeds_hit_rate_target(
        rate in 60.0f64..100.0,
        base_sla in 0.020f64..0.100,
        rounds in 6usize..15,
    ) {
        let mut engine = PredictionEngine::new(ModelVariant::Full);
        engine.install(Arc::new(params(rate, 2, 0.3)), 0.0, None);
        // A dashboard polling 4 questions `rounds` times with sub-quantum
        // jitter on the SLA. Snap the base SLA to a cell center so the
        // jitter can never straddle a quantization boundary.
        let base_sla = (base_sla / SLA_QUANTUM).round() * SLA_QUANTUM;
        for round in 0..rounds {
            let jitter = (round as f64) * (SLA_QUANTUM / 100.0);
            engine.fraction_meeting_sla(base_sla + jitter).unwrap();
            engine.fraction_meeting_sla(2.0 * base_sla + jitter).unwrap();
            engine.latency_percentile(0.95).unwrap();
            engine.mean_response().unwrap();
        }
        let stats = engine.stats();
        prop_assert_eq!(stats.misses, 4);
        prop_assert!(stats.hit_rate() > 0.8, "hit rate {}", stats.hit_rate());
    }
}
