//! Property-based tests for the discrete-event engine.

use cos_simkit::{Calendar, FcfsQueue, RngStreams, SimTime};
use proptest::prelude::*;
use rand::Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn calendar_pops_sorted(times in proptest::collection::vec(0.0f64..1e6, 1..500)) {
        let mut cal = Calendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.schedule_at(SimTime::new(t), i);
        }
        let mut prev = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = cal.pop() {
            prop_assert!(t >= prev);
            prev = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn calendar_equal_times_fifo(n in 1usize..200, t in 0.0f64..100.0) {
        let mut cal = Calendar::new();
        for i in 0..n {
            cal.schedule_at(SimTime::new(t), i);
        }
        let order: Vec<usize> = std::iter::from_fn(|| cal.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn fcfs_preserves_order(items in proptest::collection::vec(0u32..1000, 0..200)) {
        let mut q = FcfsQueue::new();
        for (i, &x) in items.iter().enumerate() {
            q.push(i as f64, x);
        }
        let drained: Vec<u32> =
            std::iter::from_fn(|| q.pop(items.len() as f64)).collect();
        prop_assert_eq!(drained, items);
    }

    #[test]
    fn fcfs_max_depth_bounds_len(ops in proptest::collection::vec(proptest::bool::ANY, 1..300)) {
        let mut q = FcfsQueue::new();
        let mut t = 0.0;
        for &push in &ops {
            t += 1.0;
            if push {
                q.push(t, ());
            } else {
                q.pop(t);
            }
            prop_assert!(q.len() <= q.max_depth());
        }
        prop_assert!(q.total_enqueued() as usize <= ops.len());
    }

    #[test]
    fn rng_streams_deterministic_and_label_sensitive(seed in 0u64..u64::MAX, idx in 0u64..1000) {
        let f = RngStreams::new(seed);
        let a: u64 = f.stream("x", idx).gen();
        let b: u64 = f.stream("x", idx).gen();
        prop_assert_eq!(a, b);
        let c: u64 = f.stream("y", idx).gen();
        // Collisions are astronomically unlikely.
        prop_assert_ne!(a, c);
    }
}
