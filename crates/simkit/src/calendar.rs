//! The event calendar: a time-ordered queue of future events.
//!
//! Deterministic: ties at equal timestamps break by insertion order, so a
//! simulation run is a pure function of its seed and configuration.

use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// A future-event calendar.
pub struct Calendar<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for Calendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Calendar<E> {
    /// Creates an empty calendar at time zero.
    pub fn new() -> Self {
        Calendar {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past ({at} < {})",
            self.now
        );
        self.heap.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Schedules `event` after a nonnegative `delay` from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        let at = self.now + delay;
        self.schedule_at(at, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(s) = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(s)| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut c = Calendar::new();
        c.schedule_at(SimTime::new(3.0), "c");
        c.schedule_at(SimTime::new(1.0), "a");
        c.schedule_at(SimTime::new(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| c.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut c = Calendar::new();
        for i in 0..100 {
            c.schedule_at(SimTime::new(1.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| c.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_on_pop() {
        let mut c = Calendar::new();
        c.schedule_in(5.0, ());
        assert_eq!(c.now(), SimTime::ZERO);
        let (t, _) = c.pop().unwrap();
        assert_eq!(t.seconds(), 5.0);
        assert_eq!(c.now().seconds(), 5.0);
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut c = Calendar::new();
        c.schedule_in(1.0, "first");
        c.pop();
        c.schedule_in(1.0, "second");
        let (t, _) = c.pop().unwrap();
        assert_eq!(t.seconds(), 2.0);
    }

    #[test]
    fn peek_does_not_advance() {
        let mut c = Calendar::new();
        c.schedule_in(2.0, ());
        assert_eq!(c.peek_time().unwrap().seconds(), 2.0);
        assert_eq!(c.now(), SimTime::ZERO);
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    #[should_panic]
    fn rejects_scheduling_into_past() {
        let mut c = Calendar::new();
        c.schedule_in(5.0, ());
        c.pop();
        c.schedule_at(SimTime::new(1.0), ());
    }
}
