//! # cos-simkit
//!
//! A small deterministic discrete-event simulation engine:
//!
//! * [`time`] — the `SimTime` newtype with total ordering;
//! * [`calendar`] — the future-event calendar with stable tie-breaking, so a
//!   run is a pure function of seed + configuration;
//! * [`rng`] — labeled per-component `SmallRng` streams derived from one
//!   master seed (components never perturb each other's randomness);
//! * [`fifo`] — an instrumented FCFS queue (depth statistics feed the
//!   waiting-time-for-accept analysis).
//!
//! `cos-storesim` builds the object-store model on top of these pieces.

#![warn(missing_docs)]

pub mod calendar;
pub mod fifo;
pub mod rng;
pub mod time;

pub use calendar::Calendar;
pub use fifo::FcfsQueue;
pub use rng::RngStreams;
pub use time::SimTime;
