//! An instrumented FCFS queue.
//!
//! Both tiers of the object store schedule work FCFS (the paper's event-loop
//! discipline); this wrapper tracks the depth statistics the evaluation and
//! the WTA analysis need.

use std::collections::VecDeque;

/// FCFS queue with depth instrumentation.
#[derive(Debug, Clone)]
pub struct FcfsQueue<T> {
    items: VecDeque<T>,
    max_depth: usize,
    total_enqueued: u64,
    depth_time_product: f64,
    last_change: f64,
}

impl<T> Default for FcfsQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> FcfsQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        FcfsQueue {
            items: VecDeque::new(),
            max_depth: 0,
            total_enqueued: 0,
            depth_time_product: 0.0,
            last_change: 0.0,
        }
    }

    /// Enqueues an item at simulated time `now`.
    pub fn push(&mut self, now: f64, item: T) {
        self.accumulate(now);
        self.items.push_back(item);
        self.max_depth = self.max_depth.max(self.items.len());
        self.total_enqueued += 1;
    }

    /// Dequeues the oldest item at simulated time `now`.
    pub fn pop(&mut self, now: f64) -> Option<T> {
        self.accumulate(now);
        self.items.pop_front()
    }

    fn accumulate(&mut self, now: f64) {
        debug_assert!(now >= self.last_change, "time went backwards");
        self.depth_time_product += self.items.len() as f64 * (now - self.last_change);
        self.last_change = now;
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Maximum depth ever observed.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// Total number of items ever enqueued.
    pub fn total_enqueued(&self) -> u64 {
        self.total_enqueued
    }

    /// Time-averaged depth up to `now`.
    pub fn mean_depth(&mut self, now: f64) -> f64 {
        self.accumulate(now);
        if now == 0.0 {
            0.0
        } else {
            self.depth_time_product / now
        }
    }

    /// Peeks at the head without removing it.
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = FcfsQueue::new();
        q.push(0.0, 1);
        q.push(0.0, 2);
        q.push(0.0, 3);
        assert_eq!(q.pop(1.0), Some(1));
        assert_eq!(q.pop(1.0), Some(2));
        assert_eq!(q.pop(1.0), Some(3));
        assert_eq!(q.pop(1.0), None);
    }

    #[test]
    fn depth_tracking() {
        let mut q = FcfsQueue::new();
        q.push(0.0, ());
        q.push(0.0, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.max_depth(), 2);
        q.pop(1.0);
        assert_eq!(q.len(), 1);
        assert_eq!(q.max_depth(), 2);
        assert_eq!(q.total_enqueued(), 2);
    }

    #[test]
    fn mean_depth_time_weighted() {
        let mut q = FcfsQueue::new();
        // Depth 1 over [0, 2), depth 0 over [2, 4): mean = 0.5 at t=4.
        q.push(0.0, ());
        q.pop(2.0);
        assert!((q.mean_depth(4.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn peek_leaves_queue_intact() {
        let mut q = FcfsQueue::new();
        q.push(0.0, 7);
        assert_eq!(q.peek(), Some(&7));
        assert_eq!(q.len(), 1);
    }
}
