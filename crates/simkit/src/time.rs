//! Simulation time.
//!
//! Seconds as `f64`, wrapped in a newtype so that event ordering is total
//! (via `total_cmp`) and accidental mixing with plain numbers is a type
//! error at component boundaries.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds from simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time point.
    ///
    /// # Panics
    /// Panics on negative or non-finite input.
    pub fn new(seconds: f64) -> Self {
        assert!(
            seconds.is_finite() && seconds >= 0.0,
            "SimTime must be finite and >= 0, got {seconds}"
        );
        SimTime(seconds)
    }

    /// Seconds since simulation start.
    pub fn seconds(&self) -> f64 {
        self.0
    }

    /// Elapsed duration since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`.
    pub fn since(&self, earlier: SimTime) -> f64 {
        let d = self.0 - earlier.0;
        assert!(
            d >= 0.0,
            "negative elapsed time: {} since {}",
            self.0,
            earlier.0
        );
        d
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        assert!(
            rhs.is_finite() && rhs >= 0.0,
            "cannot advance time by {rhs}"
        );
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.since(rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = SimTime::new(1.0);
        let b = a + 0.5;
        assert!(b > a);
        assert_eq!(b.seconds(), 1.5);
        assert_eq!(b - a, 0.5);
        assert_eq!(b.since(a), 0.5);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += 2.0;
        assert_eq!(t.seconds(), 2.0);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_construction() {
        SimTime::new(-1.0);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_advance() {
        let _ = SimTime::new(1.0) + (-0.5);
    }

    #[test]
    #[should_panic]
    fn rejects_negative_elapsed() {
        SimTime::new(1.0).since(SimTime::new(2.0));
    }
}
