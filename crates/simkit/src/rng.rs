//! Deterministic per-component random-number streams.
//!
//! Every simulator component (arrival process, each disk, each cache) gets
//! its own `SmallRng` derived from the master seed and a stable label, so
//! adding instrumentation or reordering components never perturbs the random
//! stream of the others — runs are reproducible and comparable.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Factory for labeled deterministic RNG streams.
#[derive(Debug, Clone, Copy)]
pub struct RngStreams {
    master_seed: u64,
}

impl RngStreams {
    /// Creates a factory from a master seed.
    pub fn new(master_seed: u64) -> Self {
        RngStreams { master_seed }
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derives the stream for `label` (e.g. `"disk"`) and `index`.
    pub fn stream(&self, label: &str, index: u64) -> SmallRng {
        let mut h = self.master_seed;
        for &b in label.as_bytes() {
            h = splitmix64(h ^ b as u64);
        }
        h = splitmix64(h ^ index.wrapping_mul(0x9E3779B97F4A7C15));
        SmallRng::seed_from_u64(h)
    }
}

/// SplitMix64 finalizer: a high-quality 64-bit mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let f = RngStreams::new(42);
        let a: Vec<u64> = {
            let mut r = f.stream("disk", 0);
            (0..10).map(|_| r.gen()).collect()
        };
        let b: Vec<u64> = {
            let mut r = f.stream("disk", 0);
            (0..10).map(|_| r.gen()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_labels_differ() {
        let f = RngStreams::new(42);
        let a: u64 = f.stream("disk", 0).gen();
        let b: u64 = f.stream("cache", 0).gen();
        let c: u64 = f.stream("disk", 1).gen();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn different_seeds_differ() {
        let a: u64 = RngStreams::new(1).stream("disk", 0).gen();
        let b: u64 = RngStreams::new(2).stream("disk", 0).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn streams_are_statistically_plausible() {
        // Crude uniformity check on one stream.
        let mut r = RngStreams::new(7).stream("x", 3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
