//! Std-only parallelism primitives shared by the sweep-heavy layers
//! (capacity planning, sensitivity analysis, benchmark scenario replay, and
//! the serve-tier `SweepPool`).
//!
//! Three building blocks:
//!
//! * [`ParPool`] — a persistent pool of named worker threads consuming boxed
//!   jobs from a shared channel. This is the long-lived form used by
//!   `cos-serve`, where sweeps arrive continuously and thread spawn cost
//!   must be paid once, not per sweep.
//! * [`par_map`] — a scoped, borrowing parallel map over a slice with
//!   deterministic output order. This is the fire-and-forget form used by
//!   planning/sensitivity grids and bench bins: results are returned in
//!   item order regardless of which worker computed what, so callers that
//!   fold over the output get **bit-identical** results for any worker
//!   count (each item's computation is single-threaded and the merge is a
//!   plain index sort, never a reduction tree).
//! * [`ArcCell`] — an atomically swappable `Arc<T>` slot: one writer
//!   publishes immutable snapshots, any number of readers clone the
//!   current one without ever blocking on a mutex. This is the publication
//!   primitive behind the serve-tier lock-free read path.
//!
//! No dependencies beyond `std` — the build environment is offline and the
//! rest of the workspace is similarly std-only.
//!
//! A fourth block lives in [`poller`]: a readiness [`Poller`] (epoll on
//! Linux, `poll(2)` elsewhere; level- or edge-triggered) plus a pipe-based
//! [`Waker`], the OS surface under the gate's event-driven reactor. Its
//! companion [`alloc_probe`] is the bench-only allocation counter that
//! proves the reactor's "steady state allocates nothing" claim.

pub mod alloc_probe;
pub mod poller;

pub use poller::{
    Backend, Event, Interest, Poller, SyscallCounters, SyscallSnapshot, TriggerMode, WakeReader,
    Waker,
};

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

use cos_obs::Hist;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The machine's available parallelism (1 if it cannot be queried) — the
/// conventional worker count for batch sweeps. Safe to use with [`par_map`]
/// without sacrificing reproducibility: results do not depend on the worker
/// count.
pub fn default_workers() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// A persistent worker pool: `workers` named threads pull boxed jobs off a
/// shared channel until the pool is dropped.
///
/// Jobs that panic are contained per-job (the worker survives and keeps
/// serving the queue); the panic payload is dropped, so jobs should report
/// failure through their own channel (as `SweepPool` does with
/// `Option`-valued results) rather than by panicking.
pub struct ParPool {
    tx: Option<Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ParPool {
    /// Creates a pool with `workers` threads (at least 1).
    pub fn new(workers: usize) -> Self {
        ParPool::with_timers(workers, &[])
    }

    /// Creates a pool whose workers time every job they run: worker `i`
    /// records each job's execution duration into `timers[i % timers.len()]`
    /// (so one histogram per worker when `timers.len() == workers`, or a
    /// single shared histogram when one is passed). An empty slice disables
    /// timing — identical to [`ParPool::new`].
    pub fn with_timers(workers: usize, timers: &[Hist]) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let timer = (!timers.is_empty()).then(|| timers[i % timers.len()].clone());
                thread::Builder::new()
                    .name(format!("cos-par-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        match job {
                            Ok(job) => {
                                let start = timer.as_ref().map(|_| Instant::now());
                                let _ = catch_unwind(AssertUnwindSafe(job));
                                if let (Some(t), Some(s)) = (&timer, start) {
                                    t.record_duration(s.elapsed());
                                }
                            }
                            Err(_) => break, // all senders dropped: shut down
                        }
                    })
                    .expect("failed to spawn cos-par worker")
            })
            .collect();
        ParPool {
            tx: Some(tx),
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job. Returns `false` (dropping the job) only if the pool
    /// is shutting down.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> bool {
        match &self.tx {
            Some(tx) => tx.send(Box::new(job)).is_ok(),
            None => false,
        }
    }
}

impl Drop for ParPool {
    fn drop(&mut self) {
        // Close the channel so workers' recv() errors out, then join.
        self.tx = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Parallel map over `items` with `workers` scoped threads, returning
/// results **in item order**.
///
/// Work is distributed by an atomic next-index counter, so load balances
/// across uneven per-item costs; each worker accumulates `(index, result)`
/// pairs which are merged into a dense, item-ordered `Vec` at the end.
/// Because each item is computed by exactly one thread with no shared
/// state, the output is bit-identical to the serial map for every worker
/// count — determinism is positional, not scheduling-dependent.
///
/// Falls back to a plain serial map when `workers <= 1` or there is at most
/// one item. Panics in `f` propagate (the scope unwinds).
pub fn par_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let threads = workers.min(items.len());
    let mut shards: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cos-par worker panicked"))
            .collect()
    });
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    for shard in shards.drain(..) {
        indexed.extend(shard);
    }
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// An atomically swappable `Arc<T>`: a single slot one writer republishes
/// and many readers snapshot, with no mutex on either side.
///
/// The representation is one `AtomicPtr` holding the `Arc`'s raw pointer.
/// Readers and the writer momentarily *check the pointer out* (swap it to
/// null with `Acquire`), act on it, and put it back (`store` with
/// `Release`):
///
/// * [`get`](ArcCell::get) checks out, bumps the strong count, puts the
///   same pointer back, and returns the new `Arc` — a reader can never
///   observe a half-published value, because the only thing ever stored is
///   a pointer to a fully constructed `Arc` allocation, and the
///   `Release`-store / `Acquire`-swap pair orders the allocation's
///   initialization before any access through the checked-out pointer.
/// * [`set`](ArcCell::set) checks out the old pointer, stores the new one,
///   and returns the previous value so its refcount is handed back to the
///   caller (and dropped, usually).
///
/// While one thread has the pointer checked out, others spin (with
/// `yield_now`, so a preempted holder on a loaded box gets rescheduled
/// promptly — important on single-CPU containers). The checked-out window
/// is a handful of instructions with no allocation, I/O, or locking, so
/// the cell is obstruction-free in practice; it trades the unbounded
/// wait-freedom of hazard-pointer schemes for zero dependencies and ~30
/// lines of unsafe that are easy to audit.
///
/// A monotone [`generation`](ArcCell::generation) counter is bumped by
/// every `set` (with `Release`, after the new pointer is in place), so
/// readers that cache an `Arc` can cheaply poll "has anything been
/// republished since?" without touching the pointer slot.
pub struct ArcCell<T> {
    ptr: AtomicPtr<T>,
    generation: AtomicU64,
}

// The cell hands out `Arc<T>` clones across threads, so it is exactly as
// shareable as `Arc<T>` itself.
unsafe impl<T: Send + Sync> Send for ArcCell<T> {}
unsafe impl<T: Send + Sync> Sync for ArcCell<T> {}

impl<T> ArcCell<T> {
    /// Creates a cell holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        ArcCell {
            ptr: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            generation: AtomicU64::new(0),
        }
    }

    /// Checks the pointer out of the slot, spinning while another thread
    /// has it. `Acquire` pairs with the `Release` in [`put`](Self::put):
    /// everything the previous holder did to publish the pointee is
    /// visible here.
    fn take(&self) -> *const T {
        loop {
            let p = self.ptr.swap(std::ptr::null_mut(), Ordering::Acquire);
            if !p.is_null() {
                return p;
            }
            // Another thread holds the pointer for a few instructions; on a
            // single hardware thread, yielding is the only way it can
            // finish.
            thread::yield_now();
        }
    }

    /// Puts a pointer back into the slot. `Release` publishes every write
    /// made while it was checked out (refcount bumps, or a brand-new
    /// allocation's contents) to the next `Acquire` swap.
    fn put(&self, p: *const T) {
        self.ptr.store(p.cast_mut(), Ordering::Release);
    }

    /// Returns a clone of the current value.
    pub fn get(&self) -> Arc<T> {
        let p = self.take();
        // SAFETY: `p` came out of `Arc::into_raw` and the cell still owns
        // one strong reference to it; bump the count for the clone we are
        // about to hand out, then reconstruct that clone.
        unsafe {
            Arc::increment_strong_count(p);
        }
        self.put(p);
        // SAFETY: the increment above is the reference this Arc owns.
        unsafe { Arc::from_raw(p) }
    }

    /// Replaces the value, returning the previous one.
    pub fn set(&self, value: Arc<T>) -> Arc<T> {
        let old = self.take();
        self.put(Arc::into_raw(value));
        self.generation.fetch_add(1, Ordering::Release);
        // SAFETY: `old` was the cell's owned reference; ownership moves to
        // the caller (typically to be dropped).
        unsafe { Arc::from_raw(old) }
    }

    /// Number of [`set`](ArcCell::set) calls so far. A reader that cached
    /// the result of [`get`](ArcCell::get) can compare generations to skip
    /// re-reading an unchanged cell; observing generation `n` (`Acquire`)
    /// guarantees the `n`-th published pointer is visible.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }
}

impl<T> Drop for ArcCell<T> {
    fn drop(&mut self) {
        let p = *self.ptr.get_mut();
        if !p.is_null() {
            // SAFETY: drop the cell's owned reference.
            unsafe { drop(Arc::from_raw(p)) };
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcCell")
            .field("value", &self.get())
            .field("generation", &self.generation())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc::channel;

    #[test]
    fn pool_runs_jobs() {
        let pool = ParPool::new(3);
        assert_eq!(pool.workers(), 3);
        let (tx, rx) = channel();
        for i in 0..20u64 {
            let tx = tx.clone();
            assert!(pool.execute(move || tx.send(i * i).unwrap()));
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        let want: Vec<u64> = (0..20).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pool_survives_panicking_job() {
        let pool = ParPool::new(1);
        pool.execute(|| panic!("job failure"));
        let (tx, rx) = channel();
        pool.execute(move || tx.send(42u32).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn pool_with_timers_records_per_worker_job_durations() {
        let timers = vec![Hist::new(), Hist::new()];
        {
            let pool = ParPool::with_timers(2, &timers);
            let (tx, rx) = channel();
            for _ in 0..8 {
                let tx = tx.clone();
                pool.execute(move || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    tx.send(()).unwrap();
                });
            }
            drop(tx);
            for _ in 0..8 {
                rx.recv().unwrap();
            }
        } // drop joins, so all recordings are flushed
        let total: u64 = timers.iter().map(|t| t.count()).sum();
        assert_eq!(total, 8, "every job timed exactly once");
        for t in &timers {
            if t.count() > 0 {
                assert!(t.quantile(1.0).unwrap() >= 0.001, "sleep is visible");
            }
        }
    }

    #[test]
    fn pool_clamps_to_one_worker() {
        let pool = ParPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn drop_joins_all_workers() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ParPool::new(4);
            for _ in 0..100 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop waits for queue drain of in-flight jobs and joins
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..97).collect();
        let got = par_map(4, &items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3 + 1
        });
        let want: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_map_is_bit_identical_across_worker_counts() {
        // A numerically touchy computation: results must match serial
        // bitwise for every worker count.
        let items: Vec<f64> = (1..=64).map(|i| i as f64 * 0.37).collect();
        let work = |_: usize, &x: &f64| -> f64 {
            let mut acc = 0.0f64;
            for k in 1..200 {
                acc += (x / k as f64).sin() / k as f64;
            }
            acc
        };
        let serial: Vec<f64> = par_map(1, &items, work);
        for workers in [2, 3, 4, 7, 16] {
            let par = par_map(workers, &items, work);
            for (a, b) in serial.iter().zip(par.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "workers={workers}");
            }
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn par_map_more_workers_than_items() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map(64, &items, |_, &x| x * 2), vec![2, 4, 6]);
    }

    #[test]
    fn arc_cell_get_and_set_round_trip() {
        let cell = ArcCell::new(Arc::new(7u64));
        assert_eq!(*cell.get(), 7);
        assert_eq!(cell.generation(), 0);
        let old = cell.set(Arc::new(8));
        assert_eq!(*old, 7);
        assert_eq!(*cell.get(), 8);
        assert_eq!(cell.generation(), 1);
    }

    #[test]
    fn arc_cell_balances_reference_counts() {
        let value = Arc::new(vec![1u8, 2, 3]);
        {
            let cell = ArcCell::new(value.clone());
            for _ in 0..10 {
                let got = cell.get();
                assert_eq!(*got, vec![1, 2, 3]);
            }
            let replaced = cell.set(Arc::new(vec![9]));
            assert!(Arc::ptr_eq(&replaced, &value));
        } // `replaced` and the cell's own reference both dropped here
        assert_eq!(Arc::strong_count(&value), 1, "no leaked references");
    }

    #[test]
    fn arc_cell_concurrent_readers_and_writer_never_tear() {
        // Each published snapshot is internally consistent (both fields
        // equal); readers must never observe a mix of two snapshots, and
        // generations must be monotone per reader.
        let cell = Arc::new(ArcCell::new(Arc::new((0u64, 0u64))));
        let writers = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                for i in 1..=500u64 {
                    cell.set(Arc::new((i, i)));
                }
            })
        };
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    let mut last_gen = 0;
                    for _ in 0..2_000 {
                        let g0 = cell.generation();
                        let snap = cell.get();
                        assert_eq!(snap.0, snap.1, "torn snapshot");
                        assert!(g0 >= last_gen, "generation went backwards");
                        last_gen = g0;
                    }
                })
            })
            .collect();
        writers.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
        assert_eq!(*cell.get(), (500, 500));
        assert_eq!(cell.generation(), 500);
    }
}
