//! Std-only parallelism primitives shared by the sweep-heavy layers
//! (capacity planning, sensitivity analysis, benchmark scenario replay, and
//! the serve-tier `SweepPool`).
//!
//! Two building blocks:
//!
//! * [`ParPool`] — a persistent pool of named worker threads consuming boxed
//!   jobs from a shared channel. This is the long-lived form used by
//!   `cos-serve`, where sweeps arrive continuously and thread spawn cost
//!   must be paid once, not per sweep.
//! * [`par_map`] — a scoped, borrowing parallel map over a slice with
//!   deterministic output order. This is the fire-and-forget form used by
//!   planning/sensitivity grids and bench bins: results are returned in
//!   item order regardless of which worker computed what, so callers that
//!   fold over the output get **bit-identical** results for any worker
//!   count (each item's computation is single-threaded and the merge is a
//!   plain index sort, never a reduction tree).
//!
//! No dependencies beyond `std` — the build environment is offline and the
//! rest of the workspace is similarly std-only.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::Instant;

use cos_obs::Hist;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The machine's available parallelism (1 if it cannot be queried) — the
/// conventional worker count for batch sweeps. Safe to use with [`par_map`]
/// without sacrificing reproducibility: results do not depend on the worker
/// count.
pub fn default_workers() -> usize {
    thread::available_parallelism().map_or(1, |n| n.get())
}

/// A persistent worker pool: `workers` named threads pull boxed jobs off a
/// shared channel until the pool is dropped.
///
/// Jobs that panic are contained per-job (the worker survives and keeps
/// serving the queue); the panic payload is dropped, so jobs should report
/// failure through their own channel (as `SweepPool` does with
/// `Option`-valued results) rather than by panicking.
pub struct ParPool {
    tx: Option<Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl ParPool {
    /// Creates a pool with `workers` threads (at least 1).
    pub fn new(workers: usize) -> Self {
        ParPool::with_timers(workers, &[])
    }

    /// Creates a pool whose workers time every job they run: worker `i`
    /// records each job's execution duration into `timers[i % timers.len()]`
    /// (so one histogram per worker when `timers.len() == workers`, or a
    /// single shared histogram when one is passed). An empty slice disables
    /// timing — identical to [`ParPool::new`].
    pub fn with_timers(workers: usize, timers: &[Hist]) -> Self {
        let workers = workers.max(1);
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let handles = (0..workers)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let timer = (!timers.is_empty()).then(|| timers[i % timers.len()].clone());
                thread::Builder::new()
                    .name(format!("cos-par-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        match job {
                            Ok(job) => {
                                let start = timer.as_ref().map(|_| Instant::now());
                                let _ = catch_unwind(AssertUnwindSafe(job));
                                if let (Some(t), Some(s)) = (&timer, start) {
                                    t.record_duration(s.elapsed());
                                }
                            }
                            Err(_) => break, // all senders dropped: shut down
                        }
                    })
                    .expect("failed to spawn cos-par worker")
            })
            .collect();
        ParPool {
            tx: Some(tx),
            workers: handles,
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues a job. Returns `false` (dropping the job) only if the pool
    /// is shutting down.
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) -> bool {
        match &self.tx {
            Some(tx) => tx.send(Box::new(job)).is_ok(),
            None => false,
        }
    }
}

impl Drop for ParPool {
    fn drop(&mut self) {
        // Close the channel so workers' recv() errors out, then join.
        self.tx = None;
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Parallel map over `items` with `workers` scoped threads, returning
/// results **in item order**.
///
/// Work is distributed by an atomic next-index counter, so load balances
/// across uneven per-item costs; each worker accumulates `(index, result)`
/// pairs which are merged into a dense, item-ordered `Vec` at the end.
/// Because each item is computed by exactly one thread with no shared
/// state, the output is bit-identical to the serial map for every worker
/// count — determinism is positional, not scheduling-dependent.
///
/// Falls back to a plain serial map when `workers <= 1` or there is at most
/// one item. Panics in `f` propagate (the scope unwinds).
pub fn par_map<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let threads = workers.min(items.len());
    let mut shards: Vec<Vec<(usize, R)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("cos-par worker panicked"))
            .collect()
    });
    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    for shard in shards.drain(..) {
        indexed.extend(shard);
    }
    indexed.sort_by_key(|(i, _)| *i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::mpsc::channel;

    #[test]
    fn pool_runs_jobs() {
        let pool = ParPool::new(3);
        assert_eq!(pool.workers(), 3);
        let (tx, rx) = channel();
        for i in 0..20u64 {
            let tx = tx.clone();
            assert!(pool.execute(move || tx.send(i * i).unwrap()));
        }
        drop(tx);
        let mut got: Vec<u64> = rx.iter().collect();
        got.sort_unstable();
        let want: Vec<u64> = (0..20).map(|i| i * i).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn pool_survives_panicking_job() {
        let pool = ParPool::new(1);
        pool.execute(|| panic!("job failure"));
        let (tx, rx) = channel();
        pool.execute(move || tx.send(42u32).unwrap());
        assert_eq!(rx.recv().unwrap(), 42);
    }

    #[test]
    fn pool_with_timers_records_per_worker_job_durations() {
        let timers = vec![Hist::new(), Hist::new()];
        {
            let pool = ParPool::with_timers(2, &timers);
            let (tx, rx) = channel();
            for _ in 0..8 {
                let tx = tx.clone();
                pool.execute(move || {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    tx.send(()).unwrap();
                });
            }
            drop(tx);
            for _ in 0..8 {
                rx.recv().unwrap();
            }
        } // drop joins, so all recordings are flushed
        let total: u64 = timers.iter().map(|t| t.count()).sum();
        assert_eq!(total, 8, "every job timed exactly once");
        for t in &timers {
            if t.count() > 0 {
                assert!(t.quantile(1.0).unwrap() >= 0.001, "sleep is visible");
            }
        }
    }

    #[test]
    fn pool_clamps_to_one_worker() {
        let pool = ParPool::new(0);
        assert_eq!(pool.workers(), 1);
    }

    #[test]
    fn drop_joins_all_workers() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let pool = ParPool::new(4);
            for _ in 0..100 {
                let c = Arc::clone(&counter);
                pool.execute(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop waits for queue drain of in-flight jobs and joins
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..97).collect();
        let got = par_map(4, &items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 3 + 1
        });
        let want: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn par_map_is_bit_identical_across_worker_counts() {
        // A numerically touchy computation: results must match serial
        // bitwise for every worker count.
        let items: Vec<f64> = (1..=64).map(|i| i as f64 * 0.37).collect();
        let work = |_: usize, &x: &f64| -> f64 {
            let mut acc = 0.0f64;
            for k in 1..200 {
                acc += (x / k as f64).sin() / k as f64;
            }
            acc
        };
        let serial: Vec<f64> = par_map(1, &items, work);
        for workers in [2, 3, 4, 7, 16] {
            let par = par_map(workers, &items, work);
            for (a, b) in serial.iter().zip(par.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "workers={workers}");
            }
        }
    }

    #[test]
    fn par_map_handles_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(par_map(4, &[5u32], |_, &x| x + 1), vec![6]);
    }

    #[test]
    fn par_map_more_workers_than_items() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map(64, &items, |_, &x| x * 2), vec![2, 4, 6]);
    }
}
