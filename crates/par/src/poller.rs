//! A thin, std-only readiness poller: the OS-facing half of the gate's
//! event-driven reactor.
//!
//! [`Poller`] wraps one kernel readiness queue — `epoll(7)` on Linux,
//! `poll(2)` elsewhere on Unix — behind a deliberately tiny API: register a
//! file descriptor with a caller-chosen `u64` token and an [`Interest`]
//! (read, write, or both), then [`wait`](Poller::wait) for [`Event`]s.
//!
//! # Trigger modes
//!
//! A poller is created in one of two [`TriggerMode`]s:
//!
//! * [`TriggerMode::Level`] — as long as a descriptor stays
//!   readable/writable it keeps showing up, so a caller that processes less
//!   than everything on one wake is never stranded.
//! * [`TriggerMode::Edge`] — the caller promises the *drain contract*: on
//!   every readable event it reads until `WouldBlock` (or EOF), and on
//!   every writable event it writes until `WouldBlock` (or done). Under
//!   that contract the epoll backend registers with `EPOLLET` and reports
//!   each readiness transition once, which is the whole point: no
//!   re-reports means no redundant wakes and — combined with
//!   [`rearm_free`](Poller::rearm_free) — no `epoll_ctl` re-arms on the
//!   hot path.
//!
//!   The portable `poll(2)` backend cannot express edge semantics to the
//!   kernel, and *emulating* them in userspace is unsound: suppressing a
//!   level that the caller already drained races against the peer
//!   refilling the socket between waits (undrained data and drained-then-
//!   refilled data are indistinguishable from out here), so a suppressed
//!   report can strand a connection forever. Instead the portable backend
//!   honors the *contract* rather than the mechanism: in `Edge` mode it
//!   stays level-triggered under the hood, which is a legal (if chatty)
//!   edge-triggered implementation — ET consumers must tolerate spurious
//!   re-reports, and a drain-compliant caller treats a repeat exactly like
//!   a fresh edge. Both backends therefore run the same drain-contract
//!   test suite; only the no-re-report *optimization* is epoll-specific.
//!
//! [`rearm_free`](Poller::rearm_free) tells the caller whether registering
//! `READ_WRITE` once up front is enough — i.e. whether it may skip all
//! [`modify`](Poller::modify) interest management without busy-waking. True
//! only for epoll in `Edge` mode: a level-triggered poller told to watch
//! `READ_WRITE` would re-report an idle-but-writable socket forever.
//!
//! # Syscall accounting
//!
//! Every poller carries an [`Arc<SyscallCounters>`] and bumps `waits` /
//! `ctls` itself. The I/O-side counters (`reads`, `writes`, `writevs`,
//! `accepts`) are for the poller's *caller* — the reactor that owns the
//! descriptors — so one snapshot tells the whole per-thread syscall story.
//! Counters are relaxed atomics: cross-thread reads are eventually
//! consistent, which is all a bench needs.
//!
//! No `libc` crate: the build environment is offline and the workspace is
//! std-only, so the handful of syscalls are declared as `extern "C"`
//! prototypes (they resolve against the libc every Rust binary on Unix
//! already links) and descriptors ride on `std::os::fd`'s owned/raw fd
//! types for close-on-drop hygiene.
//!
//! [`Waker`] is the cross-thread wake primitive: a nonblocking pipe whose
//! read end is registered like any other descriptor. Any thread can
//! [`wake`](Waker::wake) a sleeping [`Poller::wait`]; the poll loop drains
//! the pipe with [`WakeReader::drain`] and carries on. Wakes are
//! *coalescing* — a thousand `wake()` calls before the loop runs cost one
//! event — and never lost: the byte sits in the pipe until drained, so a
//! wake that races a falling-asleep poller still lands. (The pipe is
//! drained on every report, so the waker works identically under both
//! trigger modes.)
//!
//! The `poll(2)` backend keeps its registration table behind a mutex as a
//! slot map: O(1) register/modify/deregister through an fd index, with
//! slots reclaimed *eagerly* on deregister onto a free list — a
//! connection-churn workload reuses the same few slots instead of growing
//! the table. The `pollfd` array handed to the kernel is rebuilt per wait —
//! O(registered) per wake, fine for the fallback role. The epoll backend is
//! O(ready) per wake. On Linux both compile, so the test suite exercises
//! the fallback on the same machine that runs the fast path.

use std::io;
use std::os::fd::{AsRawFd, OwnedFd, RawFd};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which readiness conditions a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor has bytes to read (or a peer hangup to
    /// observe — hangups surface as readable-with-EOF).
    pub readable: bool,
    /// Wake when the descriptor can accept writes without blocking.
    pub writable: bool,
}

impl Interest {
    /// Read readiness only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Write readiness only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Both directions.
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// The descriptor is readable (or at EOF / hung up — read to find out).
    pub readable: bool,
    /// The descriptor is writable.
    pub writable: bool,
    /// The kernel flagged an error or hangup. Callers should still just
    /// attempt I/O: the next `read`/`write` returns the honest story.
    pub closed: bool,
}

/// Which kernel mechanism a [`Poller`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// `epoll(7)` — Linux only, O(ready) waits.
    #[cfg(target_os = "linux")]
    Epoll,
    /// `poll(2)` — portable Unix fallback, O(registered) waits.
    Poll,
}

impl Backend {
    /// The preferred backend for this platform.
    pub fn default_for_platform() -> Backend {
        #[cfg(target_os = "linux")]
        {
            Backend::Epoll
        }
        #[cfg(not(target_os = "linux"))]
        {
            Backend::Poll
        }
    }
}

/// Level- vs edge-triggered readiness reporting. See the module docs for
/// the drain contract `Edge` imposes on callers and how the portable
/// backend honors it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerMode {
    /// Re-report readiness on every wait until the condition clears.
    Level,
    /// Report each readiness *transition*; the caller drains to
    /// `WouldBlock` on every report. (`EPOLLET` on epoll; contract-only on
    /// the portable backend, which may legally re-report.)
    Edge,
}

/// Monotonic per-poller syscall counters, shared with the poller's caller
/// so reactor-side I/O lands in the same snapshot. All relaxed atomics.
#[derive(Debug, Default)]
pub struct SyscallCounters {
    /// `epoll_wait` / `poll` calls.
    pub waits: AtomicU64,
    /// `epoll_ctl` calls (the portable backend's userspace table updates
    /// count here too, so "ctls" reads as "interest-management cost" on
    /// both backends).
    pub ctls: AtomicU64,
    /// `read`/`recv` calls made by the caller.
    pub reads: AtomicU64,
    /// Single-buffer `write`/`send` calls made by the caller.
    pub writes: AtomicU64,
    /// Vectored `writev` calls made by the caller.
    pub writevs: AtomicU64,
    /// `accept` calls made by the caller.
    pub accepts: AtomicU64,
}

impl SyscallCounters {
    /// Bumps a counter by one; all sites go through this for a single
    /// ordering story.
    #[inline]
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough copy of the counters (relaxed loads).
    pub fn snapshot(&self) -> SyscallSnapshot {
        SyscallSnapshot {
            waits: self.waits.load(Ordering::Relaxed),
            ctls: self.ctls.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            writevs: self.writevs.load(Ordering::Relaxed),
            accepts: self.accepts.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`SyscallCounters`], with arithmetic for
/// aggregating across reactor threads and diffing across a bench window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SyscallSnapshot {
    /// See [`SyscallCounters::waits`].
    pub waits: u64,
    /// See [`SyscallCounters::ctls`].
    pub ctls: u64,
    /// See [`SyscallCounters::reads`].
    pub reads: u64,
    /// See [`SyscallCounters::writes`].
    pub writes: u64,
    /// See [`SyscallCounters::writevs`].
    pub writevs: u64,
    /// See [`SyscallCounters::accepts`].
    pub accepts: u64,
}

impl SyscallSnapshot {
    /// Every syscall in the snapshot.
    pub fn total(&self) -> u64 {
        self.waits + self.ctls + self.reads + self.writes + self.writevs + self.accepts
    }

    /// `self - earlier`, saturating (counters are monotonic, so saturation
    /// only fires if the snapshots are swapped).
    pub fn since(&self, earlier: &SyscallSnapshot) -> SyscallSnapshot {
        SyscallSnapshot {
            waits: self.waits.saturating_sub(earlier.waits),
            ctls: self.ctls.saturating_sub(earlier.ctls),
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            writevs: self.writevs.saturating_sub(earlier.writevs),
            accepts: self.accepts.saturating_sub(earlier.accepts),
        }
    }
}

impl std::ops::Add for SyscallSnapshot {
    type Output = SyscallSnapshot;
    fn add(self, rhs: SyscallSnapshot) -> SyscallSnapshot {
        SyscallSnapshot {
            waits: self.waits + rhs.waits,
            ctls: self.ctls + rhs.ctls,
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
            writevs: self.writevs + rhs.writevs,
            accepts: self.accepts + rhs.accepts,
        }
    }
}

enum Impl {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Poll(pollfd::PollTable),
}

/// A readiness poller. See the module docs.
pub struct Poller {
    inner: Impl,
    mode: TriggerMode,
    counters: Arc<SyscallCounters>,
}

impl std::fmt::Debug for Poller {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Poller")
            .field("backend", &self.backend())
            .field("mode", &self.mode)
            .finish()
    }
}

impl Poller {
    /// Creates a level-triggered poller on the platform's preferred
    /// backend.
    pub fn new() -> io::Result<Poller> {
        Poller::with_mode(Backend::default_for_platform(), TriggerMode::Level)
    }

    /// Creates a level-triggered poller on an explicit backend (the
    /// `poll(2)` fallback is available everywhere, so tests can exercise
    /// it next to epoll).
    pub fn with_backend(backend: Backend) -> io::Result<Poller> {
        Poller::with_mode(backend, TriggerMode::Level)
    }

    /// Creates a poller on an explicit backend and trigger mode.
    pub fn with_mode(backend: Backend, mode: TriggerMode) -> io::Result<Poller> {
        let inner = match backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll => Impl::Epoll(epoll::Epoll::new()?),
            Backend::Poll => Impl::Poll(pollfd::PollTable::new()),
        };
        Ok(Poller {
            inner,
            mode,
            counters: Arc::new(SyscallCounters::default()),
        })
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> Backend {
        match &self.inner {
            #[cfg(target_os = "linux")]
            Impl::Epoll(_) => Backend::Epoll,
            Impl::Poll(_) => Backend::Poll,
        }
    }

    /// Which trigger mode this poller was created in.
    pub fn trigger_mode(&self) -> TriggerMode {
        self.mode
    }

    /// True when a drain-contract caller may register `READ_WRITE` once
    /// and never call [`modify`](Self::modify) again: readiness
    /// transitions are reported exactly once, so blanket write interest
    /// cannot busy-wake an idle connection. Only genuine kernel-side edge
    /// triggering (epoll + [`TriggerMode::Edge`]) qualifies; the portable
    /// backend re-reports levels and therefore still needs interest
    /// narrowing.
    pub fn rearm_free(&self) -> bool {
        match &self.inner {
            #[cfg(target_os = "linux")]
            Impl::Epoll(_) => self.mode == TriggerMode::Edge,
            Impl::Poll(_) => false,
        }
    }

    /// The counters this poller bumps; callers clone the `Arc` and bump
    /// the I/O-side counters themselves.
    pub fn counters(&self) -> &Arc<SyscallCounters> {
        &self.counters
    }

    /// Subscribes `fd` with `token` and `interest`. The caller keeps
    /// ownership of the descriptor and must [`deregister`](Self::deregister)
    /// (or close) it before the token is reused.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        SyscallCounters::bump(&self.counters.ctls);
        match &self.inner {
            #[cfg(target_os = "linux")]
            Impl::Epoll(e) => e.ctl(epoll::EPOLL_CTL_ADD, fd, token, interest, self.mode),
            Impl::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Changes an existing registration's token or interest.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        SyscallCounters::bump(&self.counters.ctls);
        match &self.inner {
            #[cfg(target_os = "linux")]
            Impl::Epoll(e) => e.ctl(epoll::EPOLL_CTL_MOD, fd, token, interest, self.mode),
            Impl::Poll(p) => p.modify(fd, token, interest),
        }
    }

    /// Removes a registration. Closing the descriptor also removes it on
    /// the epoll backend, but the poll backend's table is in userspace —
    /// deregister explicitly before closing to keep both honest. The poll
    /// backend reclaims the slot eagerly (it is reusable by the very next
    /// `register`).
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        SyscallCounters::bump(&self.counters.ctls);
        match &self.inner {
            #[cfg(target_os = "linux")]
            Impl::Epoll(e) => e.ctl(epoll::EPOLL_CTL_DEL, fd, 0, Interest::READ, self.mode),
            Impl::Poll(p) => p.deregister(fd),
        }
    }

    /// Blocks until at least one registered descriptor is ready, `timeout`
    /// elapses (`None` = forever), or a [`Waker`] fires. Ready events are
    /// appended to `events` (which is cleared first); returns the count.
    ///
    /// A timeout of `Some(ZERO)` is a nonblocking readiness probe. Spurious
    /// zero-event returns are possible (EINTR) and harmless.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        SyscallCounters::bump(&self.counters.waits);
        let millis: i32 = match timeout {
            None => -1,
            // Round *up* so a 100 µs deadline does not spin at timeout 0.
            Some(d) => d
                .as_millis()
                .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0))
                .min(i32::MAX as u128) as i32,
        };
        match &self.inner {
            #[cfg(target_os = "linux")]
            Impl::Epoll(e) => e.wait(events, millis),
            Impl::Poll(p) => p.wait(events, millis),
        }
    }

    /// Poll-backend slot-map capacity (occupied + free slots); `None` on
    /// epoll, whose table lives in the kernel. Exists so churn tests can
    /// pin "10k open/close cycles do not grow the table".
    pub fn table_capacity(&self) -> Option<usize> {
        match &self.inner {
            #[cfg(target_os = "linux")]
            Impl::Epoll(_) => None,
            Impl::Poll(p) => Some(p.capacity()),
        }
    }
}

/// The write end of a wake pipe: cheap, clonable, callable from any thread.
#[derive(Debug)]
pub struct Waker {
    tx: OwnedFd,
}

/// The read end of a wake pipe: register
/// [`as_raw_fd`](AsRawFd::as_raw_fd) with the poller, and
/// [`drain`](WakeReader::drain) when its token fires.
#[derive(Debug)]
pub struct WakeReader {
    rx: OwnedFd,
}

impl Waker {
    /// Creates a connected (waker, reader) pair over a nonblocking pipe.
    pub fn pair() -> io::Result<(Waker, WakeReader)> {
        let (rx, tx) = sys::nonblocking_pipe()?;
        Ok((Waker { tx }, WakeReader { rx }))
    }

    /// Makes the paired reader's descriptor readable, waking a poller
    /// blocked on it. Never blocks: a full pipe already guarantees the
    /// reader will wake, so `EAGAIN` is success.
    pub fn wake(&self) {
        let byte = [1u8];
        // EAGAIN (pipe full of unconsumed wakes) and EINTR both leave the
        // reader wakeable; any other failure means the reader is gone and
        // waking is moot.
        let _ = sys::write_fd(self.tx.as_raw_fd(), &byte);
    }
}

impl WakeReader {
    /// Consumes every pending wake byte so the poller stops reporting the
    /// reader readable. Draining to empty also satisfies the edge-mode
    /// drain contract: the next wake byte is a fresh transition.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while let Ok(n) = sys::read_fd(self.rx.as_raw_fd(), &mut buf) {
            if n < buf.len() {
                break;
            }
        }
    }
}

impl AsRawFd for WakeReader {
    fn as_raw_fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }
}

/// The raw syscall surface shared by both backends: nonblocking pipes and
/// fd reads/writes, declared as `extern "C"` prototypes against the libc
/// the binary already links.
mod sys {
    use std::ffi::{c_int, c_void};
    use std::io;
    use std::os::fd::{FromRawFd, OwnedFd};

    extern "C" {
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }

    pub fn read_fd(fd: c_int, buf: &mut [u8]) -> io::Result<usize> {
        // SAFETY: `buf` is a live, writable slice of exactly `buf.len()`
        // bytes for the duration of the call.
        let n = unsafe { read(fd, buf.as_mut_ptr().cast(), buf.len()) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }

    pub fn write_fd(fd: c_int, buf: &[u8]) -> io::Result<usize> {
        // SAFETY: `buf` is a live, readable slice of exactly `buf.len()`
        // bytes for the duration of the call.
        let n = unsafe { write(fd, buf.as_ptr().cast(), buf.len()) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }

    #[cfg(target_os = "linux")]
    pub fn nonblocking_pipe() -> io::Result<(OwnedFd, OwnedFd)> {
        const O_NONBLOCK: c_int = 0o4000;
        const O_CLOEXEC: c_int = 0o2000000;
        extern "C" {
            fn pipe2(fds: *mut c_int, flags: c_int) -> c_int;
        }
        let mut fds = [0 as c_int; 2];
        // SAFETY: `fds` is a two-slot array, exactly what pipe2 fills.
        if unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) } != 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: on success both fds are freshly created and unowned.
        Ok(unsafe { (OwnedFd::from_raw_fd(fds[0]), OwnedFd::from_raw_fd(fds[1])) })
    }

    #[cfg(all(unix, not(target_os = "linux")))]
    pub fn nonblocking_pipe() -> io::Result<(OwnedFd, OwnedFd)> {
        const F_SETFL: c_int = 4;
        #[cfg(any(target_os = "macos", target_os = "ios"))]
        const O_NONBLOCK: c_int = 0x0004;
        #[cfg(not(any(target_os = "macos", target_os = "ios")))]
        const O_NONBLOCK: c_int = 0o4000;
        extern "C" {
            fn pipe(fds: *mut c_int) -> c_int;
            fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
        }
        let mut fds = [0 as c_int; 2];
        // SAFETY: `fds` is a two-slot array, exactly what pipe fills.
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: on success both fds are freshly created and unowned.
        let (rx, tx) = unsafe { (OwnedFd::from_raw_fd(fds[0]), OwnedFd::from_raw_fd(fds[1])) };
        use std::os::fd::AsRawFd;
        for fd in [rx.as_raw_fd(), tx.as_raw_fd()] {
            // SAFETY: plain fcntl on fds this function owns.
            if unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) } != 0 {
                return Err(io::Error::last_os_error());
            }
        }
        Ok((rx, tx))
    }
}

/// The epoll backend.
#[cfg(target_os = "linux")]
mod epoll {
    use super::{Event, Interest, TriggerMode};
    use std::ffi::c_int;
    use std::io;
    use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// `struct epoll_event`; packed on x86 per the kernel ABI.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }

    pub struct Epoll {
        fd: OwnedFd,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            // SAFETY: plain syscall; the returned fd (if valid) is fresh
            // and unowned.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            // SAFETY: checked valid and unowned above.
            Ok(Epoll {
                fd: unsafe { OwnedFd::from_raw_fd(fd) },
            })
        }

        pub fn ctl(
            &self,
            op: c_int,
            fd: RawFd,
            token: u64,
            interest: Interest,
            mode: TriggerMode,
        ) -> io::Result<()> {
            let mut events = EPOLLRDHUP;
            if interest.readable {
                events |= EPOLLIN;
            }
            if interest.writable {
                events |= EPOLLOUT;
            }
            if mode == TriggerMode::Edge {
                events |= EPOLLET;
            }
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            // SAFETY: `ev` is a valid epoll_event for ADD/MOD; DEL ignores
            // it (non-null for pre-2.6.9 kernel compatibility).
            if unsafe { epoll_ctl(self.fd.as_raw_fd(), op, fd, &mut ev) } != 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
            // SAFETY: `buf` holds 256 writable epoll_event slots and we
            // pass exactly that capacity.
            let n = unsafe {
                epoll_wait(
                    self.fd.as_raw_fd(),
                    buf.as_mut_ptr(),
                    buf.len() as c_int,
                    timeout_ms,
                )
            };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0); // spurious wake; the caller re-checks state
                }
                return Err(err);
            }
            for ev in &buf[..n as usize] {
                let bits = ev.events;
                out.push(Event {
                    token: ev.data,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    closed: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(out.len())
        }
    }
}

/// The `poll(2)` backend: a mutex-guarded slot map rebuilt into a `pollfd`
/// array per wait. Register/modify/deregister are O(1) through the fd
/// index; deregistered slots go straight onto a free list so fd churn
/// reuses them instead of growing the table.
mod pollfd {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::ffi::{c_int, c_short, c_ulong};
    use std::io;
    use std::os::fd::RawFd;
    use std::sync::Mutex;

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    struct Slots {
        /// `None` = free slot, parked on `free`.
        slots: Vec<Option<(RawFd, u64, Interest)>>,
        /// Indices of free `slots` entries, reclaimed eagerly on
        /// deregister.
        free: Vec<usize>,
        /// fd → slot index, for O(1) modify/deregister.
        index: HashMap<RawFd, usize>,
    }

    pub struct PollTable {
        inner: Mutex<Slots>,
    }

    impl PollTable {
        pub fn new() -> PollTable {
            PollTable {
                inner: Mutex::new(Slots {
                    slots: Vec::new(),
                    free: Vec::new(),
                    index: HashMap::new(),
                }),
            }
        }

        /// Occupied + free slots: the table's high-water mark. Bounded by
        /// the peak *concurrent* registration count, not the cumulative
        /// churn — the churn regression test pins exactly that.
        pub fn capacity(&self) -> usize {
            self.inner.lock().expect("poll table lock").slots.len()
        }

        pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut inner = self.inner.lock().expect("poll table lock");
            if inner.index.contains_key(&fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            let slot = match inner.free.pop() {
                Some(slot) => {
                    inner.slots[slot] = Some((fd, token, interest));
                    slot
                }
                None => {
                    inner.slots.push(Some((fd, token, interest)));
                    inner.slots.len() - 1
                }
            };
            inner.index.insert(fd, slot);
            Ok(())
        }

        pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
            let mut inner = self.inner.lock().expect("poll table lock");
            match inner.index.get(&fd).copied() {
                Some(slot) => {
                    inner.slots[slot] = Some((fd, token, interest));
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut inner = self.inner.lock().expect("poll table lock");
            match inner.index.remove(&fd) {
                Some(slot) => {
                    inner.slots[slot] = None;
                    inner.free.push(slot);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            let snapshot: Vec<(RawFd, u64, Interest)> = {
                let inner = self.inner.lock().expect("poll table lock");
                inner.slots.iter().filter_map(|slot| *slot).collect()
            };
            let mut fds: Vec<PollFd> = snapshot
                .iter()
                .map(|&(fd, _, interest)| {
                    let mut events = 0;
                    if interest.readable {
                        events |= POLLIN;
                    }
                    if interest.writable {
                        events |= POLLOUT;
                    }
                    PollFd {
                        fd,
                        events,
                        revents: 0,
                    }
                })
                .collect();
            // SAFETY: `fds` is a live array of exactly `fds.len()` pollfd
            // slots for the duration of the call.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            for (slot, &(_, token, _)) in fds.iter().zip(snapshot.iter()) {
                let bits = slot.revents;
                if bits == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: bits & (POLLIN | POLLHUP) != 0,
                    writable: bits & POLLOUT != 0,
                    closed: bits & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(out.len())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{ErrorKind, Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn backends() -> Vec<Backend> {
        #[cfg(target_os = "linux")]
        {
            vec![Backend::Epoll, Backend::Poll]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![Backend::Poll]
        }
    }

    fn modes() -> [TriggerMode; 2] {
        [TriggerMode::Level, TriggerMode::Edge]
    }

    #[test]
    fn readable_socket_fires_and_level_triggers_until_drained() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (mut rx, _) = listener.accept().unwrap();
            rx.set_nonblocking(true).unwrap();
            poller.register(rx.as_raw_fd(), 7, Interest::READ).unwrap();

            let mut events = Vec::new();
            // Quiet socket: timeout elapses with no events.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: spurious event");

            tx.write_all(b"ping").unwrap();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert_eq!(events[0].token, 7);
            assert!(events[0].readable);

            // Level-triggered: unread bytes keep firing.
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}: level-trigger lost");

            let mut buf = [0u8; 16];
            assert_eq!(rx.read(&mut buf).unwrap(), 4);
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(
                events.is_empty(),
                "{backend:?}: drained socket still firing"
            );

            poller.deregister(rx.as_raw_fd()).unwrap();
        }
    }

    /// The drain contract works identically on every backend × mode: an
    /// event fires, the owner drains to `WouldBlock`, and a *refill* by
    /// the peer produces a fresh event. This is the exact loop the gate
    /// reactor runs, so it is pinned for all four combinations.
    #[test]
    fn drain_contract_refill_fires_again_under_all_backends_and_modes() {
        for backend in backends() {
            for mode in modes() {
                let poller = Poller::with_mode(backend, mode).unwrap();
                let listener = TcpListener::bind("127.0.0.1:0").unwrap();
                let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
                let (mut rx, _) = listener.accept().unwrap();
                rx.set_nonblocking(true).unwrap();
                poller.register(rx.as_raw_fd(), 5, Interest::READ).unwrap();

                let mut events = Vec::new();
                for round in 0..3 {
                    tx.write_all(b"edge").unwrap();
                    poller
                        .wait(&mut events, Some(Duration::from_secs(5)))
                        .unwrap();
                    assert_eq!(events.len(), 1, "{backend:?}/{mode:?} round {round}");
                    assert!(events[0].readable);
                    // Drain to WouldBlock: the contract every reactor
                    // connection honors.
                    let mut buf = [0u8; 16];
                    loop {
                        match rx.read(&mut buf) {
                            Ok(0) => panic!("unexpected EOF"),
                            Ok(_) => continue,
                            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                            Err(e) => panic!("read: {e}"),
                        }
                    }
                }
                poller.deregister(rx.as_raw_fd()).unwrap();
            }
        }
    }

    /// Kernel-side edge triggering (epoll only): an *undrained* socket is
    /// reported once, not on every wait. This is the optimization the
    /// portable backend legally does not implement, so it is pinned for
    /// epoll alone.
    #[cfg(target_os = "linux")]
    #[test]
    fn epoll_edge_mode_reports_an_undrained_socket_once() {
        let poller = Poller::with_mode(Backend::Epoll, TriggerMode::Edge).unwrap();
        assert!(poller.rearm_free());
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();
        poller.register(rx.as_raw_fd(), 8, Interest::READ).unwrap();

        let mut events = Vec::new();
        tx.write_all(b"once").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);

        // Deliberately do NOT drain: a second wait must stay silent.
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "EPOLLET re-reported an undrained fd");

        // A refill is a fresh edge even with stale bytes still queued.
        tx.write_all(b"more").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1, "refill edge lost");
        poller.deregister(rx.as_raw_fd()).unwrap();
    }

    /// `rearm_free` is an epoll+Edge-only promise.
    #[test]
    fn rearm_free_only_on_kernel_edge_triggering() {
        for backend in backends() {
            for mode in modes() {
                let poller = Poller::with_mode(backend, mode).unwrap();
                #[cfg(target_os = "linux")]
                let expected = backend == Backend::Epoll && mode == TriggerMode::Edge;
                #[cfg(not(target_os = "linux"))]
                let expected = false;
                assert_eq!(poller.rearm_free(), expected, "{backend:?}/{mode:?}");
            }
        }
    }

    #[test]
    fn write_interest_and_modify() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (rx, _) = listener.accept().unwrap();
            // A fresh socket with an empty send buffer is writable.
            poller.register(tx.as_raw_fd(), 1, Interest::WRITE).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert!(events[0].writable);

            // Narrow interest to read only: the writable condition stops
            // firing even though the socket is still writable.
            poller.modify(tx.as_raw_fd(), 1, Interest::READ).unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: modify ignored");
            poller.deregister(tx.as_raw_fd()).unwrap();
            drop(rx);
        }
    }

    #[test]
    fn peer_hangup_reports_readable_and_closed() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (rx, _) = listener.accept().unwrap();
            poller.register(rx.as_raw_fd(), 9, Interest::READ).unwrap();
            drop(tx);
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}");
            assert!(
                events[0].readable,
                "{backend:?}: hangup must surface as readable so the owner reads the EOF"
            );
            poller.deregister(rx.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn waker_wakes_a_blocked_wait_from_another_thread() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (waker, reader) = Waker::pair().unwrap();
            poller
                .register(reader.as_raw_fd(), 42, Interest::READ)
                .unwrap();
            let start = Instant::now();
            let mut events = Vec::new();
            // Borrow (not move) the waker: dropping it closes the pipe's
            // write end, which would make the reader report hangup forever.
            std::thread::scope(|s| {
                s.spawn(|| {
                    std::thread::sleep(Duration::from_millis(30));
                    waker.wake();
                    waker.wake(); // coalesces with the first
                });
                poller
                    .wait(&mut events, Some(Duration::from_secs(10)))
                    .unwrap();
            });
            assert_eq!(events.len(), 1, "{backend:?}");
            assert_eq!(events[0].token, 42);
            assert!(
                start.elapsed() < Duration::from_secs(5),
                "{backend:?}: wake did not cut the wait short"
            );
            reader.drain();
            // Drained: the reader goes quiet.
            poller
                .wait(&mut events, Some(Duration::from_millis(10)))
                .unwrap();
            assert!(events.is_empty(), "{backend:?}: drain left bytes behind");
        }
    }

    #[test]
    fn wake_before_wait_is_not_lost() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (waker, reader) = Waker::pair().unwrap();
            poller
                .register(reader.as_raw_fd(), 3, Interest::READ)
                .unwrap();
            waker.wake(); // fires before anyone is waiting
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_secs(5)))
                .unwrap();
            assert_eq!(events.len(), 1, "{backend:?}: pre-wait wake lost");
            reader.drain();
        }
    }

    #[test]
    fn sub_millisecond_timeouts_round_up_not_spin() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (_waker, reader) = Waker::pair().unwrap();
            poller
                .register(reader.as_raw_fd(), 0, Interest::READ)
                .unwrap();
            let mut events = Vec::new();
            // 100 µs must not become timeout=0 (a busy-spin); it rounds to
            // 1 ms and actually sleeps.
            let start = Instant::now();
            poller
                .wait(&mut events, Some(Duration::from_micros(100)))
                .unwrap();
            assert!(events.is_empty());
            assert!(
                start.elapsed() >= Duration::from_micros(100),
                "{backend:?}: rounded down to a spin"
            );
        }
    }

    /// Syscall counters move when the poller does syscalls, and the
    /// snapshot arithmetic (aggregate, diff) is sane.
    #[test]
    fn syscall_counters_track_waits_and_ctls() {
        for backend in backends() {
            let poller = Poller::with_backend(backend).unwrap();
            let (_waker, reader) = Waker::pair().unwrap();
            let before = poller.counters().snapshot();
            poller
                .register(reader.as_raw_fd(), 0, Interest::READ)
                .unwrap();
            let mut events = Vec::new();
            poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
            poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
            poller.deregister(reader.as_raw_fd()).unwrap();
            let delta = poller.counters().snapshot().since(&before);
            assert_eq!(delta.waits, 2, "{backend:?}");
            assert_eq!(delta.ctls, 2, "{backend:?}: register + deregister");
            assert_eq!(delta.total(), 4, "{backend:?}");
            let doubled = delta + delta;
            assert_eq!(doubled.waits, 4);
        }
    }

    /// Churn regression (satellite): 10k open/register/deregister/close
    /// cycles on the portable backend reuse reclaimed slots instead of
    /// growing the table. Capacity is bounded by the peak *concurrent*
    /// registration count (here: a handful), not the cumulative churn.
    #[test]
    fn poll_table_reclaims_slots_eagerly_under_churn() {
        let poller = Poller::with_backend(Backend::Poll).unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        // A small steady-state population so reclaimed slots interleave
        // with live ones.
        let steady: Vec<TcpStream> = (0..4)
            .map(|i| {
                let s = TcpStream::connect(addr).unwrap();
                let _ = listener.accept().unwrap();
                poller
                    .register(s.as_raw_fd(), 1000 + i, Interest::READ)
                    .unwrap();
                s
            })
            .collect();

        // 10k churn cycles. Raw fds stand in for sockets: the table only
        // stores fds, and real connect/accept 10k times would dominate
        // the test's runtime without exercising anything extra. Use the
        // waker pipe's fds so the values are live descriptors.
        for i in 0..10_000u64 {
            let (_waker, reader) = Waker::pair().unwrap();
            poller
                .register(reader.as_raw_fd(), i, Interest::READ)
                .unwrap();
            poller.deregister(reader.as_raw_fd()).unwrap();
        }

        let capacity = poller.table_capacity().expect("poll backend");
        assert!(
            capacity <= steady.len() + 2,
            "table grew under churn: capacity {capacity} after 10k open/close \
             cycles with only {} steady registrations",
            steady.len()
        );

        // The steady registrations still work after all that churn.
        let mut events = Vec::new();
        poller.wait(&mut events, Some(Duration::ZERO)).unwrap();
        for s in &steady {
            poller.deregister(s.as_raw_fd()).unwrap();
        }
        assert_eq!(poller.table_capacity(), Some(capacity));
    }

    /// Deregister → register reuses the same slot for a *different* fd
    /// immediately (eager reclamation), and stale fds are really gone
    /// from the kernel-visible set.
    #[test]
    fn poll_table_slot_reuse_is_immediate_and_clean() {
        let poller = Poller::with_backend(Backend::Poll).unwrap();
        let (waker_a, reader_a) = Waker::pair().unwrap();
        let (_waker_b, reader_b) = Waker::pair().unwrap();

        poller
            .register(reader_a.as_raw_fd(), 1, Interest::READ)
            .unwrap();
        let cap_one = poller.table_capacity().unwrap();
        poller.deregister(reader_a.as_raw_fd()).unwrap();
        poller
            .register(reader_b.as_raw_fd(), 2, Interest::READ)
            .unwrap();
        assert_eq!(
            poller.table_capacity().unwrap(),
            cap_one,
            "second register must reuse the reclaimed slot"
        );

        // Waking the deregistered reader must not produce an event.
        waker_a.wake();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(
            events.is_empty(),
            "deregistered fd still live in the table: {events:?}"
        );

        // Double-deregister is a clean NotFound, not a panic or corruption.
        let err = poller.deregister(reader_a.as_raw_fd()).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::NotFound);
        poller.deregister(reader_b.as_raw_fd()).unwrap();
    }
}
