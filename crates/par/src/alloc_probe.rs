//! A heap-allocation probe for benchmarks: a wrapping
//! [`GlobalAlloc`] that counts allocations made by
//! *opted-in* threads.
//!
//! The gate's steady-state claim — "keep-alive traffic allocates nothing" —
//! is only provable from inside the allocator. But a process-wide counter
//! would drown the signal in bench-client noise (the load generator
//! allocates freely), so counting is gated on a per-thread flag:
//!
//! 1. A binary that wants the numbers installs
//!    `#[global_allocator] static A: CountingAlloc = CountingAlloc;`
//!    (only `perf_baseline` does; production binaries keep the system
//!    allocator untouched).
//! 2. Threads whose allocations matter — the gate's reactor threads — call
//!    [`track_current_thread`]`(true)` at startup. The reactor does this
//!    unconditionally: when the counting allocator is not installed the
//!    flag is a write to a thread-local bool that nothing reads.
//! 3. The bench diffs [`tracked_allocs`] around a traffic window and
//!    divides by requests served.
//!
//! Only allocation *events* are counted (alloc, realloc, alloc_zeroed —
//! not dealloc): the claim under test is "the hot path does not go to the
//! allocator", and frees pair with allocations anyway.
//!
//! The flag lives in a `const`-initialized thread-local `Cell` so reading
//! it never allocates (a lazily-initialized TLS slot could recurse into
//! the allocator on first touch), and is read with `try_with` so
//! allocations during thread teardown — after TLS destructors ran — stay
//! safe instead of panicking.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static TRACKED_ALLOCS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TRACKED: Cell<bool> = const { Cell::new(false) };
}

/// Opts the current thread in (or out) of allocation counting. Cheap
/// enough to call unconditionally at thread start.
pub fn track_current_thread(on: bool) {
    let _ = TRACKED.try_with(|t| t.set(on));
}

/// Total allocation events by opted-in threads since process start (zero
/// unless a [`CountingAlloc`] is installed as the global allocator).
pub fn tracked_allocs() -> u64 {
    TRACKED_ALLOCS.load(Ordering::Relaxed)
}

#[inline]
fn count() {
    if TRACKED.try_with(|t| t.get()).unwrap_or(false) {
        TRACKED_ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

/// The counting wrapper around the system allocator. Zero-sized; install
/// with `#[global_allocator]` in binaries that want the numbers.
pub struct CountingAlloc;

// SAFETY: defers entirely to `System` for memory management; the wrapper
// only adds a relaxed counter bump on allocation paths and never touches
// the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count();
        System.realloc(ptr, layout, new_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install `CountingAlloc`, so `tracked_allocs`
    // stays flat no matter what — which is itself the documented contract
    // for production binaries. The flag plumbing is still exercisable.
    #[test]
    fn flag_round_trips_and_counter_is_flat_without_installation() {
        track_current_thread(true);
        let before = tracked_allocs();
        let v: Vec<u64> = (0..1000).collect();
        assert_eq!(v.len(), 1000);
        assert_eq!(
            tracked_allocs(),
            before,
            "counter moved without CountingAlloc installed"
        );
        track_current_thread(false);
    }

    // The wrapper itself is callable directly (not as the global
    // allocator) and counts only while the thread is opted in.
    #[test]
    fn wrapper_counts_only_opted_in_threads() {
        let a = CountingAlloc;
        let layout = Layout::from_size_align(64, 8).unwrap();

        track_current_thread(false);
        let before = tracked_allocs();
        // SAFETY: valid layout; the pointer is freed immediately below.
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
        }
        assert_eq!(tracked_allocs(), before, "untracked thread counted");

        track_current_thread(true);
        // SAFETY: as above.
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
            let z = a.alloc_zeroed(layout);
            assert!(!z.is_null());
            let z2 = a.realloc(z, layout, 128);
            assert!(!z2.is_null());
            a.dealloc(z2, Layout::from_size_align(128, 8).unwrap());
        }
        assert_eq!(
            tracked_allocs(),
            before + 3,
            "alloc + alloc_zeroed + realloc each count once; dealloc never"
        );
        track_current_thread(false);
    }
}
