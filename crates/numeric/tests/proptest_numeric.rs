//! Property-based tests for the numerical foundations.

use cos_numeric::complex::Complex64;
use cos_numeric::laplace::{cdf_from_lst, InversionConfig};
use cos_numeric::special::{digamma, gamma_p, ln_gamma};
use proptest::prelude::*;

fn finite_complex() -> impl Strategy<Value = Complex64> {
    (-1e6f64..1e6, -1e6f64..1e6).prop_map(|(re, im)| Complex64::new(re, im))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complex_addition_commutes(a in finite_complex(), b in finite_complex()) {
        let x = a + b;
        let y = b + a;
        prop_assert!((x - y).abs() == 0.0);
    }

    #[test]
    fn complex_multiplication_distributes(
        a in finite_complex(),
        b in finite_complex(),
        c in finite_complex(),
    ) {
        let lhs = a * (b + c);
        let rhs = a * b + a * c;
        let scale = a.abs() * (b.abs() + c.abs()) + 1.0;
        prop_assert!((lhs - rhs).abs() <= 1e-12 * scale);
    }

    #[test]
    fn complex_inverse_roundtrip(a in finite_complex()) {
        prop_assume!(a.abs() > 1e-6);
        let back = a.inv().inv();
        prop_assert!((back - a).abs() <= 1e-10 * a.abs());
    }

    #[test]
    fn exp_ln_roundtrip(re in -1e3f64..1e3, im in -1e3f64..1e3) {
        let a = Complex64::new(re, im);
        prop_assume!(a.abs() > 1e-6);
        let back = a.ln().exp();
        prop_assert!((back - a).abs() <= 1e-9 * a.abs());
    }

    #[test]
    fn ln_gamma_recurrence(x in 0.05f64..150.0) {
        let lhs = ln_gamma(x + 1.0);
        let rhs = x.ln() + ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9 * (1.0 + lhs.abs()));
    }

    #[test]
    fn digamma_recurrence(x in 0.05f64..150.0) {
        prop_assert!((digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-9);
    }

    #[test]
    fn gamma_p_monotone_in_x(a in 0.1f64..50.0, x in 0.0f64..100.0, dx in 0.001f64..10.0) {
        prop_assert!(gamma_p(a, x + dx) >= gamma_p(a, x) - 1e-12);
    }

    #[test]
    fn gamma_p_within_unit_interval(a in 0.1f64..50.0, x in 0.0f64..200.0) {
        let p = gamma_p(a, x);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn erlang_inversion_matches_gamma_p(k in 1i32..8, rate in 0.2f64..20.0, t in 0.05f64..5.0) {
        // CDF of Erlang(k, rate) via Laplace inversion equals gamma_p.
        let lst = move |s: Complex64| (Complex64::from_real(rate) / (s + rate)).powi(k);
        let cfg = InversionConfig::default();
        let got = cdf_from_lst(&lst, t, &cfg);
        let want = gamma_p(k as f64, rate * t);
        prop_assert!((got - want).abs() < 1e-5, "k={k} rate={rate} t={t}: {got} vs {want}");
    }

    #[test]
    fn inverted_cdf_is_monotone(rate in 0.5f64..10.0, t in 0.1f64..2.0, dt in 0.01f64..1.0) {
        let lst = move |s: Complex64| Complex64::from_real(rate) / (s + rate);
        let cfg = InversionConfig::default();
        let a = cdf_from_lst(&lst, t, &cfg);
        let b = cdf_from_lst(&lst, t + dt, &cfg);
        prop_assert!(b >= a - 1e-7);
    }
}
