//! Compensated summation.
//!
//! The Euler inversion weights alternate in sign with magnitudes up to
//! `10^{M/3}`; naive accumulation loses digits. Neumaier's variant of Kahan
//! summation recovers them.

/// A running Neumaier-compensated sum.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeumaierSum {
    sum: f64,
    compensation: f64,
}

impl NeumaierSum {
    /// Creates an empty sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a term.
    #[inline]
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// Returns the compensated total.
    #[inline]
    pub fn total(&self) -> f64 {
        self.sum + self.compensation
    }
}

impl FromIterator<f64> for NeumaierSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = NeumaierSum::new();
        for v in iter {
            s.add(v);
        }
        s
    }
}

/// Sums a slice with compensation.
pub fn compensated_sum(values: &[f64]) -> f64 {
    values.iter().copied().collect::<NeumaierSum>().total()
}

/// Compensated mean of a slice. Returns `None` on an empty slice.
pub fn compensated_mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(compensated_sum(values) / values.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_kahan_failure_case() {
        // 1 + 1e100 + 1 − 1e100: naive f64 gives 0, compensated gives 2.
        let vals = [1.0, 1e100, 1.0, -1e100];
        let naive: f64 = vals.iter().sum();
        assert_eq!(naive, 0.0);
        assert_eq!(compensated_sum(&vals), 2.0);
    }

    #[test]
    fn matches_naive_on_benign_input() {
        let vals: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        assert_eq!(compensated_sum(&vals), 500500.0);
    }

    #[test]
    fn alternating_series_accuracy() {
        // Σ (−1)^k / (k+1) for k = 0..n−1 → ln 2.
        let n = 2_000_000;
        let vals: Vec<f64> = (0..n)
            .map(|k| if k % 2 == 0 { 1.0 } else { -1.0 } / (k as f64 + 1.0))
            .collect();
        let got = compensated_sum(&vals);
        // Truncation error of the series dominates; compensation keeps
        // rounding error below it.
        assert!((got - std::f64::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn mean_empty_and_nonempty() {
        assert_eq!(compensated_mean(&[]), None);
        assert_eq!(compensated_mean(&[2.0, 4.0]), Some(3.0));
    }
}
