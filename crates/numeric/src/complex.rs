//! Minimal double-precision complex arithmetic.
//!
//! The Laplace-transform machinery in this workspace evaluates
//! Laplace–Stieltjes transforms along contours in the complex plane, so we
//! need complex elementary functions. The offline crate set does not include
//! `num-complex`, so this module provides a small, self-contained `Complex64`
//! with exactly the operations the inversion algorithms require.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The complex zero.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The complex one.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from Cartesian components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates `r * e^{i theta}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64::new(r * theta.cos(), r * theta.sin())
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64::new(self.re, -self.im)
    }

    /// Squared modulus `re^2 + im^2`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`, computed with `hypot` for robustness against
    /// intermediate overflow/underflow.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Principal argument in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse `1/z`.
    #[inline]
    pub fn inv(self) -> Self {
        // Smith's algorithm avoids overflow when one component dominates.
        if self.re.abs() >= self.im.abs() {
            let r = self.im / self.re;
            let d = self.re + self.im * r;
            Complex64::new(1.0 / d, -r / d)
        } else {
            let r = self.re / self.im;
            let d = self.re * r + self.im;
            Complex64::new(r / d, -1.0 / d)
        }
    }

    /// Complex exponential `e^z`.
    #[inline]
    pub fn exp(self) -> Self {
        Complex64::from_polar(self.re.exp(), self.im)
    }

    /// Principal natural logarithm.
    #[inline]
    pub fn ln(self) -> Self {
        Complex64::new(self.abs().ln(), self.arg())
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        if self.im == 0.0 && self.re >= 0.0 {
            return Complex64::new(self.re.sqrt(), 0.0);
        }
        let r = self.abs();
        let re = ((r + self.re) * 0.5).sqrt();
        let im = ((r - self.re) * 0.5).sqrt().copysign(self.im);
        Complex64::new(re, im)
    }

    /// `z^n` for integer exponents by repeated squaring.
    pub fn powi(self, mut n: i32) -> Self {
        if n == 0 {
            return Complex64::ONE;
        }
        let mut base = if n < 0 { self.inv() } else { self };
        if n < 0 {
            n = -n;
        }
        let mut acc = Complex64::ONE;
        while n > 0 {
            if n & 1 == 1 {
                acc *= base;
            }
            base = base * base;
            n >>= 1;
        }
        acc
    }

    /// `z^a` for real exponents via the principal branch `exp(a ln z)`.
    #[inline]
    pub fn powf(self, a: f64) -> Self {
        if self == Complex64::ZERO {
            return if a == 0.0 {
                Complex64::ONE
            } else {
                Complex64::ZERO
            };
        }
        (self.ln() * a).exp()
    }

    /// `z^w` for complex exponents via the principal branch.
    #[inline]
    pub fn powc(self, w: Complex64) -> Self {
        if self == Complex64::ZERO {
            return if w == Complex64::ZERO {
                Complex64::ONE
            } else {
                Complex64::ZERO
            };
        }
        (self.ln() * w).exp()
    }

    /// Returns true if either component is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.re.is_nan() || self.im.is_nan()
    }

    /// Returns true if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64::new(self.re * k, self.im * k)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Add<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re + rhs, self.im)
    }
}

impl Add<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        rhs + self
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Sub<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re - rhs, self.im)
    }
}

impl Sub<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self - rhs.re, -rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z/w = z * w^{-1} by definition
    fn div(self, rhs: Complex64) -> Complex64 {
        self * rhs.inv()
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Div<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        rhs.inv().scale(self)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl DivAssign for Complex64 {
    #[inline]
    fn div_assign(&mut self, rhs: Complex64) {
        *self = *self / rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: Complex64, b: Complex64, eps: f64) -> bool {
        (a - b).abs() <= eps * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        let w = Complex64::new(-1.5, 2.0);
        assert!(close(z + w - w, z, EPS));
        assert!(close(z * w / w, z, EPS));
        assert!(close(z * z.inv(), Complex64::ONE, EPS));
        assert_eq!((-z).re, -3.0);
        assert_eq!((-z).im, 4.0);
    }

    #[test]
    fn abs_and_arg() {
        let z = Complex64::new(3.0, 4.0);
        assert!((z.abs() - 5.0).abs() < EPS);
        assert!((z.norm_sqr() - 25.0).abs() < EPS);
        let i = Complex64::I;
        assert!((i.arg() - std::f64::consts::FRAC_PI_2).abs() < EPS);
    }

    #[test]
    fn exp_ln_roundtrip() {
        let z = Complex64::new(0.7, -1.3);
        assert!(close(z.exp().ln(), z, 1e-11));
        assert!(close(z.ln().exp(), z, 1e-11));
    }

    #[test]
    fn euler_identity() {
        // e^{i pi} = -1
        let z = (Complex64::I * std::f64::consts::PI).exp();
        assert!(close(z, Complex64::new(-1.0, 0.0), 1e-12));
    }

    #[test]
    fn sqrt_branches() {
        assert!(close(Complex64::new(-1.0, 0.0).sqrt(), Complex64::I, EPS));
        assert!(close(
            Complex64::new(4.0, 0.0).sqrt(),
            Complex64::new(2.0, 0.0),
            EPS
        ));
        let z = Complex64::new(1.0, 2.0);
        assert!(close(z.sqrt() * z.sqrt(), z, 1e-11));
        // Negative imaginary part maps to the lower half-plane root.
        let w = Complex64::new(-3.0, -4.0);
        let r = w.sqrt();
        assert!(r.im < 0.0);
        assert!(close(r * r, w, 1e-11));
    }

    #[test]
    fn integer_powers() {
        let z = Complex64::new(1.0, 1.0);
        assert!(close(z.powi(2), Complex64::new(0.0, 2.0), EPS));
        assert!(close(z.powi(0), Complex64::ONE, EPS));
        assert!(close(z.powi(-1), z.inv(), EPS));
        assert!(close(z.powi(8), Complex64::new(16.0, 0.0), 1e-11));
    }

    #[test]
    fn real_powers() {
        let z = Complex64::new(4.0, 0.0);
        assert!(close(z.powf(0.5), Complex64::new(2.0, 0.0), 1e-12));
        // (l/(l+s))^k form used by the Gamma LST must work off-axis.
        let s = Complex64::new(0.5, 2.0);
        let l = 3.0;
        let base = Complex64::from_real(l) / (Complex64::from_real(l) + s);
        let k = 2.0;
        assert!(close(base.powf(k), base * base, 1e-11));
    }

    #[test]
    fn inv_extreme_magnitudes() {
        let z = Complex64::new(1e300, 1e-300);
        let w = z.inv();
        assert!(w.is_finite());
        assert!((w.re - 1e-300).abs() < 1e-310);
    }

    #[test]
    fn sum_iterator() {
        let total: Complex64 = (0..10).map(|k| Complex64::new(k as f64, -(k as f64))).sum();
        assert!(close(total, Complex64::new(45.0, -45.0), EPS));
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", Complex64::new(1.0, 2.0)), "1+2i");
        assert_eq!(format!("{}", Complex64::new(1.0, -2.0)), "1-2i");
    }

    #[test]
    fn mixed_real_ops() {
        let z = Complex64::new(2.0, 3.0);
        assert!(close(z + 1.0, Complex64::new(3.0, 3.0), EPS));
        assert!(close(1.0 + z, Complex64::new(3.0, 3.0), EPS));
        assert!(close(z - 1.0, Complex64::new(1.0, 3.0), EPS));
        assert!(close(1.0 - z, Complex64::new(-1.0, -3.0), EPS));
        assert!(close(2.0 * z, Complex64::new(4.0, 6.0), EPS));
        assert!(close(z / 2.0, Complex64::new(1.0, 1.5), EPS));
        assert!(close(1.0 / z, z.inv(), EPS));
    }
}
