//! # cos-numeric
//!
//! Numerical foundations for the `cosmodel` reproduction of *"Predicting
//! Response Latency Percentiles for Cloud Object Storage Systems"*
//! (Su, Feng, Hua, Shi — ICPP 2017):
//!
//! * [`complex`] — self-contained double-precision complex arithmetic
//!   (the offline crate set has no `num-complex`),
//! * [`special`] — log-gamma, digamma/trigamma, regularized incomplete gamma,
//!   `erf`, inverse normal CDF,
//! * [`laplace`] — numerical Laplace-transform inversion (Abate–Whitt Euler,
//!   fixed Talbot, Gaver–Stehfest) and CDF/quantile helpers,
//! * [`moments`] — moments from LSTs by numerical differentiation,
//! * [`roots`] — bisection / Brent / damped Newton,
//! * [`quad`] — adaptive Simpson and Gauss–Legendre quadrature,
//! * [`sum`] — compensated (Neumaier) summation.
//!
//! The model's percentile predictions are produced by evaluating
//! Laplace–Stieltjes transforms along complex contours and inverting
//! `L[f](s)/s`; everything needed for that lives here, implemented from
//! scratch and pinned by tests against closed forms.

#![warn(missing_docs)]

pub mod complex;
pub mod laplace;
pub mod moments;
pub mod quad;
pub mod roots;
pub mod special;
pub mod sum;

pub use complex::Complex64;
pub use laplace::{
    ccdf_from_lst, cdf_from_lst, euler, gaver_stehfest, quantile_from_lst, talbot, ConfigError,
    CountingLaplaceFn, InversionAlgorithm, InversionConfig, LaplaceFn, GAVER_STEHFEST_MAX_TERMS,
    QUANTILE_INVERSION_BUDGET,
};
pub use moments::{mean_from_lst, moments_from_lst, second_moment_from_lst};
pub use roots::invert_monotone;
