//! Moments from Laplace–Stieltjes transforms by numerical differentiation.
//!
//! `E[X^k] = (−1)^k dᵏ/dsᵏ L(s) |_{s=0}`. Central differences with a step
//! scaled to the distribution's own time scale balance truncation against
//! the cancellation noise of evaluating `L` near 1.

use crate::complex::Complex64;
use crate::laplace::LaplaceFn;

/// First moment (mean) from an LST, given a rough `scale` of the
/// distribution (any value within a couple of orders of magnitude of the
/// true mean works).
///
/// Uses a Richardson-extrapolated central difference (O(h⁴) truncation).
pub fn mean_from_lst<F: LaplaceFn>(lst: &F, scale: f64) -> f64 {
    assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
    let h = 0.02 / scale;
    let f = |s: f64| lst.eval(Complex64::from_real(s)).re;
    let d = |h: f64| -(f(h) - f(-h)) / (2.0 * h);
    (4.0 * d(h / 2.0) - d(h)) / 3.0
}

/// Second raw moment from an LST (Richardson-extrapolated second
/// difference).
pub fn second_moment_from_lst<F: LaplaceFn>(lst: &F, scale: f64) -> f64 {
    assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
    let h = 0.05 / scale;
    let f = |s: f64| lst.eval(Complex64::from_real(s)).re;
    let d = |h: f64| (f(h) - 2.0 * f(0.0) + f(-h)) / (h * h);
    ((4.0 * d(h / 2.0) - d(h)) / 3.0).max(0.0)
}

/// Mean and second moment in one call, refining the step with the measured
/// mean (one fixed-point pass: the initial `scale` only needs the order of
/// magnitude).
pub fn moments_from_lst<F: LaplaceFn>(lst: &F, scale_hint: f64) -> (f64, f64) {
    let rough = mean_from_lst(lst, scale_hint).abs().max(scale_hint * 1e-3);
    let mean = mean_from_lst(lst, rough);
    let m2 = second_moment_from_lst(lst, rough);
    (mean, m2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp_lst(rate: f64) -> impl Fn(Complex64) -> Complex64 {
        move |s| Complex64::from_real(rate) / (s + rate)
    }

    #[test]
    fn exponential_moments() {
        let lst = exp_lst(4.0);
        let (mean, m2) = moments_from_lst(&lst, 1.0);
        assert!((mean - 0.25).abs() < 1e-6, "mean {mean}");
        assert!((m2 - 0.125).abs() < 1e-5, "m2 {m2}");
    }

    #[test]
    fn erlang_moments() {
        // Erlang(3, 2): mean 1.5, E[X²] = var + mean² = 0.75 + 2.25 = 3.
        let lst = move |s: Complex64| (Complex64::from_real(2.0) / (s + 2.0)).powi(3);
        let (mean, m2) = moments_from_lst(&lst, 1.0);
        assert!((mean - 1.5).abs() < 1e-6);
        assert!((m2 - 3.0).abs() < 1e-4);
    }

    #[test]
    fn works_across_scales() {
        // Millisecond-scale latencies with a poor hint.
        let lst = exp_lst(1000.0);
        let (mean, m2) = moments_from_lst(&lst, 1.0);
        assert!((mean - 0.001).abs() / 0.001 < 1e-4, "mean {mean}");
        assert!((m2 - 2e-6).abs() / 2e-6 < 1e-3, "m2 {m2}");
    }

    #[test]
    fn degenerate_moments() {
        let d = 0.37;
        let lst = move |s: Complex64| (s * (-d)).exp();
        let (mean, m2) = moments_from_lst(&lst, 1.0);
        assert!((mean - d).abs() < 1e-6);
        assert!((m2 - d * d).abs() < 1e-4);
    }
}
